#!/usr/bin/env python3
"""Cryptocurrency mining: signed costs and demonic nondeterminism.

Reproduces the paper's Section 3.1 motivating example (Figure 3): a
miner pays electricity (positive cost) and occasionally wins a block
reward (negative cost).  When several miners solve the puzzle at once,
*whether our miner gets paid* is left to demonic nondeterminism — so
the worst-case expected cost maximizes over schedulers.

This example shows:
* bounds on the nondeterministic program (no simulation possible),
* the Table 5 experiment: replacing ``if *`` with a fair coin, which
  makes the program simulable, and how the bound tightens,
* why the [74] baseline cannot handle the program at all.

Run:  python examples/crypto_mining.py
"""

import repro
from repro.baseline import baseline_upper_bound
from repro.errors import UnsupportedProgramError
from repro.programs import get_benchmark

def main() -> None:
    bench = get_benchmark("bitcoin_mining")
    print(bench.title)
    print(bench.cfg.pretty())
    print()

    result = bench.analyze(init={"x": 100})
    print("--- demonic nondeterminism (the adversary may withhold rewards) ---")
    print(result.summary())
    print()
    print("Mining 100 rounds is profitable even in the worst case:")
    print(f"  expected total cost is between {result.lower.value:.2f} "
          f"and {result.upper.value:.2f} (negative = net reward)")
    print()

    # The [74]-style baseline requires nonnegative costs: rewards break it.
    try:
        baseline_upper_bound(bench.cfg, bench.invariant_map(), bench.init)
    except UnsupportedProgramError as exc:
        print(f"[74] baseline refuses this program: {exc}")
    print()

    # Table 5: resolve ties with a fair coin instead -> simulable.
    variant = repro.replace_nondet(bench.program, prob=0.5)
    cfg = repro.build_cfg(variant)
    prob_result = repro.analyze(
        variant, init={"x": 100}, invariants=bench.invariant_map(), degree=1
    )
    stats = repro.simulate(cfg, {"x": 100}, runs=2000, seed=0)
    print("--- nondeterminism replaced by prob(0.5) (Table 5) ---")
    print(f"upper bound    : {prob_result.upper.value:.2f}")
    print(f"lower bound    : {prob_result.lower.value:.2f}")
    print(f"simulated mean : {stats.mean:.2f} (std {stats.std:.2f})")


if __name__ == "__main__":
    main()
