#!/usr/bin/env python3
"""Fork-join queuing network: unbounded, state-dependent costs.

Reproduces the paper's Section 3.3 example (Figure 6): a two-processor
fork-join network where each arriving job is split across queues and
the cost of a job is the length of the longest queue — a cost that is
*unbounded* and grows with the state, which prior approaches [74]
could not express.

The analysis synthesizes degree-3 polynomial upper and lower bounds on
the expected total processing time over an ``n``-step horizon and
compares them with simulation across several horizons.

Run:  python examples/queuing_network.py
"""

import repro
from repro.programs import get_benchmark


def main() -> None:
    bench = get_benchmark("queuing_network")
    print(bench.title)
    print()

    print(f"{'horizon n':>10} {'PLCS lower':>12} {'sim mean':>10} {'PUCS upper':>12}")
    for n in (80.0, 160.0, 240.0, 320.0):
        init = {"l1": 0.0, "l2": 0.0, "i": 1.0, "n": n}
        result = bench.analyze(init=init)
        stats = repro.simulate(bench.cfg, init, runs=300, seed=0)
        print(
            f"{n:>10.0f} {result.lower.value:>12.3f} {stats.mean:>10.3f} "
            f"{result.upper.value:>12.3f}"
        )

    result = bench.analyze()
    print()
    print("symbolic bounds at n = 320 (cubic in the queue lengths):")
    print(f"  upper: {result.upper.bound.round(5)}")
    print(f"  lower: {result.lower.bound.round(5)}")
    print()
    print("Interpretation: expected processing-time accrues at a constant")
    print("rate per time step (the linear n - i term); the l1/l2 terms")
    print("account for work already queued at the start.")


if __name__ == "__main__":
    main()
