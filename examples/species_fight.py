#!/usr/bin/env python3
"""Species fight: multiplicative dynamics and the nonnegative-cost regime.

Reproduces the paper's Section 3.4 example (Figure 8): two competing
populations evolve by multiplicative updates (``a := 1.1 * a`` etc.),
consuming one resource unit per individual per time step until one
population collapses below the sustainability threshold.

Multiplicative updates are *unbounded*, so the signed-cost theory of
Section 6.2 does not apply — but the costs are nonnegative, and
Theorem 6.14 (via the Monotone Convergence Theorem, no OST needed)
yields upper bounds from a *nonnegative* PUCS.  No lower bound exists
in this regime, which the pipeline reports honestly.

Run:  python examples/species_fight.py
"""

import repro
from repro.programs import get_benchmark


def main() -> None:
    bench = get_benchmark("species_fight")
    print(bench.title)
    print()

    result = bench.analyze()
    print(result.summary())
    print()
    print(f"paper's reported bound: {bench.paper_upper}")
    print()

    # The synthesized h factors as 40(a - 4.5)(b - 4.5): resource use is
    # governed by the product of the populations.
    print(f"{'a0':>5} {'b0':>5} {'sim mean':>12} {'PUCS upper':>12}")
    for a0, b0 in ((8.0, 8.0), (12.0, 10.0), (16.0, 10.0), (20.0, 20.0)):
        init = {"a": a0, "b": b0}
        res = bench.analyze(init=init)
        stats = repro.simulate(bench.cfg, init, runs=400, seed=0)
        print(f"{a0:>5.0f} {b0:>5.0f} {stats.mean:>12.1f} {res.upper.value:>12.1f}")

    print()
    print("Note the widening gap: Theorem 6.14 gives sound upper bounds,")
    print("but with multiplicative variance the expectation concentrates")
    print("well below the worst case; no PLCS exists in this regime.")
    mode = result.mode
    print(f"regime: {mode.name} (lower bounds available: {mode.lower})")


if __name__ == "__main__":
    main()
