#!/usr/bin/env python3
"""Tour of lower bounds — the capability no previous approach had.

The paper's headline novelty (Section 4.4, item 3) is sound *lower*
bounds on the maximal expected cost via PLCS submartingales.  This tour
walks through what makes a lower bound work:

1. a program where PUCS and PLCS meet, pinning the exact expected cost;
2. how the PLCS handles nondeterminism by enumerating branch policies;
3. how certificates are validated pointwise along simulated runs
   (conditions (C3)/(C3') of Definitions 6.5/6.7, evaluated exactly).

Run:  python examples/lower_bounds_tour.py
"""

import repro
from repro.analysis import check_cost_martingale
from repro.core import synthesize_plcs, synthesize_pucs
from repro.invariants import InvariantMap


def exact_cost_program() -> None:
    print("=" * 66)
    print("1. The running example (Figure 2): bounds that meet")
    print("=" * 66)
    source = """
    var x, y;
    sample r  ~ discrete(1: 0.25, -1: 0.75);
    sample r2 ~ discrete(1: 0.6666666666666667, -1: 0.3333333333333333);
    while x >= 1 do
        x := x + r;
        y := r2;
        tick(x * y)
    od
    """
    result = repro.analyze(
        source,
        init={"x": 100, "y": 0},
        invariants={
            1: "x >= 0",
            2: "x >= 1",
            3: "x >= 0 and y + 1 >= 0 and 1 - y >= 0",
            4: "x >= 0 and y + 1 >= 0 and 1 - y >= 0",
        },
    )
    print(f"upper: {result.upper.bound.round(6)}   -> {result.upper.value:.4f}")
    print(f"lower: {result.lower.bound.round(6)} -> {result.lower.value:.4f}")
    gap = result.upper.value - result.lower.value
    print(f"gap: {gap:.4f}  (the expected cost is x^2/3 + x/3, known exactly)")
    print()


def nondet_policies() -> None:
    print("=" * 66)
    print("2. Lower bounds under nondeterminism: policy enumeration")
    print("=" * 66)
    source = """
    var x;
    while x >= 1 do
        x := x - 1;
        if * then tick(3) else tick(1) fi
    od
    """
    prog = repro.parse_program(source)
    cfg = repro.build_cfg(prog)
    inv = InvariantMap.from_strings(cfg, {i: "x >= 0" for i in range(1, 6)})
    inv.set(2, "x >= 1")

    ub = synthesize_pucs(cfg, inv, {"x": 10}, degree=1)
    lb = synthesize_plcs(cfg, inv, {"x": 10}, degree=1)
    print(f"PUCS (demonic max over branches): {ub.bound.round(4)} -> {ub.value:g}")
    print(f"PLCS (best single policy):        {lb.bound.round(4)} -> {lb.value:g}")
    print(f"policy chosen per nondet label:   {lb.nondet_choices}")
    (nd,) = cfg.nondet_labels()
    forced = synthesize_plcs(cfg, inv, {"x": 10}, degree=1, nondet_choices={nd.id: 1})
    print(f"PLCS forced onto the cheap branch: {forced.bound.round(4)} -> {forced.value:g}")
    print()


def certificate_validation() -> None:
    print("=" * 66)
    print("3. Validating certificates pointwise (Definition 6.3, exact)")
    print("=" * 66)
    source = """
    var x;
    while x >= 1 do
        x := x + (1, -1) : (0.25, 0.75);
        tick(1)
    od
    """
    prog = repro.parse_program(source)
    cfg = repro.build_cfg(prog)
    inv = InvariantMap.from_strings(cfg, {1: "x >= 0", 2: "x >= 1", 3: "x >= 0"})
    lb = synthesize_plcs(cfg, inv, {"x": 50}, degree=1)
    report = check_cost_martingale(cfg, lb.h, "lower", {"x": 50}, runs=30, seed=0)
    print(f"configurations checked: {report.configurations_checked}")
    print(f"max violation of (C3'): {report.max_violation:.2e}  (<= 0 means the")
    print("submartingale inequality holds with slack at every visited state)")
    assert report.ok()


if __name__ == "__main__":
    exact_cost_program()
    nondet_policies()
    certificate_validation()
