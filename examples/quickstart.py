#!/usr/bin/env python3
"""Quickstart: bound the expected cost of a biased random walk.

The program walks ``x`` down to 0 (step +1 with probability 1/4, -1
with probability 3/4) and ticks one unit of cost per iteration.  The
analysis proves the *exact* expected cost 2x: upper bound ``2x``, lower
bound ``2x - 2``, bracketing the simulated mean.

Run:  python examples/quickstart.py
"""

import repro

SOURCE = """
var x;
while x >= 1 do
    x := x + (1, -1) : (0.25, 0.75);
    tick(1)
od
"""


def main() -> None:
    # One call runs the whole pipeline: parse -> CFG -> invariants ->
    # soundness classification -> PUCS/PLCS synthesis via Handelman + LP.
    result = repro.analyze(
        SOURCE,
        init={"x": 100},
        invariants={1: "x >= 0"},  # the loop-head invariant (Fig. 9 style)
        check_concentration=True,  # certify the OST side condition too
    )
    print(result.summary())
    print()

    # Cross-check against Monte-Carlo simulation.
    cfg = repro.build_cfg(repro.parse_program(SOURCE))
    stats = repro.simulate(cfg, {"x": 100}, runs=2000, seed=0)
    print(f"simulated mean cost : {stats.mean:.2f} (std {stats.std:.2f})")
    print(f"PUCS upper bound    : {result.upper.value:.2f}")
    print(f"PLCS lower bound    : {result.lower.value:.2f}")
    assert result.lower.value - 3 * stats.stderr() <= stats.mean
    assert stats.mean <= result.upper.value + 3 * stats.stderr()
    print("bounds bracket the simulation - OK")


if __name__ == "__main__":
    main()
