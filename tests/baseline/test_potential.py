"""Tests for the [74]-style potential baseline and its envelope."""

import pytest

from repro.baseline import baseline_applicable, baseline_upper_bound
from repro.errors import UnsupportedProgramError
from repro.invariants import InvariantMap
from repro.semantics import build_cfg
from repro.syntax import parse_program


def test_applicable_on_constant_nonneg_costs(rdwalk_cfg, rdwalk_invariants):
    assert baseline_applicable(rdwalk_cfg, rdwalk_invariants)


def test_baseline_matches_pucs_on_its_fragment(rdwalk_cfg, rdwalk_invariants):
    result = baseline_upper_bound(rdwalk_cfg, rdwalk_invariants, {"x": 50}, degree=1)
    assert result.value == pytest.approx(100.0, rel=1e-6)
    assert result.kind == "upper-baseline"


def test_baseline_potential_is_nonnegative(rdwalk_cfg, rdwalk_invariants):
    result = baseline_upper_bound(rdwalk_cfg, rdwalk_invariants, {"x": 50}, degree=1)
    for x in range(0, 100):
        assert result.h[1].evaluate_numeric({"x": float(x)}) >= -1e-7


def test_rejects_negative_costs():
    cfg = build_cfg(parse_program("var x; while x >= 1 do x := x - 1; tick(-1) od"))
    inv = InvariantMap.from_strings(cfg, {1: "x >= 0", 2: "x >= 1", 3: "x >= 0"})
    assert not baseline_applicable(cfg, inv)
    with pytest.raises(UnsupportedProgramError):
        baseline_upper_bound(cfg, inv, {"x": 10}, degree=1)


def test_rejects_variable_costs():
    cfg = build_cfg(parse_program("var x; while x >= 1 do x := x - 1; tick(x) od"))
    inv = InvariantMap.from_strings(cfg, {1: "x >= 0", 2: "x >= 1", 3: "x >= 0"})
    with pytest.raises(UnsupportedProgramError):
        baseline_upper_bound(cfg, inv, {"x": 10}, degree=2)


def test_motivating_examples_outside_fragment():
    """The paper's bitcoin example (negative rewards) defeats [74]."""
    from repro.programs import get_benchmark

    bench = get_benchmark("bitcoin_mining")
    with pytest.raises(UnsupportedProgramError):
        baseline_upper_bound(bench.cfg, bench.invariant_map(), bench.init, degree=1)


def test_baseline_never_beats_pucs():
    """On the shared fragment the baseline is a restriction of PUCS, so
    its optimal bound can never be below the PUCS bound."""
    from repro.core import synthesize_pucs
    from repro.programs import benchmarks_by_category

    for bench in benchmarks_by_category("table2"):
        if not baseline_applicable(bench.cfg, bench.invariant_map()):
            continue
        pucs = synthesize_pucs(bench.cfg, bench.invariant_map(), bench.init, degree=bench.degree)
        base = baseline_upper_bound(bench.cfg, bench.invariant_map(), bench.init, degree=bench.degree)
        assert base.value >= pucs.value - 1e-6
