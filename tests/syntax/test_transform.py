"""Tests for program transformations (Table 5's nondet replacement)."""

from repro.semantics import build_cfg
from repro.syntax import ProbIf, map_statements, parse_program, replace_nondet


def test_replace_nondet_basic():
    prog = parse_program("var x; if * then x := 1 else x := 2 fi", name="p")
    out = replace_nondet(prog, prob=0.5)
    assert isinstance(out.body, ProbIf)
    assert out.body.prob == 0.5
    assert not out.has_nondeterminism()


def test_replace_nondet_leaves_original_untouched():
    prog = parse_program("var x; if * then x := 1 fi")
    replace_nondet(prog)
    assert prog.has_nondeterminism()


def test_replace_nondet_nested():
    prog = parse_program(
        "var x; while x >= 1 do if prob(0.1) then if * then tick(-1) fi fi; x := x - 1 od"
    )
    out = replace_nondet(prog, prob=0.25)
    assert not out.has_nondeterminism()
    probs = [s.prob for s in out.statements() if isinstance(s, ProbIf)]
    assert 0.25 in probs and 0.1 in probs


def test_replace_nondet_preserves_label_numbering():
    prog = parse_program(
        "var x; while x >= 1 do x := x - 1; if * then tick(-5) fi od", name="p"
    )
    cfg1 = build_cfg(prog)
    cfg2 = build_cfg(replace_nondet(prog))
    assert sorted(cfg1.labels) == sorted(cfg2.labels)
    kinds1 = {lid: label.kind for lid, label in cfg1.labels.items()}
    kinds2 = {lid: label.kind for lid, label in cfg2.labels.items()}
    changed = {lid for lid in kinds1 if kinds1[lid] != kinds2[lid]}
    assert all(kinds1[lid] == "nondet" and kinds2[lid] == "prob" for lid in changed)


def test_replace_nondet_name_suffix():
    prog = parse_program("var x; if * then x := 1 fi", name="bench")
    assert replace_nondet(prog).name == "bench-probabilistic"


def test_map_statements_identity():
    prog = parse_program("var x; while x >= 1 do x := x - 1 od")
    out = map_statements(prog.body, lambda s: s)
    assert str(out) == str(prog.body)


def test_map_statements_rewrites_leaves():
    from repro.polynomials import Polynomial
    from repro.syntax import Tick

    prog = parse_program("var x; while x >= 1 do tick(1); x := x - 1 od")

    def double(stmt):
        if isinstance(stmt, Tick):
            return Tick(stmt.cost * 2)
        return stmt

    out = map_statements(prog.body, double)
    costs = [s.cost for s in _walk(out) if isinstance(s, Tick)]
    assert costs == [Polynomial.constant(2.0)]


def _walk(stmt):
    yield stmt
    for child in stmt.children():
        yield from _walk(child)
