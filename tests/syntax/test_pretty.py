"""Pretty-printer round-trip tests."""

import pytest

from repro.semantics import build_cfg, simulate
from repro.syntax import parse_program, pretty

SOURCES = [
    "skip",
    "var x; x := x + 1",
    "var x; tick(2 * x)",
    "var x; while x >= 1 do x := x - 1; tick(1) od",
    "var x; if x >= 0 then x := 1 else x := 2 fi",
    "var x; if prob(0.25) then x := 1 fi",
    "var x; if * then x := 1 else x := 2 fi",
    "var x, y; sample r ~ discrete(1: 0.25, -1: 0.75); x := x + r; y := y - r",
    "var x; sample u ~ uniform(1, 3); while x >= 1 do x := x - u; tick(x) od",
    "var y; y := y + (-1, 0, 1) : (0.5, 0.1, 0.4)",
]


@pytest.mark.parametrize("source", SOURCES)
def test_roundtrip_parses(source):
    prog = parse_program(source)
    reparsed = parse_program(pretty(prog))
    assert reparsed.pvars == prog.pvars
    assert set(reparsed.rvars) == set(prog.rvars)


@pytest.mark.parametrize("source", SOURCES)
def test_roundtrip_same_cfg_shape(source):
    prog = parse_program(source)
    reparsed = parse_program(pretty(prog))
    cfg1, cfg2 = build_cfg(prog), build_cfg(reparsed)
    assert [l.kind for l in cfg1] == [l.kind for l in cfg2]
    assert [l.successors() for l in cfg1] == [l.successors() for l in cfg2]


def test_roundtrip_preserves_semantics():
    source = """
    var x, c;
    while x >= 1 do
        x := x + (1, -1) : (0.25, 0.75);
        tick(1)
    od
    """
    prog = parse_program(source)
    reparsed = parse_program(pretty(prog))
    s1 = simulate(build_cfg(prog), {"x": 10}, runs=300, seed=7)
    s2 = simulate(build_cfg(reparsed), {"x": 10}, runs=300, seed=7)
    assert s1.mean == s2.mean


def test_indentation_nested():
    prog = parse_program("var x; while x >= 1 do if prob(0.5) then x := x - 1 fi od")
    text = pretty(prog)
    assert "    if prob(0.5) then" in text
    assert "        x := x - 1" in text
