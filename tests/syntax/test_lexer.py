"""Lexer tests."""

import pytest

from repro.errors import ParseError
from repro.syntax.lexer import Token, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind != "eof"]


class TestTokens:
    def test_empty_input(self):
        (tok,) = tokenize("")
        assert tok.kind == "eof"

    def test_keywords_vs_identifiers(self):
        toks = tokenize("while xwhile")
        assert toks[0].kind == "keyword"
        assert toks[1].kind == "ident"

    def test_numbers(self):
        toks = tokenize("42 3.14 0.5")
        assert [t.text for t in toks[:-1]] == ["42", "3.14", "0.5"]
        assert all(t.kind == "number" for t in toks[:-1])

    def test_leading_dot_number(self):
        assert tokenize(".5")[0].text == ".5"

    def test_trailing_dot_rejected(self):
        with pytest.raises(ParseError):
            tokenize("3.")

    def test_assign_vs_colon(self):
        assert texts("x := 1 : 2") == ["x", ":=", "1", ":", "2"]

    def test_comparison_operators(self):
        assert texts("<= >= < > ==") == ["<=", ">=", "<", ">", "=="]

    def test_comments_skipped(self):
        assert texts("x # a comment\ny") == ["x", "y"]

    def test_underscore_identifier(self):
        toks = tokenize("__d0")
        assert toks[0].kind == "ident"
        assert toks[0].text == "__d0"

    def test_line_and_column_tracking(self):
        toks = tokenize("x\n  y")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_illegal_character(self):
        with pytest.raises(ParseError) as excinfo:
            tokenize("x @ y")
        assert excinfo.value.line == 1

    def test_star_token(self):
        assert texts("if * then") == ["if", "*", "then"]

    def test_tilde(self):
        assert "~" in texts("r ~ uniform(0, 1)")

    def test_token_str(self):
        assert str(Token("ident", "foo", 1, 1)) == "foo"
