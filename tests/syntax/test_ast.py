"""AST tests: boolean normal forms, statement helpers, validation."""

import pytest

from repro.errors import SemanticsError
from repro.polynomials import Polynomial
from repro.syntax import (
    And,
    Assign,
    Atom,
    BoolConst,
    Not,
    Or,
    ProbIf,
    Seq,
    Skip,
    Tick,
    parse_condition,
    parse_program,
)

X = Polynomial.variable("x")
Y = Polynomial.variable("y")


class TestAtoms:
    def test_compare_ge(self):
        atom = Atom.compare(X, ">=", Polynomial.constant(1.0))
        assert atom.evaluate({"x": 1.0})
        assert not atom.strict

    def test_compare_lt_is_strict(self):
        atom = Atom.compare(X, "<", Polynomial.constant(1.0))
        assert atom.strict
        assert atom.evaluate({"x": 0.999})
        assert not atom.evaluate({"x": 1.0})

    def test_negation_flips_strictness(self):
        atom = Atom(X, strict=False)  # x >= 0
        neg = atom.negate()  # -x > 0
        assert neg.strict
        assert neg.evaluate({"x": -1.0})
        assert not neg.evaluate({"x": 0.0})

    def test_double_negation_semantics(self):
        atom = Atom(X, strict=False)
        for v in (-1.0, 0.0, 1.0):
            assert atom.negate().negate().evaluate({"x": v}) == atom.evaluate({"x": v})

    def test_relaxed(self):
        assert not Atom(X, strict=True).relaxed().strict

    def test_unsupported_operator(self):
        with pytest.raises(SemanticsError):
            Atom.compare(X, "!=", Y)


class TestNormalForms:
    def test_atom_dnf(self):
        assert Atom(X).to_dnf() == [[Atom(X)]]

    def test_and_dnf(self):
        dnf = And(Atom(X), Atom(Y)).to_dnf()
        assert len(dnf) == 1
        assert len(dnf[0]) == 2

    def test_or_dnf(self):
        dnf = Or(Atom(X), Atom(Y)).to_dnf()
        assert len(dnf) == 2

    def test_demorgan(self):
        # not (x >= 0 and y >= 0) == (x < 0) or (y < 0): two disjuncts.
        cond = And(Atom(X), Atom(Y))
        dnf = cond.negate().to_dnf()
        assert len(dnf) == 2

    def test_distribution(self):
        # (a or b) and (c or d) has 4 disjuncts.
        cond = And(Or(Atom(X), Atom(Y)), Or(Atom(X + 1), Atom(Y + 1)))
        assert len(cond.to_dnf()) == 4

    def test_not_node_normalizes(self):
        cond = Not(And(Atom(X), Atom(Y)))
        assert len(cond.to_dnf()) == 2

    def test_bool_const_dnf(self):
        assert BoolConst(True).to_dnf() == [[]]
        assert BoolConst(False).to_dnf() == []

    def test_negation_agrees_with_evaluation(self):
        cond = parse_condition("(x >= 1 and y >= 2) or x >= 5")
        neg = cond.negate()
        for x in (-1.0, 1.0, 3.0, 5.0):
            for y in (0.0, 2.0, 4.0):
                v = {"x": x, "y": y}
                assert neg.evaluate(v) == (not cond.evaluate(v))

    def test_dnf_agrees_with_evaluation(self):
        cond = parse_condition("(x >= 1 or y >= 2) and x <= 4")
        for x in (0.0, 1.0, 4.0, 5.0):
            for y in (0.0, 3.0):
                v = {"x": x, "y": y}
                dnf_value = any(all(a.evaluate(v) for a in conj) for conj in cond.to_dnf())
                assert dnf_value == cond.evaluate(v)


class TestStatements:
    def test_seq_smart_constructor_flattens(self):
        s = Seq.of(Skip(), Seq.of(Assign("x", X), Tick(X)), Skip())
        assert isinstance(s, Seq)
        assert len(s.stmts) == 4

    def test_seq_of_one_statement(self):
        assert isinstance(Seq.of(Tick(X)), Tick)

    def test_seq_of_nothing_is_skip(self):
        assert isinstance(Seq.of(), Skip)

    def test_prob_if_range_check(self):
        with pytest.raises(SemanticsError):
            ProbIf(1.2, Skip(), Skip())

    def test_statements_traversal(self):
        prog = parse_program("var x; while x >= 1 do x := x - 1; tick(1) od")
        kinds = [type(s).__name__ for s in prog.statements()]
        assert kinds == ["While", "Seq", "Assign", "Tick"]

    def test_has_nondeterminism(self):
        prog = parse_program("var x; if * then x := 1 fi")
        assert prog.has_nondeterminism()
        prog2 = parse_program("var x; if prob(0.5) then x := 1 fi")
        assert not prog2.has_nondeterminism()

    def test_tick_costs(self):
        prog = parse_program("var x; tick(1); tick(x)")
        assert len(prog.tick_costs()) == 2


class TestProgramValidation:
    def test_overlapping_declarations_rejected(self):
        from repro.semantics.distributions import BernoulliDistribution

        with pytest.raises(SemanticsError):
            from repro.syntax.ast import Program

            Program(pvars=["x"], rvars={"x": BernoulliDistribution(0.5)}, body=Skip())
