"""Parser <-> pretty-printer round-trips over randomly generated ASTs.

The content-addressed result cache keys inline-``source`` requests by
the *parsed* AST, so the frontend must satisfy two properties:

* ``parse(pretty(p))`` is structurally identical to ``p`` (losslessness
  for display-exact programs), and
* ``pretty . parse`` is idempotent — one round of canonicalization is a
  fixed point, so equivalent formattings converge to one form.

Both are exercised here over seeded random programs covering every
statement/condition node, including the ``x^2`` power syntax that
pretty-printed quadratic costs rely on.
"""

import random

import pytest

from repro.polynomials import Monomial, Polynomial
from repro.semantics import build_cfg, simulate
from repro.semantics.distributions import (
    BernoulliDistribution,
    DiscreteDistribution,
    PointDistribution,
    UniformDistribution,
    UniformIntDistribution,
)
from repro.syntax import (
    And,
    Assign,
    Atom,
    BoolConst,
    If,
    NondetIf,
    Not,
    Or,
    ProbIf,
    Program,
    Seq,
    Skip,
    Tick,
    While,
    parse_expression,
    parse_program,
    pretty,
)

PVARS = ["x", "y", "z"]
#: Coefficients/probabilities whose %g rendering is exact, so the
#: printed program carries the same floats as the AST.
COEFFS = [-3.0, -2.0, -1.5, -1.0, -0.5, 0.5, 1.0, 1.5, 2.0, 4.0]
PROBS = [0.125, 0.25, 0.5, 0.75, 0.9]


def _distributions(rng):
    return {
        "r": DiscreteDistribution([1.0, -1.0], [0.25, 0.75]),
        "u": rng.choice(
            [
                UniformDistribution(0.0, 2.0),
                UniformIntDistribution(1, 4),
                BernoulliDistribution(0.5),
                PointDistribution(2.0),
            ]
        ),
    }


def random_poly(rng, variables, max_terms=3, max_exp=2, allow_const=True):
    terms = {}
    for _ in range(rng.randint(1, max_terms)):
        names = rng.sample(variables, rng.randint(0 if allow_const else 1, min(2, len(variables))))
        mono = Monomial({name: rng.randint(1, max_exp) for name in names})
        terms[mono] = terms.get(mono, 0.0) + rng.choice(COEFFS)
    poly = Polynomial(terms)
    # The printer renders the zero polynomial as "0", which parses back
    # to the same zero — but an all-cancelled random draw is replaced to
    # keep the generated programs interesting.
    return poly if poly else Polynomial.variable(rng.choice(variables))


def random_cond(rng, depth=2):
    roll = rng.random()
    if depth == 0 or roll < 0.55:
        return Atom(random_poly(rng, PVARS, max_terms=2), strict=rng.random() < 0.3)
    if roll < 0.7:
        return And(random_cond(rng, depth - 1), random_cond(rng, depth - 1))
    if roll < 0.85:
        return Or(random_cond(rng, depth - 1), random_cond(rng, depth - 1))
    if roll < 0.95:
        return Not(random_cond(rng, depth - 1))
    return BoolConst(rng.random() < 0.5)


def random_stmt(rng, depth=3):
    roll = rng.random()
    if depth == 0 or roll < 0.35:
        return Assign(rng.choice(PVARS), random_poly(rng, PVARS + ["r"]))
    if roll < 0.5:
        return Tick(random_poly(rng, PVARS, max_terms=2))
    if roll < 0.57:
        return Skip()
    if roll < 0.67:
        return If(random_cond(rng), random_stmt(rng, depth - 1), random_stmt(rng, depth - 1))
    if roll < 0.75:
        # Else branch sometimes Skip: the printer omits it, the parser
        # defaults it back in.
        else_branch = Skip() if rng.random() < 0.5 else random_stmt(rng, depth - 1)
        return ProbIf(rng.choice(PROBS), random_stmt(rng, depth - 1), else_branch)
    if roll < 0.83:
        return NondetIf(random_stmt(rng, depth - 1), random_stmt(rng, depth - 1))
    if roll < 0.91:
        return While(random_cond(rng), random_stmt(rng, depth - 1))
    return Seq.of(*(random_stmt(rng, depth - 1) for _ in range(rng.randint(2, 3))))


def random_program(seed):
    rng = random.Random(seed)
    return Program(
        pvars=list(PVARS),
        rvars=_distributions(rng),
        body=Seq.of(*(random_stmt(rng) for _ in range(rng.randint(1, 3)))),
        name=f"random-{seed}",
    )


SEEDS = list(range(60))


class TestRandomRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_parse_pretty_is_structurally_lossless(self, seed):
        program = random_program(seed)
        reparsed = parse_program(pretty(program))
        assert reparsed.pvars == program.pvars
        assert repr(reparsed.rvars) == repr(program.rvars)
        assert reparsed.body == program.body

    @pytest.mark.parametrize("seed", SEEDS)
    def test_pretty_parse_idempotent(self, seed):
        text = pretty(random_program(seed))
        assert pretty(parse_program(text)) == text

    @pytest.mark.parametrize("seed", SEEDS[:20])
    def test_cfg_shape_preserved(self, seed):
        program = random_program(seed)
        reparsed = parse_program(pretty(program))
        cfg1, cfg2 = build_cfg(program), build_cfg(reparsed)
        assert [label.kind for label in cfg1] == [label.kind for label in cfg2]
        assert [label.successors() for label in cfg1] == [label.successors() for label in cfg2]

    @pytest.mark.parametrize("seed", SEEDS[:10])
    def test_cache_keys_identical_across_reformatting(self, seed):
        from repro.batch import AnalysisRequest
        from repro.cache import request_key

        program = random_program(seed)
        if program.has_nondeterminism():
            pytest.skip("key equality for nondet variants covered in cache tests")
        text = pretty(program)
        # Same program with scrambled whitespace and a comment.
        noisy = "# preamble comment\n" + text.replace("    ", "\t ") + "\n"
        base = AnalysisRequest(source=text, init={}, degree=1, compute_lower=False)
        reformatted = AnalysisRequest(source=noisy, init={}, degree=1, compute_lower=False)
        assert request_key(base) == request_key(reformatted)


class TestPowerSyntax:
    """The printer emits x^2 for quadratic costs; the grammar accepts it."""

    def test_power_parses(self):
        assert parse_expression("x^2") == parse_expression("x * x")
        assert parse_expression("2*x^3*y^2") == parse_expression("2 * x*x*x * y*y")
        assert parse_expression("x^0") == parse_expression("1")

    def test_power_binds_tighter_than_unary_minus(self):
        assert parse_expression("-x^2") == -parse_expression("x^2")

    def test_parenthesized_base(self):
        assert parse_expression("(x + 1)^2") == parse_expression("x^2 + 2*x + 1")

    def test_fractional_exponent_rejected(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            parse_expression("x^1.5")

    def test_chained_exponent_rejected_as_ambiguous(self):
        # 2^3^2 is 512 right-associatively, 64 left-to-right; the
        # grammar refuses to pick silently.
        from repro.errors import ParseError

        with pytest.raises(ParseError, match="parenthesize"):
            parse_expression("2^3^2")
        assert parse_expression("(x^2)^3") == parse_expression("x^6")

    def test_quadratic_program_round_trips(self):
        program = parse_program("var x, y;\ntick(4.5*x^2 + 7.5*x*y)")
        reparsed = parse_program(pretty(program))
        assert reparsed.body == program.body

    def test_roundtrip_preserves_semantics_with_powers(self):
        source = """
        var x;
        while x >= 1 do
            x := x - 1;
            tick(x^2)
        od
        """
        program = parse_program(source)
        reparsed = parse_program(pretty(program))
        s1 = simulate(build_cfg(program), {"x": 12}, runs=50, seed=3)
        s2 = simulate(build_cfg(reparsed), {"x": 12}, runs=50, seed=3)
        assert s1.mean == s2.mean
