"""Parser tests over the Figure 1 grammar."""

import pytest

from repro.errors import ParseError, SemanticsError
from repro.polynomials import Polynomial
from repro.semantics.distributions import (
    BernoulliDistribution,
    BinomialDistribution,
    DiscreteDistribution,
    PointDistribution,
    UniformDistribution,
    UniformIntDistribution,
)
from repro.syntax import (
    Assign,
    If,
    NondetIf,
    ProbIf,
    Seq,
    Skip,
    Tick,
    While,
    parse_condition,
    parse_expression,
    parse_program,
)


class TestExpressions:
    def test_constant(self):
        assert parse_expression("42") == Polynomial.constant(42.0)

    def test_precedence(self):
        assert parse_expression("1 + 2 * 3") == Polynomial.constant(7.0)

    def test_parentheses(self):
        assert parse_expression("(1 + 2) * 3") == Polynomial.constant(9.0)

    def test_unary_minus(self):
        assert parse_expression("-x") == -Polynomial.variable("x")

    def test_double_negation(self):
        assert parse_expression("--x") == Polynomial.variable("x")

    def test_subtraction_left_associative(self):
        assert parse_expression("10 - 2 - 3") == Polynomial.constant(5.0)

    def test_polynomial_expression(self):
        x = Polynomial.variable("x")
        assert parse_expression("x * x + 2 * x + 1") == x * x + 2 * x + 1

    def test_junk_after_expression_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("x + ")


class TestConditions:
    def test_comparison_normalization(self):
        cond = parse_condition("x >= 1")
        assert cond.evaluate({"x": 1.0})
        assert not cond.evaluate({"x": 0.0})

    def test_strict_comparison(self):
        cond = parse_condition("x > 1")
        assert not cond.evaluate({"x": 1.0})

    def test_and_or_precedence(self):
        cond = parse_condition("x >= 1 and y >= 1 or z >= 1")
        assert cond.evaluate({"x": 0.0, "y": 0.0, "z": 2.0})
        assert cond.evaluate({"x": 1.0, "y": 1.0, "z": 0.0})

    def test_not(self):
        cond = parse_condition("not x >= 1")
        assert cond.evaluate({"x": 0.0})

    def test_equality_becomes_conjunction(self):
        cond = parse_condition("x == 2")
        assert cond.evaluate({"x": 2.0})
        assert not cond.evaluate({"x": 1.0})

    def test_parenthesized_condition(self):
        cond = parse_condition("(x >= 1 or y >= 1) and z >= 0")
        assert cond.evaluate({"x": 2.0, "y": 0.0, "z": 0.0})

    def test_true_false_literals(self):
        assert parse_condition("true").evaluate({})
        assert not parse_condition("false").evaluate({})


class TestDeclarations:
    def test_var_list(self):
        prog = parse_program("var x, y, z; skip")
        assert prog.pvars == ["x", "y", "z"]

    def test_discrete(self):
        prog = parse_program("var x; sample r ~ discrete(1: 0.25, -1: 0.75); x := r")
        assert isinstance(prog.rvars["r"], DiscreteDistribution)
        assert prog.rvars["r"].mean() == pytest.approx(-0.5)

    def test_uniform(self):
        prog = parse_program("var x; sample r ~ uniform(1, 3); x := r")
        assert isinstance(prog.rvars["r"], UniformDistribution)

    def test_unifint(self):
        prog = parse_program("var x; sample r ~ unifint(1, 10); x := r")
        assert isinstance(prog.rvars["r"], UniformIntDistribution)

    def test_bernoulli_binomial_point(self):
        prog = parse_program(
            "var x; sample a ~ bernoulli(0.5); sample b ~ binomial(4, 0.5); "
            "sample c ~ point(2); x := a + b + c"
        )
        assert isinstance(prog.rvars["a"], BernoulliDistribution)
        assert isinstance(prog.rvars["b"], BinomialDistribution)
        assert isinstance(prog.rvars["c"], PointDistribution)

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(ParseError):
            parse_program("var x, x; skip")

    def test_bad_probabilities_rejected(self):
        with pytest.raises(ParseError):
            parse_program("var x; sample r ~ discrete(1: 0.5, 2: 0.4); x := r")


class TestStatements:
    def test_skip(self):
        assert isinstance(parse_program("skip").body, Skip)

    def test_assignment(self):
        body = parse_program("var x; x := x + 1").body
        assert isinstance(body, Assign)
        assert body.var == "x"

    def test_tick(self):
        body = parse_program("var x; tick(2 * x)").body
        assert isinstance(body, Tick)

    def test_sequence_flattening(self):
        body = parse_program("var x; x := 1; x := 2; x := 3").body
        assert isinstance(body, Seq)
        assert len(body.stmts) == 3

    def test_trailing_semicolon_before_od(self):
        prog = parse_program("var x; while x >= 1 do x := x - 1; od")
        assert isinstance(prog.body, While)

    def test_if_without_else(self):
        body = parse_program("var x; if x >= 0 then x := 1 fi").body
        assert isinstance(body, If)
        assert isinstance(body.else_branch, Skip)

    def test_if_with_else(self):
        body = parse_program("var x; if x >= 0 then x := 1 else x := 2 fi").body
        assert isinstance(body.else_branch, Assign)

    def test_prob_if(self):
        body = parse_program("var x; if prob(0.3) then x := 1 fi").body
        assert isinstance(body, ProbIf)
        assert body.prob == pytest.approx(0.3)

    def test_prob_out_of_range_rejected(self):
        with pytest.raises((ParseError, SemanticsError)):
            parse_program("var x; if prob(1.5) then x := 1 fi")

    def test_nondet_if(self):
        body = parse_program("var x; if * then x := 1 else x := 2 fi").body
        assert isinstance(body, NondetIf)

    def test_nested_while(self):
        prog = parse_program(
            "var i, j; while i >= 1 do j := i; while j >= 1 do j := j - 1 od; i := i - 1 od"
        )
        assert isinstance(prog.body, While)
        assert isinstance(prog.body.body, Seq)


class TestInlineDistributions:
    def test_basic(self):
        prog = parse_program("var y; y := y + (-1, 0, 1) : (0.5, 0.1, 0.4)")
        assert len(prog.rvars) == 1
        (dist,) = prog.rvars.values()
        assert dist.mean() == pytest.approx(-0.1)

    def test_parenthesized_expression_not_confused(self):
        prog = parse_program("var x, y; x := (x + y) * 2")
        assert not prog.rvars

    def test_two_inline_distributions_get_fresh_names(self):
        prog = parse_program("var x; x := (0, 1) : (0.5, 0.5) + (1, 2) : (0.5, 0.5)")
        assert len(prog.rvars) == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ParseError):
            parse_program("var x; x := x + (0, 1) : (0.5, 0.25, 0.25)")


class TestValidation:
    def test_undeclared_variable_rejected(self):
        with pytest.raises(SemanticsError):
            parse_program("var x; x := q + 1")

    def test_assignment_to_sampling_variable_rejected(self):
        with pytest.raises(SemanticsError):
            parse_program("var x; sample r ~ bernoulli(0.5); r := 1")

    def test_sampling_variable_in_guard_rejected(self):
        with pytest.raises(SemanticsError):
            parse_program("var x; sample r ~ bernoulli(0.5); while r >= 0 do skip od")

    def test_sampling_variable_in_tick_rejected(self):
        with pytest.raises(SemanticsError):
            parse_program("var x; sample r ~ bernoulli(0.5); tick(r)")

    def test_figure2_parses(self):
        from tests.conftest import FIGURE2_SOURCE

        prog = parse_program(FIGURE2_SOURCE)
        assert prog.pvars == ["x", "y"]
        assert set(prog.rvars) == {"r", "r2"}
