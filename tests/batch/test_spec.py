"""AnalysisRequest/AnalysisReport model and spec-file expansion tests."""

import json

import pytest

from repro.batch import AnalysisReport, AnalysisRequest, load_spec, requests_from_spec
from repro.programs import benchmarks_by_category, get_benchmark, probabilistic_variant


class TestRequestModel:
    def test_round_trip(self):
        request = AnalysisRequest(
            benchmark="rdwalk",
            init={"n": 50.0},
            degree="auto",
            max_degree=3,
            simulate_runs=100,
            timeout_s=30.0,
            tag="t1",
        )
        clone = AnalysisRequest.from_dict(request.to_dict())
        assert clone == request

    def test_round_trip_through_json(self):
        request = AnalysisRequest(
            source="var x; tick(1)", name="tiny", invariants={1: "x >= 0"}, init={"x": 1.0}
        )
        clone = AnalysisRequest.from_dict(json.loads(json.dumps(request.to_dict())))
        assert clone == request
        assert list(clone.invariants) == [1]  # keys back to ints

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown request field"):
            AnalysisRequest.from_dict({"benchmark": "rdwalk", "wat": 1})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {},  # neither benchmark nor source
            {"benchmark": "a", "source": "var x; tick(1)"},  # both
            {"benchmark": "a", "degree": 0},
            {"benchmark": "a", "degree": "wat"},
            {"benchmark": "a", "mode": "sideways"},
            {"benchmark": "a", "nondet_prob": 1.5},
            {"benchmark": "a", "simulate_runs": 0},
            {"benchmark": "a", "timeout_s": -1.0},
        ],
    )
    def test_validate_rejects(self, kwargs):
        with pytest.raises(ValueError):
            AnalysisRequest(**kwargs).validate()

    def test_report_round_trip(self):
        report = AnalysisReport(
            name="x", status="ok", degree=2, degrees_tried=[1, 2], upper_value=3.0
        )
        assert AnalysisReport.from_dict(report.to_dict()) == report
        assert report.ok

    def test_for_benchmark_registry_reference(self):
        bench = get_benchmark("rdwalk")
        request = AnalysisRequest.for_benchmark(bench, init={"n": 10.0})
        assert request.benchmark == "rdwalk"
        assert request.source is None

    def test_for_benchmark_adhoc_embeds_source(self):
        variant = probabilistic_variant(get_benchmark("bitcoin_mining"))
        request = AnalysisRequest.for_benchmark(variant)
        assert request.benchmark is None
        assert request.name == "bitcoin_mining_prob"
        assert "prob(0.0005)" in request.source
        assert request.degree == variant.degree
        assert request.invariants  # carried over as plain strings

    def test_for_benchmark_resolves_init_invariants(self):
        bench = get_benchmark("goods_discount")
        assert bench.init_invariants is not None
        import dataclasses

        adhoc = dataclasses.replace(bench, name="goods_copy")
        request = AnalysisRequest.for_benchmark(adhoc, init=dict(bench.init))
        # The init-dependent relation is baked into the string invariants.
        assert any("n + d >=" in cond for cond in request.invariants.values())
        json.dumps(request.to_dict())  # still serializable


class TestSpecExpansion:
    def test_plain_list(self):
        requests = requests_from_spec([{"benchmark": "rdwalk"}, {"benchmark": "ber"}])
        assert [r.benchmark for r in requests] == ["rdwalk", "ber"]

    def test_defaults_merge_and_override(self):
        spec = {
            "defaults": {"degree": "auto", "timeout_s": 5.0},
            "tasks": [{"benchmark": "rdwalk"}, {"benchmark": "ber", "degree": 1}],
        }
        first, second = requests_from_spec(spec)
        assert first.degree == "auto" and first.timeout_s == 5.0
        assert second.degree == 1 and second.timeout_s == 5.0

    def test_suite_expansion_counts(self):
        requests = requests_from_spec({"tasks": [{"suite": "table2"}]})
        assert len(requests) == len(benchmarks_by_category("table2")) == 15
        assert all(r.benchmark is not None for r in requests)

    def test_table5_suite_sets_nondet_prob(self):
        requests = requests_from_spec({"tasks": [{"suite": "table5"}]})
        by_name = {r.benchmark: r for r in requests}
        assert by_name["bitcoin_mining"].nondet_prob == 0.5
        assert by_name["simple_loop"].nondet_prob is None

    def test_all_inits_expansion(self):
        bench = get_benchmark("bitcoin_mining")
        requests = requests_from_spec(
            {"tasks": [{"suite": "table3", "all_inits": True}]}
        )
        mining = [r for r in requests if r.benchmark == "bitcoin_mining"]
        assert len(mining) == len(bench.all_inits()) == 3
        assert all(r.init is not None for r in mining)

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError, match="tasks"):
            requests_from_spec({"defaults": {}})
        with pytest.raises(ValueError, match="unknown suite"):
            requests_from_spec({"tasks": [{"suite": "table9"}]})
        with pytest.raises(ValueError):
            requests_from_spec("not a spec")

    def test_load_spec_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"tasks": [{"benchmark": "rdwalk", "degree": 1}]}))
        (request,) = load_spec(str(path))
        assert request.benchmark == "rdwalk"
        assert request.degree == 1


class TestSpecConflicts:
    def test_suite_in_defaults_rejected(self):
        with pytest.raises(ValueError, match="not allowed in defaults"):
            requests_from_spec({"defaults": {"suite": "table2"}, "tasks": [{"benchmark": "rdwalk"}]})

    def test_suite_with_explicit_benchmark_rejected(self):
        with pytest.raises(ValueError, match="conflicts"):
            requests_from_spec({"tasks": [{"suite": "table2", "benchmark": "rdwalk"}]})
