"""Engine x cache integration: warm re-runs must short-circuit.

The acceptance bar for the cache layer: re-running the *full*
``examples/batch_spec.json`` batch against a warm store returns
byte-identical reports while performing **zero** synthesis LP solves
(``execute_request`` is never reached — every task is a cache hit).
"""

import json
from pathlib import Path

import pytest

import repro.batch.engine as engine
from repro.batch import AnalysisRequest, load_spec, run_batch
from repro.cache import ResultCache

SPEC_PATH = Path(__file__).resolve().parent.parent.parent / "examples" / "batch_spec.json"


def _dumps(report):
    # Deliberately NOT sort_keys: byte-identical means identical dict
    # key order too (the CLI's --output JSON is written unsorted).
    return json.dumps(report.to_dict())


class TestWarmRerunAcceptance:
    @pytest.fixture(scope="class")
    def warm_store(self, tmp_path_factory):
        cache = ResultCache(tmp_path_factory.mktemp("store"))
        requests = load_spec(str(SPEC_PATH))
        cold = run_batch(requests, cache=cache)
        return cache, requests, cold

    def test_cold_run_populates(self, warm_store):
        cache, requests, cold = warm_store
        assert all(report.ok for report in cold)
        stats = cache.stats()
        assert stats.hits == 0
        assert stats.stores == len(requests)
        assert stats.entries == len(requests)

    def test_warm_rerun_byte_identical_with_zero_solves(self, warm_store, monkeypatch):
        cache, _, cold = warm_store

        def _boom(request):
            raise AssertionError(f"synthesis executed on a warm cache: {request.display_name}")

        monkeypatch.setattr(engine, "execute_request", _boom)
        hits_before = cache.stats().hits
        warm = run_batch(load_spec(str(SPEC_PATH)), cache=cache)
        assert cache.stats().hits - hits_before == len(warm)
        assert [_dumps(r) for r in warm] == [_dumps(r) for r in cold]

    def test_warm_parallel_rerun_hits_shared_store(self, warm_store):
        cache, _, cold = warm_store
        # A fresh parent instance over the same root, fanning out over a
        # pool: workers consult the shared disk store.
        parent = ResultCache(cache.root)
        warm = run_batch(load_spec(str(SPEC_PATH)), jobs=2, cache=parent)
        assert parent.stats().hits == len(warm)
        assert [_dumps(r) for r in warm] == [_dumps(r) for r in cold]


class TestEngineCacheSemantics:
    def test_parallel_cold_run_populates_for_sequential_warm(self, tmp_path):
        cache = ResultCache(tmp_path)
        requests = [AnalysisRequest(benchmark=name) for name in ("rdwalk", "ber", "linear01")]
        cold = run_batch(requests, jobs=2, cache=cache)
        # Worker-side stores fold into the parent counters too.
        assert cache.stats().misses == 3
        assert cache.stats().stores == 3
        warm = run_batch(
            [AnalysisRequest(benchmark=name) for name in ("rdwalk", "ber", "linear01")],
            cache=cache,
        )
        assert cache.stats().hits == 3
        assert [_dumps(r) for r in warm] == [_dumps(r) for r in cold]

    def test_error_reports_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        bad = AnalysisRequest(source="var x; while x >= 1 do", init={})
        first = run_batch([bad], cache=cache)[0]
        second = run_batch([AnalysisRequest(source="var x; while x >= 1 do", init={})], cache=cache)[0]
        assert first.status == "error" and second.status == "error"
        assert cache.stats().hits == 0
        assert cache.stats().entries == 0

    def test_unknown_benchmark_bypasses_cache_and_reports_error(self, tmp_path):
        cache = ResultCache(tmp_path)
        report = run_batch([AnalysisRequest(benchmark="rdwlk")], cache=cache)[0]
        assert report.status == "error"
        assert "did you mean" in report.error
        assert cache.stats().entries == 0

    def test_no_cache_is_the_default(self, monkeypatch):
        # run_batch without `cache` must never touch a store.
        called = []

        def _no_store(*args, **kwargs):  # pragma: no cover - guard only
            called.append(args)

        monkeypatch.setattr(engine, "_worker_cache", _no_store)
        reports = run_batch([AnalysisRequest(benchmark="rdwalk")])
        assert reports[0].ok
        assert not called

    def test_custom_name_does_not_poison_later_unnamed_hits(self, tmp_path):
        # name/tag are excluded from the key; a hit must re-derive them
        # for the incoming request, not inherit the storing request's.
        cache = ResultCache(tmp_path)
        named = run_batch(
            [AnalysisRequest(benchmark="rdwalk", name="custom-label", tag="first")],
            cache=cache,
        )[0]
        assert named.name == "custom-label"
        plain = run_batch([AnalysisRequest(benchmark="rdwalk")], cache=cache)[0]
        assert cache.stats().hits == 1
        assert plain.name == "rdwalk"
        assert plain.tag is None

    def test_variant_name_restored_on_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_batch(
            [AnalysisRequest(benchmark="bitcoin_mining", nondet_prob=0.5, name="aliased")],
            cache=cache,
        )
        hit = run_batch(
            [AnalysisRequest(benchmark="bitcoin_mining", nondet_prob=0.5)], cache=cache
        )[0]
        assert cache.stats().hits == 1
        assert hit.name == "bitcoin_mining_prob"

    def test_uncacheable_tasks_count_nowhere_for_any_jobs(self, tmp_path):
        # Accounting must not depend on --jobs: bypassed (key-less)
        # tasks touch neither the hit nor the miss counter.
        spec = [
            AnalysisRequest(benchmark="rdwlk_typo"),
            AnalysisRequest(benchmark="rdwalk"),
        ]
        sequential = ResultCache(tmp_path / "seq")
        run_batch([AnalysisRequest(**{**r.to_dict()}) for r in spec], cache=sequential)
        pooled = ResultCache(tmp_path / "pool")
        run_batch([AnalysisRequest(**{**r.to_dict()}) for r in spec], jobs=2, cache=pooled)
        seq_stats, pool_stats = sequential.stats(), pooled.stats()
        assert (seq_stats.hits, seq_stats.misses) == (0, 1)
        assert (pool_stats.hits, pool_stats.misses) == (0, 1)

    def test_cached_hit_skips_timeout_budget(self, tmp_path):
        # A warm entry is returned instantly, so a tiny budget that
        # would time out cold cannot fire on the hit path.
        cache = ResultCache(tmp_path)
        warmup = AnalysisRequest(benchmark="bitcoin_pool")
        assert run_batch([warmup], cache=cache)[0].ok
        report = run_batch(
            [AnalysisRequest(benchmark="bitcoin_pool", timeout_s=0.0001)], cache=cache
        )[0]
        assert report.ok
        assert cache.stats().hits == 1
