"""Batch engine tests: execution, escalation, isolation, parallel
equivalence with the sequential drivers."""

import math

import pytest

from repro.batch import AnalysisRequest, execute_request, requests_from_spec, run_batch
from repro.programs import get_benchmark


def _bound_fingerprint(report):
    """Everything that must be invariant across jobs counts (drop the
    timing fields, which legitimately vary run to run)."""
    return (
        report.name,
        report.status,
        report.mode,
        report.degree,
        tuple(report.degrees_tried),
        report.upper_value,
        report.upper_bound,
        report.lower_value,
        report.lower_bound,
        report.policy_enumerated,
        report.sim_mean,
        report.sim_std,
        report.sim_truncated,
        tuple(report.warnings),
        report.error,
    )


class TestExecuteRequest:
    def test_matches_direct_analysis(self):
        bench = get_benchmark("rdwalk")
        report = execute_request(AnalysisRequest(benchmark="rdwalk"))
        direct = bench.analyze()
        assert report.ok
        assert report.upper_value == direct.upper.value
        assert report.lower_value == direct.lower.value
        assert report.upper_bound == str(direct.upper.bound.round(5))
        assert report.degree == bench.degree

    def test_source_request(self):
        report = execute_request(
            AnalysisRequest(
                source="var x;\nwhile x >= 1 do\n x := x - 1;\n tick(1)\nod",
                name="countdown",
                invariants={1: "x >= 0", 2: "x >= 1"},
                init={"x": 9.0},
                degree=1,
            )
        )
        assert report.ok
        assert report.name == "countdown"
        assert report.upper_value == pytest.approx(9.0, rel=1e-6)

    def test_parse_error_captured(self):
        report = execute_request(AnalysisRequest(source="var x; while x >= 1 do"))
        assert report.status == "error"
        assert "ParseError" in report.error

    def test_unknown_benchmark_captured(self):
        report = execute_request(AnalysisRequest(benchmark="no_such_benchmark"))
        assert report.status == "error"
        assert "unknown benchmark" in report.error

    def test_bad_init_captured(self):
        report = execute_request(AnalysisRequest(benchmark="rdwalk", init={"zz": 1.0}))
        assert report.status == "error"
        assert "unknown variable" in report.error

    def test_invalid_request_still_raises(self):
        with pytest.raises(ValueError):
            execute_request(AnalysisRequest())

    def test_timeout_reported(self):
        # A non-terminating simulation with a huge step cap: the task is
        # guaranteed to outlive the budget no matter how warm the
        # synthesis caches are, so the alarm path is exercised reliably.
        report = execute_request(
            AnalysisRequest(
                source="var x;\nwhile x >= 0 do\n x := x + 1;\n tick(1)\nod",
                name="spinner",
                init={"x": 0.0},
                degree=1,
                compute_lower=False,
                simulate_runs=1000,
                simulate_max_steps=100_000_000,
                timeout_s=0.05,
            )
        )
        assert report.status == "timeout"
        assert "0.05" in report.error
        assert report.runtime < 5.0

    def test_timeout_enforced_off_main_thread(self):
        """SIGALRM can't fire on a worker thread; the cooperative
        deadline must still surface status="timeout" there (the
        `repro serve` handler-thread regression)."""
        import threading

        outcome = {}

        def work():
            outcome["report"] = execute_request(
                AnalysisRequest(
                    source="var x;\nwhile x >= 0 do\n x := x + 1;\n tick(1)\nod",
                    name="spinner",
                    init={"x": 0.0},
                    degree=1,
                    compute_lower=False,
                    simulate_runs=1000,
                    simulate_max_steps=100_000_000,
                    timeout_s=0.05,
                )
            )

        thread = threading.Thread(target=work)
        thread.start()
        thread.join(timeout=30)
        report = outcome["report"]
        assert report.status == "timeout"
        assert "0.05" in report.error
        assert report.runtime < 5.0

    def test_tails_attached_to_report(self):
        report = execute_request(
            AnalysisRequest(benchmark="rdwalk", degree=1, tails=True, tail_horizon=1000)
        )
        assert report.ok
        assert report.tail is not None
        assert report.tail["method"] == "azuma-hoeffding"
        assert report.tail["horizon"] == 1000
        assert report.tail["c"] > 0
        assert report.tail["probes"] and all(
            0 < probe["bound"] <= 1 for probe in report.tail["probes"]
        )

    def test_tails_unavailable_is_warning_not_error(self):
        report = execute_request(AnalysisRequest(benchmark="pol04", tails=True))
        assert report.ok
        assert report.tail is None
        assert any("tail bound unavailable" in w for w in report.warnings)

    def test_simulation_fields(self):
        report = execute_request(
            AnalysisRequest(benchmark="rdwalk", simulate_runs=150, simulate_seed=3)
        )
        assert report.ok
        assert report.sim_mean is not None
        assert report.sim_truncated == 0
        assert report.sim_termination_rate == 1.0
        # Simulated mean must respect the synthesized bracket.
        slack = 6 * report.sim_std / math.sqrt(150)
        assert report.lower_value - slack <= report.sim_mean <= report.upper_value + slack

    def test_simulation_truncation_warns(self):
        report = execute_request(
            AnalysisRequest(
                benchmark="rdwalk", simulate_runs=20, simulate_max_steps=5
            )
        )
        assert report.ok
        assert report.sim_truncated == 20
        assert any("truncated" in w for w in report.warnings)

    def test_nondet_simulation_skipped_with_warning(self):
        report = execute_request(
            AnalysisRequest(benchmark="bitcoin_mining", simulate_runs=10)
        )
        assert report.ok
        assert report.sim_mean is None
        assert any("skipped" in w for w in report.warnings)

    def test_nondet_prob_variant(self):
        report = execute_request(
            AnalysisRequest(benchmark="bitcoin_mining", nondet_prob=0.5, simulate_runs=20)
        )
        assert report.ok
        assert report.name == "bitcoin_mining_prob"
        assert report.sim_mean is not None


class TestDegreeEscalation:
    def test_auto_stops_at_minimal_feasible_degree(self):
        # pol04 needs a quadratic template: degree 1 must fail, 2 succeed.
        report = execute_request(AnalysisRequest(benchmark="pol04", degree="auto"))
        assert report.ok
        assert report.degrees_tried == [1, 2]
        assert report.degree == 2
        direct = get_benchmark("pol04").analyze(degree=2)
        assert report.upper_value == direct.upper.value

    def test_auto_stops_immediately_when_degree_one_suffices(self):
        report = execute_request(AnalysisRequest(benchmark="rdwalk", degree="auto"))
        assert report.degrees_tried == [1]
        assert report.degree == 1
        assert report.upper_value is not None and report.lower_value is not None

    def test_auto_exhaustion_warns(self):
        # An unannotated unbounded-update program: no degree works.
        report = execute_request(
            AnalysisRequest(
                source="var x;\nwhile x >= 1 do\n x := x + (1, -1) : (0.9, 0.1);\n tick(1)\nod",
                name="diverging",
                init={"x": 5.0},
                degree="auto",
                max_degree=2,
            )
        )
        assert report.ok  # analysis ran; bounds just are not feasible
        assert report.degrees_tried == [1, 2]
        assert report.upper_value is None
        assert any("escalation exhausted" in w for w in report.warnings)


class TestRunBatch:
    def test_empty(self):
        assert run_batch([]) == []

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            run_batch([AnalysisRequest(benchmark="rdwalk")], jobs=0)

    def test_order_preserved_with_jobs(self):
        names = ["rdwalk", "ber", "linear01", "race", "bin"]
        reports = run_batch([AnalysisRequest(benchmark=n) for n in names], jobs=3)
        assert [r.name for r in reports] == names

    def test_progress_callback_sees_every_report(self):
        seen = []
        run_batch(
            [AnalysisRequest(benchmark="rdwalk"), AnalysisRequest(benchmark="ber")],
            jobs=2,
            progress=seen.append,
        )
        assert sorted(r.name for r in seen) == ["ber", "rdwalk"]

    def test_one_bad_task_does_not_poison_the_pool(self):
        reports = run_batch(
            [
                AnalysisRequest(benchmark="rdwalk"),
                AnalysisRequest(source="var x; while"),
                AnalysisRequest(benchmark="ber"),
            ],
            jobs=2,
        )
        assert [r.status for r in reports] == ["ok", "error", "ok"]


class TestParallelEquivalence:
    """Acceptance: a spec covering the table2+table3+table5 benchmark
    sets yields identical bounds with --jobs 2 and sequentially."""

    @pytest.fixture(scope="class")
    def full_spec_requests(self):
        return requests_from_spec(
            {"tasks": [{"suite": "table2"}, {"suite": "table3"}, {"suite": "table5"}]}
        )

    def test_engine_parallel_equals_sequential(self, full_spec_requests):
        sequential = run_batch(full_spec_requests, jobs=1)
        parallel = run_batch(full_spec_requests, jobs=2)
        assert [_bound_fingerprint(r) for r in parallel] == [
            _bound_fingerprint(r) for r in sequential
        ]
        assert all(r.status in ("ok",) for r in sequential)

    def test_sequential_engine_equals_driver(self):
        """The jobs=1 engine path reproduces direct Benchmark.analyze."""
        for name in ("ber", "simple_loop", "nested_loop"):
            report = execute_request(AnalysisRequest(benchmark=name))
            direct = get_benchmark(name).analyze()
            assert report.upper_value == (direct.upper.value if direct.upper else None)
            assert report.lower_value == (direct.lower.value if direct.lower else None)


class TestSimulationEngines:
    """The simulate_engine knob: wiring, reproducibility across jobs
    counts, and engine-stream separation in the reports."""

    def _request(self, engine, seed=9, runs=128):
        return AnalysisRequest(
            benchmark="rdwalk",
            simulate_runs=runs,
            simulate_seed=seed,
            simulate_engine=engine,
        )

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError):
            self._request("turbo").validate()

    @pytest.mark.parametrize("engine", ["auto", "vectorized", "reference"])
    def test_pool_matches_sequential_bitwise(self, engine):
        requests = [self._request(engine), self._request(engine, seed=10)]
        sequential = run_batch(requests, jobs=1)
        pooled = run_batch(requests, jobs=2)
        assert [(r.sim_mean, r.sim_std) for r in pooled] == [
            (r.sim_mean, r.sim_std) for r in sequential
        ]
        assert all(r.sim_mean is not None for r in sequential)

    def test_vectorized_and_reference_streams_differ(self):
        # Same seed, different engines: statistically equivalent, but
        # deliberately not bitwise equal (different RNG streams) — which
        # is why the engine is part of the cache fingerprint.
        vec = execute_request(self._request("vectorized", runs=1000))
        ref = execute_request(self._request("reference", runs=1000))
        assert vec.sim_mean != ref.sim_mean
        assert vec.sim_mean == pytest.approx(ref.sim_mean, rel=0.1)

    def test_repeat_is_bit_identical_per_engine(self):
        for engine in ("vectorized", "reference"):
            a = execute_request(self._request(engine))
            b = execute_request(self._request(engine))
            assert (a.sim_mean, a.sim_std) == (b.sim_mean, b.sim_std)
