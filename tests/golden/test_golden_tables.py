"""Golden-file regression tests: the drivers must reproduce the
committed table bounds *bitwise*.

These files pin the seed implementation's numbers (synthesized bound
polynomials, LP optimal values, seeded simulation columns).  Any drift
— a solver change, an arithmetic reordering, a stale or corrupted
result-cache entry served through a driver — fails loudly here with a
precise diff.  Regenerate deliberately with
``PYTHONPATH=src python tests/golden/generate_golden.py``.
"""

import json
from pathlib import Path

import pytest

# pytest puts this file's directory on sys.path (no-__init__ layout),
# so the generator is importable directly.
import generate_golden

HERE = Path(__file__).resolve().parent


def _load(name):
    return json.loads((HERE / f"{name}.json").read_text())


def _diff(expected_rows, actual_rows):
    """Human-readable first mismatch (pytest shows dict diffs poorly)."""
    for index, (expected, actual) in enumerate(zip(expected_rows, actual_rows)):
        if expected != actual:
            fields = {
                key for key in set(expected) | set(actual)
                if expected.get(key) != actual.get(key)
            }
            return f"row {index} ({expected.get('benchmark')}): fields {sorted(fields)} differ"
    return f"row count: {len(expected_rows)} expected vs {len(actual_rows)} actual"


@pytest.mark.parametrize(
    "name, build",
    [
        ("table2", generate_golden.table2_payload),
        ("table3", generate_golden.table3_payload),
        ("table5", generate_golden.table5_payload),
        ("table6", generate_golden.table6_payload),
    ],
)
def test_driver_reproduces_golden_bitwise(name, build):
    golden = _load(name)
    current = build()
    assert current["rows"] == golden["rows"], _diff(golden["rows"], current["rows"])
    assert current == golden


def test_golden_files_cover_every_benchmark_row():
    assert len(_load("table2")["rows"]) == 15
    table3 = _load("table3")["rows"]
    assert len(table3) == 10
    # Table 5 expands every Table 3 benchmark over its valuation grid.
    table5 = _load("table5")["rows"]
    assert len(table5) >= len(table3)
    assert any(row["benchmark"].endswith("_prob") for row in table5)
    # Table 6: five extension families, three valuations each.
    table6 = _load("table6")["rows"]
    assert len(table6) == 15
    assert all(row["sim_mean"] is not None for row in table6)


def test_golden_floats_survive_json_round_trip():
    # Bitwise means bitwise: serialize-parse must be the identity on
    # the committed payloads (shortest-repr float round-tripping).
    for name in ("table2", "table3", "table5", "table6"):
        payload = _load(name)
        assert json.loads(json.dumps(payload)) == payload
