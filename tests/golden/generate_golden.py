"""Regenerate the golden table files (run manually, then commit).

Usage::

    PYTHONPATH=src python tests/golden/generate_golden.py

Writes ``table2.json``, ``table3.json``, ``table5.json`` and
``table6.json`` next to
this script.  The golden tests re-run the drivers with the same
parameters and demand *bitwise* equality — floats included — so these
files pin both the synthesized bounds and the seeded Monte-Carlo
columns.  Regenerate only when an intentional change (new solver
version, algorithmic fix) moves the numbers, and say why in the commit.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.table2 import build_table2
from repro.experiments.table3 import build_table3
from repro.experiments.table5 import build_table5
from repro.experiments.table6 import build_table6
from repro.programs import TABLE3_BENCHMARKS

HERE = Path(__file__).resolve().parent

#: Table 5 simulation settings — small enough to keep the golden test
#: quick, seeded so the sim columns are exactly reproducible.
#: bitcoin_pool trajectories are orders of magnitude longer than the
#: rest, so it gets its own tiny run count.
TABLE5_RUNS = 30
TABLE5_RUNS_PER_BENCHMARK = {"bitcoin_pool": 8}
TABLE5_SEED = 0

#: Table 6 simulation settings (same spirit: small, seeded, exact).
TABLE6_RUNS = 60
TABLE6_SEED = 0

SCHEMA = "repro-golden/v1"


def table2_payload() -> dict:
    rows = [
        {
            "benchmark": row.benchmark,
            "baseline_upper": row.baseline_upper,
            "upper": row.our_upper,
            "lower": row.our_lower,
            "upper_value": row.our_upper_value,
            "lower_value": row.our_lower_value,
        }
        for row in build_table2()
    ]
    return {"schema": SCHEMA, "table": "table2", "rows": rows}


def table3_payload() -> dict:
    rows = [
        {
            "benchmark": row.benchmark,
            "init": row.init,
            "upper": row.upper,
            "lower": row.lower,
            "upper_value": row.upper_value,
            "lower_value": row.lower_value,
        }
        for row in build_table3()
    ]
    return {"schema": SCHEMA, "table": "table3", "rows": rows}


def table5_payload() -> dict:
    rows = []
    for bench in TABLE3_BENCHMARKS:
        runs = TABLE5_RUNS_PER_BENCHMARK.get(bench.name, TABLE5_RUNS)
        rows.extend(build_table5(runs=runs, seed=TABLE5_SEED, benchmarks=[bench]))
    serialized = [
        {
            "benchmark": row.benchmark,
            "init": row.init,
            "upper": row.upper_str,
            "lower": row.lower_str,
            "upper_value": row.upper_value,
            "lower_value": row.lower_value,
            "sim_mean": row.sim_mean,
            "sim_std": row.sim_std,
        }
        for row in rows
    ]
    return {
        "schema": SCHEMA,
        "table": "table5",
        "runs": TABLE5_RUNS,
        "runs_per_benchmark": TABLE5_RUNS_PER_BENCHMARK,
        "seed": TABLE5_SEED,
        "rows": serialized,
    }


def table6_payload() -> dict:
    rows = [
        {
            "benchmark": row.benchmark,
            "init": row.init,
            "upper": row.upper_str,
            "lower": row.lower_str,
            "upper_value": row.upper_value,
            "lower_value": row.lower_value,
            "sim_mean": row.sim_mean,
            "sim_std": row.sim_std,
        }
        for row in build_table6(runs=TABLE6_RUNS, seed=TABLE6_SEED)
    ]
    return {
        "schema": SCHEMA,
        "table": "table6",
        "runs": TABLE6_RUNS,
        "seed": TABLE6_SEED,
        "rows": rows,
    }


def main() -> int:
    for name, build in [
        ("table2", table2_payload),
        ("table3", table3_payload),
        ("table5", table5_payload),
        ("table6", table6_payload),
    ]:
        payload = build()
        path = HERE / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path} ({len(payload['rows'])} rows)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
