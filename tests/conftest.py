"""Shared fixtures: the paper's running example and small helper programs."""

from __future__ import annotations

import os

import pytest

from repro import InvariantMap, build_cfg, parse_program


@pytest.fixture(scope="session", autouse=True)
def _isolated_default_cache(tmp_path_factory):
    """Point the default result-cache root at a per-session temp dir.

    Commands that cache by default (``repro batch``/``serve``) would
    otherwise persist entries under ``~/.cache/repro`` across test
    runs, making every second run warm and order-dependent.
    """
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous

FIGURE2_SOURCE = """
var x, y;
sample r  ~ discrete(1: 0.25, -1: 0.75);
sample r2 ~ discrete(1: 0.6666666666666667, -1: 0.3333333333333333);
while x >= 1 do
    x := x + r;
    y := r2;
    tick(x * y)
od
"""

RDWALK_SOURCE = """
var x;
while x >= 1 do
    x := x + (1, -1) : (0.25, 0.75);
    tick(1)
od
"""


@pytest.fixture
def figure2_program():
    return parse_program(FIGURE2_SOURCE, name="figure2")


@pytest.fixture
def figure2_cfg(figure2_program):
    return build_cfg(figure2_program)


@pytest.fixture
def figure2_invariants(figure2_cfg):
    return InvariantMap.from_strings(
        figure2_cfg,
        {
            1: "x >= 0",
            2: "x >= 1",
            3: "x >= 0 and y + 1 >= 0 and 1 - y >= 0",
            4: "x >= 0 and y + 1 >= 0 and 1 - y >= 0",
        },
    )


@pytest.fixture
def rdwalk_program():
    return parse_program(RDWALK_SOURCE, name="rdwalk")


@pytest.fixture
def rdwalk_cfg(rdwalk_program):
    return build_cfg(rdwalk_program)


@pytest.fixture
def rdwalk_invariants(rdwalk_cfg):
    return InvariantMap.from_strings(rdwalk_cfg, {1: "x >= 0", 2: "x >= 1", 3: "x >= 0"})
