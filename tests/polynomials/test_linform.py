"""Tests for affine forms over LP unknowns."""

import pytest

from repro.errors import NonLinearError
from repro.polynomials import LinForm
from repro.polynomials.linform import cadd, cis_zero, cmul, cneg


class TestConstruction:
    def test_constant(self):
        f = LinForm.constant(3.5)
        assert f.is_constant()
        assert f.const == 3.5

    def test_unknown(self):
        f = LinForm.unknown("a")
        assert not f.is_constant()
        assert f.terms == {"a": 1.0}

    def test_zero_coefficients_dropped(self):
        assert LinForm(1.0, {"a": 0.0}).is_constant()

    def test_is_zero(self):
        assert LinForm().is_zero()
        assert not LinForm(1.0).is_zero()
        assert not LinForm.unknown("a").is_zero()


class TestAlgebra:
    def test_add(self):
        f = LinForm(1.0, {"a": 2.0}) + LinForm(2.0, {"a": 1.0, "b": 1.0})
        assert f == LinForm(3.0, {"a": 3.0, "b": 1.0})

    def test_add_scalar(self):
        assert LinForm.unknown("a") + 2 == LinForm(2.0, {"a": 1.0})

    def test_radd(self):
        assert 2 + LinForm.unknown("a") == LinForm(2.0, {"a": 1.0})

    def test_sub(self):
        f = LinForm.unknown("a") - LinForm.unknown("a")
        assert f.is_zero()

    def test_rsub(self):
        assert 1.0 - LinForm.unknown("a") == LinForm(1.0, {"a": -1.0})

    def test_neg(self):
        assert -LinForm(1.0, {"a": 2.0}) == LinForm(-1.0, {"a": -2.0})

    def test_scalar_mul(self):
        assert LinForm(1.0, {"a": 2.0}) * 3 == LinForm(3.0, {"a": 6.0})

    def test_mul_by_constant_linform(self):
        assert LinForm.unknown("a") * LinForm.constant(2.0) == LinForm(0.0, {"a": 2.0})

    def test_symbolic_product_rejected(self):
        with pytest.raises(NonLinearError):
            LinForm.unknown("a") * LinForm.unknown("b")

    def test_division(self):
        assert LinForm(2.0, {"a": 4.0}) / 2 == LinForm(1.0, {"a": 2.0})


class TestEvaluation:
    def test_evaluate(self):
        f = LinForm(1.0, {"a": 2.0, "b": -1.0})
        assert f.evaluate({"a": 3.0, "b": 4.0}) == 1.0 + 6.0 - 4.0

    def test_unknowns(self):
        assert LinForm(0, {"a": 1, "b": 2}).unknowns() == frozenset({"a", "b"})


class TestCoeffHelpers:
    def test_cadd_numeric(self):
        assert cadd(1.0, 2.0) == 3.0
        assert isinstance(cadd(1.0, 2.0), float)

    def test_cadd_mixed(self):
        assert cadd(1.0, LinForm.unknown("a")) == LinForm(1.0, {"a": 1.0})

    def test_cmul_mixed(self):
        assert cmul(LinForm.unknown("a"), 2.0) == LinForm(0.0, {"a": 2.0})

    def test_cneg(self):
        assert cneg(2.0) == -2.0
        assert cneg(LinForm.unknown("a")) == LinForm(0.0, {"a": -1.0})

    def test_cis_zero(self):
        assert cis_zero(0.0)
        assert cis_zero(LinForm())
        assert not cis_zero(LinForm.unknown("a"))

    def test_str_rendering(self):
        assert str(LinForm(0.0, {"a": 1.0})) == "a"
        assert "2*a" in str(LinForm(0.0, {"a": 2.0}))
