"""Unit and property tests for monomials."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.polynomials import Monomial, monomials_up_to_degree

names = st.sampled_from(["x", "y", "z", "w"])
powers = st.dictionaries(names, st.integers(min_value=1, max_value=5), max_size=4)


class TestConstruction:
    def test_one_is_empty(self):
        assert Monomial.one().is_constant()
        assert Monomial.one().degree() == 0

    def test_variable(self):
        m = Monomial.variable("x")
        assert m.degree() == 1
        assert m.degree_in("x") == 1
        assert m.degree_in("y") == 0

    def test_variable_with_exponent(self):
        assert Monomial.variable("x", 3).degree() == 3

    def test_zero_exponents_dropped(self):
        assert Monomial({"x": 0}) == Monomial.one()

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            Monomial({"x": -1})

    def test_from_pairs(self):
        m = Monomial([("y", 2), ("x", 1)])
        assert m.powers == (("x", 1), ("y", 2))

    def test_variables(self):
        assert Monomial({"x": 1, "y": 2}).variables() == frozenset({"x", "y"})


class TestAlgebra:
    def test_multiplication_adds_exponents(self):
        m = Monomial({"x": 1}) * Monomial({"x": 2, "y": 1})
        assert m == Monomial({"x": 3, "y": 1})

    def test_multiplication_with_one(self):
        m = Monomial({"x": 2})
        assert m * Monomial.one() == m

    def test_multiplication_commutes(self):
        a, b = Monomial({"x": 1}), Monomial({"y": 2})
        assert a * b == b * a

    def test_power(self):
        assert Monomial({"x": 2, "y": 1}) ** 3 == Monomial({"x": 6, "y": 3})

    def test_power_zero(self):
        assert Monomial({"x": 2}) ** 0 == Monomial.one()

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            Monomial({"x": 1}) ** -1

    def test_without(self):
        assert Monomial({"x": 1, "y": 2}).without("x") == Monomial({"y": 2})

    def test_without_absent_variable(self):
        m = Monomial({"x": 1})
        assert m.without("z") == m


class TestEvaluation:
    def test_constant_evaluates_to_one(self):
        assert Monomial.one().evaluate({}) == 1.0

    def test_simple(self):
        assert Monomial({"x": 2, "y": 1}).evaluate({"x": 3.0, "y": 2.0}) == 18.0

    def test_missing_variable_raises(self):
        with pytest.raises(KeyError):
            Monomial({"x": 1}).evaluate({})


class TestOrdering:
    def test_graded_order(self):
        assert Monomial.one() < Monomial({"x": 1}) < Monomial({"x": 2})

    def test_same_degree_lexicographic(self):
        assert Monomial({"x": 1}) < Monomial({"y": 1})

    def test_hashable_and_equal(self):
        assert hash(Monomial({"x": 1, "y": 1})) == hash(Monomial({"y": 1, "x": 1}))

    def test_str(self):
        assert str(Monomial.one()) == "1"
        assert str(Monomial({"x": 2, "y": 1})) == "x^2*y"


class TestBasis:
    def test_degree_zero(self):
        assert monomials_up_to_degree(["x", "y"], 0) == [Monomial.one()]

    def test_degree_one_count(self):
        assert len(monomials_up_to_degree(["x", "y"], 1)) == 3

    def test_degree_two_count(self):
        # 1, x, y, x^2, xy, y^2
        assert len(monomials_up_to_degree(["x", "y"], 2)) == 6

    def test_basis_size_formula(self):
        # C(n + d, d) monomials of degree <= d in n variables.
        from math import comb

        for n_vars, degree in [(1, 4), (2, 3), (3, 3), (4, 2)]:
            names_list = [f"v{i}" for i in range(n_vars)]
            assert len(monomials_up_to_degree(names_list, degree)) == comb(n_vars + degree, degree)

    def test_basis_unique(self):
        basis = monomials_up_to_degree(["x", "y", "z"], 3)
        assert len(basis) == len(set(basis))


@given(powers, powers)
def test_mul_degree_additive(p1, p2):
    m1, m2 = Monomial(p1), Monomial(p2)
    assert (m1 * m2).degree() == m1.degree() + m2.degree()


@given(powers, powers, powers)
def test_mul_associative(p1, p2, p3):
    m1, m2, m3 = Monomial(p1), Monomial(p2), Monomial(p3)
    assert (m1 * m2) * m3 == m1 * (m2 * m3)


@given(powers, st.integers(min_value=0, max_value=4))
def test_power_matches_repeated_mul(p, k):
    m = Monomial(p)
    expected = Monomial.one()
    for _ in range(k):
        expected = expected * m
    assert m**k == expected


class TestInterning:
    """Interned monomials must be indistinguishable from the previous
    construct-each-time implementation: identical hashing, comparison,
    ordering — plus the new identity guarantee."""

    def test_equal_constructions_are_identical(self):
        assert Monomial({"x": 1, "y": 2}) is Monomial([("y", 2), ("x", 1)])

    def test_one_is_singleton(self):
        assert Monomial.one() is Monomial({}) is Monomial({"x": 0})

    def test_products_are_interned(self):
        a = Monomial({"x": 1}) * Monomial({"x": 1, "y": 1})
        assert a is Monomial({"x": 2, "y": 1})

    def test_hash_matches_fresh_tuple_hash(self):
        m = Monomial({"x": 3, "y": 1})
        assert hash(m) == hash((("x", 3), ("y", 1)))

    def test_ordering_unchanged(self):
        # Sorting is total and deterministic regardless of input order.
        basis = monomials_up_to_degree(["x", "y"], 3)
        assert sorted(basis) == sorted(reversed(basis))
        assert sorted(basis)[0] is Monomial.one()

    def test_without_and_pow_return_interned(self):
        m = Monomial({"x": 2, "y": 1})
        assert m.without("y") is Monomial({"x": 2})
        assert m**2 is Monomial({"x": 4, "y": 2})
        assert m**1 is m

    def test_degree_cached_value_is_correct(self):
        m = Monomial({"x": 2, "y": 5})
        assert m.degree() == 7
        assert (m * m).degree() == 14

    def test_duplicate_variables_in_pairs_merge(self):
        assert Monomial([("x", 1), ("x", 1)]) is Monomial({"x": 2})
        assert Monomial([("x", 2), ("y", 1), ("x", 1)]) is Monomial({"x": 3, "y": 1})

    def test_pickle_roundtrip_reinterns(self):
        import pickle

        m = Monomial({"x": 2, "z": 1})
        assert pickle.loads(pickle.dumps(m)) is m

    @given(powers)
    def test_interning_preserves_equality_semantics(self, p):
        a, b = Monomial(p), Monomial(dict(p))
        assert a == b and a is b and hash(a) == hash(b)
