"""Property-based polynomial algebra tests against a naive reference.

Randomized (seeded, fully deterministic) polynomials are pushed through
``Polynomial`` add/mul/substitute/substitute_all and compared term by
term with an independent dict-of-power-tuples implementation.  All
random coefficients are dyadic rationals (halves of small integers), so
every arithmetic result is exact in binary floating point and the
comparison can demand *equality*, not approximation — order of
accumulation cannot matter.

Also pins the Monomial interning invariants the accumulator arithmetic
relies on (equal power products are the same object, across every
construction route, pickling, and intern-cache resets).
"""

import pickle
import random

import pytest

from repro.polynomials import Monomial, Polynomial
from repro.polynomials.monomial import clear_intern_cache, monomials_up_to_degree

VARS = ["x", "y", "z"]
#: Dyadic coefficients: sums/products stay exact in binary floats.
COEFFS = [-3.0, -2.0, -1.5, -1.0, -0.5, 0.5, 1.0, 1.5, 2.0, 3.0]

# A reference polynomial is {powers-tuple: coeff} with powers sorted by
# variable name — the same normal form Monomial guarantees.


def ref_from_poly(poly):
    return {mono.powers: float(coeff) for mono, coeff in poly.terms()}


def poly_from_ref(ref):
    return Polynomial({Monomial(dict(powers)): coeff for powers, coeff in ref.items()})


def _norm(ref):
    return {powers: coeff for powers, coeff in ref.items() if coeff != 0.0}


def ref_add(a, b):
    out = dict(a)
    for powers, coeff in b.items():
        out[powers] = out.get(powers, 0.0) + coeff
    return _norm(out)


def ref_mul(a, b):
    out = {}
    for pa, ca in a.items():
        for pb, cb in b.items():
            merged = dict(pa)
            for var, exp in pb:
                merged[var] = merged.get(var, 0) + exp
            key = tuple(sorted(merged.items()))
            out[key] = out.get(key, 0.0) + ca * cb
    return _norm(out)


def ref_pow(a, k):
    out = {(): 1.0}
    for _ in range(k):
        out = ref_mul(out, a)
    return out


def ref_substitute_all(a, mapping):
    """Simultaneous substitution: expand each original term against the
    original monomial, never against earlier replacements."""
    out = {}
    for powers, coeff in a.items():
        piece = {tuple(p for p in powers if p[0] not in mapping): coeff}
        for var, exp in powers:
            if var in mapping:
                piece = ref_mul(piece, ref_pow(mapping[var], exp))
        out = ref_add(out, piece)
    return _norm(out)


def random_ref(rng, max_terms=4, max_exp=2, variables=VARS):
    ref = {}
    for _ in range(rng.randint(1, max_terms)):
        powers = tuple(
            sorted(
                (var, rng.randint(1, max_exp))
                for var in rng.sample(variables, rng.randint(0, len(variables)))
            )
        )
        ref[powers] = ref.get(powers, 0.0) + rng.choice(COEFFS)
    return _norm(ref)


CASES = list(range(120))


class TestAgainstNaiveReference:
    @pytest.mark.parametrize("case", CASES)
    def test_add(self, case):
        rng = random.Random(1000 + case)
        a, b = random_ref(rng), random_ref(rng)
        assert ref_from_poly(poly_from_ref(a) + poly_from_ref(b)) == ref_add(a, b)

    @pytest.mark.parametrize("case", CASES)
    def test_sub_is_add_of_negation(self, case):
        rng = random.Random(2000 + case)
        a, b = random_ref(rng), random_ref(rng)
        neg_b = {powers: -coeff for powers, coeff in b.items()}
        assert ref_from_poly(poly_from_ref(a) - poly_from_ref(b)) == ref_add(a, neg_b)

    @pytest.mark.parametrize("case", CASES)
    def test_mul(self, case):
        rng = random.Random(3000 + case)
        a, b = random_ref(rng), random_ref(rng)
        assert ref_from_poly(poly_from_ref(a) * poly_from_ref(b)) == ref_mul(a, b)

    @pytest.mark.parametrize("case", CASES)
    def test_substitute_single_var(self, case):
        rng = random.Random(4000 + case)
        a = random_ref(rng)
        var = rng.choice(VARS)
        replacement = random_ref(rng, max_terms=2, max_exp=1)
        got = poly_from_ref(a).substitute(var, poly_from_ref(replacement))
        assert ref_from_poly(got) == ref_substitute_all(a, {var: replacement})

    @pytest.mark.parametrize("case", CASES)
    def test_substitute_all_simultaneous(self, case):
        rng = random.Random(5000 + case)
        a = random_ref(rng)
        mapping = {
            var: random_ref(rng, max_terms=2, max_exp=1)
            for var in rng.sample(VARS, rng.randint(1, len(VARS)))
        }
        got = poly_from_ref(a).substitute_all(
            {var: poly_from_ref(ref) for var, ref in mapping.items()}
        )
        assert ref_from_poly(got) == ref_substitute_all(a, mapping)

    def test_substitute_all_swap_is_simultaneous_not_sequential(self):
        # x <-> y: sequential substitution would collapse both onto one
        # variable; the simultaneous semantics must swap them.
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        poly = x * x + 2.0 * y
        swapped = poly.substitute_all({"x": y, "y": x})
        assert ref_from_poly(swapped) == {(("y", 2),): 1.0, (("x", 1),): 2.0}

    @pytest.mark.parametrize("case", CASES[:40])
    def test_evaluate_agrees_with_reference(self, case):
        rng = random.Random(6000 + case)
        a = random_ref(rng)
        valuation = {var: rng.choice([-2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0]) for var in VARS}
        expected = sum(
            coeff * _eval_powers(powers, valuation) for powers, coeff in a.items()
        )
        assert poly_from_ref(a).evaluate_numeric(valuation) == expected

    @pytest.mark.parametrize("case", CASES[:40])
    def test_ring_axioms(self, case):
        rng = random.Random(7000 + case)
        a, b, c = (poly_from_ref(random_ref(rng, max_terms=3)) for _ in range(3))
        assert ref_from_poly(a * (b + c)) == ref_from_poly(a * b + a * c)
        assert ref_from_poly((a + b) + c) == ref_from_poly(a + (b + c))
        assert ref_from_poly(a * b) == ref_from_poly(b * a)


def _eval_powers(powers, valuation):
    out = 1.0
    for var, exp in powers:
        out *= valuation[var] ** exp
    return out


class TestMonomialInterning:
    def test_every_construction_route_interns_to_one_object(self):
        routes = [
            Monomial({"x": 2, "y": 1}),
            Monomial([("y", 1), ("x", 2)]),
            Monomial([("x", 1), ("x", 1), ("y", 1)]),  # duplicate merge
            Monomial.variable("x", 2) * Monomial.variable("y"),
            Monomial.variable("x") ** 2 * Monomial.variable("y"),
            Monomial({"x": 2, "y": 1, "z": 0}),  # zero exponents dropped
        ]
        assert all(mono is routes[0] for mono in routes[1:])

    def test_pickle_round_trip_re_interns(self):
        mono = Monomial({"x": 1, "z": 3})
        assert pickle.loads(pickle.dumps(mono)) is mono

    def test_degree_cached_and_consistent(self):
        rng = random.Random(42)
        for _ in range(50):
            powers = {var: rng.randint(1, 3) for var in rng.sample(VARS, rng.randint(0, 3))}
            mono = Monomial(powers)
            assert mono.degree() == sum(powers.values())
            assert mono.degree() == sum(exp for _, exp in mono.powers)

    def test_clear_intern_cache_preserves_value_equality(self):
        before = Monomial({"x": 1, "y": 2})
        one_before = Monomial.one()
        clear_intern_cache()
        after = Monomial({"x": 1, "y": 2})
        assert after == before and hash(after) == hash(before)
        # The constant monomial survives the reset as the same object
        # (it is re-seeded), and new constructions re-intern.
        assert Monomial.one() is one_before
        assert Monomial({"x": 1, "y": 2}) is after

    def test_basis_enumeration_is_graded_lex_and_interned(self):
        basis = monomials_up_to_degree(["x", "y"], 3)
        degrees = [m.degree() for m in basis]
        assert degrees == sorted(degrees)
        assert basis[0] is Monomial.one()
        assert len(basis) == len(set(basis)) == 10  # C(2+3, 3)
        for mono in basis:
            assert Monomial(dict(mono.powers)) is mono
