"""Unit and property tests for sparse multivariate polynomials."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NonLinearError
from repro.polynomials import LinForm, Monomial, Polynomial


def poly_strategy(max_terms=5, max_degree=3):
    names = st.sampled_from(["x", "y", "z"])
    mono = st.dictionaries(names, st.integers(min_value=1, max_value=max_degree), max_size=2).map(
        Monomial
    )
    coeff = st.integers(min_value=-10, max_value=10).map(float)
    return st.lists(st.tuples(mono, coeff), max_size=max_terms).map(Polynomial)


polys = poly_strategy()
valuations = st.fixed_dictionaries(
    {"x": st.integers(-5, 5).map(float), "y": st.integers(-5, 5).map(float), "z": st.integers(-5, 5).map(float)}
)


class TestConstruction:
    def test_zero(self):
        assert Polynomial.zero().is_zero()
        assert Polynomial.zero().degree() == 0

    def test_constant(self):
        p = Polynomial.constant(5.0)
        assert p.is_constant()
        assert p.constant_term() == 5.0

    def test_variable(self):
        p = Polynomial.variable("x")
        assert p.degree() == 1
        assert p.variables() == frozenset({"x"})

    def test_zero_coefficients_pruned(self):
        p = Polynomial({Monomial.variable("x"): 0.0})
        assert p.is_zero()
        assert len(p) == 0

    def test_duplicate_monomials_merge(self):
        m = Monomial.variable("x")
        p = Polynomial([(m, 1.0), (m, 2.0)])
        assert p.coeff(m) == 3.0

    def test_from_coeffs(self):
        p = Polynomial.from_coeffs({"x": 2.0, "y": -1.0}, const=3.0)
        assert p.evaluate_numeric({"x": 1.0, "y": 1.0}) == 4.0

    def test_non_monomial_key_rejected(self):
        with pytest.raises(TypeError):
            Polynomial({"x": 1.0})


class TestArithmetic:
    def test_add(self):
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        assert (x + y).degree() == 1
        assert (x + y).evaluate_numeric({"x": 2.0, "y": 3.0}) == 5.0

    def test_add_scalar(self):
        p = Polynomial.variable("x") + 2
        assert p.constant_term() == 2.0

    def test_sub_self_is_zero(self):
        p = Polynomial.from_coeffs({"x": 1.0, "y": 2.0}, 3.0)
        assert (p - p).is_zero()

    def test_rsub(self):
        p = 1 - Polynomial.variable("x")
        assert p.evaluate_numeric({"x": 0.25}) == 0.75

    def test_mul_degree(self):
        x = Polynomial.variable("x")
        assert ((x + 1) * (x - 1)).degree() == 2

    def test_mul_expansion(self):
        x = Polynomial.variable("x")
        p = (x + 1) * (x - 1)
        assert p == x * x - 1

    def test_scalar_mul(self):
        x = Polynomial.variable("x")
        assert (x * 2.5).evaluate_numeric({"x": 2.0}) == 5.0

    def test_division_by_scalar(self):
        x = Polynomial.variable("x")
        assert (x / 2).evaluate_numeric({"x": 3.0}) == 1.5

    def test_pow(self):
        x = Polynomial.variable("x")
        assert (x + 1) ** 2 == x * x + 2 * x + 1

    def test_pow_zero(self):
        assert (Polynomial.variable("x")) ** 0 == Polynomial.constant(1.0)

    def test_negative_pow_rejected(self):
        with pytest.raises(ValueError):
            Polynomial.variable("x") ** -1


class TestSubstitution:
    def test_substitute_constant(self):
        x = Polynomial.variable("x")
        p = x * x + x
        assert p.substitute("x", Polynomial.constant(2.0)) == Polynomial.constant(6.0)

    def test_substitute_polynomial(self):
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        p = x * x
        assert p.substitute("x", y + 1) == y * y + 2 * y + 1

    def test_substitute_absent_variable_is_identity(self):
        p = Polynomial.variable("x") + 1
        assert p.substitute("z", Polynomial.constant(0.0)) is p

    def test_substitute_all_simultaneous_swap(self):
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        p = x - y
        swapped = p.substitute_all({"x": y, "y": x})
        assert swapped == y - x

    def test_partial_evaluate(self):
        p = Polynomial.from_coeffs({"x": 1.0, "y": 1.0})
        q = p.partial_evaluate({"x": 2.0})
        assert q.variables() == frozenset({"y"})
        assert q.constant_term() == 2.0


class TestSymbolicCoefficients:
    def test_template_evaluation_returns_linform(self):
        p = Polynomial({Monomial.variable("x"): LinForm.unknown("a")})
        value = p.evaluate({"x": 3.0})
        assert isinstance(value, LinForm)
        assert value.terms == {"a": 3.0}

    def test_evaluate_numeric_rejects_unsolved(self):
        p = Polynomial({Monomial.one(): LinForm.unknown("a")})
        with pytest.raises(NonLinearError):
            p.evaluate_numeric({})

    def test_instantiate(self):
        p = Polynomial(
            {Monomial.variable("x"): LinForm.unknown("a"), Monomial.one(): LinForm.unknown("b")}
        )
        q = p.instantiate({"a": 2.0, "b": -1.0})
        assert q.is_numeric()
        assert q.evaluate_numeric({"x": 1.0}) == 1.0

    def test_is_numeric(self):
        assert Polynomial.variable("x").is_numeric()
        assert not Polynomial.constant(LinForm.unknown("a")).is_numeric()

    def test_unknowns(self):
        p = Polynomial({Monomial.one(): LinForm(0, {"a": 1.0, "b": 2.0})})
        assert p.unknowns() == frozenset({"a", "b"})

    def test_template_times_numeric(self):
        template = Polynomial.constant(LinForm.unknown("a"))
        x = Polynomial.variable("x")
        prod = template * x
        assert prod.degree() == 1

    def test_template_times_template_rejected(self):
        t = Polynomial.constant(LinForm.unknown("a"))
        with pytest.raises(NonLinearError):
            _ = t * t


class TestComparison:
    def test_eq_against_scalar(self):
        assert Polynomial.constant(2.0) == 2.0

    def test_almost_equal(self):
        p = Polynomial.variable("x") * (1 / 3)
        q = Polynomial.variable("x") * 0.333333333
        assert p.almost_equal(q, tol=1e-6)
        assert not p.almost_equal(q, tol=1e-12)

    def test_round(self):
        p = Polynomial.variable("x") * 0.3333333339
        assert p.round(3).coeff(Monomial.variable("x")) == pytest.approx(0.333)

    def test_str_zero(self):
        assert str(Polynomial.zero()) == "0"

    def test_str_ordering_and_signs(self):
        x = Polynomial.variable("x")
        assert str(x * x - x) == "x^2 - x"


@given(polys, polys)
@settings(max_examples=60)
def test_add_commutative(p, q):
    assert p + q == q + p


@given(polys, polys, polys)
@settings(max_examples=40)
def test_mul_distributes_over_add(p, q, r):
    assert p * (q + r) == p * q + p * r


@given(polys, polys, valuations)
@settings(max_examples=60)
def test_evaluation_is_ring_homomorphism(p, q, v):
    assert (p + q).evaluate_numeric(v) == pytest.approx(
        p.evaluate_numeric(v) + q.evaluate_numeric(v)
    )
    assert (p * q).evaluate_numeric(v) == pytest.approx(
        p.evaluate_numeric(v) * q.evaluate_numeric(v), rel=1e-9, abs=1e-6
    )


@given(polys, valuations)
@settings(max_examples=60)
def test_substitution_commutes_with_evaluation(p, v):
    # p[x := y + 1] evaluated at v equals p evaluated at v with x = v[y] + 1.
    substituted = p.substitute("x", Polynomial.variable("y") + 1)
    direct = dict(v)
    direct["x"] = v["y"] + 1
    assert substituted.evaluate_numeric(v) == pytest.approx(p.evaluate_numeric(direct))


@given(polys)
@settings(max_examples=60)
def test_negation_is_additive_inverse(p):
    assert (p + (-p)).is_zero()


@given(polys, polys, polys)
@settings(max_examples=60)
def test_substitute_all_is_simultaneous(p, q, r):
    # Reference implementation: rename through fresh intermediates, then
    # substitute one variable at a time (the pre-optimization strategy).
    mapping = {"x": q, "y": r}
    fresh = {var: f"__ref_{i}__" for i, var in enumerate(mapping)}
    reference = p
    for var, tmp in fresh.items():
        reference = reference.substitute(var, Polynomial.variable(tmp))
    for var, tmp in fresh.items():
        reference = reference.substitute(tmp, mapping[var])
    assert p.substitute_all(mapping) == reference


@given(polys)
@settings(max_examples=60)
def test_substitute_swap_variables(p):
    swapped = p.substitute_all(
        {"x": Polynomial.variable("y"), "y": Polynomial.variable("x")}
    )
    assert swapped.substitute_all(
        {"x": Polynomial.variable("y"), "y": Polynomial.variable("x")}
    ) == p


@given(polys)
@settings(max_examples=60)
def test_substitute_absent_variable_returns_self(p):
    assert p.substitute("__nope__", Polynomial.variable("x")) is p
    assert p.substitute_all({"__nope__": Polynomial.variable("x")}) is p
