"""Tests for the expectation operator over sampling variables."""

import random

import pytest

from repro.polynomials import Polynomial, expectation
from repro.semantics.distributions import (
    BernoulliDistribution,
    DiscreteDistribution,
    UniformDistribution,
)

X = Polynomial.variable("x")
R = Polynomial.variable("r")


class TestExpectation:
    def test_no_distributions_is_identity(self):
        p = X + R
        assert expectation(p, {}) is p

    def test_linear(self):
        dist = DiscreteDistribution([1, -1], [0.25, 0.75])
        assert expectation(X + R, {"r": dist}) == X - 0.5

    def test_square_uses_second_moment(self):
        dist = DiscreteDistribution([1, -1], [0.25, 0.75])
        # E[(x + r)^2] = x^2 + 2 x E[r] + E[r^2] = x^2 - x + 1
        assert expectation((X + R) ** 2, {"r": dist}) == X * X - X + 1

    def test_program_variables_untouched(self):
        dist = BernoulliDistribution(0.5)
        result = expectation(X * R, {"r": dist})
        assert result == X * 0.5

    def test_independent_product(self):
        d1 = DiscreteDistribution([0, 2], [0.5, 0.5])
        d2 = DiscreteDistribution([1, 3], [0.5, 0.5])
        p = Polynomial.variable("r") * Polynomial.variable("s")
        assert expectation(p, {"r": d1, "s": d2}) == Polynomial.constant(2.0)

    def test_uniform_moments(self):
        dist = UniformDistribution(0, 1)
        assert expectation(R, {"r": dist}) == Polynomial.constant(0.5)
        assert expectation(R * R, {"r": dist}).constant_term() == pytest.approx(1 / 3)

    def test_constant_polynomial(self):
        dist = BernoulliDistribution(0.3)
        assert expectation(Polynomial.constant(7.0), {"r": dist}) == 7.0

    def test_expectation_is_linear(self):
        dist = DiscreteDistribution([1, 2, 3], [0.2, 0.3, 0.5])
        p, q = R * R + X, R - 2
        lhs = expectation(p + q, {"r": dist})
        rhs = expectation(p, {"r": dist}) + expectation(q, {"r": dist})
        assert lhs.almost_equal(rhs)

    def test_matches_monte_carlo(self):
        dist = DiscreteDistribution([1, -1, 0], [0.3, 0.3, 0.4])
        p = (R + 1) ** 3
        exact = expectation(p, {"r": dist}).evaluate_numeric({})
        rng = random.Random(42)
        samples = [p.evaluate_numeric({"r": dist.sample(rng)}) for _ in range(40_000)]
        assert sum(samples) / len(samples) == pytest.approx(exact, rel=0.05)
