"""Delta-debugging shrinker: minimality, predicate preservation, corpus IO."""

import json

import pytest

from repro.fuzz import (
    GenConfig,
    Harness,
    generate,
    load_corpus,
    shrink_program,
    write_corpus_entry,
)
from repro.syntax import Tick, parse_program

FAST = GenConfig(sim_runs=2000, sim_max_steps=20_000)


class TestShrink:
    def test_requires_violating_input(self):
        prog = generate(FAST, 0)
        with pytest.raises(ValueError, match="satisfying the predicate"):
            shrink_program(prog.program, prog.init, lambda p, i: False)

    def test_injected_defect_shrinks_to_small_repro(self):
        harness = Harness(FAST, defect="weaken-upper")
        prog = generate(FAST, 0)
        assert harness.classify(prog.program, prog.init, 0).classification == "violation"

        def still_violates(p, i):
            return harness.classify(p, i, 0).classification == "violation"

        small, small_init = shrink_program(prog.program, prog.init, still_violates)
        from repro.syntax.pretty import pretty

        source = pretty(small)
        assert len(source.splitlines()) <= 15
        assert len(source.splitlines()) < len(prog.source.splitlines())
        assert still_violates(small, small_init)

    def test_structural_predicate_preserved(self):
        # A pure-AST predicate exercises the variant tree without any
        # synthesis in the loop: keep "some Tick survives".
        prog = generate(FAST, 3)

        def has_tick(p, _i):
            stack = [p.body]
            while stack:
                node = stack.pop()
                if isinstance(node, Tick):
                    return True
                stack.extend(getattr(node, "children", lambda: ())())
            return False

        small, _ = shrink_program(prog.program, prog.init, has_tick)
        assert has_tick(small, None)
        assert len(str(small.body)) <= len(str(prog.program.body))

    def test_unused_rvars_pruned(self):
        prog = generate(FAST, 0)
        small, _ = shrink_program(
            prog.program, prog.init, lambda p, i: True
        )
        # Everything shrinks away under the always-true predicate, and
        # the sampling declarations go with it.
        assert small.rvars == {}


class TestCorpusIO:
    def test_write_then_load_roundtrip(self, tmp_path):
        program = parse_program("var x;\n\ntick(1)")
        path = write_corpus_entry(
            tmp_path,
            name="sample",
            seed=9,
            defect="weaken-upper",
            config=GenConfig().to_dict(),
            program=program,
            init={"x": 0.0},
            note="demo",
        )
        assert path.name == "sample.json"
        entries = load_corpus(tmp_path)
        assert len(entries) == 1
        entry = entries[0]
        assert entry["schema"] == "repro-fuzz-corpus/v1"
        assert entry["seed"] == 9
        assert entry["source"] == "var x;\n\ntick(1)"
        assert entry["init"] == {"x": 0.0}

    def test_write_is_byte_stable(self, tmp_path):
        program = parse_program("var x;\n\ntick(1)")
        kwargs = dict(
            name="stable",
            seed=1,
            defect=None,
            config=GenConfig().to_dict(),
            program=program,
            init={"x": 2.0},
        )
        first = write_corpus_entry(tmp_path, **kwargs).read_bytes()
        second = write_corpus_entry(tmp_path, **kwargs).read_bytes()
        assert first == second

    def test_load_rejects_wrong_schema(self, tmp_path):
        (tmp_path / "bad.json").write_text(json.dumps({"schema": "nope/v9"}))
        with pytest.raises(ValueError, match="unexpected schema"):
            load_corpus(tmp_path)
