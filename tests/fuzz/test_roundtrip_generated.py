"""Generated-program round-trip property (the cache-identity satellite).

The content-addressed cache keys inline requests by the parsed AST,
so for every generated program the canonical source must be a lossless
encoding: ``parse(pretty(parse(source)))`` is structurally identical,
and the cache fingerprint — the outermost identity the batch engine
relies on — is unchanged by a pretty-print round trip.
"""

from repro.batch import AnalysisRequest
from repro.cache import request_fingerprint, request_key
from repro.fuzz import GenConfig, generate
from repro.syntax import parse_program
from repro.syntax.pretty import pretty

CONFIG = GenConfig()
SEEDS = range(60)


def test_ast_identity_through_pretty_parse():
    for seed in SEEDS:
        prog = generate(CONFIG, seed)
        once = parse_program(prog.source)
        twice = parse_program(pretty(once))
        assert once.body == twice.body
        assert once.pvars == twice.pvars
        assert once.rvars == twice.rvars


def test_generated_ast_matches_parsed_source():
    # The builder's in-memory AST and the parse of its own rendering
    # must agree — otherwise the harness would analyze a different
    # program than the corpus records.
    for seed in SEEDS:
        prog = generate(CONFIG, seed)
        parsed = parse_program(prog.source)
        assert parsed.body == prog.program.body
        assert parsed.pvars == prog.program.pvars
        assert parsed.rvars == prog.program.rvars


def test_request_fingerprint_stable_under_roundtrip():
    for seed in SEEDS:
        prog = generate(CONFIG, seed)
        reformatted = pretty(parse_program(prog.source))
        original = AnalysisRequest(source=prog.source, init=dict(prog.init))
        roundtripped = AnalysisRequest(source=reformatted, init=dict(prog.init))
        assert request_fingerprint(original) == request_fingerprint(roundtripped)
        assert request_key(original) == request_key(roundtripped)
