"""Replay the committed fuzz corpus.

Every entry under ``tests/fuzz/corpus/`` is a shrunk repro of a past
oracle finding.  Two properties must hold forever:

* the *real* pipeline classifies the program as anything but a
  violation (the finding stays fixed / the oracle stays sound), and
* re-injecting the recorded defect still trips the oracle (the checks
  that caught the finding still exist and still fire).
"""

from pathlib import Path

import pytest

from repro.fuzz import GenConfig, Harness, load_corpus
from repro.syntax import parse_program

CORPUS_DIR = Path(__file__).parent / "corpus"
ENTRIES = load_corpus(CORPUS_DIR)


def _ids():
    return [entry["name"] for entry in ENTRIES]


def test_corpus_is_nonempty():
    assert len(ENTRIES) >= 3


@pytest.mark.parametrize("entry", ENTRIES, ids=_ids())
def test_corpus_entry_replays(entry):
    config = GenConfig.from_dict(entry["config"])
    program = parse_program(entry["source"])
    init = entry["init"]
    seed = entry["seed"]

    clean = Harness(config).classify(program, init, seed)
    assert clean.classification != "violation", clean.detail

    defective = Harness(config, defect=entry["defect"]).classify(program, init, seed)
    assert defective.classification == "violation"


@pytest.mark.parametrize("entry", ENTRIES, ids=_ids())
def test_corpus_entry_is_small(entry):
    assert len(entry["source"].splitlines()) <= 15
