"""The generator's determinism and well-formedness contracts."""

import pytest

from repro.fuzz import GenConfig, generate, generate_many
from repro.syntax import NondetIf, parse_program
from repro.syntax.pretty import pretty

CONFIG = GenConfig()


class TestDeterminism:
    def test_same_seed_same_source(self):
        for seed in range(100):
            first = generate(CONFIG, seed)
            second = generate(CONFIG, seed)
            assert first.source == second.source
            assert first.init == second.init

    def test_generate_many_matches_individual_seeds(self):
        batch = generate_many(CONFIG, seed=10, count=20)
        assert [g.seed for g in batch] == list(range(10, 30))
        for prog in batch:
            assert prog.source == generate(CONFIG, prog.seed).source

    def test_config_changes_the_stream(self):
        narrow = CONFIG.override(max_fillers=1, max_depth=1)
        assert any(
            generate(CONFIG, seed).source != generate(narrow, seed).source for seed in range(20)
        )


class TestWellFormedness:
    def test_sources_parse_and_roundtrip(self):
        for seed in range(100):
            prog = generate(CONFIG, seed)
            reparsed = parse_program(prog.source)
            assert pretty(reparsed) == prog.source

    def test_init_covers_every_pvar(self):
        for seed in range(50):
            prog = generate(CONFIG, seed)
            assert set(prog.init) == set(prog.program.pvars)

    def test_name_is_seed_derived(self):
        assert generate(CONFIG, 7).name == "fuzz-7"


def _count_nondet(stmt) -> int:
    count = int(isinstance(stmt, NondetIf))
    for child in getattr(stmt, "children", lambda: ())():
        count += _count_nondet(child)
    return count


class TestNondetBudget:
    def test_max_nondet_zero_disables_nondeterminism(self):
        config = CONFIG.override(max_nondet=0)
        for seed in range(60):
            assert not generate(config, seed).program.has_nondeterminism()

    def test_default_cap_respected(self):
        for seed in range(60):
            prog = generate(CONFIG, seed)
            assert _count_nondet(prog.program.body) <= CONFIG.max_nondet


class TestGenConfig:
    def test_dict_roundtrip(self):
        config = CONFIG.override(max_depth=1, distributions=("bernoulli", "point"))
        assert GenConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown GenConfig field"):
            GenConfig.from_dict({"max_depth": 1, "bogus": 3})

    def test_rejects_unknown_distribution(self):
        with pytest.raises(ValueError, match="unknown distribution"):
            GenConfig(distributions=("geometric",))

    def test_rejects_nonpositive_budgets(self):
        with pytest.raises(ValueError):
            GenConfig(max_top_level=0)
        with pytest.raises(ValueError):
            GenConfig(max_nondet=-1)

    def test_menu_restriction_is_respected(self):
        config = CONFIG.override(distributions=("bernoulli",))
        for seed in range(40):
            for dist in generate(config, seed).program.rvars.values():
                assert type(dist).__name__ == "BernoulliDistribution"


def _coupled_whiles(stmt):
    """While loops whose guard atom mentions two program variables."""
    from repro.syntax import While

    found = []
    if isinstance(stmt, While):
        guard = stmt.cond
        if hasattr(guard, "poly") and len(guard.poly.variables()) == 2:
            found.append(stmt)
    for child in getattr(stmt, "children", lambda: ())():
        found.extend(_coupled_whiles(child))
    return found


class TestCoupledLoops:
    """The relational-domain stressor shapes (`coupled_loops > 0`)."""

    def test_default_is_off(self):
        assert CONFIG.coupled_loops == 0

    def test_default_stream_unchanged_by_field_presence(self):
        # coupled_loops=0 must not perturb the RNG stream: the corpus
        # and every seeded defect test depend on byte-identity.
        explicit = CONFIG.override(coupled_loops=0)
        for seed in range(30):
            assert generate(CONFIG, seed).source == generate(explicit, seed).source

    def test_coupled_config_appends_two_counter_loops(self):
        config = CONFIG.override(coupled_loops=1)
        appended = 0
        for seed in range(30):
            default = generate(CONFIG, seed)
            coupled = generate(config, seed)
            if coupled.source == default.source:
                continue  # programs with < 2 counters are left alone
            appended += 1
            # The default program is a prefix: the loop rides at the end.
            assert coupled.source.startswith(default.source.rstrip("\n"))
            assert _coupled_whiles(coupled.program.body)
        assert appended > 0, "no seed in range produced a coupled loop"

    def test_coupled_sources_parse_and_roundtrip(self):
        config = CONFIG.override(coupled_loops=2)
        for seed in range(30):
            prog = generate(config, seed)
            assert pretty(parse_program(prog.source)) == prog.source

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            GenConfig(coupled_loops=-1)
