"""The differential oracle: clean sweeps, classifications, defects."""

import pytest

from repro.fuzz import CLASSIFICATIONS, DEFECTS, FuzzRun, GenConfig, Harness
from repro.syntax import parse_program

#: Small Monte-Carlo budget: the statistical slack scales with stderr,
#: so fewer runs widen the margins rather than destabilize the verdict.
FAST = GenConfig(sim_runs=2000, sim_max_steps=20_000)


@pytest.fixture(scope="module")
def clean_run():
    return Harness(FAST).run(seed=0, count=30)


class TestCleanSweep:
    def test_no_violations(self, clean_run):
        assert clean_run.violations == []

    def test_nonzero_sound(self, clean_run):
        assert clean_run.counts["sound"] > 0

    def test_every_outcome_classified(self, clean_run):
        assert len(clean_run.outcomes) == 30
        for outcome in clean_run.outcomes:
            assert outcome.classification in CLASSIFICATIONS

    def test_sound_outcomes_carry_numbers(self, clean_run):
        for outcome in clean_run.outcomes:
            if outcome.classification == "sound":
                assert outcome.upper is not None
                assert outcome.sim_mean is not None
                assert outcome.upper >= outcome.sim_mean - 5 * outcome.sim_stderr - 1e-9

    def test_report_schema(self, clean_run):
        payload = clean_run.to_dict()
        assert payload["schema"] == "repro-fuzz/v1"
        assert payload["count"] == 30
        assert payload["defect"] is None
        assert sum(payload["counts"].values()) == 30
        assert len(payload["outcomes"]) == 30

    def test_verdicts_are_deterministic(self, clean_run):
        again = Harness(FAST).run(seed=0, count=5)
        for fresh, cached in zip(again.outcomes, clean_run.outcomes[:5]):
            assert fresh.classification == cached.classification
            assert fresh.detail == cached.detail


class TestDefects:
    def test_unknown_defect_rejected(self):
        with pytest.raises(ValueError, match="unknown defect"):
            Harness(FAST, defect="typo")

    def test_weaken_upper_fires(self):
        run = Harness(FAST, defect="weaken-upper").run(seed=0, count=8)
        assert run.counts["violation"] > 0
        for outcome in run.violations:
            assert "upper" in outcome.detail
            assert outcome.source is not None

    def test_raise_lower_fires(self):
        # Seed 4 synthesizes both bounds (see the committed corpus).
        outcome = Harness(GenConfig(), defect="raise-lower").run_one(4)
        assert outcome.classification == "violation"
        assert "lower" in outcome.detail

    def test_shrink_tail_fires(self):
        # Seed 15 has a tail bound and cost mass above the anchor.
        outcome = Harness(GenConfig(), defect="shrink-tail").run_one(15)
        assert outcome.classification == "violation"
        assert "tail" in outcome.detail

    def test_defect_registry_covers_every_claim_kind(self):
        assert set(DEFECTS) == {"weaken-upper", "raise-lower", "shrink-tail"}


class TestInvariantDomain:
    def test_default_is_octagon(self):
        assert Harness(FAST).invariant_domain == "octagon"

    def test_unknown_domain_rejected(self):
        with pytest.raises(ValueError, match="invariant_domain"):
            Harness(FAST, invariant_domain="polyhedra")

    def test_payload_records_domain(self):
        run = Harness(FAST, invariant_domain="interval").run(seed=0, count=2)
        assert run.to_dict()["invariant_domain"] == "interval"

    def test_octagon_certifies_coupled_loop_interval_cannot(self):
        source = (
            "var x, y;\n"
            "while x + y - 1 >= 0 do\n"
            "  if prob(0.5) then x := x - 1 else y := y - 1 fi;\n"
            "  tick(1)\n"
            "od\n"
        )
        program = parse_program(source, name="coupled")
        init = {"x": 4.0, "y": 4.0}
        octagon = Harness(FAST).classify(program, dict(init), seed=0)
        interval = Harness(FAST, invariant_domain="interval").classify(
            program, dict(init), seed=0
        )
        assert octagon.classification == "sound"
        assert interval.classification == "infeasible"


class TestNondetHandling:
    SRC = """var x;

while x - 1 >= 0 do
    x := x - 1;
    if * then
        tick(3)
    else
        tick(1)
    fi
od
"""

    def test_demonic_upper_checked_lower_skipped(self):
        harness = Harness(FAST)
        outcome = harness.classify(parse_program(self.SRC), {"x": 5.0}, seed=0)
        assert outcome.classification == "sound"
        # Demonic upper: every scheduler's mean is below it.
        assert outcome.upper is not None and outcome.upper >= outcome.sim_mean
        # Lower/tail are not comparable to one fixed policy's statistics.
        assert outcome.lower is None
        assert outcome.tail_probes_checked == 0
