"""The geometric distribution and the REP006 tail-bound degradation."""

import math
import random
import types

import pytest

from repro.analysis.bounds import analyze
from repro.analysis.tails import derive_tail_bound
from repro.errors import UnboundedError
from repro.semantics import build_cfg
from repro.semantics.distributions import GeometricDistribution
from repro.syntax import parse_program

GEOMETRIC_WALK = """
var x;
sample r ~ geometric(0.5);
x := 10;
while x >= 1 do
    x := x - r;
    tick(1)
od
"""


class TestGeometricDistribution:
    def test_mean_and_variance(self):
        dist = GeometricDistribution(0.25)
        assert dist.moment(1) == pytest.approx(4.0, rel=1e-9)
        # E[X^2] = (2 - p) / p^2
        assert dist.moment(2) == pytest.approx((2 - 0.25) / 0.25**2, rel=1e-9)

    def test_degenerate_p_one(self):
        dist = GeometricDistribution(1.0)
        assert dist.moment(1) == 1.0
        assert dist.sample(random.Random(7)) == 1.0

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            GeometricDistribution(0.0)
        with pytest.raises(ValueError):
            GeometricDistribution(1.5)

    def test_unbounded_support(self):
        dist = GeometricDistribution(0.5)
        assert not dist.is_bounded()
        lo, hi = dist.support_bounds()
        assert lo == 1.0 and math.isinf(hi)

    def test_samples_in_support(self):
        dist = GeometricDistribution(0.3)
        rng = random.Random(42)
        draws = [dist.sample(rng) for _ in range(500)]
        assert all(draw >= 1.0 and draw == int(draw) for draw in draws)
        mean = sum(draws) / len(draws)
        assert mean == pytest.approx(1 / 0.3, rel=0.15)

    def test_parses_from_surface_syntax(self):
        program = parse_program(GEOMETRIC_WALK, name="geo")
        cfg = build_cfg(program)
        assert isinstance(cfg.rvars["r"], GeometricDistribution)
        assert repr(cfg.rvars["r"]) == "geometric(0.5)"


class TestTailDegradation:
    def test_derive_tail_bound_fails_fast_statically(self):
        # The static pre-check must fire before any difference-bound or
        # refit LP work: a stub with no certificate payload suffices.
        cfg = build_cfg(parse_program(GEOMETRIC_WALK, name="geo"))
        stub = types.SimpleNamespace(
            upper=object(), cfg=cfg, invariants=None, mode=None
        )
        with pytest.raises(UnboundedError) as excinfo:
            derive_tail_bound(stub)
        assert "REP006" in str(excinfo.value)
        assert "'r'" in str(excinfo.value)

    def test_analyze_tails_degrades_to_warning(self):
        program = parse_program(GEOMETRIC_WALK, name="geo")
        result = analyze(
            program,
            init={"x": 10.0},
            degree=1,
            compute_lower=False,
            tails=True,
            check="warn",
        )
        assert result.tail is None
        assert any("tail bound unavailable" in w for w in result.warnings)
        assert any(d.code == "REP006" for d in result.diagnostics)

    def test_bounded_support_unaffected(self):
        # A dead (unused) unbounded sampling variable must not block
        # the tail bound: only variables that actually move the state
        # matter.
        source = (
            "var x;\n"
            "sample dead ~ geometric(0.5);\n"
            "sample r ~ discrete(1: 0.5, 2: 0.5);\n"
            "x := 10;\n"
            "while x >= 1 do\n"
            "  x := x - r;\n"
            "  tick(1)\n"
            "od\n"
        )
        result = analyze(
            parse_program(source, name="bounded"),
            init={"x": 10.0},
            degree=1,
            compute_lower=False,
            tails=True,
        )
        assert result.tail is not None
