"""The octagon abstract interpreter: DBM algebra and soundness.

Two layers:

* unit tests of the difference-bound matrix — strong closure (tightening,
  emptiness detection), join, widening (stabilisation) — on hand-built
  octagons;
* the soundness property, mirroring ``test_soundness.py`` for the
  interval domain: 200 seeded concrete runs across registry benchmarks,
  every trajectory point contained in its label's closed octagon.
"""

import math
import random

import pytest

from repro.check import Octagon, analyze_cfg_octagon, check_program
from repro.programs import get_benchmark
from repro.semantics import build_cfg
from repro.semantics.interpreter import run
from repro.syntax import parse_program

INF = math.inf


def _octagon(variables, bounds):
    """Build an octagon from ``{(i, j): c}`` DBM entries (unclosed)."""
    oct_ = Octagon.top(variables)
    for (i, j), c in bounds.items():
        oct_.set_bound(i, j, c)
    return oct_


class TestClosure:
    def test_strengthening_halves_unary_chains(self):
        # x <= 2 and y <= 3 must close to x + y <= 5 via strengthening.
        oct_ = _octagon(("x", "y"), {(0, 1): 4.0, (2, 3): 6.0})
        closed = oct_.close()
        assert closed is not None
        assert closed.sum_bounds("x", "y")[1] == 5.0

    def test_transitive_difference_chain(self):
        # x - y <= 1 and y - z <= 2 close to x - z <= 3.
        oct_ = _octagon(("x", "y", "z"), {(0, 2): 1.0, (2, 4): 2.0})
        closed = oct_.close()
        assert closed is not None
        assert closed.diff_bounds("x", "z")[1] == 3.0

    def test_sum_and_unary_give_other_unary(self):
        # x + y <= 4 and x >= 3 force y <= 1.
        oct_ = _octagon(("x", "y"), {(0, 3): 4.0, (1, 0): -6.0})
        closed = oct_.close()
        assert closed is not None
        assert closed.interval_of("y").hi == 1.0

    def test_empty_on_contradiction(self):
        # x <= 1 and x >= 2 is infeasible.
        oct_ = _octagon(("x",), {(0, 1): 2.0, (1, 0): -4.0})
        assert oct_.close() is None

    def test_point_octagon(self):
        oct_ = Octagon.from_point(("x", "y"), {"x": 3.0, "y": -1.0})
        assert oct_.interval_of("x").lo == oct_.interval_of("x").hi == 3.0
        assert oct_.sum_bounds("x", "y") == (2.0, 2.0)
        assert oct_.diff_bounds("x", "y") == (4.0, 4.0)
        assert oct_.contains({"x": 3.0, "y": -1.0})
        assert not oct_.contains({"x": 3.0, "y": 0.0})


class TestLattice:
    def test_join_is_entrywise_hull(self):
        a = Octagon.from_point(("x",), {"x": 0.0})
        b = Octagon.from_point(("x",), {"x": 5.0})
        joined = a.join(b)
        iv = joined.interval_of("x")
        assert (iv.lo, iv.hi) == (0.0, 5.0)
        assert joined.contains({"x": 2.5})

    def test_join_with_empty_is_identity(self):
        a = Octagon.from_point(("x",), {"x": 1.0})
        empty = _octagon(("x",), {(0, 1): 0.0, (1, 0): -2.0})  # x<=0 and x>=1
        assert empty.close() is None
        joined = a.join(empty)
        iv = joined.interval_of("x")
        assert (iv.lo, iv.hi) == (1.0, 1.0)

    def test_widen_keeps_stable_entries_and_drops_growing_ones(self):
        older = Octagon.from_point(("x",), {"x": 0.0})
        newer = older.join(Octagon.from_point(("x",), {"x": 1.0}))
        widened = older.widen(newer)
        # The lower bound was stable (0), the upper grew (0 -> 1): inf.
        closed = widened.close()
        assert closed is not None
        iv = closed.interval_of("x")
        assert iv.lo == 0.0
        assert iv.hi == INF

    def test_widening_stabilises_an_increasing_chain(self):
        state = Octagon.from_point(("x", "y"), {"x": 0.0, "y": 0.0})
        for step in range(1, 10):
            grown = state.join(
                Octagon.from_point(("x", "y"), {"x": float(step), "y": float(step)})
            )
            widened = state.widen(grown)
            if widened.equals(state):
                break
            state = widened
        else:
            pytest.fail("widening did not stabilise after 10 steps")


class TestSoundness:
    """200 concrete runs: octagon containment along every trajectory."""

    CASES = ["rdwalk", "ber", "linear01", "sprdwalk", "prdwalk"]
    RUNS_PER_CASE = 40

    @pytest.mark.parametrize("name", CASES)
    def test_abstract_states_contain_concrete_runs(self, name):
        bench = get_benchmark(name)
        assert bench.simulation_supported, f"{name} needs a scheduler"
        cfg, init = bench.cfg, dict(bench.init)
        analysis = analyze_cfg_octagon(cfg, {k: v for k, v in init.items() if k in cfg.pvars})
        for seed in range(self.RUNS_PER_CASE):
            rng = random.Random(0xC0FFEE + seed)
            result = run(cfg, init, rng=rng, max_steps=50_000, record_trajectory=True)
            assert result.trajectory is not None
            for label_id, valuation, _cost in result.trajectory:
                assert analysis.contains(label_id, valuation), (
                    f"run {seed}: concrete state {valuation} at label {label_id} "
                    f"escapes octagon {analysis.state(label_id)}"
                )

    def test_entry_state_contains_init(self):
        bench = get_benchmark("rdwalk")
        analysis = analyze_cfg_octagon(bench.cfg, bench.init)
        full = {var: bench.init.get(var, 0.0) for var in bench.cfg.pvars}
        assert analysis.contains(bench.cfg.entry, full)

    def test_unreachable_label_contains_nothing(self):
        source = "var x;\nx := 1;\nif x <= 0 then\n  tick(5)\nelse\n  skip\nfi\n"
        cfg = build_cfg(parse_program(source, name="dead"))
        analysis = analyze_cfg_octagon(cfg, {})
        dead = [label.id for label in cfg if not analysis.reachable(label.id)]
        assert dead, "expected a provably dead label"
        for label_id in dead:
            assert not analysis.contains(label_id, {"x": 1.0})


class TestRelationalPrecision:
    """What the octagon tracks and the interval domain provably cannot."""

    def test_two_variable_guard_refines_loop_body(self):
        # ber's guard is `x <= n - 1` — a 2-var atom.  Inside the loop
        # the octagon must know x - n <= -1 even though neither x nor n
        # alone is bounded by the guard.
        bench = get_benchmark("ber")
        analysis = analyze_cfg_octagon(bench.cfg, bench.init)
        state = analysis.state(2)  # loop body head
        assert state is not None
        assert state.diff_bounds("x", "n")[1] <= -1.0

    def test_coupled_sum_invariant(self):
        source = (
            "var x, y;\n"
            "while x + y >= 1 do\n"
            "  if prob(0.5) then x := x - 1 else y := y - 1 fi;\n"
            "  tick(1)\n"
            "od\n"
        )
        cfg = build_cfg(parse_program(source, name="coupled"))
        analysis = analyze_cfg_octagon(cfg, {"x": 5.0, "y": 5.0})
        # After the loop the negated guard (x + y < 1, over-approximated
        # non-strictly) must be known: some label bounds the *sum* at 1
        # even though each variable alone still spans [-5, 5].
        exit_labels = [
            label.id
            for label in cfg
            if analysis.reachable(label.id)
            and analysis.state(label.id).sum_bounds("x", "y")[1] <= 1.0
        ]
        assert exit_labels, "no label learned the negated coupled guard"
        state = analysis.state(exit_labels[-1])
        assert state.interval_of("x").hi == 5.0  # box alone can't see it

    def test_eval_poly_uses_relational_entries(self):
        bench = get_benchmark("ber")
        analysis = analyze_cfg_octagon(bench.cfg, bench.init)
        from repro.polynomials import Polynomial

        # n - x at the loop-body head: relational bound, not box arithmetic
        # (box would give lo = 100 - 99 ... no: lo = 100 - 99 = 1? box lo
        # is n.lo - x.hi = 100 - 99 = 1; the DBM knows >= 1 too, but the
        # guard makes hi exact: n - x <= 100).
        poly = Polynomial.variable("n") - Polynomial.variable("x")
        value = analysis.eval_poly(2, poly)
        assert value is not None
        assert value.lo >= 1.0


class TestAnnotationRules:
    """REP013 (entailed annotation) and REP014 (contradicted annotation)."""

    SOURCE = (
        "var x;\n"
        "x := 10;\n"
        "while x >= 1 do\n"
        "  x := x - 1;\n"
        "  tick(1)\n"
        "od\n"
    )

    def _codes(self, invariants, domain="octagon"):
        result = check_program(
            self.SOURCE, init={"x": 10.0}, invariants=invariants, invariant_domain=domain
        )
        return result.codes()

    def _loop_label(self):
        cfg = build_cfg(parse_program(self.SOURCE, name="cd"))
        from repro.semantics.cfg import BranchLabel

        return next(label.id for label in cfg if isinstance(label, BranchLabel))

    def test_entailed_annotation_warns_rep013(self):
        label = self._loop_label()
        codes = self._codes({label: "x >= -100"})
        assert "REP013" in codes

    def test_tight_annotation_is_clean(self):
        label = self._loop_label()
        # x <= 10 holds but is exactly the octagon's own knowledge; the
        # entailment warning still applies, so use a constraint the
        # octagon does NOT entail: none here — assert only no REP014.
        codes = self._codes({label: "x <= 10"})
        assert "REP014" not in codes

    def test_contradicting_annotation_errors_rep014(self):
        label = self._loop_label()
        codes = self._codes({label: "x >= 100"})
        assert "REP014" in codes or "REP010" in codes

    def test_interval_domain_never_fires_relational_codes(self):
        label = self._loop_label()
        codes = self._codes({label: "x >= -100"}, domain="interval")
        assert "REP013" not in codes and "REP014" not in codes
