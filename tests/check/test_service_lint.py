"""``POST /lint`` service endpoint tests."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import create_server

DIVERGENT = "var x;\nwhile x <= 0 do\n  tick(1)\nod\n"


@pytest.fixture(scope="module")
def service():
    server = create_server(host="127.0.0.1", port=0, jobs=1)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _post(base, path, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestLintEndpoint:
    def test_single_clean_benchmark(self, service):
        status, payload = _post(service, "/lint", {"benchmark": "rdwalk"})
        assert status == 200
        assert payload["diagnostics"] == []
        assert payload["errors"] == 0 and payload["warnings"] == 0

    def test_single_source_with_findings(self, service):
        status, payload = _post(
            service, "/lint", {"name": "bad", "source": DIVERGENT, "init": {"x": 0.0}}
        )
        assert status == 200
        (diag,) = payload["diagnostics"]
        assert diag["code"] == "REP008" and diag["severity"] == "error"

    def test_multi_task_body(self, service):
        status, payload = _post(
            service,
            "/lint",
            {
                "tasks": [
                    {"name": "rdwalk", "benchmark": "rdwalk"},
                    {"name": "bad", "source": DIVERGENT, "init": {"x": 0.0}},
                ]
            },
        )
        assert status == 200
        assert payload["tasks"] == 2
        assert payload["errors"] == 1
        assert [t["name"] for t in payload["targets"]] == ["rdwalk", "bad"]

    def test_malformed_task_is_400(self, service):
        status, payload = _post(service, "/lint", {"name": "x", "source": "var x := ;"})
        assert status == 400
        assert "error" in payload

    def test_unknown_post_path_mentions_lint(self, service):
        status, payload = _post(service, "/nope", {"benchmark": "rdwalk"})
        assert status == 404
        assert "/lint" in payload["error"]

    def test_strict_gating_still_via_analyze(self, service):
        # /analyze with check=strict returns a rejected report, not an
        # HTTP error — rejection is an analysis outcome.
        status, payload = _post(
            service,
            "/analyze",
            {"name": "bad", "source": DIVERGENT, "init": {"x": 0.0}, "check": "strict"},
        )
        assert status == 200
        assert payload["status"] == "rejected"
        assert "REP008" in payload["error"]
