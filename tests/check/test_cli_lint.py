"""``repro lint`` exit-code contract: 0 clean / 1 findings / 2 malformed."""

import json

import pytest

from repro.cli import main

CLEAN = "var x;\nx := 5;\nwhile x >= 1 do\n  x := x - 1;\n  tick(1)\nod\n"
WARN_ONLY = "var x, y;\nx := 5;\nwhile x >= 1 do\n  x := x - 1;\n  tick(1)\nod\n"
DIVERGENT = "var x;\nwhile x <= 0 do\n  tick(1)\nod\n"


@pytest.fixture
def write(tmp_path):
    def _write(name, text):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return _write


class TestExitCodes:
    def test_clean_file_exits_zero(self, write, capsys):
        assert main(["lint", write("clean.prob", CLEAN)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_benchmark_clean_exits_zero(self, capsys):
        assert main(["lint", "--benchmark", "rdwalk"]) == 0

    def test_error_exits_one(self, write, capsys):
        code = main(["lint", write("div.prob", DIVERGENT), "--init", "x=0"])
        assert code == 1
        assert "REP008" in capsys.readouterr().out

    def test_warning_exits_zero_unless_strict(self, write, capsys):
        path = write("warn.prob", WARN_ONLY)
        assert main(["lint", path]) == 0
        assert main(["lint", path, "--strict"]) == 1

    def test_missing_file_exits_two(self, capsys):
        assert main(["lint", "/nonexistent/nope.prob"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_benchmark_exits_two(self, capsys):
        assert main(["lint", "--benchmark", "nosuch"]) == 2

    def test_missing_target_exits_two(self, capsys):
        assert main(["lint"]) == 2

    def test_both_file_and_benchmark_exits_two(self, write, capsys):
        assert main(["lint", write("a.prob", CLEAN), "--benchmark", "rdwalk"]) == 2

    def test_parse_error_exits_one_as_analysis_failure(self, write, capsys):
        # Broken surface syntax is a ReproError (ParseError), exit 1 by
        # the global CLI contract.
        code = main(["lint", write("broken.prob", "var x := ;")])
        assert code in (1, 2)
        assert "error" in capsys.readouterr().err


class TestOutput:
    def test_json_payload(self, write, capsys):
        code = main(["lint", write("div.prob", DIVERGENT), "--init", "x=0", "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-lint/v1"
        assert payload["errors"] == 1
        (target,) = payload["targets"]
        (diag,) = target["diagnostics"]
        assert diag["code"] == "REP008"
        assert (diag["line"], diag["column"]) == (2, 1)

    def test_invariant_flag_flags_unsound_annotation(self, write, capsys):
        code = main(["lint", write("clean.prob", CLEAN), "--invariant", "2: x >= 100"])
        assert code == 1
        assert "REP010" in capsys.readouterr().out

    def test_annotation_comments_are_linted(self, write, capsys):
        annotated = "# @invariant 2: x >= 100\n" + CLEAN
        assert main(["lint", write("annot.prob", annotated)]) == 1

    def test_spec_target(self, write, capsys):
        spec = {
            "tasks": [
                {"name": "rdwalk", "benchmark": "rdwalk"},
                {"name": "bad", "source": DIVERGENT, "init": {"x": 0.0}},
            ]
        }
        path = write("spec.json", json.dumps(spec))
        assert main(["lint", path]) == 1
        out = capsys.readouterr().out
        assert "bad:" in out and "REP008" in out
        assert "checked 2 targets" in out

    def test_empty_spec_exits_two(self, write, capsys):
        assert main(["lint", write("empty.json", '{"tasks": []}')]) == 2

    def test_bad_json_exits_two(self, write, capsys):
        assert main(["lint", write("broken.json", "{nope")]) == 2
