"""Diagnostic record and CheckResult container tests."""

import pytest

from repro.check import CODES, SEVERITIES, CheckResult, Diagnostic, sort_diagnostics


class TestCatalog:
    def test_fourteen_stable_codes(self):
        assert sorted(CODES) == [f"REP{n:03d}" for n in range(1, 15)]

    def test_every_code_has_valid_severity(self):
        for code, (severity, title) in CODES.items():
            assert severity in SEVERITIES, code
            assert title, code

    def test_error_codes(self):
        errors = {code for code, (severity, _) in CODES.items() if severity == "error"}
        assert errors == {"REP001", "REP008", "REP010", "REP014"}


class TestDiagnostic:
    def test_of_uses_catalog_severity(self):
        diag = Diagnostic.of("REP009", "unused variable 'y'")
        assert diag.severity == "warning"
        assert Diagnostic.of("REP010", "bad invariant").severity == "error"

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="REP999", severity="warning", message="nope")

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="REP009", severity="fatal", message="nope")

    def test_format_with_position(self):
        diag = Diagnostic.of("REP005", "zero tick", label=4, line=7, column=3)
        assert diag.format() == "7:3: REP005 warning: zero tick"

    def test_format_label_fallback(self):
        diag = Diagnostic.of("REP005", "zero tick", label=4)
        assert diag.format() == "label 4: REP005 warning: zero tick"

    def test_format_no_location(self):
        assert Diagnostic.of("REP009", "unused").format() == "REP009 warning: unused"

    def test_dict_roundtrip(self):
        diag = Diagnostic.of("REP010", "unsound", label=2, line=5, column=1)
        assert Diagnostic.from_dict(diag.to_dict()) == diag

    def test_from_dict_rejects_unknown_fields(self):
        data = Diagnostic.of("REP009", "unused").to_dict()
        data["surprise"] = True
        with pytest.raises(ValueError):
            Diagnostic.from_dict(data)


class TestCheckResult:
    def _mixed(self):
        return CheckResult(
            diagnostics=[
                Diagnostic.of("REP010", "unsound", label=2),
                Diagnostic.of("REP009", "unused"),
            ]
        )

    def test_partitions(self):
        result = self._mixed()
        assert [d.code for d in result.errors] == ["REP010"]
        assert [d.code for d in result.warnings] == ["REP009"]
        assert set(result.codes()) == {"REP009", "REP010"}

    def test_ok_vs_clean(self):
        result = self._mixed()
        assert not result.ok and not result.clean
        warn_only = CheckResult(diagnostics=[Diagnostic.of("REP009", "unused")])
        assert warn_only.ok and not warn_only.clean
        empty = CheckResult(diagnostics=[])
        assert empty.ok and empty.clean

    def test_to_dicts_and_format_lines(self):
        result = self._mixed()
        assert all(isinstance(entry, dict) for entry in result.to_dicts())
        assert len(result.format_lines()) == 2


class TestSorting:
    def test_reading_order(self):
        unsorted = [
            Diagnostic.of("REP009", "no location"),
            Diagnostic.of("REP005", "late", line=9, column=1, label=5),
            Diagnostic.of("REP005", "early", line=2, column=1, label=3),
        ]
        ordered = sort_diagnostics(unsorted)
        assert [d.message for d in ordered] == ["early", "late", "no location"]
