"""The check pass wired through the analysis stack.

Covers ``analyze(check=...)``, strict-mode fail-fast (zero LP solves),
the batch engine's ``status="rejected"`` path, ``Analyzer.lint``, the
``check`` knob on options/requests, and the report schema v5 bridge.
"""

import pytest

from repro.analysis.bounds import analyze
from repro.api import AnalysisOptions, Analyzer, report_from_dict, report_to_v4
from repro.batch import AnalysisRequest
from repro.batch.engine import execute_request
from repro.batch.spec import REPORT_SCHEMA, REPORT_SCHEMA_V4
from repro.core.lp import solve_count
from repro.errors import CheckError
from repro.programs import get_benchmark

DIVERGENT = "var x;\nwhile x <= 0 do\n  tick(1)\nod\n"


def _unsound_rdwalk():
    """rdwalk with a deliberately-unsound extra invariant."""
    bench = get_benchmark("rdwalk")
    invariants = dict(bench.invariants)
    entry = bench.cfg.entry
    invariants[entry] = "x >= 1000000000"
    return bench, invariants


class TestAnalyzeCheck:
    def test_off_leaves_diagnostics_none(self):
        bench = get_benchmark("rdwalk")
        result = bench._analyze_resolved(compute_lower=False)
        assert result.diagnostics is None

    def test_warn_attaches_empty_list_when_clean(self):
        bench = get_benchmark("rdwalk")
        result = bench._analyze_resolved(compute_lower=False, check="warn")
        assert result.diagnostics == []
        assert result.upper is not None

    def test_warn_attaches_findings_without_blocking(self):
        bench, invariants = _unsound_rdwalk()
        result = analyze(
            bench.program,
            init=dict(bench.init),
            invariants=invariants,
            degree=2,
            compute_lower=False,
            check="warn",
        )
        assert any(d.code == "REP010" for d in result.diagnostics)

    def test_strict_rejects_before_any_lp_solve(self):
        bench, invariants = _unsound_rdwalk()
        before = solve_count()
        with pytest.raises(CheckError) as excinfo:
            analyze(
                bench.program,
                init=dict(bench.init),
                invariants=invariants,
                degree=2,
                check="strict",
            )
        assert solve_count() == before, "strict rejection must not touch the LP"
        assert "REP010" in str(excinfo.value)
        assert any(d.code == "REP010" for d in excinfo.value.diagnostics)

    def test_invalid_mode_rejected(self):
        bench = get_benchmark("rdwalk")
        with pytest.raises(ValueError):
            analyze(bench.program, init=dict(bench.init), check="loud")


class TestEngineGating:
    def test_warn_mode_report_carries_diagnostics(self):
        request = AnalysisRequest(
            benchmark="rdwalk", name="rdwalk-warn", check="warn", compute_lower=False
        )
        report = execute_request(request)
        assert report.status == "ok"
        assert report.diagnostics == []

    def test_off_mode_report_has_none(self):
        request = AnalysisRequest(
            benchmark="rdwalk", name="rdwalk-off", compute_lower=False
        )
        report = execute_request(request)
        assert report.diagnostics is None

    def test_strict_rejection_zero_lp_solves(self):
        bench, invariants = _unsound_rdwalk()
        request = AnalysisRequest(
            source=bench.source,
            name="rdwalk-unsound",
            init=dict(bench.init),
            invariants=invariants,
            check="strict",
        )
        before = solve_count()
        report = execute_request(request)
        assert report.status == "rejected"
        assert "REP010" in (report.error or "")
        assert solve_count() == before, "rejected task must not reach the LP"
        assert any(d["code"] == "REP010" for d in report.diagnostics)

    def test_strict_rejects_divergent_source(self):
        request = AnalysisRequest(
            source=DIVERGENT, name="divergent", init={"x": 0.0}, check="strict"
        )
        report = execute_request(request)
        assert report.status == "rejected"
        assert not report.ok
        assert "REP008" in report.error

    def test_warnings_never_reject(self):
        source = "var x, y;\nx := 5;\nwhile x >= 1 do\n  x := x - 1;\n  tick(1)\nod\n"
        request = AnalysisRequest(
            source=source, name="warn-only", check="strict", compute_lower=False
        )
        report = execute_request(request)
        assert report.status == "ok"
        assert [d["code"] for d in report.diagnostics] == ["REP009"]

    def test_bad_check_value_fails_validation(self):
        request = AnalysisRequest(benchmark="rdwalk", check="blocking")
        with pytest.raises(ValueError):
            request.validate()


class TestAnalyzerFacade:
    def test_lint_benchmark_by_name(self):
        result = Analyzer().lint("rdwalk")
        assert result.clean

    def test_lint_source_with_findings(self):
        result = Analyzer().lint(DIVERGENT, init={"x": 0.0})
        assert [d.code for d in result.diagnostics] == ["REP008"]

    def test_synthesize_strict_raises_check_error(self):
        bench, invariants = _unsound_rdwalk()
        analyzer = Analyzer(AnalysisOptions(check="strict", invariants=invariants))
        with pytest.raises(CheckError):
            analyzer.synthesize(bench.program)

    def test_synthesize_warn_keeps_diagnostics_across_escalation(self):
        # degree="auto" escalates; the lint runs once and its findings
        # must survive to the escalation winner.
        source = "var x, y;\nx := 5;\nwhile x >= 1 do\n  x := x - 1;\n  tick(1)\nod\n"
        analyzer = Analyzer(
            AnalysisOptions(degree="auto", max_degree=2, check="warn", compute_lower=False)
        )
        result = analyzer.synthesize(source)
        assert [d.code for d in result.diagnostics] == ["REP009"]

    def test_options_check_validation(self):
        with pytest.raises(ValueError):
            AnalysisOptions(check="yes")
        options = AnalysisOptions(check="strict")
        assert AnalysisOptions.from_request(options.to_request("rdwalk")).check == "strict"


class TestSchemaV5:
    def test_report_schema_is_v6(self):
        assert REPORT_SCHEMA == "repro-report/v6"
        assert REPORT_SCHEMA_V4 == "repro-report/v4"
        report = execute_request(
            AnalysisRequest(benchmark="rdwalk", check="warn", compute_lower=False)
        )
        assert report.to_dict()["diagnostics"] == []

    def test_to_v4_drops_diagnostics(self):
        report = execute_request(
            AnalysisRequest(benchmark="rdwalk", check="warn", compute_lower=False)
        )
        v4 = report_to_v4(report)
        assert "diagnostics" not in v4
        assert set(report.to_dict()) - set(v4) == {"diagnostics", "invariant_domain"}

    def test_from_dict_reads_v4_and_v5(self):
        report = execute_request(
            AnalysisRequest(benchmark="rdwalk", check="warn", compute_lower=False)
        )
        assert report_from_dict(report.to_dict()).diagnostics == []
        assert report_from_dict(report_to_v4(report)).diagnostics is None

    def test_fingerprint_depends_on_check(self):
        from repro.cache import request_fingerprint

        off = request_fingerprint(AnalysisRequest(benchmark="rdwalk"))
        warn = request_fingerprint(AnalysisRequest(benchmark="rdwalk", check="warn"))
        assert off != warn
