"""Soundness of the interval abstract interpreter.

The property: every concretely reachable state lies inside the abstract
box the fixpoint assigns to its label.  The interpreter drives 200
random runs across a mix of registry benchmarks and a geometric-noise
program (unbounded sampling support exercises the infinite-interval
arithmetic) and asserts containment at every trajectory point.
"""

import random

import pytest

from repro.check import analyze_cfg, check_program
from repro.programs import get_benchmark
from repro.semantics import build_cfg
from repro.semantics.interpreter import run
from repro.syntax import parse_program

GEOMETRIC_WALK = """
var x;
sample r ~ geometric(0.5);
x := 12;
while x >= 1 do
    x := x - r;
    tick(1)
od
"""

#: (cfg provider, init) — 4 programs x 50 runs = 200 random runs.
CASES = [
    ("rdwalk", None),
    ("ber", None),
    ("linear01", None),
    ("geometric_walk", None),
]
RUNS_PER_CASE = 50


def _case(name):
    if name == "geometric_walk":
        cfg = build_cfg(parse_program(GEOMETRIC_WALK, name=name))
        return cfg, {}
    bench = get_benchmark(name)
    assert bench.simulation_supported, f"{name} needs a scheduler"
    return bench.cfg, dict(bench.init)


@pytest.mark.parametrize("name", [name for name, _ in CASES])
def test_abstract_states_contain_concrete_runs(name):
    cfg, init = _case(name)
    analysis = analyze_cfg(cfg, {k: v for k, v in init.items() if k in cfg.pvars})
    for seed in range(RUNS_PER_CASE):
        rng = random.Random(0xC0FFEE + seed)
        result = run(cfg, init, rng=rng, max_steps=50_000, record_trajectory=True)
        assert result.trajectory is not None
        for label_id, valuation, _cost in result.trajectory:
            assert analysis.contains(label_id, valuation), (
                f"run {seed}: concrete state {valuation} at label {label_id} "
                f"escapes abstract box {analysis.state(label_id)}"
            )


def test_entry_state_contains_init():
    cfg, init = _case("rdwalk")
    analysis = analyze_cfg(cfg, init)
    full = {var: init.get(var, 0.0) for var in cfg.pvars}
    assert analysis.contains(cfg.entry, full)


def test_unreachable_label_contains_nothing():
    source = "var x;\nx := 1;\nif x <= 0 then\n  tick(5)\nelse\n  skip\nfi\n"
    cfg = build_cfg(parse_program(source, name="dead"))
    analysis = analyze_cfg(cfg, {})
    dead = [label.id for label in cfg if not analysis.reachable(label.id)]
    assert dead, "expected a provably dead label"
    for label_id in dead:
        assert not analysis.contains(label_id, {"x": 1.0})


def test_check_program_accepts_parsed_ast():
    program = parse_program(GEOMETRIC_WALK, name="geo")
    result = check_program(program)
    assert "REP006" in result.codes()
