"""Seeded-defect corpus (one fixture per REP code) and the registry sweep."""

import pytest

from repro.check import check_benchmark, check_program
from repro.programs import all_benchmarks


def _only(result, code):
    """The diagnostics with ``code``; asserts at least one exists."""
    found = [d for d in result.diagnostics if d.code == code]
    assert found, f"expected {code}, got {sorted(result.codes())}"
    return found


class TestSeededDefects:
    def test_rep001_undeclared_init_var(self):
        result = check_program("var x;\nx := 1;\ntick(x)\n", init={"z": 5.0})
        (diag,) = _only(result, "REP001")
        assert diag.severity == "error"
        assert "'z'" in diag.message or "z" in diag.message
        assert diag.line is None  # program-level finding, no source anchor
        assert set(result.codes()) == {"REP001"}

    def test_rep002_read_before_assignment(self):
        result = check_program("var x, y;\nx := y + 1;\ntick(x)\n")
        (diag,) = _only(result, "REP002")
        assert diag.severity == "warning"
        assert "'y'" in diag.message
        assert (diag.line, diag.column) == (2, 1)
        assert set(result.codes()) == {"REP002"}

    def test_rep002_silenced_by_init(self):
        result = check_program("var x, y;\nx := y + 1;\ntick(x)\n", init={"y": 3.0})
        assert "REP002" not in set(result.codes())

    def test_rep003_rep004_dead_then_branch(self):
        source = (
            "var x;\n"
            "x := 1;\n"
            "if x <= 0 then\n"
            "  tick(5)\n"
            "else\n"
            "  skip\n"
            "fi;\n"
            "tick(x)\n"
        )
        result = check_program(source)
        (dead_stmt,) = _only(result, "REP003")
        assert dead_stmt.severity == "warning"
        assert dead_stmt.line == 4  # the tick(5) inside the dead branch
        (dead_edge,) = _only(result, "REP004")
        assert dead_edge.severity == "warning"
        assert dead_edge.line == 3  # the branch itself
        assert "then-branch" in dead_edge.message
        assert set(result.codes()) == {"REP003", "REP004"}

    def test_rep005_zero_cost_tick(self):
        result = check_program("var x;\nx := 0;\ntick(x)\n")
        (diag,) = _only(result, "REP005")
        assert diag.severity == "warning"
        assert (diag.line, diag.column) == (3, 1)
        assert set(result.codes()) == {"REP005"}

    def test_rep006_unbounded_support(self):
        source = (
            "var x;\n"
            "sample r ~ geometric(0.5);\n"
            "x := 10;\n"
            "while x >= 1 do\n"
            "  x := x - r;\n"
            "  tick(1)\n"
            "od\n"
        )
        result = check_program(source)
        (diag,) = _only(result, "REP006")
        assert diag.severity == "warning"
        assert "'r'" in diag.message and "unbounded" in diag.message
        assert set(result.codes()) == {"REP006"}

    def test_rep007_nondet_cap(self):
        body = "".join(
            "if * then x := x + 1 else skip fi;\n" for _ in range(7)
        )
        result = check_program(f"var x;\nx := 0;\n{body}tick(x)\n")
        (diag,) = _only(result, "REP007")
        assert diag.severity == "warning"
        assert "7 nondeterministic labels" in diag.message
        # Six labels stay under the enumeration cap: no finding.
        body6 = "".join("if * then x := x + 1 else skip fi;\n" for _ in range(6))
        assert "REP007" not in check_program(f"var x;\nx := 0;\n{body6}tick(x)\n").codes()

    def test_rep008_divergent_loop(self):
        result = check_program(
            "var x;\nwhile x <= 0 do\n  tick(1)\nod\n", init={"x": 0.0}
        )
        (diag,) = _only(result, "REP008")
        assert diag.severity == "error"
        assert (diag.line, diag.column) == (2, 1)
        assert diag.label == 1

    def test_rep009_unused_variable(self):
        result = check_program("var x, y;\nx := 1;\ntick(x)\n")
        (diag,) = _only(result, "REP009")
        assert diag.severity == "warning"
        assert "'y'" in diag.message
        assert set(result.codes()) == {"REP009"}

    def test_rep009_unused_sampling_variable(self):
        source = "var x;\nsample r ~ uniform(0, 1);\nx := 1;\ntick(x)\n"
        result = check_program(source)
        (diag,) = _only(result, "REP009")
        assert "'r'" in diag.message
        # The dead sampling variable must NOT also trip the unbounded-
        # support or any other rule.
        assert set(result.codes()) == {"REP009"}

    LOOP = "var x;\nx := 5;\nwhile x >= 1 do\n  x := x - 1;\n  tick(1)\nod\n"

    def test_rep010_entry_invariant_excludes_init(self):
        # At entry (label 1, before the first assignment) x is 0.
        result = check_program(self.LOOP, invariants={1: "x >= 100"})
        (diag,) = _only(result, "REP010")
        assert diag.severity == "error"
        assert diag.label == 1
        assert "initial valuation" in diag.message

    def test_rep010_invariant_disjoint_from_fixpoint(self):
        # At the loop head x is confined to [0, 5] by the abstract
        # fixpoint; "x >= 100" excludes the whole box.
        result = check_program(self.LOOP, invariants={2: "x >= 100"})
        (diag,) = _only(result, "REP010")
        assert diag.severity == "error"
        assert diag.label == 2
        assert "excludes every reachable state" in diag.message

    def test_rep010_sound_invariant_is_silent(self):
        result = check_program(self.LOOP, invariants={2: "x >= 0"})
        assert "REP010" not in result.codes()

    def test_rep011_degenerate_probability(self):
        source = "var x;\nx := 1;\nif prob(1.0) then\n  tick(x)\nelse\n  skip\nfi\n"
        result = check_program(source)
        (diag,) = _only(result, "REP011")
        assert diag.severity == "warning"
        assert "p=1" in diag.message
        assert (diag.line, diag.column) == (3, 1)

    def test_rep012_entry_guard_false(self):
        source = "var x;\nwhile x >= 1 do\n  x := x - 1;\n  tick(1)\nod\n"
        result = check_program(source, init={"x": 0.0})
        (diag,) = _only(result, "REP012")
        assert diag.severity == "warning"
        assert diag.label == 1
        assert (diag.line, diag.column) == (2, 1)

    def test_clean_program_is_clean(self):
        result = check_program(self.LOOP)
        assert result.clean, [d.format() for d in result.diagnostics]


class TestRegistrySweep:
    @pytest.mark.parametrize(
        "bench", all_benchmarks(), ids=lambda bench: bench.name
    )
    def test_benchmark_lints_clean_in_strict(self, bench):
        result = check_benchmark(bench)
        assert result.clean, [d.format() for d in result.diagnostics]

    @pytest.mark.parametrize(
        "bench", [b for b in all_benchmarks() if b.extra_inits], ids=lambda b: b.name
    )
    def test_table4_inits_lint_clean(self, bench):
        for init in bench.all_inits():
            result = check_benchmark(bench, init=init)
            assert result.clean, (init, [d.format() for d in result.diagnostics])
