"""CLI tests."""

import pytest

from repro.cli import extract_invariant_annotations, main, parse_valuation

PROGRAM = """
# @invariant 1: x >= 0
# @invariant 2: x >= 1
var x;
while x >= 1 do
    x := x + (1, -1) : (0.25, 0.75);
    tick(1)
od
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "walk.prob"
    path.write_text(PROGRAM)
    return str(path)


class TestHelpers:
    def test_parse_valuation(self):
        assert parse_valuation("x=100, y=-2.5") == {"x": 100.0, "y": -2.5}

    def test_parse_valuation_empty(self):
        assert parse_valuation(None) == {}
        assert parse_valuation("") == {}

    def test_parse_valuation_malformed(self):
        with pytest.raises(ValueError):
            parse_valuation("x:3")

    def test_extract_annotations(self):
        anns = extract_invariant_annotations(PROGRAM)
        assert anns == {1: "x >= 0", 2: "x >= 1"}


class TestCommands:
    def test_analyze(self, program_file, capsys):
        code = main(["analyze", program_file, "--init", "x=100", "--degree", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "upper:" in out and "2*x" in out

    def test_analyze_with_cli_invariant(self, program_file, capsys):
        code = main(
            ["analyze", program_file, "--init", "x=50", "--degree", "1", "--invariant", "3: x >= 0"]
        )
        assert code == 0

    def test_analyze_no_lower(self, program_file, capsys):
        main(["analyze", program_file, "--init", "x=10", "--no-lower"])
        assert "lower:" not in capsys.readouterr().out

    def test_simulate(self, program_file, capsys):
        code = main(["simulate", program_file, "--init", "x=10", "--runs", "200"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mean cost:" in out
        assert "termination rate: 1.000" in out

    def test_simulate_refuses_nondet(self, tmp_path, capsys):
        path = tmp_path / "nd.prob"
        path.write_text("var x; if * then tick(1) fi")
        code = main(["simulate", str(path), "--init", "x=0"])
        assert code == 1
        assert "nondeterministic" in capsys.readouterr().err

    def test_cfg(self, program_file, capsys):
        assert main(["cfg", program_file]) == 0
        out = capsys.readouterr().out
        assert "branch" in out and "tick" in out

    def test_bench(self, capsys):
        assert main(["bench", "simple_loop"]) == 0
        out = capsys.readouterr().out
        assert "paper upper" in out

    def test_bench_with_init_override(self, capsys):
        assert main(["bench", "random_walk", "--init", "x=4,n=20,y=0"]) == 0
        assert "-40" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bitcoin_mining" in out and "[nondet]" in out
        assert out.count("\n") == 25
