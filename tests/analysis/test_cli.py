"""CLI tests."""

import pytest

from repro.cli import extract_invariant_annotations, main, parse_valuation

PROGRAM = """
# @invariant 1: x >= 0
# @invariant 2: x >= 1
var x;
while x >= 1 do
    x := x + (1, -1) : (0.25, 0.75);
    tick(1)
od
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "walk.prob"
    path.write_text(PROGRAM)
    return str(path)


class TestHelpers:
    def test_parse_valuation(self):
        assert parse_valuation("x=100, y=-2.5") == {"x": 100.0, "y": -2.5}

    def test_parse_valuation_empty(self):
        assert parse_valuation(None) == {}
        assert parse_valuation("") == {}

    def test_parse_valuation_malformed(self):
        with pytest.raises(ValueError):
            parse_valuation("x:3")

    def test_extract_annotations(self):
        anns = extract_invariant_annotations(PROGRAM)
        assert anns == {1: "x >= 0", 2: "x >= 1"}


class TestCommands:
    def test_analyze(self, program_file, capsys):
        code = main(["analyze", program_file, "--init", "x=100", "--degree", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "upper:" in out and "2*x" in out

    def test_analyze_with_cli_invariant(self, program_file, capsys):
        code = main(
            ["analyze", program_file, "--init", "x=50", "--degree", "1", "--invariant", "3: x >= 0"]
        )
        assert code == 0

    def test_analyze_no_lower(self, program_file, capsys):
        main(["analyze", program_file, "--init", "x=10", "--no-lower"])
        assert "lower:" not in capsys.readouterr().out

    def test_simulate(self, program_file, capsys):
        code = main(["simulate", program_file, "--init", "x=10", "--runs", "200"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mean cost:" in out
        assert "termination rate: 1.000" in out

    def test_simulate_refuses_nondet(self, tmp_path, capsys):
        path = tmp_path / "nd.prob"
        path.write_text("var x; if * then tick(1) fi")
        code = main(["simulate", str(path), "--init", "x=0"])
        assert code == 1
        assert "nondeterministic" in capsys.readouterr().err

    def test_cfg(self, program_file, capsys):
        assert main(["cfg", program_file]) == 0
        out = capsys.readouterr().out
        assert "branch" in out and "tick" in out

    def test_bench(self, capsys):
        assert main(["bench", "simple_loop"]) == 0
        out = capsys.readouterr().out
        assert "paper upper" in out

    def test_bench_with_init_override(self, capsys):
        assert main(["bench", "random_walk", "--init", "x=4,n=20,y=0"]) == 0
        assert "-40" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bitcoin_mining" in out and "[nondet]" in out
        assert out.count("\n") == 30


NONTERMINATING = """
var x;
while x >= 0 do
    x := x + 1;
    tick(1)
od
"""


class TestInvariantsCommand:
    COUPLED = (
        "var x, y;\n"
        "while x + y >= 1 do\n"
        "  if prob(0.5) then x := x - 1 else y := y - 1 fi;\n"
        "  tick(1)\n"
        "od\n"
    )

    @pytest.fixture
    def coupled_file(self, tmp_path):
        path = tmp_path / "coupled.prob"
        path.write_text(self.COUPLED)
        return str(path)

    def test_text_dump_interval(self, program_file, capsys):
        code = main(["invariants", program_file, "--init", "x=100"])
        out = capsys.readouterr().out
        assert code == 0
        assert "domain: interval" in out
        assert "label 1:" in out and ">= 0" in out

    def test_octagon_emits_relational_rows(self, coupled_file, capsys):
        code = main(
            ["invariants", coupled_file, "--init", "x=5,y=5", "--domain", "octagon"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "domain: octagon" in out
        assert "y + x - 1 >= 0" in out  # the coupled-guard row

    def test_json_payload(self, coupled_file, capsys):
        import json

        code = main(
            [
                "invariants",
                coupled_file,
                "--init",
                "x=5,y=5",
                "--domain",
                "octagon",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-invariants/v1"
        assert payload["domain"] == "octagon"
        assert any("y + x" in row for rows in payload["labels"].values() for row in rows)

    def test_unreachable_label_marked(self, tmp_path, capsys):
        path = tmp_path / "dead.prob"
        path.write_text("var x;\nx := 1;\nif x <= 0 then\n  tick(5)\nelse\n  skip\nfi\n")
        code = main(["invariants", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "unreachable" in out


class TestErrorExits:
    """Malformed user input exits 2 with a one-line error (no traceback)."""

    def test_invariant_without_colon(self, program_file, capsys):
        code = main(["analyze", program_file, "--init", "x=5", "--invariant", "abc"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "LABEL:COND" in err

    def test_invariant_nonnumeric_label(self, program_file, capsys):
        code = main(["analyze", program_file, "--invariant", "foo: x >= 0"])
        assert code == 2
        assert "integer CFG label" in capsys.readouterr().err

    def test_malformed_init_assignment(self, program_file, capsys):
        code = main(["analyze", program_file, "--init", "x:3"])
        assert code == 2
        assert "invalid --init" in capsys.readouterr().err

    def test_non_numeric_init_value(self, program_file, capsys):
        code = main(["simulate", program_file, "--init", "x=ten"])
        assert code == 2
        assert "not a number" in capsys.readouterr().err

    def test_bad_degree(self, program_file, capsys):
        code = main(["analyze", program_file, "--degree", "two"])
        assert code == 2
        assert "--degree" in capsys.readouterr().err

    def test_missing_file(self, tmp_path, capsys):
        code = main(["analyze", str(tmp_path / "nope.prob")])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_unknown_benchmark_name(self, capsys):
        code = main(["bench", "no_such_bench"])
        assert code == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_parse_error_is_one_line(self, tmp_path, capsys):
        path = tmp_path / "broken.prob"
        path.write_text("var x; while x >= 1 do")
        code = main(["analyze", str(path)])
        assert code == 1
        assert "ParseError" in capsys.readouterr().err


class TestSimulateTruncation:
    def test_truncation_warning_printed(self, tmp_path, capsys):
        path = tmp_path / "diverge.prob"
        path.write_text(NONTERMINATING)
        code = main(["simulate", str(path), "--init", "x=0", "--runs", "20", "--max-steps", "50"])
        out = capsys.readouterr().out
        assert code == 0
        assert "termination rate: 0.000" in out
        assert "warning: 20 of 20 runs were truncated" in out

    def test_no_warning_when_all_terminate(self, program_file, capsys):
        code = main(["simulate", program_file, "--init", "x=5", "--runs", "50"])
        out = capsys.readouterr().out
        assert code == 0
        assert "truncated" not in out


class TestDegreeAuto:
    def test_analyze_degree_auto(self, program_file, capsys):
        code = main(["analyze", program_file, "--init", "x=100", "--degree", "auto"])
        out = capsys.readouterr().out
        assert code == 0
        assert "degree:  1 (auto)" in out
        assert "upper:" in out

    def test_bench_degree_and_cap_plumbed(self, capsys):
        code = main(["bench", "simple_loop", "--degree", "2", "--max-multiplicands", "3"])
        assert code == 0
        assert "upper:" in capsys.readouterr().out


class TestBenchAll:
    def test_bench_all_lists_every_benchmark(self, capsys):
        code = main(["bench", "--all"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("\n") >= 32  # 30 benchmarks + header + rule
        assert "bitcoin_mining" in out and "trader" in out

    def test_bench_all_rejects_name(self, capsys):
        code = main(["bench", "rdwalk", "--all"])
        assert code == 2
        assert "either" in capsys.readouterr().err


class TestBatchCommand:
    def test_batch_runs_spec(self, tmp_path, capsys):
        import json

        spec = tmp_path / "spec.json"
        spec.write_text(
            json.dumps(
                {
                    "defaults": {"degree": "auto"},
                    "tasks": [{"benchmark": "rdwalk"}, {"benchmark": "ber"}],
                }
            )
        )
        out_path = tmp_path / "report.json"
        code = main(
            ["batch", str(spec), "--jobs", "2", "--output", str(out_path), "--quiet"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "rdwalk" in captured.out and "ber" in captured.out
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == "repro-batch/v2"
        assert payload["failed"] == 0
        assert len(payload["reports"]) == 2
        assert all(r["status"] == "ok" for r in payload["reports"])

    def test_batch_failure_exit_code(self, tmp_path, capsys):
        import json

        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps([{"benchmark": "does_not_exist"}]))
        code = main(["batch", str(spec), "--quiet"])
        assert code == 1
        assert "unknown benchmark" in capsys.readouterr().err

    def test_batch_missing_spec(self, tmp_path, capsys):
        code = main(["batch", str(tmp_path / "nope.json")])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_batch_invalid_json(self, tmp_path, capsys):
        spec = tmp_path / "bad.json"
        spec.write_text("{not json")
        code = main(["batch", str(spec)])
        assert code == 2
        assert "invalid JSON" in capsys.readouterr().err


class TestBenchmarkSuggestions:
    """Typo'd names get difflib suggestions in the one-line exit-2 error."""

    def test_bench_typo_suggests_nearest(self, capsys):
        code = main(["bench", "rdwlk"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and err.count("\n") == 1
        assert "did you mean" in err and "rdwalk" in err

    def test_batch_spec_typo_suggests_nearest(self, tmp_path, capsys):
        import json

        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps([{"benchmark": "bitcon_mining"}]))
        code = main(["batch", str(spec), "--quiet", "--no-cache"])
        assert code == 1
        assert "did you mean bitcoin_mining" in capsys.readouterr().err

    def test_far_off_name_lists_registry(self, capsys):
        code = main(["bench", "zzzzqqqq"])
        assert code == 2
        err = capsys.readouterr().err
        assert "known:" in err and "rdwalk" in err


class TestCacheCommands:
    def test_stats_on_empty_cache(self, tmp_path, capsys):
        code = main(["cache", "stats", "--cache-dir", str(tmp_path / "c")])
        out = capsys.readouterr().out
        assert code == 0
        assert "entries: 0" in out

    def test_batch_populates_then_stats_then_clear(self, tmp_path, capsys):
        import json

        cache_dir = str(tmp_path / "cache")
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps([{"benchmark": "rdwalk"}, {"benchmark": "ber"}]))
        code = main(["batch", str(spec), "--quiet", "--cache-dir", cache_dir])
        captured = capsys.readouterr()
        assert code == 0
        assert "cache: 0 hits, 2 misses" in captured.err

        # Warm re-run: all hits, identical table.
        code = main(["batch", str(spec), "--quiet", "--cache-dir", cache_dir])
        warm = capsys.readouterr()
        assert code == 0
        assert "cache: 2 hits, 0 misses" in warm.err
        assert warm.out == captured.out

        code = main(["cache", "stats", "--json", "--cache-dir", cache_dir])
        stats = json.loads(capsys.readouterr().out)
        assert code == 0 and stats["entries"] == 2

        code = main(["cache", "clear", "--cache-dir", cache_dir])
        assert code == 0
        assert "removed 2" in capsys.readouterr().out
        main(["cache", "stats", "--json", "--cache-dir", cache_dir])
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_no_cache_opt_out(self, tmp_path, capsys):
        import json

        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps([{"benchmark": "rdwalk"}]))
        code = main(["batch", str(spec), "--quiet", "--no-cache"])
        captured = capsys.readouterr()
        assert code == 0
        assert "cache:" not in captured.err

    def test_bench_cache_dir_routes_through_engine(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "bench-cache")
        assert main(["bench", "rdwalk", "--cache-dir", cache_dir]) == 0
        first = capsys.readouterr()
        assert "cache: 0 hits, 1 misses" in first.err
        assert main(["bench", "rdwalk", "--cache-dir", cache_dir]) == 0
        second = capsys.readouterr()
        assert "cache: 1 hits, 0 misses" in second.err
        assert second.out == first.out


class TestServeArgValidation:
    def test_bad_port_rejected(self, capsys):
        code = main(["serve", "--port", "70000"])
        assert code == 2
        assert "--port" in capsys.readouterr().err

    def test_bad_jobs_rejected(self, capsys):
        code = main(["serve", "--jobs", "0"])
        assert code == 2
        assert "--jobs" in capsys.readouterr().err


class TestReviewRegressions:
    def test_bench_timeout_enforced_on_fixed_degree_path(self, capsys):
        code = main(["bench", "bitcoin_pool", "--timeout", "0.0001"])
        out = capsys.readouterr().out
        assert code == 1
        assert "timeout" in out

    def test_batch_unwritable_output_fails_fast(self, tmp_path, capsys):
        import json

        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps([{"benchmark": "rdwalk"}]))
        code = main(["batch", str(spec), "--output", str(tmp_path / "no_dir" / "out.json")])
        assert code == 2
        assert "cannot write" in capsys.readouterr().err


class TestSolverFlag:
    def test_unknown_solver_exits_2_with_suggestion(self, capsys):
        code = main(["bench", "rdwalk", "--solver", "lingprog"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown solver backend" in err and "linprog" in err

    def test_analyze_unknown_solver_exits_2(self, tmp_path, capsys):
        program = tmp_path / "p.prob"
        program.write_text("var x;\nwhile x >= 1 do\n x := x - 1;\n tick(1)\nod\n")
        code = main(["analyze", str(program), "--init", "x=5", "--solver", "nope"])
        assert code == 2
        assert "unknown solver backend" in capsys.readouterr().err

    def test_bench_solver_linprog_matches_default(self, capsys):
        assert main(["bench", "rdwalk"]) == 0
        default_out = capsys.readouterr().out
        assert main(["bench", "rdwalk", "--solver", "linprog"]) == 0
        linprog_out = capsys.readouterr().out
        assert default_out == linprog_out  # identical optima, any backend

    def test_batch_solver_recorded_in_report(self, tmp_path, capsys):
        import json

        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps([{"benchmark": "rdwalk"}]))
        out_path = tmp_path / "out.json"
        code = main(
            [
                "batch", str(spec), "--solver", "linprog",
                "--output", str(out_path), "--quiet", "--no-cache",
            ]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == "repro-batch/v2"
        assert payload["reports"][0]["solver"] == "linprog"
