"""Unit tests for the tail-bound (concentration) analysis subsystem."""

import math

import pytest

from repro.analysis import TailBound, analyze, derive_tail_bound
from repro.analysis.tails import DEFAULT_TAIL_HORIZON
from repro.core.preexpectation import step_difference_cases
from repro.core.synthesis import difference_bound
from repro.errors import InfeasibleError, UnboundedError
from repro.invariants import InvariantMap
from repro.polynomials import Polynomial
from repro.programs import get_benchmark
from repro.semantics import build_cfg
from repro.syntax import parse_program


def _rdwalk_result(**kwargs):
    bench = get_benchmark("rdwalk")
    return analyze(
        bench.program,
        init=dict(bench.init),
        invariants=bench.invariant_map(bench.init),
        degree=1,
        **kwargs,
    )


class TestStepDifferenceCases:
    def test_assignment_keeps_sampling_variable_with_support(self, rdwalk_cfg):
        h = {label.id: Polynomial.variable("x") * 2.0 for label in rdwalk_cfg}
        assign = next(l for l in rdwalk_cfg if l.kind == "assign")
        (case,) = step_difference_cases(rdwalk_cfg, h, assign)
        # diff = 2(x + r) - 2x = 2r: the raw sampling variable survives
        # (no expectation), and its support enters as constraints.
        (rvar,) = rdwalk_cfg.rvars
        assert case.diff.variables() == frozenset({rvar})
        assert len(case.support) == 2  # r - lo >= 0, hi - r >= 0
        assert all(g.evaluate_numeric({rvar: 1.0}) >= 0 for g in case.support)
        assert all(g.evaluate_numeric({rvar: -1.0}) >= 0 for g in case.support)

    def test_tick_includes_cost(self, rdwalk_cfg):
        h = {label.id: Polynomial.zero() for label in rdwalk_cfg}
        tick = next(l for l in rdwalk_cfg if l.kind == "tick")
        (case,) = step_difference_cases(rdwalk_cfg, h, tick)
        assert case.diff.evaluate_numeric({"x": 5.0}) == pytest.approx(1.0)

    def test_unbounded_sampling_support_raises(self, rdwalk_cfg):
        class UnboundedDist:
            def support_bounds(self):
                return (float("-inf"), float("inf"))

        (rvar,) = rdwalk_cfg.rvars
        rdwalk_cfg.rvars[rvar] = UnboundedDist()  # function-scoped fixture
        h = {label.id: Polynomial.variable("x") for label in rdwalk_cfg}
        assign = next(l for l in rdwalk_cfg if l.kind == "assign")
        with pytest.raises(UnboundedError):
            step_difference_cases(rdwalk_cfg, h, assign)

    def test_branch_yields_guarded_cases_for_both_sides(self, rdwalk_cfg):
        h = {label.id: Polynomial.variable("x") for label in rdwalk_cfg}
        branch = next(l for l in rdwalk_cfg if l.kind == "branch")
        cases = step_difference_cases(rdwalk_cfg, h, branch)
        assert len(cases) == 2
        assert all(case.guard for case in cases)


class TestDifferenceBound:
    def test_rdwalk_certificate_has_small_constant_bound(self):
        result = _rdwalk_result()
        c = difference_bound(result.cfg, result.invariants, result.upper.h)
        # Steps move x by +-1 and h by 2 per unit, plus the unit tick.
        assert 0.0 < c <= 4.0

    def test_zero_template_has_zero_bound_modulo_cost(self):
        # With h == 0 everywhere the only movement of X is the tick.
        program = parse_program("var x;\nwhile x >= 1 do\n x := x - 1;\n tick(1)\nod")
        cfg = build_cfg(program)
        inv = InvariantMap.from_strings(cfg, {1: "x >= 0", 2: "x >= 1", 3: "x >= 1"})
        h = {label.id: Polynomial.zero() for label in cfg}
        c = difference_bound(cfg, inv, h)
        assert c == pytest.approx(1.0)

    def test_unbounded_gradient_is_infeasible(self):
        # A quadratic h over an unbounded invariant has unbounded steps.
        result = _rdwalk_result()
        h = {
            label_id: poly * poly if not poly.is_zero() else poly
            for label_id, poly in result.upper.h.items()
        }
        with pytest.raises(InfeasibleError):
            difference_bound(result.cfg, result.invariants, h)


class TestTailBoundMath:
    def test_bound_at_matches_azuma_formula(self):
        tail = TailBound(c=2.0, horizon=100, expected=10.0)
        t = 30.0
        assert tail.bound_at(t) == pytest.approx(math.exp(-(t * t) / (2 * 4.0 * 100)))

    def test_bound_clamped_to_one_and_zero_c(self):
        assert TailBound(c=5.0, horizon=10, expected=0.0).bound_at(1e-9) <= 1.0
        assert TailBound(c=5.0, horizon=10, expected=0.0).bound_at(-1.0) == 1.0
        assert TailBound(c=0.0, horizon=10, expected=0.0).bound_at(1.0) == 0.0

    def test_round_trips_through_dict(self):
        result = _rdwalk_result()
        tail = derive_tail_bound(result, horizon=500)
        again = TailBound.from_dict(tail.to_dict())
        assert again == tail

    def test_probes_decrease_and_default_horizon(self):
        result = _rdwalk_result()
        tail = derive_tail_bound(result)
        assert tail.horizon == DEFAULT_TAIL_HORIZON
        bounds = [probe.bound for probe in tail.probes]
        assert bounds == sorted(bounds, reverse=True)
        assert all(0.0 < b <= 1.0 for b in bounds)

    def test_explicit_probes_and_validation(self):
        result = _rdwalk_result()
        tail = derive_tail_bound(result, horizon=100, probes=[5.0, 50.0])
        assert [probe.t for probe in tail.probes] == [5.0, 50.0]
        with pytest.raises(ValueError):
            derive_tail_bound(result, horizon=100, probes=[-1.0])
        with pytest.raises(ValueError):
            derive_tail_bound(result, horizon=0)


class TestAnalyzeWiring:
    def test_analyze_attaches_tail_bound(self):
        result = _rdwalk_result(tails=True, tail_horizon=2000)
        assert result.tail is not None
        assert result.tail.horizon == 2000
        assert result.tail.expected == pytest.approx(result.upper.value)
        assert not result.tail.refit
        assert "tail:" in result.summary()

    def test_analyze_without_tails_attaches_nothing(self):
        result = _rdwalk_result()
        assert result.tail is None

    def test_quadratic_certificate_refits_to_degree_one(self):
        bench = get_benchmark("rdwalk")
        result = analyze(
            bench.program,
            init=dict(bench.init),
            invariants=bench.invariant_map(bench.init),
            degree=2,
            tails=True,
            tail_horizon=1000,
        )
        assert result.tail is not None
        # Whether the degree-2 LP picked a linear or genuinely quadratic
        # h, the tail degree must be the one whose difference bound was
        # certified.
        assert result.tail.degree in (1, 2)
        if result.tail.refit:
            assert result.tail.degree == 1
            assert any("refit" in w for w in result.warnings)

    def test_unavailable_tail_is_a_warning_not_an_error(self):
        bench = get_benchmark("pol04")  # quadratic cost: no constant c
        result = analyze(
            bench.program,
            init=dict(bench.init),
            invariants=bench.invariant_map(bench.init),
            degree=2,
            tails=True,
        )
        assert result.tail is None
        assert any("tail bound unavailable" in w for w in result.warnings)
