"""Tests for the analyze() facade."""

import pytest

from repro import analyze
from repro.errors import SemanticsError
from tests.conftest import FIGURE2_SOURCE, RDWALK_SOURCE


class TestAnalyze:
    def test_from_source_string(self):
        result = analyze(RDWALK_SOURCE, init={"x": 100}, invariants={1: "x >= 0"})
        assert result.upper.value == pytest.approx(200.0, rel=1e-6)
        assert result.lower.value == pytest.approx(198.0, rel=1e-6)

    def test_auto_invariants_alone_suffice_for_rdwalk(self):
        result = analyze(RDWALK_SOURCE, init={"x": 100})
        assert result.upper is not None
        assert result.upper.value == pytest.approx(200.0, rel=1e-4)

    def test_figure2(self):
        result = analyze(
            FIGURE2_SOURCE,
            init={"x": 100, "y": 0},
            invariants={
                1: "x >= 0",
                2: "x >= 1",
                # y bounds let the bounded-update check accept y := r2.
                3: "x >= 0 and y + 1 >= 0 and 1 - y >= 0",
                4: "x >= 0 and y + 1 >= 0 and 1 - y >= 0",
            },
        )
        assert result.upper.value == pytest.approx(10100 / 3, rel=1e-6)
        assert result.mode.name == "signed-bounded-update"

    def test_mode_detection_nonnegative(self):
        result = analyze(
            "var a; while a >= 5 do a := 0.9 * a; tick(1) od",
            init={"a": 100},
            invariants={1: "a >= 4.5", 2: "a >= 5"},
        )
        assert result.mode.name == "nonnegative-general-update"
        assert result.lower is None

    def test_forced_signed_mode_warns(self):
        result = analyze(
            "var a; while a >= 5 do a := 0.9 * a; tick(1) od",
            init={"a": 100},
            invariants={1: "a >= 4.5", 2: "a >= 5"},
            mode="signed",
        )
        assert any("forced signed regime" in w for w in result.warnings)
        assert result.mode.lower

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            analyze(RDWALK_SOURCE, init={"x": 1}, mode="bogus")

    def test_compute_lower_false(self):
        result = analyze(RDWALK_SOURCE, init={"x": 10}, invariants={1: "x >= 0"}, compute_lower=False)
        assert result.lower is None

    def test_concentration_check(self):
        result = analyze(
            RDWALK_SOURCE, init={"x": 10}, invariants={1: "x >= 0"}, check_concentration=True
        )
        assert result.concentration is not None
        assert result.concentration.certifies_concentration

    def test_infeasible_degree_becomes_warning(self):
        result = analyze(
            FIGURE2_SOURCE,
            init={"x": 10, "y": 0},
            invariants={1: "x >= 0", 2: "x >= 1", 3: "x >= 0", 4: "x >= 0 and y + 1 >= 0 and 1 - y >= 0"},
            degree=1,
        )
        assert result.upper is None
        assert any("no degree-1 upper bound" in w for w in result.warnings)

    def test_summary_renders(self):
        result = analyze(RDWALK_SOURCE, init={"x": 10}, invariants={1: "x >= 0"})
        text = result.summary()
        assert "upper:" in text and "lower:" in text

    def test_properties(self):
        result = analyze(RDWALK_SOURCE, init={"x": 10}, invariants={1: "x >= 0"})
        assert result.upper_bound is not None
        assert result.lower_bound is not None

    def test_bad_initial_variable(self):
        with pytest.raises(SemanticsError):
            analyze(RDWALK_SOURCE, init={"nope": 3}).upper  # noqa: B018
