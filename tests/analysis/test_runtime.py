"""Tests for expected-runtime analysis via cost instrumentation."""

import pytest

from repro import analyze_runtime, build_cfg, instrument_runtime, parse_program, simulate
from repro.syntax import Tick


class TestInstrumentation:
    def test_existing_ticks_removed(self):
        prog = parse_program("var x; while x >= 1 do x := x - 1; tick(50) od")
        out = instrument_runtime(prog)
        costs = [s.cost for s in out.statements() if isinstance(s, Tick)]
        assert all(c.is_constant() and float(c.constant_term()) == 1.0 for c in costs)

    def test_each_loop_gains_a_tick(self):
        prog = parse_program(
            "var i, j; while i >= 1 do j := i; while j >= 1 do j := j - 1 od; i := i - 1 od"
        )
        out = instrument_runtime(prog)
        ticks = [s for s in out.statements() if isinstance(s, Tick)]
        assert len(ticks) == 2

    def test_straight_line_has_no_cost(self):
        prog = parse_program("var x; x := 1; tick(9)")
        out = instrument_runtime(prog)
        assert not [s for s in out.statements() if isinstance(s, Tick)]

    def test_original_untouched(self):
        prog = parse_program("var x; while x >= 1 do x := x - 1; tick(50) od")
        instrument_runtime(prog)
        costs = [s.cost for s in prog.statements() if isinstance(s, Tick)]
        assert float(costs[0].constant_term()) == 50.0

    def test_name_suffix(self):
        prog = parse_program("var x; skip", name="p")
        assert instrument_runtime(prog).name == "p-runtime"


class TestRuntimeBounds:
    def test_deterministic_loop(self):
        result = analyze_runtime(
            "var i; while i >= 1 do i := i - 1 od", init={"i": 40}, degree=1
        )
        assert result.upper.value == pytest.approx(40.0, rel=1e-6)
        assert result.lower.value == pytest.approx(39.0, rel=1e-6)

    def test_random_walk_runtime(self):
        source = "var x; while x >= 1 do x := x + (1, -1) : (0.25, 0.75) od"
        result = analyze_runtime(source, init={"x": 30}, degree=1)
        # E[iterations] = 2x.
        assert result.upper.value == pytest.approx(60.0, rel=1e-4)

    def test_runtime_matches_simulation(self):
        source = "var x; while x >= 1 do x := x + (1, -1) : (0.25, 0.75) od"
        result = analyze_runtime(source, init={"x": 30}, degree=1)
        instrumented = instrument_runtime(parse_program(source))
        stats = simulate(build_cfg(instrumented), {"x": 30}, runs=1500, seed=0)
        margin = 4 * stats.stderr()
        assert result.lower.value - margin <= stats.mean <= result.upper.value + margin

    def test_nested_loop_quadratic_runtime(self):
        source = """
        var i, j;
        while i >= 1 do
            j := i;
            while j >= 1 do
                j := j - 1
            od;
            i := i - 1
        od
        """
        # The quadratic bound needs the relational invariant j <= i,
        # which the interval generator cannot express; supply it for
        # the instrumented program's labels.
        result = analyze_runtime(
            source,
            init={"i": 20, "j": 0},
            degree=2,
            invariants={
                1: "i >= 0",
                2: "i >= 1",
                3: "i >= 1",
                4: "i >= 1 and j >= 0 and i - j >= 0",
                5: "i >= 1 and j >= 1 and i - j >= 0",
                6: "i >= 1 and j >= 1 and i - j >= 0",
                7: "i >= 1 and j >= 0 and 1 - j >= 0",
            },
        )
        # Total iterations = i + sum_{k<=i} k = i(i+3)/2 = 230 at i=20.
        assert result.upper.value == pytest.approx(230.0, rel=1e-4)
