"""Tests for the empirical martingale validator."""

import pytest

from repro.analysis import check_cost_martingale
from repro.core import synthesize_plcs, synthesize_pucs
from repro.polynomials import Polynomial

X = Polynomial.variable("x")


class TestValidator:
    def test_synthesized_pucs_passes(self, rdwalk_cfg, rdwalk_invariants):
        result = synthesize_pucs(rdwalk_cfg, rdwalk_invariants, {"x": 20}, degree=1)
        report = check_cost_martingale(rdwalk_cfg, result.h, "upper", {"x": 20}, runs=20, seed=0)
        assert report.ok()
        assert report.configurations_checked > 0

    def test_synthesized_plcs_passes(self, rdwalk_cfg, rdwalk_invariants):
        result = synthesize_plcs(rdwalk_cfg, rdwalk_invariants, {"x": 20}, degree=1)
        report = check_cost_martingale(rdwalk_cfg, result.h, "lower", {"x": 20}, runs=20, seed=0)
        assert report.ok()

    def test_wrong_certificate_caught(self, rdwalk_cfg):
        # h = x is NOT a PUCS for rdwalk (the true bound is 2x): at the
        # tick label, pre = 1 + h(l1) = x + 1, a violation of exactly 1.
        bogus = {1: X, 2: X, 3: X, 4: Polynomial.zero()}
        report = check_cost_martingale(rdwalk_cfg, bogus, "upper", {"x": 20}, runs=5, seed=0)
        assert not report.ok()
        assert report.max_violation == pytest.approx(1.0, abs=1e-9)
        assert report.worst_config is not None
        assert report.violations

    def test_too_generous_lower_caught(self, rdwalk_cfg):
        bogus = {1: 3 * X, 2: 3 * X, 3: 3 * X, 4: Polynomial.zero()}
        report = check_cost_martingale(rdwalk_cfg, bogus, "lower", {"x": 20}, runs=5, seed=0)
        assert not report.ok()

    def test_invalid_kind(self, rdwalk_cfg):
        with pytest.raises(ValueError):
            check_cost_martingale(rdwalk_cfg, {}, "middle", {"x": 1})

    def test_figure2_certificates(self, figure2_cfg, figure2_invariants):
        ub = synthesize_pucs(figure2_cfg, figure2_invariants, {"x": 20, "y": 0}, degree=2)
        report = check_cost_martingale(
            figure2_cfg, ub.h, "upper", {"x": 20, "y": 0}, runs=10, seed=1
        )
        assert report.ok(tol=1e-5)
