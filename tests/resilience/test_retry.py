"""RetryPolicy: budget semantics and the deterministic backoff schedule."""

import pytest

from repro.resilience import DEFAULT_RETRY_POLICY, RetryPolicy


class TestBudget:
    def test_defaults_allow_exactly_one_crash_retry(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 2
        assert policy.allows(1)
        assert not policy.allows(2)

    def test_max_attempts_one_disables_retries(self):
        assert not RetryPolicy(max_attempts=1).allows(1)

    def test_default_policy_is_the_default_construction(self):
        assert DEFAULT_RETRY_POLICY == RetryPolicy()

    @pytest.mark.parametrize("bad", [0, -1, 1.5, True, "2"])
    def test_invalid_max_attempts_rejected(self, bad):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=bad)

    @pytest.mark.parametrize(
        ("field", "value", "match"),
        [
            ("backoff_s", -0.1, "backoff_s"),
            ("multiplier", 0.5, "multiplier"),
            ("max_backoff_s", -1.0, "max_backoff_s"),
            ("jitter", 1.5, "jitter"),
            ("seed", 1.5, "seed"),
        ],
    )
    def test_invalid_schedule_fields_rejected(self, field, value, match):
        with pytest.raises(ValueError, match=match):
            RetryPolicy(**{field: value})


class TestSchedule:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy(seed=7)
        assert policy.delay_for(1, "rdwalk") == policy.delay_for(1, "rdwalk")

    def test_delay_varies_with_task_and_attempt(self):
        policy = RetryPolicy(seed=7)
        delays = {
            policy.delay_for(1, "a"),
            policy.delay_for(1, "b"),
            policy.delay_for(2, "a"),
        }
        assert len(delays) == 3

    def test_jitter_bounds(self):
        policy = RetryPolicy(backoff_s=1.0, multiplier=1.0, jitter=0.5)
        for attempt in (1, 2, 3):
            delay = policy.delay_for(attempt, "t")
            assert 1.0 <= delay <= 1.5

    def test_zero_jitter_is_exact_exponential(self):
        policy = RetryPolicy(backoff_s=0.1, multiplier=2.0, max_backoff_s=100.0, jitter=0.0)
        assert policy.delay_for(1) == pytest.approx(0.1)
        assert policy.delay_for(2) == pytest.approx(0.2)
        assert policy.delay_for(3) == pytest.approx(0.4)

    def test_backoff_ceiling_applies_before_jitter(self):
        policy = RetryPolicy(backoff_s=1.0, multiplier=10.0, max_backoff_s=2.0, jitter=0.0)
        assert policy.delay_for(5) == pytest.approx(2.0)

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError, match="attempt"):
            RetryPolicy().delay_for(0)


class TestJson:
    def test_round_trip(self):
        policy = RetryPolicy(max_attempts=3, backoff_s=0.2, seed=11)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown retry field"):
            RetryPolicy.from_dict({"max_attempts": 2, "retries": 3})

    def test_coerce(self):
        policy = RetryPolicy(max_attempts=4)
        assert RetryPolicy.coerce(None) is None
        assert RetryPolicy.coerce(policy) is policy
        assert RetryPolicy.coerce({"max_attempts": 4}) == policy
        with pytest.raises(ValueError, match="retry must be"):
            RetryPolicy.coerce(3)
