"""ResilientPool: worker death is survived, requeued, and bounded.

The worker functions live at module level so forked children resolve
them; each takes ``(payload, attempt)`` like the engine's pool worker.
"""

import os
import signal

import pytest

from repro.resilience import PoolTask, ResilientPool, RetryPolicy

#: Fast schedule so crash tests don't sit in backoff.
FAST = RetryPolicy(max_attempts=2, backoff_s=0.01, jitter=0.0)


def _double(payload, attempt):
    return payload * 2


def _die_on_first_attempt(payload, attempt):
    if attempt == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return (payload, attempt)


def _die_always(payload, attempt):
    os.kill(os.getpid(), signal.SIGKILL)


def _raise_on_first_attempt(payload, attempt):
    if attempt == 1:
        raise RuntimeError("flaky dependency")
    return payload


class TestHappyPath:
    def test_results_keyed_by_task_id(self):
        tasks = [PoolTask(task_id=i, payload=i, name=f"t{i}") for i in range(8)]
        with ResilientPool(processes=3, worker=_double) as pool:
            outcomes = pool.run(tasks)
        assert set(outcomes) == set(range(8))
        for i in range(8):
            assert outcomes[i].value == 2 * i
            assert outcomes[i].attempts == 1
            assert not outcomes[i].crashed

    def test_pool_is_reusable_across_runs(self):
        with ResilientPool(processes=2, worker=_double) as pool:
            first = pool.run([PoolTask(task_id="a", payload=1)])
            second = pool.run([PoolTask(task_id="b", payload=2)])
        assert first["a"].value == 2
        assert second["b"].value == 4

    def test_on_result_streams_in_completion_order(self):
        seen = []
        tasks = [PoolTask(task_id=i, payload=i) for i in range(5)]
        with ResilientPool(processes=2, worker=_double) as pool:
            pool.run(tasks, on_result=lambda outcome: seen.append(outcome.task_id))
        assert sorted(seen) == list(range(5))

    def test_run_after_close_raises(self):
        pool = ResilientPool(processes=1, worker=_double)
        pool.close()
        with pytest.raises(RuntimeError, match="terminated"):
            pool.run([PoolTask(task_id=0, payload=0)])


class TestWorkerDeath:
    def test_sigkilled_worker_is_respawned_and_task_retried(self):
        tasks = [
            PoolTask(task_id=i, payload=i, retry=FAST, name=f"t{i}") for i in range(4)
        ]
        # Task 2's worker dies on the first attempt; the retry succeeds.
        tasks[2] = PoolTask(task_id=2, payload=2, retry=FAST, name="victim")
        with ResilientPool(processes=2, worker=_die_on_first_attempt) as pool:
            # Every task dies once under this worker fn, so give each a
            # budget of 2: the pool must survive a death *per task*.
            outcomes = pool.run(tasks)
            assert pool.crashes == 4
            assert pool.respawns >= 4
        for i in range(4):
            assert outcomes[i].value == (i, 2), i
            assert outcomes[i].attempts == 2
            assert not outcomes[i].crashed

    def test_budget_exhaustion_reports_crashed(self):
        task = PoolTask(
            task_id="doomed",
            payload=0,
            retry=RetryPolicy(max_attempts=3, backoff_s=0.01, jitter=0.0),
            name="doomed",
        )
        with ResilientPool(processes=1, worker=_die_always) as pool:
            outcome = pool.run([task])["doomed"]
        assert outcome.crashed
        assert outcome.attempts == 3
        assert "died" in outcome.detail
        assert "3 attempt(s)" in outcome.detail

    def test_max_attempts_one_crashes_immediately(self):
        task = PoolTask(
            task_id=0, payload=0, retry=RetryPolicy(max_attempts=1), name="one-shot"
        )
        with ResilientPool(processes=1, worker=_die_always) as pool:
            outcome = pool.run([task])[0]
        assert outcome.crashed
        assert outcome.attempts == 1

    def test_crash_does_not_poison_siblings(self):
        # Every worker dies on its first attempt; task 3 has no retry
        # budget and must crash — but only task 3.  This is exactly the
        # event that makes concurrent.futures raise BrokenProcessPool
        # for every sibling in flight.
        tasks = [
            PoolTask(task_id=i, payload=i, retry=FAST, name=f"t{i}") for i in range(6)
        ]
        tasks[3] = PoolTask(
            task_id=3, payload=3, retry=RetryPolicy(max_attempts=1), name="t3"
        )
        with ResilientPool(processes=2, worker=_die_on_first_attempt) as pool:
            outcomes = pool.run(tasks)
        assert outcomes[3].crashed
        for i in (0, 1, 2, 4, 5):
            assert not outcomes[i].crashed, i
            assert outcomes[i].value == (i, 2)

    def test_worker_exception_is_retried_like_a_crash(self):
        task = PoolTask(task_id=0, payload=41, retry=FAST, name="flaky")
        with ResilientPool(processes=1, worker=_raise_on_first_attempt) as pool:
            outcome = pool.run([task])[0]
        assert not outcome.crashed
        assert outcome.value == 41
        assert outcome.attempts == 2
