"""Deterministic fault injection: plan parsing, matching, hook behavior."""

import json

import pytest

from repro.errors import InjectedFaultError
from repro.resilience import FaultPlan, FaultSpec, faults


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    """No installed plan, no ``REPRO_FAULTS`` leaking across tests."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.install_plan(None)
    yield
    faults.install_plan(None)


class TestFaultSpec:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown fault op"):
            FaultSpec(op="explode")

    @pytest.mark.parametrize(
        ("kwargs", "match"),
        [
            ({"attempts": [0]}, "attempts"),
            ({"seconds": -1.0}, "seconds"),
            ({"probability": 1.5}, "probability"),
        ],
    )
    def test_invalid_fields_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            FaultSpec(op="delay", **kwargs)

    def test_glob_and_attempt_gating(self):
        spec = FaultSpec(op="kill", task="table5_*", attempts=[1])
        assert spec.matches("table5_bitcoin", attempt=1, seed=0)
        assert not spec.matches("table5_bitcoin", attempt=2, seed=0)
        assert not spec.matches("table2_ber", attempt=1, seed=0)

    def test_probability_draw_is_deterministic(self):
        spec = FaultSpec(op="fail", task="*", probability=0.5)
        first = [spec.matches(f"t{i}", 1, seed=3) for i in range(32)]
        again = [spec.matches(f"t{i}", 1, seed=3) for i in range(32)]
        assert first == again
        assert any(first) and not all(first)  # a draw, not a constant

    def test_unknown_dict_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown fault field"):
            FaultSpec.from_dict({"op": "kill", "target": "x"})


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(op="kill", task="rdwalk", attempts=[1]),
                FaultSpec(op="delay", task="slow_*", seconds=0.5),
            ),
            seed=7,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_select_returns_first_matching_op(self):
        plan = FaultPlan(faults=(FaultSpec(op="kill", task="a", attempts=[1]),))
        assert plan.select("kill", "a", attempt=1) is not None
        assert plan.select("kill", "a", attempt=2) is None
        assert plan.select("delay", "a", attempt=1) is None

    def test_non_object_json_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_json("[1, 2]")

    def test_unknown_plan_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan field"):
            FaultPlan.from_dict({"seed": 1, "rules": []})


class TestActivation:
    def test_no_plan_by_default(self):
        assert faults.active_plan() is None

    def test_install_plan_overrides_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, '{"seed": 1, "faults": []}')
        installed = FaultPlan(seed=99)
        faults.install_plan(installed)
        assert faults.active_plan() is installed

    def test_env_inline_json(self, monkeypatch):
        monkeypatch.setenv(
            faults.ENV_VAR, '{"seed": 5, "faults": [{"op": "kill", "task": "x"}]}'
        )
        plan = faults.active_plan()
        assert plan is not None
        assert plan.seed == 5
        assert plan.faults[0].op == "kill"

    def test_env_plan_file(self, monkeypatch, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"seed": 2, "faults": []}))
        monkeypatch.setenv(faults.ENV_VAR, str(path))
        plan = faults.active_plan()
        assert plan is not None
        assert plan.seed == 2

    def test_invalid_env_plan_raises(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, '{"seed": 1, "bogus": []}')
        with pytest.raises(ValueError, match="invalid REPRO_FAULTS"):
            faults.active_plan()


class TestHooks:
    def test_fail_raises_injected_fault(self):
        faults.install_plan(FaultPlan(faults=(FaultSpec(op="fail", task="flaky"),)))
        with pytest.raises(InjectedFaultError, match="flaky"):
            faults.on_task_attempt("flaky", 1)
        faults.on_task_attempt("steady", 1)  # non-matching: no-op

    def test_kill_is_inert_outside_pool_workers(self):
        # A kill rule matching the *host* process must never fire — the
        # hook is gated on the worker-process flag, which this test
        # process does not set.
        faults.install_plan(FaultPlan(faults=(FaultSpec(op="kill", task="*"),)))
        faults.on_task_attempt("anything", 1)  # still alive == pass

    def test_delay_sleeps(self, monkeypatch):
        slept = []
        monkeypatch.setattr(faults.time, "sleep", slept.append)
        faults.install_plan(
            FaultPlan(faults=(FaultSpec(op="delay", task="slow", seconds=0.25),))
        )
        faults.on_task_attempt("slow", 1)
        assert slept == [0.25]

    def test_corrupt_entry_truncates_matching_file(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text("x" * 100)
        faults.install_plan(FaultPlan(faults=(FaultSpec(op="corrupt-entry", task="tor*"),)))
        faults.on_cache_store("other", path)
        assert path.stat().st_size == 100  # no match: untouched
        faults.on_cache_store("torn", path)
        assert path.stat().st_size == 50
