"""Torn cache entries: detected, deleted, recounted as misses."""

import json

import pytest

from repro.batch.spec import AnalysisReport
from repro.cache import ResultCache
from repro.resilience import FaultPlan, FaultSpec, faults


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.install_plan(None)
    yield
    faults.install_plan(None)


def _report(name="torn"):
    return AnalysisReport(name=name, status="ok", upper_value=42.0, degree=2)


KEY = "0" * 16


class TestTornEntries:
    def test_truncated_entry_self_heals_as_miss(self, tmp_path):
        writer = ResultCache(root=tmp_path)
        assert writer.store(KEY, _report())
        path = tmp_path / f"{KEY}.json"
        size = path.stat().st_size
        path.write_bytes(path.read_bytes()[: size // 2])  # torn write

        # A fresh instance (no memory copy) must hit the torn file.
        reader = ResultCache(root=tmp_path)
        assert reader.lookup(KEY) is None
        assert reader.misses == 1
        assert reader.hits == 0
        assert not path.exists()  # healed: deleted, next store is clean

        # And the heal is complete: a re-store round-trips again.
        assert reader.store(KEY, _report())
        fresh = ResultCache(root=tmp_path)
        revived = fresh.lookup(KEY)
        assert revived is not None
        assert revived.upper_value == 42.0

    def test_valid_json_invalid_report_also_heals(self, tmp_path):
        writer = ResultCache(root=tmp_path)
        assert writer.store(KEY, _report())
        path = tmp_path / f"{KEY}.json"
        entry = json.loads(path.read_text())
        entry["report"] = {"schema": "repro-report/v9", "name": "x", "status": "ok"}
        path.write_text(json.dumps(entry))

        reader = ResultCache(root=tmp_path)
        assert reader.lookup(KEY) is None
        assert reader.misses == 1
        assert not path.exists()

    def test_memory_copy_still_serves_after_disk_corruption(self, tmp_path):
        # The in-memory LRU holds the good serialization the writer
        # produced; only *cold* readers see the torn file.
        cache = ResultCache(root=tmp_path)
        assert cache.store(KEY, _report())
        path = tmp_path / f"{KEY}.json"
        path.write_text("{ torn")
        assert cache.lookup(KEY) is not None
        assert cache.hits == 1


class TestCorruptEntryFault:
    def test_fault_hook_tears_the_stored_entry(self, tmp_path):
        faults.install_plan(
            FaultPlan(faults=(FaultSpec(op="corrupt-entry", task="torn"),))
        )
        cache = ResultCache(root=tmp_path)
        assert cache.store(KEY, _report("torn"))
        path = tmp_path / f"{KEY}.json"
        assert path.exists()
        with pytest.raises(json.JSONDecodeError):
            json.loads(path.read_text())  # the file really is torn

        faults.install_plan(None)
        reader = ResultCache(root=tmp_path)
        assert reader.lookup(KEY) is None  # self-heal path, end to end
        assert reader.misses == 1
        assert not path.exists()

    def test_non_matching_store_is_untouched(self, tmp_path):
        faults.install_plan(
            FaultPlan(faults=(FaultSpec(op="corrupt-entry", task="torn"),))
        )
        cache = ResultCache(root=tmp_path)
        assert cache.store(KEY, _report("healthy"))
        reader = ResultCache(root=tmp_path)
        assert reader.lookup(KEY) is not None
