"""Service backpressure: single-flight coalescing, 429 shedding, drain.

Each test builds its own server (function scope): the admission and
coalescing counters under test are cumulative per server instance.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cache import ResultCache
from repro.resilience import FaultPlan, FaultSpec, faults
from repro.service import create_server


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.install_plan(None)
    yield
    faults.install_plan(None)


@pytest.fixture
def make_service(tmp_path):
    """Factory: a running server + its cache, torn down afterwards."""
    started = []

    def _make(**kwargs):
        cache = ResultCache(tmp_path / "cache")
        server = create_server(host="127.0.0.1", port=0, jobs=1, cache=cache, **kwargs)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        started.append((server, thread))
        return server, cache, f"http://127.0.0.1:{server.port}"

    yield _make
    for server, thread in started:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _post_raw(base, payload):
    """POST /analyze, returning ``(status, body bytes, headers)``."""
    request = urllib.request.Request(
        base + "/analyze",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


def _fanout(base, payloads):
    """POST all payloads concurrently; results in payload order."""
    results = [None] * len(payloads)

    def _run(index):
        results[index] = _post_raw(base, payloads[index])

    threads = [
        threading.Thread(target=_run, args=(index,)) for index in range(len(payloads))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results


class TestSingleFlight:
    def test_sixteen_cold_racers_one_solve(self, make_service):
        server, cache, base = make_service()
        # Hold the leader's solve open long enough that all 15 other
        # racers join its flight (followers answer from cache and are
        # never delayed) — without this the coalesced count depends on
        # how the OS schedules the racing threads.
        faults.install_plan(
            FaultPlan(faults=(FaultSpec(op="delay", task="*", seconds=0.5),))
        )
        results = _fanout(base, [{"benchmark": "ber"}] * 16)

        assert [status for status, _, _ in results] == [200] * 16
        bodies = {body for _, body, _ in results}
        assert len(bodies) == 1  # byte-identical responses
        # Exactly one LP solve: the leader's miss+store, 15 follower
        # hits. These counters are timing-independent — a racer that
        # misses the flight window becomes a new leader whose solve
        # path *hits* the stored entry — unlike ``coalesced``, which
        # counts only the racers that joined before the leader
        # finished and so depends on scheduling under load.
        assert cache.misses == 1
        assert cache.hits == 15
        assert 1 <= server.single_flight.coalesced <= 15

    def test_distinct_requests_are_not_coalesced(self, make_service):
        server, cache, base = make_service()
        results = _fanout(base, [{"benchmark": "ber"}, {"benchmark": "rdwalk"}])
        assert [status for status, _, _ in results] == [200, 200]
        assert cache.misses == 2
        assert server.single_flight.coalesced == 0

    def test_healthz_reports_coalesced(self, make_service):
        server, _, base = make_service()
        faults.install_plan(
            FaultPlan(faults=(FaultSpec(op="delay", task="*", seconds=0.5),))
        )
        _fanout(base, [{"benchmark": "ber"}] * 4)
        with urllib.request.urlopen(base + "/healthz", timeout=30) as response:
            payload = json.loads(response.read())
        assert 1 <= payload["coalesced"] <= 3
        assert payload["rejected"] == 0
        assert payload["max_inflight"] == server.admission.limit


class TestAdmissionControl:
    def test_saturated_service_sheds_with_429(self, make_service):
        server, _, base = make_service(max_inflight=1)
        # Hold every in-process solve for long enough that the
        # concurrent distinct requests overlap on the single slot.
        faults.install_plan(
            FaultPlan(faults=(FaultSpec(op="delay", task="*", seconds=0.5),))
        )
        payloads = [{"benchmark": name} for name in ("ber", "rdwalk", "rdbub", "prdwalk")]
        results = _fanout(base, payloads)
        statuses = sorted(status for status, _, _ in results)
        assert statuses[0] == 200  # someone got through
        assert 429 in statuses  # and someone was shed
        for status, body, headers in results:
            if status == 429:
                assert int(headers["Retry-After"]) >= 1
                assert b"at capacity" in body
        assert server.admission.rejected == statuses.count(429)

    def test_shed_requests_are_counted_in_healthz(self, make_service):
        server, _, base = make_service(max_inflight=1)
        faults.install_plan(
            FaultPlan(faults=(FaultSpec(op="delay", task="*", seconds=0.5),))
        )
        _fanout(base, [{"benchmark": "ber"}, {"benchmark": "rdwalk"}])
        with urllib.request.urlopen(base + "/healthz", timeout=30) as response:
            payload = json.loads(response.read())
        assert payload["rejected"] == server.admission.rejected


class TestGracefulDrain:
    def test_drain_serves_503_then_stops_accepting(self, make_service):
        server, _, base = make_service()
        # Hold one request in flight so the accept loop stays up long
        # enough to observe the drain refusals.
        server.request_started()
        try:
            server.begin_drain()
            status, body, headers = _post_raw(base, {"benchmark": "ber"})
            assert status == 503
            assert headers.get("Connection") == "close"
            assert b"draining" in body
            with urllib.request.urlopen(base + "/healthz", timeout=30) as response:
                payload = json.loads(response.read())
            assert payload["status"] == "draining"
        finally:
            server.request_finished()
        assert server.wait_drained(5.0)

    def test_begin_drain_is_idempotent(self, make_service):
        server, _, _ = make_service()
        server.begin_drain()
        server.begin_drain()  # second call: no second helper, no error
        assert server.wait_drained(5.0)
