"""Chaos suite: induced worker deaths through the real batch engine.

The acceptance property of the resilient pool is *byte-identical
results under induced faults*: a seeded fault plan that SIGKILLs
workers mid-task must change nothing about the reports except the new
``attempts`` field (and wall clock, which no two runs share).
"""

import json
from pathlib import Path

import pytest

from repro.batch import AnalysisRequest, load_spec, run_batch
from repro.resilience import FaultPlan, FaultSpec, faults

SPEC_PATH = Path(__file__).resolve().parents[2] / "examples" / "batch_spec.json"

#: Report fields that legitimately differ between two executions.
WALL_CLOCK_FIELDS = ("runtime", "analysis_runtime", "upper_runtime", "lower_runtime")


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.install_plan(None)
    yield
    faults.install_plan(None)


def _scrub(report, drop_attempts=True):
    """A report dict with run-varying fields normalized away."""
    data = report.to_dict()
    for field in WALL_CLOCK_FIELDS:
        data.pop(field, None)
    if drop_attempts:
        data.pop("attempts", None)
    return data


def _requests():
    return [
        AnalysisRequest(benchmark="ber"),
        AnalysisRequest(benchmark="rdwalk"),
        AnalysisRequest(benchmark="rdbub"),
    ]


class TestWorkerDeathInRunBatch:
    def test_sigkilled_child_is_requeued_and_order_stable(self, monkeypatch):
        plan = FaultPlan(faults=(FaultSpec(op="kill", task="rdwalk", attempts=[1]),))
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        reports = run_batch(_requests(), jobs=2)
        assert [r.name for r in reports] == ["ber", "rdwalk", "rdbub"]
        by_name = {r.name: r for r in reports}
        assert by_name["rdwalk"].status == "ok"
        assert by_name["rdwalk"].attempts == 2  # died once, retried
        assert by_name["ber"].attempts == 1
        assert by_name["rdbub"].attempts == 1

    def test_results_match_fault_free_run_modulo_attempts(self, monkeypatch):
        baseline = run_batch(_requests(), jobs=2)
        plan = FaultPlan(faults=(FaultSpec(op="kill", task="rdwalk", attempts=[1]),))
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        chaotic = run_batch(_requests(), jobs=2)
        assert [_scrub(r) for r in chaotic] == [_scrub(r) for r in baseline]

    def test_exhausted_budget_yields_crashed_report(self, monkeypatch):
        plan = FaultPlan(faults=(FaultSpec(op="kill", task="rdwalk"),))  # every attempt
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        request = AnalysisRequest(benchmark="rdwalk", retry={"max_attempts": 2})
        reports = run_batch([AnalysisRequest(benchmark="ber"), request], jobs=2)
        assert reports[0].ok
        crashed = reports[1]
        assert crashed.status == "crashed"
        assert not crashed.ok
        assert crashed.attempts == 2
        assert "WorkerCrashError" in crashed.error
        assert "died" in crashed.error

    def test_retries_disabled_crashes_on_first_death(self, monkeypatch):
        plan = FaultPlan(faults=(FaultSpec(op="kill", task="rdwalk", attempts=[1]),))
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        request = AnalysisRequest(benchmark="rdwalk", retry={"max_attempts": 1})
        report = run_batch([request], jobs=2)[0]
        assert report.status == "crashed"
        assert report.attempts == 1

    def test_injected_failure_is_an_error_report_not_a_retry(self, monkeypatch):
        # "fail" models a deterministic in-task exception: same status
        # as any analysis error, exactly one attempt, no requeue.
        plan = FaultPlan(faults=(FaultSpec(op="fail", task="rdwalk"),))
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        report = run_batch([AnalysisRequest(benchmark="rdwalk")], jobs=2)[0]
        assert report.status == "error"
        assert report.attempts == 1
        assert "InjectedFaultError" in report.error


class TestFullSpecChaos:
    """The ISSUE's headline acceptance run: the whole example spec,
    one induced worker death per wave, output equal to the fault-free
    run modulo ``attempts``."""

    def test_example_spec_survives_seeded_kill_plan(self, monkeypatch):
        spec_requests = load_spec(SPEC_PATH)
        names = [request.display_name for request in spec_requests]
        # Kill the worker holding every third task on its first
        # attempt — a death in each dispatch wave, spread across the
        # whole run, all deterministic.  Rules match by display name,
        # so every task *sharing* a victim's name dies once too.
        victims = set(names[::3])
        plan = FaultPlan(
            faults=tuple(
                FaultSpec(op="kill", task=name, attempts=[1]) for name in sorted(victims)
            ),
            seed=7,
        )

        baseline = run_batch(load_spec(SPEC_PATH), jobs=4)
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        chaotic = run_batch(load_spec(SPEC_PATH), jobs=4)

        # Request order is preserved despite the crashes (report names
        # may differ from display names, e.g. tagged transformations).
        assert [r.name for r in chaotic] == [r.name for r in baseline]
        # Byte-identical modulo attempts (and wall clock): same JSON.
        scrub = lambda reports: json.dumps([_scrub(r) for r in reports], sort_keys=True)
        assert scrub(chaotic) == scrub(baseline)
        # Every victim consumed its retry; everyone else ran once
        # (faults match the *display* name the engine schedules under).
        for request, report in zip(spec_requests, chaotic):
            expected = 2 if request.display_name in victims else 1
            assert report.attempts == expected, request.display_name
        assert all(r.attempts == 1 for r in baseline)
