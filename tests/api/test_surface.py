"""Public-API surface snapshot.

`repro.api` is the versioned front door: accidentally dropping or
renaming anything here is a breaking change for every consumer, so the
exact surface is pinned as a golden list.  If a test below fails and
the change is *intentional*, update the snapshot in the same commit
and call it out as an API change.
"""

import repro
import repro.api as api

#: Golden `repro.api.__all__` — keep sorted.
API_ALL = [
    "AnalysisOptions",
    "AnalysisReport",
    "AnalysisRequest",
    "Analyzer",
    "CheckResult",
    "Diagnostic",
    "REPORT_SCHEMA",
    "REPORT_SCHEMA_V1",
    "REPORT_SCHEMA_V2",
    "REPORT_SCHEMA_V3",
    "REPORT_SCHEMA_V4",
    "REPORT_SCHEMA_V5",
    "ResultCache",
    "RetryPolicy",
    "SolveOutcome",
    "SolverBackend",
    "available_backends",
    "backend_specs",
    "default_backend_id",
    "get_backend",
    "load_spec",
    "register_backend",
    "report_from_dict",
    "report_to_v1",
    "report_to_v2",
    "report_to_v3",
    "report_to_v4",
    "report_to_v5",
    "request_fingerprint",
    "request_key",
    "requests_from_spec",
    "resolve_backend",
    "use_solver",
    "version_info",
]

#: Golden `AnalysisOptions` field list, in declaration order (order is
#: part of the JSON/`to_dict` contract).
OPTIONS_FIELDS = [
    "degree",
    "max_degree",
    "mode",
    "compute_lower",
    "max_multiplicands",
    "solver",
    "invariants",
    "auto_invariants",
    "invariant_domain",
    "init",
    "nondet_prob",
    "simulate_runs",
    "simulate_seed",
    "simulate_max_steps",
    "simulate_engine",
    "simulate_nondet",
    "timeout_s",
    "tag",
    "tails",
    "tail_horizon",
    "tail_probes",
    "check",
    "retry",
]

#: Golden `AnalysisReport` field list; the v1 prefix (everything before
#: `lower_skipped`) must never be reordered — `to_v1_dict` relies on it.
REPORT_FIELDS = [
    "name",
    "status",
    "init",
    "mode",
    "degree",
    "degrees_tried",
    "upper_value",
    "upper_bound",
    "upper_runtime",
    "lower_value",
    "lower_bound",
    "lower_runtime",
    "policy_enumerated",
    "sim_mean",
    "sim_std",
    "sim_truncated",
    "sim_termination_rate",
    "warnings",
    "error",
    "runtime",
    "analysis_runtime",
    "tag",
    "lower_skipped",
    "solver",
    "tail",
    "attempts",
    "diagnostics",
    "invariant_domain",
]


def test_api_all_snapshot():
    assert list(api.__all__) == API_ALL


def test_api_all_is_sorted_and_resolvable():
    assert list(api.__all__) == sorted(api.__all__)
    for name in api.__all__:
        assert getattr(api, name, None) is not None, name


def test_options_field_snapshot():
    assert list(api.AnalysisOptions.__dataclass_fields__) == OPTIONS_FIELDS


def test_report_field_snapshot():
    assert list(api.AnalysisReport.__dataclass_fields__) == REPORT_FIELDS


def test_report_schema_versions():
    assert api.REPORT_SCHEMA == "repro-report/v6"
    assert api.REPORT_SCHEMA_V1 == "repro-report/v1"
    assert api.REPORT_SCHEMA_V2 == "repro-report/v2"
    assert api.REPORT_SCHEMA_V3 == "repro-report/v3"
    assert api.REPORT_SCHEMA_V4 == "repro-report/v4"
    assert api.REPORT_SCHEMA_V5 == "repro-report/v5"


def test_top_level_reexports():
    assert repro.Analyzer is api.Analyzer
    assert repro.AnalysisOptions is api.AnalysisOptions
    assert repro.AnalysisReport is api.AnalysisReport
    assert repro.AnalysisRequest is api.AnalysisRequest


def test_version_info_shape():
    info = api.version_info()
    assert info["repro"] == repro.__version__
    assert info["schemas"]["report"] == api.REPORT_SCHEMA
    backend_ids = {spec["id"] for spec in info["solver_backends"]}
    assert {"highs", "linprog"} <= backend_ids
