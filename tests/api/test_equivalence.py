"""Legacy-path vs `repro.api`-path equivalence.

The redesign's contract: rewiring every front end onto
`Analyzer`/`AnalysisOptions` changes *no* analysis outcome.  These
tests pin that down three ways, over representatives of the table 2, 3
and 5 workloads:

* identical cache fingerprints — a legacy-built `AnalysisRequest` and
  the `Analyzer`-built request for the same work hash the same;
* byte-identical reports through a shared store — the legacy engine's
  cold report is exactly what the api path serves warm (and vice
  versa);
* semantically identical cold reports — modulo wall-clock fields.
"""

import pytest

from repro.api import AnalysisOptions, Analyzer, report_to_v1
from repro.batch import AnalysisRequest, requests_from_spec, run_batch
from repro.cache import ResultCache, request_key
from repro.programs import get_benchmark

#: (suite, bench_name, extra request fields) — one cheap representative
#: per table workload, coin-flip transformation included for table5.
REPRESENTATIVES = [
    ("table2", "ber", {}),
    ("table2", "rdbub", {}),  # nonnegative regime: exercises lower_skipped
    ("table3", "simple_loop", {}),
    ("table5", "bitcoin_mining", {"nondet_prob": 0.5, "simulate_runs": 20}),
]

#: Report fields that legitimately differ between two executions.
WALL_CLOCK_FIELDS = ("runtime", "analysis_runtime", "upper_runtime", "lower_runtime")


def _strip_clock(report_dict):
    return {k: v for k, v in report_dict.items() if k not in WALL_CLOCK_FIELDS}


@pytest.mark.parametrize("suite,bench_name,extra", REPRESENTATIVES)
class TestFingerprints:
    def test_legacy_request_and_api_request_hash_identically(self, suite, bench_name, extra):
        legacy = AnalysisRequest(benchmark=bench_name, **extra)
        api_key = Analyzer().fingerprint(bench_name, **extra)
        assert request_key(legacy) == api_key

    def test_suite_expansion_matches_api_requests(self, suite, bench_name, extra):
        expanded = {
            request_key(r)
            for r in requests_from_spec({"tasks": [{"suite": suite}]})
            if r.benchmark == bench_name and r.init is None
        }
        if suite == "table5":
            # the suite adds the coin flip but no simulation column here
            api_key = Analyzer().fingerprint(bench_name, nondet_prob=0.5)
        else:
            api_key = Analyzer().fingerprint(bench_name)
        assert api_key in expanded


@pytest.mark.parametrize("suite,bench_name,extra", REPRESENTATIVES)
class TestReports:
    def test_cold_reports_semantically_identical(self, suite, bench_name, extra):
        legacy = run_batch([AnalysisRequest(benchmark=bench_name, **extra)])[0]
        api = Analyzer().analyze(bench_name, **extra)
        assert _strip_clock(api.to_dict()) == _strip_clock(legacy.to_dict())

    def test_warm_api_read_of_legacy_write_is_byte_identical(
        self, suite, bench_name, extra, tmp_path
    ):
        store = tmp_path / "store"
        cold = run_batch([AnalysisRequest(benchmark=bench_name, **extra)], cache=ResultCache(store))[0]
        analyzer = Analyzer(cache=store)
        warm = analyzer.analyze(bench_name, **extra)
        assert analyzer.cache.hits == 1
        assert warm.to_dict() == cold.to_dict()

    def test_warm_legacy_read_of_api_write_is_byte_identical(
        self, suite, bench_name, extra, tmp_path
    ):
        store = tmp_path / "store"
        cold = Analyzer(cache=store).analyze(bench_name, **extra)
        cache = ResultCache(store)
        warm = run_batch([AnalysisRequest(benchmark=bench_name, **extra)], cache=cache)[0]
        assert cache.hits == 1
        assert warm.to_dict() == cold.to_dict()


class TestStagedVsEngine:
    @pytest.mark.parametrize("name", ["ber", "simple_loop", "rdbub"])
    def test_synthesize_matches_engine_values(self, name):
        report = Analyzer().analyze(name)
        result = Analyzer().synthesize(name)
        upper = result.upper.value if result.upper else None
        lower = result.lower.value if result.lower else None
        assert upper == report.upper_value
        assert lower == report.lower_value
        assert result.lower_skipped == report.lower_skipped

    def test_legacy_benchmark_kwargs_match_options_path(self):
        bench = get_benchmark("ber")
        with pytest.deprecated_call():
            legacy = bench.analyze(degree=2, compute_lower=True)
        modern = bench.analyze(AnalysisOptions(degree=2, compute_lower=True))
        assert legacy.upper.value == modern.upper.value
        assert legacy.lower.value == modern.lower.value


class TestV1Shim:
    def test_v1_dict_drops_only_newer_fields(self):
        report = Analyzer().analyze("ber")
        v6 = report.to_dict()
        v1 = report_to_v1(report)
        assert set(v6) - set(v1) == {
            "lower_skipped",
            "solver",
            "tail",
            "attempts",
            "diagnostics",
            "invariant_domain",
        }
        assert {k: v for k, v in v6.items() if k in v1} == v1
        # v1 key order is the v6 prefix (bitwise compatibility)
        assert list(v1) == [k for k in v6 if k in v1]

    def test_v2_dict_drops_only_newer_fields(self):
        from repro.api import report_to_v2

        report = Analyzer().analyze("ber")
        v6 = report.to_dict()
        v2 = report_to_v2(report)
        assert set(v6) - set(v2) == {"tail", "attempts", "diagnostics", "invariant_domain"}
        assert {k: v for k, v in v6.items() if k in v2} == v2
        # v2 key order is the v6 prefix (bitwise compatibility)
        assert list(v2) == [k for k in v6 if k in v2]

    def test_v3_dict_drops_only_newer_fields(self):
        from repro.api import report_to_v3

        report = Analyzer().analyze("ber")
        v6 = report.to_dict()
        v3 = report_to_v3(report)
        assert set(v6) - set(v3) == {"attempts", "diagnostics", "invariant_domain"}
        assert {k: v for k, v in v6.items() if k in v3} == v3
        # v3 key order is the v6 prefix (bitwise compatibility)
        assert list(v3) == [k for k in v6 if k in v3]

    def test_v5_dict_drops_only_newer_fields(self):
        from repro.api import report_to_v5

        report = Analyzer().analyze("ber")
        v6 = report.to_dict()
        v5 = report_to_v5(report)
        assert set(v6) - set(v5) == {"invariant_domain"}
        assert {k: v for k, v in v6.items() if k in v5} == v5
        # v5 key order is the v6 prefix (bitwise compatibility)
        assert list(v5) == [k for k in v6 if k in v5]

    def test_v1_reader_round_trip(self):
        from repro.api import AnalysisReport, report_from_dict

        report = Analyzer().analyze("ber")
        revived = report_from_dict(report_to_v1(report))
        assert isinstance(revived, AnalysisReport)
        assert revived.solver is None  # v1 dicts carry no backend id
        assert revived.upper_value == report.upper_value
        with pytest.raises(ValueError, match="unsupported report schema"):
            report_from_dict({"schema": "repro-report/v9", "name": "x", "status": "ok"})
