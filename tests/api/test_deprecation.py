"""Deprecation shims: legacy signatures must warn *and* keep working."""

import warnings

import pytest

from repro.api import AnalysisOptions
from repro.programs import get_benchmark


class TestBenchmarkAnalyzeShim:
    def test_legacy_kwargs_warn_but_work(self):
        bench = get_benchmark("rdwalk")
        with pytest.deprecated_call():
            result = bench.analyze(init={"n": 10}, degree=1)
        assert result.upper is not None
        assert result.upper.value == pytest.approx(
            bench.analyze(AnalysisOptions(init={"n": 10}, degree=1)).upper.value
        )

    def test_legacy_positional_valuation_warns(self):
        bench = get_benchmark("rdwalk")
        with pytest.deprecated_call():
            result = bench.analyze({"n": 10})
        assert result.upper is not None

    def test_bare_call_stays_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = get_benchmark("rdwalk").analyze()
        assert result.upper is not None

    def test_options_path_stays_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = get_benchmark("rdwalk").analyze(AnalysisOptions(degree=1))
        assert result.upper is not None

    def test_mixing_options_and_kwargs_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            get_benchmark("rdwalk").analyze(AnalysisOptions(), degree=2)

    def test_legacy_auto_degree_rejected(self):
        with pytest.raises(ValueError, match="auto"):
            get_benchmark("rdwalk").analyze(degree="auto")
