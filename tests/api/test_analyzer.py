"""`repro.api.Analyzer` behavior: target resolution, cache ownership,
staged methods, batch fan-out and the session solver."""

import pytest

from repro.api import AnalysisOptions, AnalysisRequest, Analyzer
from repro.programs import get_benchmark

SOURCE = """
var x;
while x >= 1 do
    x := x - 1;
    tick(1)
od
"""


class TestTargetResolution:
    def test_benchmark_name(self):
        report = Analyzer().analyze("rdwalk", degree=1)
        assert report.status == "ok"
        assert report.name == "rdwalk"

    def test_unknown_name_suggests(self):
        with pytest.raises(KeyError, match="rdwalk"):
            Analyzer().analyze("rdwlk")

    def test_source_text(self):
        report = Analyzer().analyze(SOURCE, init={"x": 10}, invariants={1: "x >= 0"})
        assert report.status == "ok"
        assert report.upper_value == pytest.approx(10.0)

    def test_benchmark_object(self):
        bench = get_benchmark("rdwalk")
        by_object = Analyzer().analyze(bench)
        by_name = Analyzer().analyze("rdwalk")
        assert by_object.upper_value == by_name.upper_value

    def test_parsed_program(self):
        from repro import parse_program

        report = Analyzer().analyze(
            parse_program(SOURCE, name="countdown"), init={"x": 4}, invariants={1: "x >= 0"}
        )
        assert report.status == "ok"
        assert report.name == "countdown"

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            Analyzer().analyze(42)


class TestSessionOptions:
    def test_session_defaults_apply(self):
        analyzer = Analyzer(AnalysisOptions(degree=1))
        assert analyzer.analyze("rdwalk").degree == 1

    def test_per_call_overrides_win(self):
        analyzer = Analyzer(AnalysisOptions(degree=1))
        assert analyzer.analyze("rdwalk", degree=2).degree == 2

    def test_explicit_options_replace_session(self):
        analyzer = Analyzer(AnalysisOptions(degree=1, tag="session"))
        report = analyzer.analyze("rdwalk", AnalysisOptions(degree=2))
        assert report.degree == 2
        assert report.tag is None  # the session tag is not inherited

    def test_session_solver_reaches_reports(self):
        assert Analyzer(solver="linprog").analyze("rdwalk").solver == "linprog"

    def test_analyze_batch_inherits_session_solver(self):
        analyzer = Analyzer(solver="linprog")
        reports = analyzer.analyze_batch(
            [AnalysisRequest(benchmark="rdwalk"), {"benchmark": "ber", "solver": "highs"}]
        )
        assert [r.solver for r in reports] == ["linprog", "highs"]


class TestCacheOwnership:
    def test_cache_true_uses_default_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        analyzer = Analyzer(cache=True)
        assert str(analyzer.cache.root) == str(tmp_path / "store")

    def test_cache_path_and_warm_hits(self, tmp_path):
        root = tmp_path / "cache"
        first = Analyzer(cache=root)
        cold = first.analyze("rdwalk")
        second = Analyzer(cache=root)
        warm = second.analyze("rdwalk")
        assert second.cache.hits == 1
        assert warm.to_dict() == cold.to_dict()

    def test_solver_sessions_never_alias(self, tmp_path):
        root = tmp_path / "cache"
        Analyzer(cache=root, solver="highs").analyze("rdwalk")
        linprog_session = Analyzer(cache=root, solver="linprog")
        report = linprog_session.analyze("rdwalk")
        assert linprog_session.cache.hits == 0  # distinct fingerprint, no alias
        assert report.solver == "linprog"


class TestStagedMethods:
    def test_parse_build_cfg(self):
        analyzer = Analyzer()
        program = analyzer.parse(SOURCE, name="countdown")
        assert program.name == "countdown"
        cfg = analyzer.build_cfg(program)
        assert cfg is not None
        assert analyzer.build_cfg(SOURCE).pvars == cfg.pvars

    def test_derive_invariants_matches_pipeline(self):
        analyzer = Analyzer()
        inv = analyzer.derive_invariants(SOURCE, init={"x": 5}, invariants={1: "x >= 0"})
        result = analyzer.synthesize(SOURCE, init={"x": 5}, invariants={1: "x >= 0"})
        assert {label for label, _ in inv.items()} == {
            label for label, _ in result.invariants.items()
        }

    def test_synthesize_returns_rich_result(self):
        result = Analyzer().synthesize("rdwalk")
        assert result.upper is not None
        assert result.cfg is not None
        assert result.mode.name == "signed-bounded-update"

    def test_synthesize_auto_escalates(self):
        result = Analyzer(AnalysisOptions(degree="auto")).synthesize("pol04")
        assert result.upper.degree == 2  # quadratic benchmark needs d=2

    def test_synthesize_exact_floats_no_pretty_roundtrip(self):
        from repro import parse_program

        third = 1.0 / 3.0
        source = (
            "var x;\nwhile x >= 1 do\n"
            f"    if prob({third!r}) then x := x - 1 else skip fi;\n"
            "    tick(1)\nod"
        )
        program = parse_program(source)
        result = Analyzer().synthesize(program, init={"x": 1}, invariants={1: "x >= 0"})
        # E[iterations] = 3 exactly only if the probability survived
        assert result.upper_bound is not None

    def test_fingerprint_stability(self):
        analyzer = Analyzer()
        assert analyzer.fingerprint("rdwalk") == analyzer.fingerprint("rdwalk")
        assert analyzer.fingerprint("rdwalk") != analyzer.fingerprint("rdwalk", degree=3)


class TestBatchAndPool:
    def test_analyze_batch_mixes_requests_and_specs(self):
        reports = Analyzer().analyze_batch(
            [AnalysisRequest(benchmark="rdwalk"), {"benchmark": "ber"}]
        )
        assert [r.name for r in reports] == ["rdwalk", "ber"]
        assert all(r.ok for r in reports)

    def test_analyze_batch_full_spec_object(self):
        reports = Analyzer().analyze_batch(
            [{"defaults": {"degree": 1}, "tasks": [{"benchmark": "rdwalk"}]}]
        )
        assert reports[0].degree == 1

    def test_session_pool_reused_and_closed(self):
        analyzer = Analyzer(jobs=2)
        try:
            first = analyzer.analyze_batch([AnalysisRequest(benchmark="rdwalk")] * 2)
            pool = analyzer._pool
            assert pool is not None
            second = analyzer.analyze_batch([AnalysisRequest(benchmark="ber")])
            assert analyzer._pool is pool  # same pool across batches
            assert all(r.ok for r in first + second)
        finally:
            analyzer.close()
        assert analyzer._pool is None
        with pytest.raises(RuntimeError, match="closed"):
            analyzer.analyze_batch([AnalysisRequest(benchmark="rdwalk")])

    def test_context_manager_closes(self):
        with Analyzer(jobs=2) as analyzer:
            analyzer.analyze_batch([AnalysisRequest(benchmark="rdwalk")])
        assert analyzer._closed


class TestLowerSkippedSurfacing:
    def test_regime_without_lower_bound_reports_reason(self):
        # rdbub runs in the nonnegative regime: no PLCS lower bound.
        report = Analyzer().analyze("rdbub")
        assert report.lower_value is None
        assert report.lower_skipped is not None
        assert "admits no lower bound" in report.lower_skipped

    def test_summary_mentions_skip(self):
        result = Analyzer().synthesize("rdbub")
        assert result.lower is None
        assert "lower:   skipped" in result.summary()

    def test_no_reason_when_lower_exists(self):
        report = Analyzer().analyze("rdwalk")
        assert report.lower_value is not None
        assert report.lower_skipped is None

    def test_no_reason_when_lower_not_requested(self):
        report = Analyzer().analyze("rdwalk", compute_lower=False)
        assert report.lower_value is None
        assert report.lower_skipped is None


class TestReviewRegressions:
    def test_analyze_batch_does_not_mutate_caller_requests(self):
        request = AnalysisRequest(benchmark="rdwalk")
        reports = Analyzer(solver="linprog").analyze_batch([request])
        assert reports[0].solver == "linprog"
        assert request.solver is None  # caller's object untouched
        # a later default session sees the default backend again
        assert Analyzer().analyze_batch([request])[0].solver == "highs"

    def test_lazy_pool_init_is_race_free(self):
        import threading

        analyzer = Analyzer(jobs=2)
        pools = []
        barrier = threading.Barrier(4)

        def grab():
            barrier.wait()
            pools.append(analyzer._session_pool())

        threads = [threading.Thread(target=grab) for _ in range(4)]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len({id(p) for p in pools}) == 1
        finally:
            analyzer.close()

    def test_options_path_supports_check_concentration(self):
        bench = get_benchmark("rdwalk")
        result = bench.analyze(AnalysisOptions(degree=1), check_concentration=True)
        assert result.concentration is not None

    def test_lent_analyzer_survives_server_close(self):
        from repro.service import create_server

        session = Analyzer()
        server = create_server(host="127.0.0.1", port=0, analyzer=session)
        server.server_close()
        assert session.analyze("rdwalk").status == "ok"  # still usable
        owned = create_server(host="127.0.0.1", port=0)
        owned_session = owned.analyzer
        owned.server_close()
        assert owned_session._closed  # server-built session is released
