"""`repro.api.AnalysisOptions` unit tests: validation, JSON round-trip,
merge layering, degree plans and the request bridge."""

import json

import pytest

from repro.api import AnalysisOptions, AnalysisRequest


class TestValidation:
    def test_defaults_are_valid(self):
        options = AnalysisOptions()
        assert options.degree is None
        assert options.max_degree == 4
        assert options.compute_lower is True
        assert options.auto_invariants is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"degree": 0},
            {"degree": -2},
            {"degree": "automatic"},
            {"degree": True},
            {"max_degree": 0},
            {"mode": "strict"},
            {"max_multiplicands": 0},
            {"solver": 3},
            {"nondet_prob": 1.5},
            {"nondet_prob": -0.1},
            {"simulate_runs": 0},
            {"simulate_max_steps": 0},
            {"timeout_s": 0},
            {"invariants": {"one": "x >= 0"}},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            AnalysisOptions(**kwargs)

    def test_coerces_mapping_fields(self):
        options = AnalysisOptions(invariants={"1": "x >= 0"}, init={"x": 10})
        assert options.invariants == {1: "x >= 0"}
        assert options.init == {"x": 10.0}
        assert isinstance(options.init["x"], float)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            AnalysisOptions().degree = 3


class TestJSONRoundTrip:
    def test_full_round_trip(self):
        options = AnalysisOptions(
            degree="auto",
            max_degree=3,
            mode="signed",
            compute_lower=False,
            max_multiplicands=2,
            solver="linprog",
            invariants={1: "x >= 0"},
            auto_invariants=False,
            init={"x": 7},
            nondet_prob=0.25,
            simulate_runs=50,
            simulate_seed=3,
            simulate_max_steps=1000,
            simulate_nondet=True,
            timeout_s=9.5,
            tag="t",
        )
        assert AnalysisOptions.from_json(options.to_json()) == options
        # to_dict is JSON-plain
        json.dumps(options.to_dict())

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown option"):
            AnalysisOptions.from_dict({"degre": 2})

    def test_json_string_keys_coerce_back(self):
        text = json.dumps(AnalysisOptions(invariants={2: "x >= 1"}).to_dict())
        assert AnalysisOptions.from_json(text).invariants == {2: "x >= 1"}


class TestMerge:
    def test_layering_later_wins(self):
        base = AnalysisOptions(degree=2, mode="auto")
        merged = base.merge({"degree": 3}, {"mode": "signed"}, timeout_s=5)
        assert (merged.degree, merged.mode, merged.timeout_s) == (3, "signed", 5)
        # the base is untouched
        assert base.degree == 2 and base.timeout_s is None

    def test_spec_style_defaults_plus_task(self):
        defaults = {"degree": "auto", "timeout_s": 120}
        task = {"degree": 2}
        merged = AnalysisOptions().merge(defaults, task)
        assert merged.degree == 2 and merged.timeout_s == 120

    def test_merge_validates(self):
        with pytest.raises(ValueError):
            AnalysisOptions().merge(degree=0)
        with pytest.raises(ValueError, match="unknown option"):
            AnalysisOptions().merge({"nope": 1})

    def test_merge_rejects_options_layer(self):
        with pytest.raises(TypeError, match="mappings"):
            AnalysisOptions().merge(AnalysisOptions(degree=2))


class TestDegreePlan:
    def test_fixed(self):
        assert AnalysisOptions(degree=3).degree_plan() == [3]

    def test_auto(self):
        assert AnalysisOptions(degree="auto", max_degree=3).degree_plan() == [1, 2, 3]

    def test_default_fallback(self):
        assert AnalysisOptions().degree_plan() == [None]
        assert AnalysisOptions().degree_plan(default=2) == [2]


class TestRequestBridge:
    def test_to_request_round_trips_via_from_request(self):
        options = AnalysisOptions(
            degree="auto", solver="linprog", init={"x": 5}, simulate_runs=10, tag="z"
        )
        request = options.to_request(benchmark="rdwalk")
        assert request.benchmark == "rdwalk"
        assert AnalysisOptions.from_request(request) == options

    def test_to_request_requires_exactly_one_target(self):
        with pytest.raises(ValueError):
            AnalysisOptions().to_request()
        with pytest.raises(ValueError):
            AnalysisOptions().to_request(benchmark="rdwalk", source="var x; skip")

    def test_every_request_option_field_is_covered(self):
        """Every non-identity AnalysisRequest field must have an
        AnalysisOptions counterpart — a new engine knob cannot silently
        bypass the public options object."""
        identity = {"benchmark", "source", "name"}
        request_fields = set(AnalysisRequest.__dataclass_fields__) - identity
        option_fields = set(AnalysisOptions.__dataclass_fields__)
        assert request_fields == option_fields
