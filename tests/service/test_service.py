"""HTTP analysis-service tests (`repro.service` / `repro serve`)."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.batch import AnalysisRequest, run_batch
from repro.cache import ResultCache
from repro.service import create_server


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("service-cache"))
    server = create_server(host="127.0.0.1", port=0, jobs=1, cache=cache)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, cache, f"http://127.0.0.1:{server.port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=30) as response:
        return response.status, json.loads(response.read())


def _post(base, path, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestEndpoints:
    def test_healthz(self, service):
        _, _, base = service
        status, payload = _get(base, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["schema"] == "repro-service/v2"
        assert payload["cache"] is not None

    def test_benchmarks_lists_registry(self, service):
        _, _, base = service
        status, payload = _get(base, "/benchmarks")
        assert status == 200
        names = [bench["name"] for bench in payload["benchmarks"]]
        assert payload["count"] == len(names) == 30
        assert "rdwalk" in names and "bitcoin_mining" in names
        nondet = {b["name"]: b["nondeterministic"] for b in payload["benchmarks"]}
        assert nondet["bitcoin_mining"] is True and nondet["rdwalk"] is False

    def test_cache_stats_endpoint(self, service):
        _, _, base = service
        status, payload = _get(base, "/cache/stats")
        assert status == 200
        assert payload["enabled"] is True
        assert "hits" in payload and "entries" in payload

    def test_unknown_path_404(self, service):
        _, _, base = service
        try:
            urllib.request.urlopen(base + "/nope", timeout=30)
            raise AssertionError("expected 404")
        except urllib.error.HTTPError as error:
            assert error.code == 404


class TestIntrospectionEndpoints:
    def test_options_defaults_matches_analysis_options(self, service):
        from repro.api import AnalysisOptions

        _, _, base = service
        status, payload = _get(base, "/options/defaults")
        assert status == 200
        assert payload["schema"] == "repro-service/v2"
        assert payload["defaults"] == AnalysisOptions().to_dict()
        # The relational-invariants knob is advertised, defaulting off.
        assert payload["defaults"]["invariant_domain"] == "interval"

    def test_options_defaults_round_trip(self, service):
        from repro.api import AnalysisOptions

        _, _, base = service
        _, payload = _get(base, "/options/defaults")
        assert AnalysisOptions.from_dict(payload["defaults"]) == AnalysisOptions()

    def test_version_endpoint(self, service):
        import repro
        from repro.api import REPORT_SCHEMA

        _, _, base = service
        status, payload = _get(base, "/version")
        assert status == 200
        assert payload["repro"] == repro.__version__
        assert payload["schemas"]["report"] == REPORT_SCHEMA
        assert payload["schemas"]["report"] == "repro-report/v6"
        assert "repro-report/v5" in payload["schemas"]["report_compat"]
        assert payload["schemas"]["service"] == "repro-service/v2"
        backends = {b["id"]: b for b in payload["solver_backends"]}
        assert "highs" in backends and "linprog" in backends
        assert sum(b["default"] for b in backends.values()) == 1


class TestAnalyze:
    def test_single_request_matches_engine_byte_for_byte(self, service):
        _, cache, base = service
        # Engine first (populates the shared store), then the service:
        # the POST must return the stored report verbatim.
        engine_report = run_batch([AnalysisRequest(benchmark="rdwalk")], cache=cache)[0]
        status, payload = _post(base, "/analyze", {"benchmark": "rdwalk"})
        assert status == 200
        # Not sort_keys: byte-identical includes dict key order.
        assert json.dumps(payload) == json.dumps(engine_report.to_dict())

    def test_repeat_post_is_a_cache_hit(self, service):
        _, cache, base = service
        _post(base, "/analyze", {"benchmark": "ber"})
        hits_before = cache.stats().hits
        status, payload = _post(base, "/analyze", {"benchmark": "ber"})
        assert status == 200 and payload["status"] == "ok"
        assert cache.stats().hits == hits_before + 1

    def test_inline_source_request(self, service):
        _, _, base = service
        status, payload = _post(
            base,
            "/analyze",
            {
                "source": "var x;\nwhile x >= 1 do\n x := x - 1;\n tick(1)\nod",
                "name": "countdown",
                "invariants": {"1": "x >= 0", "2": "x >= 1"},
                "init": {"x": 9},
                "degree": 1,
            },
        )
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["upper_value"] == pytest.approx(9.0, rel=1e-6)

    def test_octagon_domain_request_drops_annotations(self, service):
        # Registry annotations deleted (`"invariants": {}`), the octagon
        # generator alone must recover a certificate.
        _, _, base = service
        status, payload = _post(
            base,
            "/analyze",
            {
                "benchmark": "ber",
                "invariants": {},
                "invariant_domain": "octagon",
                "compute_lower": False,
            },
        )
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["invariant_domain"] == "octagon"
        assert payload["upper_value"] is not None

    def test_task_list_body(self, service):
        _, _, base = service
        status, payload = _post(
            base, "/analyze", [{"benchmark": "rdwalk"}, {"benchmark": "ber"}]
        )
        assert status == 200
        assert payload["schema"] == "repro-service/v2"
        assert payload["tasks"] == 2 and payload["failed"] == 0
        assert [r["name"] for r in payload["reports"]] == ["rdwalk", "ber"]

    def test_spec_body_with_suite(self, service):
        _, _, base = service
        status, payload = _post(
            base, "/analyze", {"defaults": {"degree": 1}, "tasks": [{"suite": "table2"}]}
        )
        assert status == 200
        assert payload["tasks"] == 15

    def test_analysis_failure_is_a_structured_report_not_http_error(self, service):
        _, _, base = service
        status, payload = _post(base, "/analyze", {"benchmark": "rdwlk"})
        assert status == 200
        assert payload["status"] == "error"
        assert "did you mean" in payload["error"]


class TestBadEnvelopes:
    def test_invalid_json_400(self, service):
        _, _, base = service
        request = urllib.request.Request(
            base + "/analyze", data=b"{not json", method="POST"
        )
        try:
            urllib.request.urlopen(request, timeout=30)
            raise AssertionError("expected 400")
        except urllib.error.HTTPError as error:
            assert error.code == 400
            assert "invalid JSON" in json.loads(error.read())["error"]

    def test_unknown_field_400(self, service):
        _, _, base = service
        status, payload = _post(base, "/analyze", {"bogus": 1})
        assert status == 400
        assert "unknown request field" in payload["error"]

    def test_empty_body_400(self, service):
        _, _, base = service
        request = urllib.request.Request(base + "/analyze", data=b"", method="POST")
        try:
            urllib.request.urlopen(request, timeout=30)
            raise AssertionError("expected 400")
        except urllib.error.HTTPError as error:
            assert error.code == 400

    def test_post_wrong_path_404(self, service):
        _, _, base = service
        status, payload = _post(base, "/benchmarks", {"benchmark": "rdwalk"})
        assert status == 404
