"""Concurrent `repro serve` traffic: identical bytes, exact counters,
enforced timeouts.

`ThreadingHTTPServer` runs every request on its own handler thread, so
this file pins the three properties that only show up under real
concurrency: warm responses are byte-identical across parallel POSTs,
the shared cache's hit/miss counters stay exact, and `timeout_s` is
enforced off the main thread (via the cooperative deadline — SIGALRM
cannot fire on handler threads).
"""

import concurrent.futures
import json
import threading
import urllib.request

import pytest

from repro.cache import ResultCache
from repro.service import create_server

PARALLEL = 8


@pytest.fixture()
def service(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    server = create_server(host="127.0.0.1", port=0, jobs=1, cache=cache)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, cache, f"http://127.0.0.1:{server.port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _post_bytes(base, payload):
    request = urllib.request.Request(
        base + "/analyze",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status, response.read()


def _fanout(base, payloads):
    with concurrent.futures.ThreadPoolExecutor(max_workers=len(payloads)) as pool:
        return list(pool.map(lambda p: _post_bytes(base, p), payloads))


class TestConcurrentAnalyze:
    def test_warm_parallel_posts_are_byte_identical(self, service):
        _, cache, base = service
        task = {"benchmark": "rdwalk", "degree": 1, "tails": True, "tail_horizon": 1000}
        status, first = _post_bytes(base, task)  # cold: one miss + store
        assert status == 200
        results = _fanout(base, [task] * PARALLEL)
        assert all(status == 200 for status, _ in results)
        bodies = {body for _, body in results}
        assert bodies == {first}  # every warm response is bitwise the cold one
        report = json.loads(first)
        assert report["status"] == "ok" and report["tail"]["horizon"] == 1000
        stats = cache.stats()
        assert stats.misses == 1 and stats.stores == 1
        assert stats.hits == PARALLEL

    def test_counters_stay_exact_across_mixed_parallel_waves(self, service):
        _, cache, base = service
        tasks = [
            {"benchmark": name, "degree": 1}
            for name in ("rdwalk", "ber", "bin", "prdwalk")
        ]
        # Cold wave: every distinct task misses exactly once.
        results = _fanout(base, tasks)
        assert all(status == 200 for status, _ in results)
        stats = cache.stats()
        assert stats.misses == len(tasks)
        assert stats.hits == 0
        # Two warm waves: every lookup is a hit, nothing new stored.
        for _ in range(2):
            results = _fanout(base, tasks)
            assert all(status == 200 for status, _ in results)
        stats = cache.stats()
        assert stats.misses == len(tasks)
        assert stats.hits == 2 * len(tasks)
        assert stats.stores == len(tasks)
        assert stats.hits + stats.misses == 3 * len(tasks)

    def test_identical_cold_posts_race_without_losing_counts(self, service):
        """N identical cold POSTs race on one key: each consults the
        store exactly once, so hits + misses == N regardless of who
        wins the store race."""
        _, cache, base = service
        task = {"benchmark": "C4B_t13", "degree": 1}
        results = _fanout(base, [task] * PARALLEL)
        assert all(status == 200 for status, _ in results)
        stats = cache.stats()
        assert stats.hits + stats.misses == PARALLEL
        assert stats.misses >= 1
        assert stats.stores == stats.misses  # every miss executed + stored

    def test_timeout_enforced_on_handler_threads(self, service):
        """`timeout_s` must produce status="timeout" even though the
        handler thread can never receive SIGALRM."""
        _, _, base = service
        task = {"benchmark": "queuing_network", "timeout_s": 0.001}
        status, body = _post_bytes(base, task)
        assert status == 200
        report = json.loads(body)
        assert report["status"] == "timeout"
        assert "0.001" in report["error"]

    def test_parallel_mixed_timeout_and_ok(self, service):
        """A blown budget on one handler thread never bleeds into the
        other concurrent requests (deadlines are thread-local)."""
        _, _, base = service
        tasks = [
            {"benchmark": "queuing_network", "timeout_s": 0.001},
            {"benchmark": "rdwalk", "degree": 1},
        ] * 3
        results = _fanout(base, tasks)
        reports = [json.loads(body) for _, body in results]
        statuses = [report["status"] for report in reports]
        assert statuses == ["timeout", "ok"] * 3
