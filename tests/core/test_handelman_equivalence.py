"""Equivalence of the optimized Handelman/LP paths with the seed logic.

The fast synthesis core rebuilt ``monoid_products`` (incremental with
memoisation), ``certificate_equalities`` (bulk row accumulation instead
of residual-polynomial arithmetic) and the LP assembly (sparse, direct
HiGHS).  These tests pin the optimized implementations against
straightforward reference implementations transcribed from the seed
revision, and against the seed revision's synthesized bounds on every
experiment-table benchmark.
"""

from itertools import combinations_with_replacement

import pytest

from repro.core.handelman import certificate_equalities, clear_monoid_cache, monoid_products
from repro.polynomials import LinForm, Polynomial

X = Polynomial.variable("x")
Y = Polynomial.variable("y")
Z = Polynomial.variable("z")


# ---------------------------------------------------------------------------
# Reference implementations (transcribed from the seed revision)
# ---------------------------------------------------------------------------


def naive_monoid_products(gammas, max_multiplicands):
    products = [Polynomial.constant(1.0)]
    seen = {products[0]}
    for count in range(1, max_multiplicands + 1):
        for combo in combinations_with_replacement(range(len(gammas)), count):
            prod = Polynomial.constant(1.0)
            for idx in combo:
                prod = prod * gammas[idx]
            if prod not in seen:
                seen.add(prod)
                products.append(prod)
    return products


def naive_certificate_equalities(target, gammas, max_multiplicands, site_name):
    multipliers = []
    residual = target
    for k, product in enumerate(naive_monoid_products(gammas, max_multiplicands)):
        c_name = f"c_{site_name}_{k}"
        multipliers.append(c_name)
        residual = residual - product * LinForm.unknown(c_name)
    equalities = []
    for _mono, coeff in residual.terms():
        form = coeff if isinstance(coeff, LinForm) else LinForm(float(coeff))
        equalities.append((dict(form.terms), -form.const))
    return equalities, multipliers


def canonical_rows(equalities):
    """Order-independent canonical form of equality rows."""
    return sorted(
        (tuple(sorted((name, round(c, 9)) for name, c in coeffs.items())), round(rhs, 9))
        for coeffs, rhs in equalities
    )


GAMMA_SETS = [
    [X],
    [X, Y],
    [X, X],  # duplicated constraint
    [X, 1 - X],
    [X, Y, 1 - X, 2 - Y],
    [X - 1, Y + 2, 3 - X - Y],
    [2 * X + 3 * Y - 1, 5 - X],
]


class TestMonoidEquivalence:
    @pytest.mark.parametrize("gammas", GAMMA_SETS)
    @pytest.mark.parametrize("cap", [0, 1, 2, 3])
    def test_products_match_naive(self, gammas, cap):
        clear_monoid_cache()
        fast = monoid_products(gammas, cap)
        naive = naive_monoid_products(gammas, cap)
        assert len(fast) == len(naive)
        for product in naive:
            assert any(product == p for p in fast)

    def test_products_order_stable_with_cache(self):
        clear_monoid_cache()
        first = monoid_products([X, 1 - X], 2)
        cached = monoid_products([X, 1 - X], 2)
        assert first == cached  # memoised call returns the same sequence

    def test_cache_returns_fresh_list(self):
        clear_monoid_cache()
        first = monoid_products([X], 2)
        first.append(Polynomial.constant(42.0))
        assert len(monoid_products([X], 2)) == 3


class TestCertificateEquivalence:
    TARGETS = [
        X + 1,
        X * (1 - X),
        Polynomial.constant(LinForm.unknown("a")) * X + LinForm.unknown("b"),
        Polynomial.constant(LinForm.unknown("a", 2.0)) * X * X
        - Polynomial.constant(LinForm.unknown("b", 0.5)) * Y
        + 3.0,
    ]

    @pytest.mark.parametrize("target", TARGETS)
    @pytest.mark.parametrize("gammas", [[X], [X, 1 - X], [X, Y, 2 - Y]])
    @pytest.mark.parametrize("cap", [1, 2])
    def test_rows_match_naive(self, target, gammas, cap):
        clear_monoid_cache()
        fast_rows, fast_mults = certificate_equalities(target, gammas, cap, "s")
        naive_rows, naive_mults = naive_certificate_equalities(target, gammas, cap, "s")
        assert fast_mults == naive_mults
        assert canonical_rows(fast_rows) == canonical_rows(naive_rows)


# ---------------------------------------------------------------------------
# End-to-end: optimized pipeline reproduces the seed bounds
# ---------------------------------------------------------------------------

#: Bound values synthesized by the seed revision (commit 002b8b8) for
#: every experiment-table benchmark at its default degree and anchor.
SEED_BOUNDS = {
    "ber": (200.0, 198.0),
    "bin": (20.0, 19.8),
    "linear01": (60.6, 59.4),
    "prdwalk": (114.28571428571428, 113.14285714285714),
    "race": (22.666666666666668, 20.0),
    "rdseql": (275.0, 271.74999999999994),
    "rdwalk": (202.0, 200.0),
    "sprdwalk": (202.0, 198.0),
    "C4B_t13": (50.0, 47.75),
    "prnes": (684.7368421052631, 606.7894736842105),
    "condand": (40.0, 0.0),
    "pol04": (11179.5, 11169.0),
    "pol05": (1375.0, 1372.0),
    "rdbub": (1199.9999999999995, None),
    "trader": (4500.0, 4440.0),
    "bitcoin_mining": (-146.025, -147.5),
    "bitcoin_pool": (-77863.50000000009, -80387.49999999988),
    "queuing_network": (30.136755042838836, 8.932),
    "species_fight": (2529.9999999999977, None),
    "simple_loop": (13400.000000000004, 13399.333333333338),
    "nested_loop": (7650.000000000002, 7450.000000000002),
    "random_walk": (-20.0, -22.5),
    "robot_2d": (1922.6160007150902, 1691.2829541464162),
    "goods_discount": (-25.28617283950617, -30.493086419753116),
    "pollutant_disposal": (1940.3999999999933, 1558.0000000000027),
}


def _all_benchmarks():
    from repro.programs import TABLE2_BENCHMARKS, TABLE3_BENCHMARKS

    return TABLE2_BENCHMARKS + TABLE3_BENCHMARKS


@pytest.mark.parametrize("bench", _all_benchmarks(), ids=lambda b: b.name)
def test_bounds_match_seed(bench):
    expected_upper, expected_lower = SEED_BOUNDS[bench.name]
    result = bench.analyze()
    for expected, bound_result in ((expected_upper, result.upper), (expected_lower, result.lower)):
        if expected is None:
            assert bound_result is None
        else:
            assert bound_result is not None
            tolerance = 1e-6 * max(1.0, abs(expected))
            assert bound_result.value == pytest.approx(expected, abs=tolerance)
