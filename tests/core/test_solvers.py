"""Solver-backend registry tests (`repro.core.solvers`)."""

import pytest

from repro.core import lp as lp_module
from repro.core.lp import LinearProgram
from repro.core.solvers import (
    SolveOutcome,
    available_backends,
    backend_specs,
    default_backend_id,
    get_backend,
    register_backend,
    resolve_backend,
    resolved_solver_id,
    unregister_backend,
    use_solver,
)
from repro.polynomials import LinForm


def _tiny_lp() -> LinearProgram:
    # min a  s.t.  a + c = 3, c >= 0  -> a = 3 at c = 0... the solver
    # may push c up; pin with a second row: a - c = 1 -> a = 2, c = 1.
    lp = LinearProgram()
    lp.add_unknown("a")
    lp.add_unknown("c", nonnegative=True)
    lp.add_equality({"a": 1.0, "c": 1.0}, 3.0)
    lp.add_equality({"a": 1.0, "c": -1.0}, 1.0)
    lp.set_objective(LinForm(terms={"a": 1.0}))
    return lp


class TestRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        assert "highs" in names and "linprog" in names

    def test_unknown_name_suggests_nearest(self):
        with pytest.raises(KeyError, match="linprog"):
            get_backend("lingprog")
        with pytest.raises(KeyError, match="highs"):
            get_backend("hihgs")

    def test_default_is_highs_when_available(self):
        if get_backend("highs").available():
            assert default_backend_id() == "highs"
        else:  # pragma: no cover - stripped SciPy layout
            assert default_backend_id() == "linprog"

    def test_auto_and_none_resolve_to_default(self):
        default = default_backend_id()
        assert resolve_backend(None).id == default
        assert resolve_backend("auto").id == default
        assert resolved_solver_id(None) == default

    def test_register_rejects_duplicates_and_reserved_name(self):
        class Dummy:
            id = "linprog"

            def available(self):
                return True

            def solve(self, lp):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ValueError, match="already registered"):
            register_backend(Dummy())
        Dummy.id = "auto"
        with pytest.raises(ValueError, match="reserved"):
            register_backend(Dummy())

    def test_custom_backend_lifecycle(self):
        calls = []

        class Recording:
            id = "recording-test"

            def available(self):
                return True

            def solve(self, lp):
                calls.append(lp.num_variables)
                return get_backend("linprog").solve(lp)

        register_backend(Recording())
        try:
            assert "recording-test" in available_backends()
            with use_solver("recording-test"):
                solution = _tiny_lp().solve()
            assert calls == [2]
            assert solution.objective == pytest.approx(2.0)
        finally:
            unregister_backend("recording-test")
        assert "recording-test" not in available_backends()

    def test_unavailable_named_backend_refuses(self):
        class Broken:
            id = "broken-test"

            def available(self):
                return False

            def solve(self, lp):  # pragma: no cover
                raise NotImplementedError

        register_backend(Broken())
        try:
            with pytest.raises(RuntimeError, match="not available"):
                resolve_backend("broken-test")
        finally:
            unregister_backend("broken-test")

    def test_backend_specs_census(self):
        specs = {spec["id"]: spec for spec in backend_specs()}
        assert specs["linprog"]["available"] is True
        assert sum(spec["default"] for spec in specs.values()) == 1


class TestSolveEquivalence:
    def test_backends_agree_on_tiny_lp(self):
        by_backend = {}
        for name in ("highs", "linprog"):
            if not get_backend(name).available():
                continue  # pragma: no cover
            solution = _tiny_lp().solve(backend=name)
            by_backend[name] = (solution.objective, solution["a"], solution["c"])
        assert len(set(by_backend.values())) == 1

    def test_explicit_backend_beats_context(self):
        class Exploding:
            id = "exploding-test"

            def available(self):
                return True

            def solve(self, lp):  # pragma: no cover - must not run
                raise AssertionError("context backend used despite explicit argument")

        register_backend(Exploding())
        try:
            with use_solver("exploding-test"):
                solution = _tiny_lp().solve(backend="linprog")
            assert solution.objective == pytest.approx(2.0)
        finally:
            unregister_backend("exploding-test")

    def test_context_restores_previous(self):
        from repro.core.solvers import active_solver

        assert active_solver() is None
        with use_solver("linprog"):
            assert active_solver() == "linprog"
            with use_solver("highs"):
                assert active_solver() == "highs"
            assert active_solver() == "linprog"
        assert active_solver() is None

    def test_outcome_shape(self):
        outcome = get_backend("linprog").solve(_tiny_lp())
        assert isinstance(outcome, SolveOutcome)
        assert outcome.status == 0
        assert outcome.fun == pytest.approx(2.0)


class TestModuleWiring:
    def test_lp_module_exports_backends(self):
        assert lp_module.HighsDirectBackend().id == "highs"
        assert lp_module.LinprogBackend().id == "linprog"
        assert lp_module.LinprogBackend().available() is True
