"""Appendix E, step by step: the worked synthesis of Example 7.3.

The appendix spells out, for the Figure 2 program with the Figure 9
invariants, the Gamma sets, the monoid elements with at most two
multiplicands, and the final solution.  This module replays each step
against our implementation.
"""

import pytest

from repro.core import monoid_products, synthesize_plcs, synthesize_pucs
from repro.polynomials import Polynomial

X = Polynomial.variable("x")
Y = Polynomial.variable("y")


class TestAppendixE:
    def test_gamma_label1_true_branch_monoid(self):
        """(label 1, l' = l2): Gamma = {x, x - 1}, six monoid elements."""
        products = monoid_products([X, X - 1], 2)
        expected = [
            Polynomial.constant(1.0),
            X,
            X - 1,
            X * X - X,
            X * X,
            X * X - 2 * X + 1,
        ]
        assert len(products) == 6
        for u in expected:
            assert any(p == u for p in products)

    def test_gamma_label2_monoid(self):
        """(label 2): Gamma = {x - 1}, three monoid elements."""
        products = monoid_products([X - 1], 2)
        assert len(products) == 3

    def test_gamma_label4_monoid(self):
        """(label 4): Gamma = {x, 1 - y, 1 + y}, ten elements listed."""
        products = monoid_products([X, 1 - Y, 1 + Y], 2)
        assert len(products) == 10

    @pytest.fixture
    def solved(self, figure2_cfg, figure2_invariants):
        return synthesize_pucs(figure2_cfg, figure2_invariants, {"x": 100, "y": 0}, degree=2)

    def test_optimal_solution_h1(self, solved):
        """h(l1) = (1/3)x^2 + (1/3)x."""
        assert solved.h[1].almost_equal(X * X / 3 + X / 3, tol=1e-6)

    def test_optimal_solution_h4_value(self, solved):
        """h(l4) = (1/3)x^2 + xy + (1/3)x — checked at sample points (the
        LP optimum is unique in value, not in every coefficient)."""
        expected = X * X / 3 + X * Y + X / 3
        for x in (0.0, 1.0, 50.0, 100.0):
            for y in (-1.0, 0.0, 1.0):
                assert solved.h[4].evaluate_numeric({"x": x, "y": y}) == pytest.approx(
                    expected.evaluate_numeric({"x": x, "y": y}), rel=1e-5, abs=1e-5
                )

    def test_pucs_equals_plcs(self, figure2_cfg, figure2_invariants):
        """Appendix E: the same template is both PUCS and PLCS, so the
        expected cost is exactly (1/3)x0^2 + (1/3)x0 (Remark 8)."""
        ub = synthesize_pucs(figure2_cfg, figure2_invariants, {"x": 100, "y": 0}, degree=2)
        lb = synthesize_plcs(figure2_cfg, figure2_invariants, {"x": 100, "y": 0}, degree=2)
        assert ub.value == pytest.approx(10100 / 3, rel=1e-7)
        # Our PLCS differs by the exit-region constant 2/3 (Table 3).
        assert lb.value == pytest.approx(10100 / 3 - 2 / 3, rel=1e-7)

    def test_objective_form(self, figure2_cfg, figure2_invariants):
        """The objective minimized is h(l1, 100, 0) = 10000 a11 + 100 a13 + a16."""
        solved = synthesize_pucs(figure2_cfg, figure2_invariants, {"x": 100, "y": 0}, degree=2)
        assert solved.value == pytest.approx(
            solved.h[1].evaluate_numeric({"x": 100.0, "y": 0.0}), rel=1e-9
        )

    def test_paper_reported_value(self, solved):
        """The paper reports 3366.6 for x0 = 100."""
        assert solved.value == pytest.approx(3366.6667, abs=0.01)
