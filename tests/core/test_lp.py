"""LP backend tests."""

import pytest

from repro.core import LinearProgram
from repro.errors import InfeasibleError, SynthesisError, UnboundedError
from repro.polynomials import LinForm


def test_simple_minimization():
    lp = LinearProgram()
    lp.add_unknown("x", nonnegative=True)
    lp.add_unknown("y", nonnegative=True)
    lp.add_equality({"x": 1.0, "y": 1.0}, 10.0)
    lp.set_objective(LinForm(0.0, {"x": 1.0}))
    sol = lp.solve()
    assert sol.values["x"] == pytest.approx(0.0)
    assert sol.values["y"] == pytest.approx(10.0)
    assert sol.objective == pytest.approx(0.0)


def test_maximization():
    lp = LinearProgram()
    lp.add_unknown("x", nonnegative=True)
    lp.add_unknown("y", nonnegative=True)
    lp.add_equality({"x": 1.0, "y": 2.0}, 8.0)
    lp.set_objective(LinForm(0.0, {"x": 1.0}), maximize=True)
    assert lp.solve().objective == pytest.approx(8.0)


def test_free_variables_can_go_negative():
    lp = LinearProgram()
    lp.add_unknown("a", nonnegative=False)
    lp.add_unknown("c", nonnegative=True)
    lp.add_equality({"a": 1.0, "c": 1.0}, -5.0)
    lp.set_objective(LinForm(0.0, {"a": 1.0}), maximize=True)
    assert lp.solve().values["a"] == pytest.approx(-5.0)


def test_objective_offset():
    lp = LinearProgram()
    lp.add_unknown("x", nonnegative=True)
    lp.add_equality({"x": 1.0}, 3.0)
    lp.set_objective(LinForm(7.0, {"x": 1.0}))
    assert lp.solve().objective == pytest.approx(10.0)


def test_infeasible():
    lp = LinearProgram()
    lp.add_unknown("x", nonnegative=True)
    lp.add_equality({"x": 1.0}, -2.0)
    lp.set_objective(LinForm(0.0, {"x": 1.0}))
    with pytest.raises(InfeasibleError):
        lp.solve()


def test_unbounded():
    lp = LinearProgram()
    lp.add_unknown("a", nonnegative=False)
    lp.set_objective(LinForm(0.0, {"a": 1.0}), maximize=True)
    with pytest.raises(UnboundedError):
        lp.solve()


def test_contradictory_constant_row():
    lp = LinearProgram()
    lp.add_unknown("x", nonnegative=True)
    with pytest.raises(InfeasibleError):
        lp.add_equality({}, 1.0)


def test_zero_row_with_zero_rhs_ignored():
    lp = LinearProgram()
    lp.add_unknown("x", nonnegative=True)
    lp.add_equality({"x": 0.0}, 0.0)
    assert lp.num_equalities == 0


def test_unregistered_unknown_rejected():
    lp = LinearProgram()
    with pytest.raises(SynthesisError):
        lp.add_equality({"ghost": 1.0}, 0.0)


def test_conflicting_sign_registration_rejected():
    lp = LinearProgram()
    lp.add_unknown("x", nonnegative=True)
    with pytest.raises(SynthesisError):
        lp.add_unknown("x", nonnegative=False)


def test_idempotent_registration():
    lp = LinearProgram()
    lp.add_unknown("x", nonnegative=True)
    lp.add_unknown("x", nonnegative=True)
    assert lp.num_variables == 1


def test_empty_lp_rejected():
    with pytest.raises(SynthesisError):
        LinearProgram().solve()


def test_solution_indexing():
    lp = LinearProgram()
    lp.add_unknown("x", nonnegative=True)
    lp.add_equality({"x": 2.0}, 4.0)
    lp.set_objective(LinForm(0.0, {"x": 1.0}))
    sol = lp.solve()
    assert sol["x"] == pytest.approx(2.0)


class TestToleranceHandling:
    """Regression tests for the shared ZERO_TOL/CONSISTENCY_TOL cleanup."""

    def test_subtolerance_coefficients_dropped_from_mixed_rows(self):
        from repro.core import LinearProgram

        lp = LinearProgram()
        lp.add_unknown("a")
        lp.add_unknown("b")
        lp.add_equality({"a": 1.0, "b": 1e-15}, 2.0)
        assert lp.num_equalities == 1

    def test_all_subtolerance_row_is_kept_not_deleted(self):
        """A row whose coefficients are all tiny-but-nonzero is a real
        (badly scaled) constraint: it must neither raise nor vanish."""
        from repro.core import LinearProgram

        lp = LinearProgram()
        lp.add_unknown("c", nonnegative=True)
        lp.add_equality({"c": 5e-13}, 5e-10)  # forces c = 1000
        lp.add_equality({"c": 5e-13}, 1.0)  # badly scaled, not contradictory
        assert lp.num_equalities == 2

    def test_exact_zero_row_with_large_rhs_is_contradictory(self):
        from repro.core import LinearProgram
        from repro.errors import InfeasibleError

        lp = LinearProgram()
        lp.add_unknown("a")
        with pytest.raises(InfeasibleError):
            lp.add_equality({"a": 0.0}, 1.0)

    def test_duplicate_rows_deduplicated(self):
        from repro.core import LinearProgram

        lp = LinearProgram()
        lp.add_unknown("a")
        lp.add_equality({"a": 2.0}, 1.0)
        lp.add_equality({"a": 2.0}, 1.0)
        lp.add_equality({"a": 2.0}, 3.0)  # same coeffs, different rhs: kept
        assert lp.num_equalities == 2
