"""Side-condition checker tests (Definitions 6.9 etc.)."""

from repro.core import (
    check_bounded_costs,
    check_bounded_updates,
    check_nonnegative_costs,
    classify,
)
from repro.invariants import InvariantMap
from repro.semantics import build_cfg
from repro.syntax import parse_program


def make(source):
    return build_cfg(parse_program(source))


class TestBoundedUpdates:
    def test_shift_updates_pass(self):
        cfg = make("var x; sample r ~ discrete(1: 0.5, -1: 0.5); x := x + r; x := x - 2")
        assert check_bounded_updates(cfg)

    def test_copy_flagged_without_invariant(self):
        cfg = make("var x, i; x := i")
        report = check_bounded_updates(cfg)
        assert not report
        assert report.offending_labels == [1]

    def test_copy_passes_with_bounding_invariant(self):
        cfg = make("var x, i; x := i")
        inv = InvariantMap.from_strings(cfg, {1: "i >= 0 and 5 - i >= 0 and x >= 0 and 5 - x >= 0"})
        assert check_bounded_updates(cfg, inv)

    def test_scaling_flagged(self):
        cfg = make("var a; a := 1.1 * a")
        assert not check_bounded_updates(cfg)

    def test_scaling_passes_on_bounded_range(self):
        cfg = make("var a; a := 1.1 * a")
        inv = InvariantMap.from_strings(cfg, {1: "a >= 0 and 10 - a >= 0"})
        assert check_bounded_updates(cfg, inv)

    def test_unbounded_distribution_flagged(self):
        # A binomial is bounded; build an unbounded one via a stub.
        cfg = make("var x; sample r ~ binomial(3, 0.5); x := x + r")
        assert check_bounded_updates(cfg)


class TestCostChecks:
    def test_constant_costs(self):
        cfg = make("var x; tick(1); tick(2.5)")
        assert check_bounded_costs(cfg)
        assert check_nonnegative_costs(cfg)

    def test_variable_cost_not_bounded(self):
        cfg = make("var x; tick(x)")
        assert not check_bounded_costs(cfg)

    def test_negative_constant_cost(self):
        cfg = make("var x; tick(-1)")
        report = check_nonnegative_costs(cfg)
        assert not report
        assert report.offending_labels == [1]

    def test_variable_cost_nonnegative_with_invariant(self):
        cfg = make("var x; tick(x)")
        inv = InvariantMap.from_strings(cfg, {1: "x >= 0"})
        assert check_nonnegative_costs(cfg, inv)

    def test_variable_cost_unknown_sign_without_invariant(self):
        cfg = make("var x; tick(x)")
        assert not check_nonnegative_costs(cfg)

    def test_quadratic_cost_certified(self):
        cfg = make("var a, b; tick(a * b)")
        inv = InvariantMap.from_strings(cfg, {1: "a >= 0 and b >= 0"})
        assert check_nonnegative_costs(cfg, inv)


class TestClassify:
    def test_signed_bounded_update(self):
        cfg = make("var x; while x >= 1 do x := x - 1; tick(-1) od")
        mode = classify(cfg)
        assert mode.name == "signed-bounded-update"
        assert mode.upper and mode.lower
        assert not mode.require_nonnegative_template

    def test_nonnegative_general_update(self):
        cfg = make("var a; while a >= 5 do a := 1.1 * a; tick(1) od")
        mode = classify(cfg)
        assert mode.name == "nonnegative-general-update"
        assert mode.upper and not mode.lower
        assert mode.require_nonnegative_template

    def test_unsupported(self):
        cfg = make("var a; while a >= 5 do a := 1.1 * a; tick(-1) od")
        mode = classify(cfg)
        assert mode.name == "unsupported"
        assert not mode.upper and not mode.lower

    def test_reports_attached(self):
        cfg = make("var x; tick(1)")
        mode = classify(cfg)
        assert set(mode.reports) == {"bounded_updates", "nonnegative_costs", "bounded_costs"}
