"""Handelman certificate machinery tests."""

import pytest

from repro.core import certificate_equalities, monoid_products
from repro.errors import NonLinearError
from repro.polynomials import LinForm, Polynomial

X = Polynomial.variable("x")
Y = Polynomial.variable("y")


class TestMonoid:
    def test_includes_one(self):
        products = monoid_products([X], 2)
        assert Polynomial.constant(1.0) in products

    def test_cap_zero(self):
        assert monoid_products([X, Y], 0) == [Polynomial.constant(1.0)]

    def test_count_single_gamma(self):
        # 1, x, x^2, x^3
        assert len(monoid_products([X], 3)) == 4

    def test_count_two_gammas(self):
        # 1 | x, y | x^2, xy, y^2
        assert len(monoid_products([X, Y], 2)) == 6

    def test_duplicates_removed(self):
        assert len(monoid_products([X, X], 2)) == 3  # 1, x, x^2

    def test_degrees_bounded_by_cap(self):
        assert all(p.degree() <= 3 for p in monoid_products([X, Y, 1 - X], 3))

    def test_nonlinear_gamma_rejected(self):
        with pytest.raises(NonLinearError):
            monoid_products([X * X], 2)

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            monoid_products([X], -1)

    def test_example_products(self):
        # Gamma = {x, x - 1} as in Example 7.3 (label 1).
        products = monoid_products([X, X - 1], 2)
        expected = [
            Polynomial.constant(1.0),
            X,
            X - 1,
            X * X,
            X * (X - 1),
            (X - 1) * (X - 1),
        ]
        for e in expected:
            assert any(p == e for p in products)


class TestCertificates:
    def test_row_count_matches_monomials(self):
        target = Polynomial.constant(LinForm.unknown("a")) * X + LinForm.unknown("b")
        equalities, multipliers = certificate_equalities(target, [X], 1, "site")
        # Combined polynomial has monomials {1, x}: two rows.
        assert len(equalities) == 2
        assert len(multipliers) == 2  # c for 1 and for x

    def test_multiplier_names_unique_per_site(self):
        t = Polynomial.constant(LinForm.unknown("a"))
        _, m1 = certificate_equalities(t, [X], 1, "s1")
        _, m2 = certificate_equalities(t, [X], 1, "s2")
        assert not set(m1) & set(m2)

    def test_solvable_certificate_exists(self):
        """x + 1 >= 0 on {x >= 0} has the certificate 1*1 + 1*x."""
        from repro.core import LinearProgram

        target = X + 1  # numeric target
        equalities, multipliers = certificate_equalities(target, [X], 1, "t")
        lp = LinearProgram()
        for name in multipliers:
            lp.add_unknown(name, nonnegative=True)
        for coeffs, rhs in equalities:
            lp.add_equality(coeffs, rhs)
        lp.set_objective(LinForm(0.0))
        solution = lp.solve()
        assert solution.values[multipliers[0]] == pytest.approx(1.0)

    def test_unsatisfiable_certificate(self):
        """-1 >= 0 on {x >= 0} has no certificate."""
        from repro.core import LinearProgram
        from repro.errors import InfeasibleError

        equalities, multipliers = certificate_equalities(Polynomial.constant(-1.0), [X], 2, "t")
        lp = LinearProgram()
        for name in multipliers:
            lp.add_unknown(name, nonnegative=True)
        for coeffs, rhs in equalities:
            lp.add_equality(coeffs, rhs)
        lp.set_objective(LinForm(0.0))
        with pytest.raises(InfeasibleError):
            lp.solve()

    def test_quadratic_on_interval(self):
        """x(1-x) >= 0 on {x >= 0, 1 - x >= 0} via the product x * (1-x)."""
        from repro.core import LinearProgram

        target = X * (1 - X)
        equalities, multipliers = certificate_equalities(target, [X, 1 - X], 2, "t")
        lp = LinearProgram()
        for name in multipliers:
            lp.add_unknown(name, nonnegative=True)
        for coeffs, rhs in equalities:
            lp.add_equality(coeffs, rhs)
        lp.set_objective(LinForm(0.0))
        lp.solve()  # must not raise
