"""Pre-expectation tests, reproducing the Figure 9 table exactly."""

import pytest

from repro.core import pre_expectation_cases, pre_expectation_table, pre_expectation_value
from repro.polynomials import Polynomial
from repro.semantics import build_cfg
from repro.syntax import parse_program

X = Polynomial.variable("x")
Y = Polynomial.variable("y")

#: The h of Example 6.4 / Figure 9 (bottom).
FIGURE9_H = {
    1: X * X / 3 + X / 3,
    2: X * X / 3 + X / 3,
    3: X * X / 3 + 2 * X / 3,
    4: X * X / 3 + X * Y + X / 3,
    5: Polynomial.zero(),
}


class TestFigure9:
    """pre_h for the running example must match the paper's table."""

    def test_label2_assignment(self, figure2_cfg):
        (case,) = pre_expectation_cases(figure2_cfg, FIGURE9_H, figure2_cfg.labels[2])
        # (1/4) h(l3, x+1) + (3/4) h(l3, x-1) = x^2/3 + x/3
        assert case.poly.almost_equal(X * X / 3 + X / 3)

    def test_label3_assignment(self, figure2_cfg):
        (case,) = pre_expectation_cases(figure2_cfg, FIGURE9_H, figure2_cfg.labels[3])
        # (2/3) h(l4, x, 1) + (1/3) h(l4, x, -1) = x^2/3 + 2x/3
        assert case.poly.almost_equal(X * X / 3 + 2 * X / 3)

    def test_label4_tick(self, figure2_cfg):
        (case,) = pre_expectation_cases(figure2_cfg, FIGURE9_H, figure2_cfg.labels[4])
        # x*y + h(l1, x, y)
        assert case.poly.almost_equal(X * X / 3 + X * Y + X / 3)

    def test_label1_branch_cases(self, figure2_cfg):
        cases = pre_expectation_cases(figure2_cfg, FIGURE9_H, figure2_cfg.labels[1])
        assert len(cases) == 2
        true_case = next(c for c in cases if c.poly == FIGURE9_H[2])
        assert len(true_case.guard) == 1

    def test_pucs_inequality_holds(self, figure2_cfg):
        # pre_h(l, v) <= h(l, v) at sample reachable configurations (C3).
        for x in range(0, 20):
            for label_id in (1, 2, 3, 4):
                if label_id == 2 and x < 1:
                    continue
                v = {"x": float(x), "y": 1.0}
                pre = pre_expectation_value(figure2_cfg, FIGURE9_H, label_id, v)
                h_val = FIGURE9_H[label_id].evaluate_numeric(v)
                assert pre <= h_val + 1e-9

    def test_plcs_inequality_holds(self, figure2_cfg):
        # The same h is also a PLCS (Example 6.8): pre_h >= h.
        for x in range(1, 20):
            for label_id in (2, 3, 4):
                v = {"x": float(x), "y": -1.0}
                pre = pre_expectation_value(figure2_cfg, FIGURE9_H, label_id, v)
                h_val = FIGURE9_H[label_id].evaluate_numeric(v)
                assert pre >= h_val - 1e-9

    def test_table_covers_all_labels(self, figure2_cfg):
        table = pre_expectation_table(figure2_cfg, FIGURE9_H)
        assert set(table) == {1, 2, 3, 4, 5}


class TestValueSemantics:
    def test_branch_value_follows_guard(self, figure2_cfg):
        v_in = {"x": 5.0, "y": 0.0}
        v_out = {"x": 0.0, "y": 0.0}
        assert pre_expectation_value(figure2_cfg, FIGURE9_H, 1, v_in) == pytest.approx(
            FIGURE9_H[2].evaluate_numeric(v_in)
        )
        assert pre_expectation_value(figure2_cfg, FIGURE9_H, 1, v_out) == 0.0

    def test_terminal_value(self, figure2_cfg):
        assert pre_expectation_value(figure2_cfg, FIGURE9_H, 5, {"x": 3.0, "y": 1.0}) == 0.0

    def test_nondet_takes_max(self):
        cfg = build_cfg(parse_program("var x; if * then tick(10) else tick(-10) fi"))
        h = {1: Polynomial.zero(), 2: Polynomial.constant(10.0), 3: Polynomial.constant(-10.0), 4: Polynomial.zero()}
        assert pre_expectation_value(cfg, h, 1, {"x": 0.0}) == 10.0

    def test_nondet_cases_tagged_with_choice(self):
        cfg = build_cfg(parse_program("var x; if * then tick(1) else tick(2) fi"))
        cases = pre_expectation_cases(cfg, {i: Polynomial.zero() for i in cfg.labels}, cfg.labels[1])
        assert [c.choice for c in cases] == [0, 1]

    def test_prob_label_blends(self):
        cfg = build_cfg(parse_program("var x; if prob(0.25) then tick(8) fi"))
        h = {1: Polynomial.zero(), 2: Polynomial.constant(8.0), 3: Polynomial.zero()}
        assert pre_expectation_value(cfg, h, 1, {"x": 0.0}) == pytest.approx(2.0)

    def test_tick_adds_cost(self, rdwalk_cfg):
        h = {i: Polynomial.zero() for i in rdwalk_cfg.labels}
        assert pre_expectation_value(rdwalk_cfg, h, 3, {"x": 5.0}) == 1.0
