"""Synthesis tests: the paper's Example 7.3 exactly, modes, and errors."""

import pytest

from repro.core import make_template, synthesize, synthesize_plcs, synthesize_pucs
from repro.errors import InfeasibleError
from repro.invariants import InvariantMap
from repro.polynomials import Polynomial
from repro.semantics import build_cfg, simulate
from repro.syntax import parse_program

X = Polynomial.variable("x")


class TestTemplates:
    def test_terminal_pinned_to_zero(self, figure2_cfg):
        template = make_template(figure2_cfg, 2)
        assert template.at(figure2_cfg.exit).is_zero()

    def test_unknown_count(self, figure2_cfg):
        template = make_template(figure2_cfg, 2)
        # 4 non-terminal labels x 6 monomials of degree <= 2 in {x, y}.
        assert len(template.unknowns) == 24

    def test_instantiate(self, figure2_cfg):
        template = make_template(figure2_cfg, 1)
        values = {name: 1.0 for name in template.unknowns}
        numeric = template.instantiate(values)
        assert all(p.is_numeric() for p in numeric.values())

    def test_negative_degree_rejected(self, figure2_cfg):
        with pytest.raises(ValueError):
            make_template(figure2_cfg, -1)


class TestRunningExample:
    """Example 7.3: x0 = 100 gives exactly (1/3)x^2 + (1/3)x = 3366.67."""

    def test_pucs_value(self, figure2_cfg, figure2_invariants):
        result = synthesize_pucs(figure2_cfg, figure2_invariants, {"x": 100, "y": 0}, degree=2)
        assert result.value == pytest.approx(10100 / 3, rel=1e-6)

    def test_pucs_polynomial(self, figure2_cfg, figure2_invariants):
        result = synthesize_pucs(figure2_cfg, figure2_invariants, {"x": 100, "y": 0}, degree=2)
        expected = X * X / 3 + X / 3
        assert result.bound.almost_equal(expected, tol=1e-6)

    def test_plcs_value(self, figure2_cfg, figure2_invariants):
        result = synthesize_plcs(figure2_cfg, figure2_invariants, {"x": 100, "y": 0}, degree=2)
        # Table 3: (1/3)x^2 + (1/3)x - 2/3.
        assert result.value == pytest.approx(10100 / 3 - 2 / 3, rel=1e-6)

    def test_intermediate_h_matches_figure9(self, figure2_cfg, figure2_invariants):
        result = synthesize_pucs(figure2_cfg, figure2_invariants, {"x": 100, "y": 0}, degree=2)
        # h(l3) = x^2/3 + 2x/3 per Figure 9 (up to LP degeneracy the
        # value at the anchor must agree).
        expected = (X * X / 3 + 2 * X / 3).evaluate_numeric({"x": 100.0})
        assert result.h[3].evaluate_numeric({"x": 100.0, "y": 0.0}) == pytest.approx(
            expected, rel=1e-6
        )

    def test_bound_at_other_valuations(self, figure2_cfg, figure2_invariants):
        result = synthesize_pucs(figure2_cfg, figure2_invariants, {"x": 100, "y": 0}, degree=2)
        assert result.bound_at({"x": 10.0}) == pytest.approx((100 + 10) / 3, rel=1e-6)

    def test_degree_one_infeasible(self, figure2_cfg, figure2_invariants):
        # The true cost is quadratic: no linear PUCS exists.
        with pytest.raises(InfeasibleError):
            synthesize_pucs(figure2_cfg, figure2_invariants, {"x": 100, "y": 0}, degree=1)

    def test_degree_three_still_tight(self, figure2_cfg, figure2_invariants):
        result = synthesize_pucs(figure2_cfg, figure2_invariants, {"x": 100, "y": 0}, degree=3)
        assert result.value == pytest.approx(10100 / 3, rel=1e-4)


class TestRdwalk:
    def test_exact_bounds(self, rdwalk_cfg, rdwalk_invariants):
        ub = synthesize_pucs(rdwalk_cfg, rdwalk_invariants, {"x": 50}, degree=1)
        lb = synthesize_plcs(rdwalk_cfg, rdwalk_invariants, {"x": 50}, degree=1)
        assert ub.value == pytest.approx(100.0, rel=1e-6)
        assert lb.value == pytest.approx(98.0, rel=1e-6)

    def test_bounds_bracket_simulation(self, rdwalk_cfg, rdwalk_invariants):
        ub = synthesize_pucs(rdwalk_cfg, rdwalk_invariants, {"x": 50}, degree=1)
        lb = synthesize_plcs(rdwalk_cfg, rdwalk_invariants, {"x": 50}, degree=1)
        stats = simulate(rdwalk_cfg, {"x": 50}, runs=2000, seed=0)
        margin = 3 * stats.stderr()
        assert lb.value - margin <= stats.mean <= ub.value + margin


class TestNondeterminism:
    SOURCE = """
    var x;
    while x >= 1 do
        x := x - 1;
        if * then tick(2) else tick(1) fi
    od
    """

    def make(self):
        cfg = build_cfg(parse_program(self.SOURCE))
        inv = InvariantMap.from_strings(
            cfg, {1: "x >= 0", 2: "x >= 1", 3: "x >= 0", 4: "x >= 0", 5: "x >= 0"}
        )
        return cfg, inv

    def test_pucs_assumes_demonic_max(self):
        cfg, inv = self.make()
        ub = synthesize_pucs(cfg, inv, {"x": 10}, degree=1)
        assert ub.value == pytest.approx(20.0, rel=1e-6)  # scheduler picks tick(2)

    def test_plcs_enumerates_policies(self):
        cfg, inv = self.make()
        lb = synthesize_plcs(cfg, inv, {"x": 10}, degree=1)
        # Best policy also picks tick(2); the real-valued relaxation of the
        # exit region (x in [0, 1]) costs the additive constant 2.
        assert lb.value == pytest.approx(18.0, rel=1e-6)
        assert lb.nondet_choices is not None

    def test_plcs_with_forced_policy(self):
        cfg, inv = self.make()
        (nd,) = cfg.nondet_labels()
        lb = synthesize_plcs(cfg, inv, {"x": 10}, degree=1, nondet_choices={nd.id: 1})
        assert lb.value == pytest.approx(9.0, rel=1e-6)  # forced onto tick(1)


class TestModes:
    def test_nonnegative_mode_forces_nonneg_h(self):
        source = """
        var x;
        while x >= 1 do
            x := x - 1;
            tick(1); tick(-0.5)
        od
        """
        cfg = build_cfg(parse_program(source))
        inv = InvariantMap.from_strings(cfg, {i: "x >= 0" for i in range(1, 6)})
        inv.set(2, "x >= 1")
        plain = synthesize(cfg, inv, {"x": 10}, kind="upper", degree=1)
        assert plain.value == pytest.approx(5.0, rel=1e-6)
        for label_id, poly in plain.h.items():
            del label_id, poly  # h may be negative somewhere; that is fine here
        nonneg = synthesize(cfg, inv, {"x": 10}, kind="upper", degree=1, nonnegative=True)
        assert nonneg.value >= plain.value - 1e-9

    def test_invalid_kind_rejected(self, rdwalk_cfg, rdwalk_invariants):
        with pytest.raises(ValueError):
            synthesize(rdwalk_cfg, rdwalk_invariants, {"x": 1}, kind="sideways")

    def test_multiplicand_cap_option(self, figure2_cfg, figure2_invariants):
        result = synthesize_pucs(
            figure2_cfg, figure2_invariants, {"x": 100, "y": 0}, degree=2, max_multiplicands=3
        )
        assert result.value == pytest.approx(10100 / 3, rel=1e-6)

    def test_too_small_cap_can_fail(self, figure2_cfg, figure2_invariants):
        with pytest.raises(InfeasibleError):
            synthesize_pucs(
                figure2_cfg, figure2_invariants, {"x": 100, "y": 0}, degree=2, max_multiplicands=0
            )

    def test_result_metadata(self, rdwalk_cfg, rdwalk_invariants):
        result = synthesize_pucs(rdwalk_cfg, rdwalk_invariants, {"x": 10}, degree=1)
        assert result.kind == "upper"
        assert result.degree == 1
        assert result.lp_variables > 0
        assert result.lp_equalities > 0
        assert result.runtime >= 0.0
        assert "upper" in repr(result)


class TestPolicyFallback:
    """Regression tests: PLCS policy handling at / beyond the
    enumeration cap, and NaN-safe best-policy selection."""

    @staticmethod
    def _many_nondet_cfg(blocks):
        body = "; ".join("if * then tick(1) else tick(1) fi" for _ in range(blocks))
        return build_cfg(parse_program(f"var x; {body}"))

    def test_fallback_marks_result_non_enumerated(self):
        from repro.core.synthesis import _MAX_NONDET_ENUMERATION

        cfg = self._many_nondet_cfg(_MAX_NONDET_ENUMERATION + 1)
        result = synthesize(cfg, InvariantMap.trivial(), {"x": 0}, kind="lower", degree=1)
        assert result.policy_enumerated is False
        assert any("enumeration" in w for w in result.warnings)
        # Every branch ticks 1, so the bound itself is still exact.
        assert result.value == pytest.approx(_MAX_NONDET_ENUMERATION + 1, rel=1e-9)

    def test_enumerated_result_has_no_fallback_warning(self):
        cfg = self._many_nondet_cfg(2)
        result = synthesize(cfg, InvariantMap.trivial(), {"x": 0}, kind="lower", degree=1)
        assert result.policy_enumerated is True
        assert result.warnings == []

    def test_fallback_warning_reaches_analysis_result(self):
        from repro.analysis import analyze
        from repro.core.synthesis import _MAX_NONDET_ENUMERATION

        blocks = _MAX_NONDET_ENUMERATION + 1
        body = "; ".join("if * then tick(1) else tick(1) fi" for _ in range(blocks))
        result = analyze(f"var x; {body}", init={"x": 0}, degree=1)
        assert result.lower is not None
        assert any("enumeration" in w for w in result.warnings)

    def test_nan_candidate_skipped_in_policy_loop(self, monkeypatch):
        """A NaN objective from one policy must lose to any real value."""
        import repro.core.synthesis as synthesis_mod

        cfg = self._many_nondet_cfg(1)
        real_solve = synthesis_mod._PreparedSynthesis.solve
        seen = []

        def fake_solve(self, init, nondet_choices):
            result = real_solve(self, init, nondet_choices)
            seen.append(dict(nondet_choices))
            if len(seen) == 1:
                result.value = float("nan")
            return result

        monkeypatch.setattr(synthesis_mod._PreparedSynthesis, "solve", fake_solve)
        result = synthesize(cfg, InvariantMap.trivial(), {"x": 0}, kind="lower", degree=1)
        assert len(seen) == 2
        assert result.value == result.value  # not NaN
        assert result.value == pytest.approx(1.0, rel=1e-9)

    def test_all_nan_policies_raise(self, monkeypatch):
        import repro.core.synthesis as synthesis_mod
        from repro.errors import SynthesisError

        cfg = self._many_nondet_cfg(1)
        real_solve = synthesis_mod._PreparedSynthesis.solve

        def fake_solve(self, init, nondet_choices):
            result = real_solve(self, init, nondet_choices)
            result.value = float("nan")
            return result

        monkeypatch.setattr(synthesis_mod._PreparedSynthesis, "solve", fake_solve)
        with pytest.raises(InfeasibleError, match="NaN"):
            synthesize(cfg, InvariantMap.trivial(), {"x": 0}, kind="lower", degree=1)

    def test_nan_lp_objective_raises(self, monkeypatch, rdwalk_cfg, rdwalk_invariants):
        """A NaN straight from the LP layer surfaces as SynthesisError."""
        import repro.core.synthesis as synthesis_mod
        from repro.errors import SynthesisError

        class _NaNLP:
            def __init__(self):
                self.unknowns = []

            def add_unknown(self, name, nonnegative=False):
                self.unknowns.append(name)

            def add_equality(self, coeffs, rhs):
                pass

            def set_objective(self, form, maximize=False):
                pass

            def solve(self):
                from types import SimpleNamespace

                return SimpleNamespace(
                    values={name: 0.0 for name in self.unknowns},
                    objective=float("nan"),
                    num_variables=len(self.unknowns),
                    num_equalities=0,
                )

        monkeypatch.setattr(synthesis_mod, "LinearProgram", _NaNLP)
        with pytest.raises(SynthesisError, match="NaN"):
            synthesize_pucs(rdwalk_cfg, rdwalk_invariants, {"x": 10}, degree=1)
