"""Monte Carlo soundness spot-checks.

For a handful of Table 2 and Table 5 benchmarks, the seeded simulated
mean cost must lie below the synthesized PUCS upper bound and above the
PLCS lower bound, within a CI-friendly statistical tolerance (six
standard errors plus a small absolute epsilon).  This cross-checks the
whole pipeline — invariants, pre-expectations, Handelman certificates,
LP — against the operational semantics, and guards the result cache
end to end: a cache serving a wrong bound for one of these programs
fails the bracket.
"""

import math

import pytest

from repro.batch import AnalysisRequest, execute_request

RUNS = 400
SEED = 11

#: bitcoin_pool trajectories are ~1000x longer than the other
#: benchmarks'; fewer runs keep the test CI-friendly, and the slack
#: below widens accordingly (it scales with 1/sqrt(runs)).
RUNS_PER_BENCHMARK = {"bitcoin_pool": 40}


def _runs(name):
    return RUNS_PER_BENCHMARK.get(name, RUNS)


def _slack(report, runs):
    std = report.sim_std or 0.0
    return 6.0 * std / math.sqrt(runs) + 1e-6


def _assert_bracketed(report, runs=RUNS):
    assert report.ok, report.error
    assert report.sim_mean is not None, report.warnings
    slack = _slack(report, runs)
    if report.upper_value is not None:
        assert report.sim_mean <= report.upper_value + slack, (
            f"{report.name}: sim mean {report.sim_mean} exceeds "
            f"upper bound {report.upper_value} (slack {slack})"
        )
    if report.lower_value is not None:
        assert report.sim_mean >= report.lower_value - slack, (
            f"{report.name}: sim mean {report.sim_mean} undercuts "
            f"lower bound {report.lower_value} (slack {slack})"
        )


class TestTable2Soundness:
    """Probabilistic Table 2 programs, anchor valuations."""

    @pytest.mark.parametrize("name", ["rdwalk", "ber", "bin", "prdwalk", "C4B_t13"])
    def test_sim_mean_within_synthesized_bracket(self, name):
        report = execute_request(
            AnalysisRequest(benchmark=name, simulate_runs=RUNS, simulate_seed=SEED)
        )
        _assert_bracketed(report)
        assert report.upper_value is not None  # every Table 2 row has a PUCS bound


class TestTable5Soundness:
    """Nondeterministic benchmarks after the prob(0.5) transformation."""

    @pytest.mark.parametrize("name", ["bitcoin_mining", "bitcoin_pool"])
    def test_coin_flip_variant_bracketed(self, name):
        report = execute_request(
            AnalysisRequest(
                benchmark=name, nondet_prob=0.5, simulate_runs=_runs(name), simulate_seed=SEED
            )
        )
        assert report.name == f"{name}_prob"
        _assert_bracketed(report, runs=_runs(name))
        assert report.upper_value is not None and report.lower_value is not None

    def test_bracket_holds_through_a_cache_round_trip(self, tmp_path):
        # The same spot-check on a report served *from the cache*: a
        # stale or mismatched entry would break the bracket invariant.
        from repro.batch import run_batch
        from repro.cache import ResultCache

        cache = ResultCache(tmp_path)
        request = AnalysisRequest(
            benchmark="bitcoin_mining", nondet_prob=0.5, simulate_runs=RUNS, simulate_seed=SEED
        )
        cold = run_batch([request], cache=cache)[0]
        warm = run_batch(
            [
                AnalysisRequest(
                    benchmark="bitcoin_mining",
                    nondet_prob=0.5,
                    simulate_runs=RUNS,
                    simulate_seed=SEED,
                )
            ],
            cache=cache,
        )[0]
        assert cache.stats().hits == 1
        assert warm.to_dict() == cold.to_dict()
        _assert_bracketed(warm)
