"""Octagon invariants replace hand annotations end to end.

The acceptance bar for the relational-domain work: with every
hand-written invariant annotation *deleted* (``invariants={}``) and
``invariant_domain="octagon"``, registry benchmarks must still
synthesize their table bounds — the generated relational Gamma rows
alone carry the certificate.  The interval domain cannot do this for
benchmarks whose guards couple two variables (e.g. ber's
``x <= n - 1``).
"""

import pytest

from repro.batch import AnalysisRequest
from repro.batch.engine import execute_request
from repro.errors import CONSISTENCY_TOL

#: Benchmarks whose annotated table bound must be recovered from the
#: octagon generator alone (annotations stripped).
STRIPPED_CASES = ["ber", "rdwalk", "sprdwalk", "prdwalk", "linear01", "race", "condand"]


def _upper(name, **overrides):
    report = execute_request(
        AnalysisRequest(benchmark=name, compute_lower=False, **overrides)
    )
    return report


class TestStrippedAnnotations:
    @pytest.mark.parametrize("name", STRIPPED_CASES)
    def test_octagon_recovers_table_bound_without_annotations(self, name):
        annotated = _upper(name)
        assert annotated.status == "ok"
        stripped = _upper(name, invariants={}, invariant_domain="octagon")
        assert stripped.status == "ok", stripped.error
        assert stripped.invariant_domain == "octagon"
        assert abs(stripped.upper_value - annotated.upper_value) <= CONSISTENCY_TOL

    def test_interval_domain_cannot_certify_ber_stripped(self):
        # The control: stripping ber's annotations under the *interval*
        # domain loses the x <= n - 1 relation and no degree yields a
        # feasible LP.  This is precisely the gap the octagon closes.
        stripped = _upper("ber", invariants={}, invariant_domain="interval")
        assert stripped.upper_value is None

    def test_default_domain_report_is_unchanged_shape(self):
        report = _upper("ber")
        assert report.invariant_domain == "interval"

    def test_octagon_and_interval_fingerprints_differ(self):
        from repro.cache import request_fingerprint

        interval = request_fingerprint(AnalysisRequest(benchmark="ber"))
        octagon = request_fingerprint(
            AnalysisRequest(benchmark="ber", invariant_domain="octagon")
        )
        assert interval != octagon
