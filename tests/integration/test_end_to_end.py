"""Whole-pipeline integration tests on fresh programs (not benchmarks)."""

import pytest

from repro import (
    InvariantMap,
    analyze,
    build_cfg,
    check_cost_martingale,
    parse_program,
    simulate,
    synthesize_plcs,
    synthesize_pucs,
)


class TestCouponCollectorish:
    SOURCE = """
    var remaining;
    while remaining >= 1 do
        if prob(0.2) then
            remaining := remaining - 1
        fi;
        tick(1)
    od
    """

    def test_full_pipeline(self):
        result = analyze(
            self.SOURCE,
            init={"remaining": 10},
            # The tick at label 4 is reached after a possible decrement,
            # so its invariant is remaining >= 0, not >= 1.
            invariants={1: "remaining >= 0", 2: "remaining >= 1", 3: "remaining >= 1", 4: "remaining >= 0"},
            check_concentration=True,
        )
        # Each unit takes Geometric(0.2): expected 5 ticks -> 50 total.
        assert result.upper.value == pytest.approx(50.0, rel=1e-6)
        # The real-relaxed exit region [0, 1] costs the PLCS 5 units.
        assert result.lower.value == pytest.approx(45.0, rel=1e-6)
        assert result.concentration is not None

    def test_wrong_invariant_is_caught_by_validation(self):
        from repro.errors import InvariantError
        from repro.invariants import InvariantMap

        cfg = build_cfg(parse_program(self.SOURCE))
        wrong = InvariantMap.from_strings(cfg, {4: "remaining >= 1"})
        with pytest.raises(InvariantError):
            wrong.validate_by_simulation(cfg, {"remaining": 10}, runs=30)

    def test_simulation_agrees(self):
        cfg = build_cfg(parse_program(self.SOURCE))
        stats = simulate(cfg, {"remaining": 10}, runs=2000, seed=0)
        assert stats.mean == pytest.approx(50.0, rel=0.05)


class TestSignedCostQueue:
    """A toy M/M/1-ish queue earning rewards per served job."""

    SOURCE = """
    var t, q;
    while t >= 1 do
        if prob(0.3) then
            q := q + 1
        fi;
        if q >= 1 then
            q := q - 1;
            tick(-2)
        fi;
        tick(1);
        t := t - 1
    od
    """

    def make(self):
        cfg = build_cfg(parse_program(self.SOURCE))
        inv = InvariantMap.uniform(cfg, "q >= 0 and t >= 0")
        inv.conjoin(2, "t >= 1")
        return cfg, inv

    def test_bounds_exist_and_bracket(self):
        cfg, inv = self.make()
        ub = synthesize_pucs(cfg, inv, {"t": 30, "q": 0}, degree=2)
        lb = synthesize_plcs(cfg, inv, {"t": 30, "q": 0}, degree=2)
        stats = simulate(cfg, {"t": 30, "q": 0}, runs=1500, seed=0)
        margin = 4 * stats.stderr()
        assert lb.value - margin <= stats.mean <= ub.value + margin

    def test_certificates_validate(self):
        cfg, inv = self.make()
        ub = synthesize_pucs(cfg, inv, {"t": 30, "q": 0}, degree=2)
        report = check_cost_martingale(cfg, ub.h, "upper", {"t": 30, "q": 0}, runs=10, seed=0)
        assert report.ok(tol=1e-5)


class TestDocstringExample:
    def test_package_docstring_example_runs(self):
        import repro

        result = repro.analyze(
            """
            var x;
            while x >= 1 do
                x := x + (1, -1) : (0.25, 0.75);
                tick(1)
            od
            """,
            init={"x": 100},
            invariants={1: "x >= 0"},
        )
        assert "upper" in result.summary()
        assert result.upper.value == pytest.approx(200.0, rel=1e-6)


class TestNondetEndToEnd:
    SOURCE = """
    var budget;
    while budget >= 1 do
        budget := budget - 1;
        tick(1);
        if prob(0.01) then
            if * then tick(-40) fi
        fi
    od
    """

    def test_demonic_upper_vs_policy_lower(self):
        result = analyze(
            self.SOURCE,
            init={"budget": 50},
            invariants={i: "budget >= 0" for i in range(1, 7)},
        )
        # Demonic supval refuses the negative reward: UB ~ budget.
        assert result.upper.value == pytest.approx(50.0, rel=1e-5)
        # The best policy accepts it: supval >= 50 - 0.01*40*50 = 30 is
        # not right for *sup*; the reward-accepting scheduler yields a
        # LOWER expected cost, so the PLCS stays near the UB.
        assert result.lower.value <= result.upper.value + 1e-9
        assert result.lower.value >= 30.0 - 1e-6
