"""Monte-Carlo soundness of the Azuma–Hoeffding tail bounds.

For a Table 2 representative and a Table 5 coin-flip representative,
the derived concentration bound ``P[cost >= E + t, T <= n] <=
exp(-t^2/(2 c^2 n))`` must dominate the *empirical* tail frequency over
>= 10k interpreter runs truncated at the same horizon ``n``.  This
closes the loop between the certificate-level LP (the step-difference
bound ``c``) and the operational semantics, the way the bracket checks
in ``test_mc_soundness`` do for the expected-cost bounds.
"""

import pytest

from repro.api import AnalysisOptions, Analyzer
from repro.programs import get_benchmark, probabilistic_variant
from repro.semantics import simulate

RUNS = 10_000
SEED = 7
HORIZON = 2_000

#: Smaller-than-anchor initial valuations keep 10k runs CI-friendly
#: (run length scales with the valuation) while staying on the same
#: Table 2 / Table 5 programs.
CASES = [
    # (benchmark, nondet_prob, init override)
    ("rdwalk", None, {"x": 40, "n": 40}),
    ("random_walk", None, {"x": 15, "n": 40}),
    ("bitcoin_mining", 0.5, None),
]


def _tail_and_stats(name, prob, init):
    bench = get_benchmark(name)
    if prob is not None:
        bench = probabilistic_variant(bench, prob=prob)
    valuation = dict(init) if init is not None else dict(bench.init)
    result = Analyzer().synthesize(
        bench, AnalysisOptions(tails=True, tail_horizon=HORIZON, init=valuation)
    )
    assert result.tail is not None, result.warnings
    stats = simulate(bench.cfg, valuation, runs=RUNS, seed=SEED, max_steps=HORIZON)
    return result.tail, stats


@pytest.mark.parametrize("name, prob, init", CASES, ids=[c[0] for c in CASES])
def test_empirical_tail_frequencies_respect_bound(name, prob, init):
    tail, stats = _tail_and_stats(name, prob, init)
    assert tail.c > 0.0
    assert stats.runs == RUNS
    # The guarantee covers runs that terminate within the horizon;
    # truncated runs fall outside the event and count as non-exceeding.
    for probe in tail.probes:
        exceeding = sum(1 for cost in stats.costs if cost >= tail.expected + probe.t)
        freq = exceeding / RUNS
        assert freq <= probe.bound, (
            f"{name}: empirical P[cost >= {tail.expected:g} + {probe.t:g}] = {freq} "
            f"exceeds the Azuma bound {probe.bound}"
        )
    # And at a fine grid of offsets, not just the default probes.
    scale = tail.c * (HORIZON ** 0.5)
    for alpha in (0.25, 0.75, 1.5, 2.5, 4.0):
        t = alpha * scale
        exceeding = sum(1 for cost in stats.costs if cost >= tail.expected + t)
        assert exceeding / RUNS <= tail.bound_at(t)


def test_tail_bound_survives_report_round_trip():
    """The engine-report serialization of the bound is lossless and the
    reconstructed object evaluates identically."""
    from repro.analysis import TailBound
    from repro.batch import AnalysisRequest
    from repro.batch.engine import execute_request

    report = execute_request(
        AnalysisRequest(benchmark="rdwalk", tails=True, tail_horizon=HORIZON)
    )
    assert report.ok and report.tail is not None
    tail = TailBound.from_dict(report.tail)
    assert tail.bound_at(3 * tail.c * (HORIZON ** 0.5)) == pytest.approx(
        2.718281828459045 ** (-4.5)
    )


def test_warm_cache_reports_tail_byte_identically(tmp_path):
    """Tail-carrying reports round-trip through the content-addressed
    cache bitwise, and tail settings are part of the fingerprint."""
    import json

    from repro.batch import AnalysisRequest
    from repro.batch.engine import run_batch
    from repro.cache import ResultCache, request_key

    request = AnalysisRequest(benchmark="rdwalk", tails=True, tail_horizon=HORIZON)
    cache = ResultCache(tmp_path / "store")
    (cold,) = run_batch([request], cache=cache)
    (warm,) = run_batch([request], cache=cache)
    assert cache.hits == 1 and cache.misses == 1
    assert json.dumps(cold.to_dict()) == json.dumps(warm.to_dict())
    assert warm.tail == cold.tail and warm.tail is not None
    bare = AnalysisRequest(benchmark="rdwalk")
    assert request_key(bare) != request_key(request)
    assert request_key(AnalysisRequest(benchmark="rdwalk", tails=True)) != request_key(request)
