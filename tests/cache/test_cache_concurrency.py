"""Concurrency audit of the ResultCache in-process counters.

The HTTP service shares one :class:`repro.cache.ResultCache` across
``ThreadingHTTPServer`` handler threads, so every hit/miss/store
counter update must be a locked read-modify-write: lost updates would
make ``cache.stats()`` drift from the true event counts.  These tests
hammer the store from many threads and demand *exact* totals.
"""

import threading

from repro.batch import AnalysisReport
from repro.cache import ResultCache

THREADS = 16
ROUNDS = 200


def _report(name="t"):
    return AnalysisReport(name=name, status="ok", init={"x": 1.0})


def _run_threads(worker):
    barrier = threading.Barrier(THREADS)

    def wrapped(index):
        barrier.wait()  # maximize interleaving
        worker(index)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestCounterExactness:
    def test_misses_are_exact_under_contention(self, tmp_path):
        cache = ResultCache(tmp_path / "store")

        def worker(index):
            for round_ in range(ROUNDS):
                assert cache.lookup(f"missing-{index}-{round_}") is None

        _run_threads(worker)
        stats = cache.stats()
        assert stats.misses == THREADS * ROUNDS
        assert stats.hits == 0
        assert stats.stores == 0

    def test_hits_are_exact_under_contention(self, tmp_path):
        cache = ResultCache(tmp_path / "store")
        keys = [f"{'%02x' % i}key" for i in range(8)]
        for key in keys:
            assert cache.store(key, _report())

        def worker(index):
            for round_ in range(ROUNDS):
                assert cache.lookup(keys[(index + round_) % len(keys)]) is not None

        _run_threads(worker)
        stats = cache.stats()
        assert stats.hits == THREADS * ROUNDS
        assert stats.misses == 0
        assert stats.stores == len(keys)

    def test_mixed_hammer_totals_add_up(self, tmp_path):
        """Interleaved lookups and stores: every lookup counts exactly
        once as hit or miss, every successful store exactly once."""
        cache = ResultCache(tmp_path / "store", max_memory_entries=4)
        lookups_per_thread = ROUNDS
        stores_per_thread = ROUNDS // 4

        def worker(index):
            for round_ in range(stores_per_thread):
                assert cache.store(f"shared-{round_}", _report())
            for round_ in range(lookups_per_thread):
                cache.lookup(f"shared-{round_ % (2 * stores_per_thread)}")

        _run_threads(worker)
        stats = cache.stats()
        assert stats.hits + stats.misses == THREADS * lookups_per_thread
        assert stats.stores == THREADS * stores_per_thread
        # Everything that was ever stored must be a hit now (disk
        # persists even after LRU eviction); the "never stored" half of
        # the key space accounts for every miss.
        assert stats.memory_entries <= 4

    def test_record_folding_is_exact(self, tmp_path):
        """The pool-worker accounting path (`record`) is a locked RMW."""
        cache = ResultCache(tmp_path / "store")

        def worker(index):
            for round_ in range(ROUNDS):
                cache.record(hit=round_ % 2 == 0, stored=round_ % 4 == 0)

        _run_threads(worker)
        stats = cache.stats()
        assert stats.hits == THREADS * (ROUNDS // 2)
        assert stats.misses == THREADS * (ROUNDS // 2)
        assert stats.stores == THREADS * (ROUNDS // 4)

    def test_canonical_program_memo_is_thread_safe(self):
        """Concurrent fingerprinting across threads must agree (the
        bounded memo's len-check/clear/insert is a guarded RMW)."""
        from repro.batch import AnalysisRequest
        from repro.cache import request_key

        keys = [None] * THREADS

        def worker(index):
            keys[index] = request_key(AnalysisRequest(benchmark="rdwalk", tails=True))

        _run_threads(worker)
        assert len(set(keys)) == 1
