"""Unit tests for the content-addressed result cache (`repro.cache`)."""

import json

import pytest

from repro.batch import AnalysisReport, AnalysisRequest, execute_request
from repro.cache import (
    ENTRY_SCHEMA,
    ResultCache,
    cache_salt,
    default_cache_dir,
    request_fingerprint,
    request_key,
)

RDWALK = AnalysisRequest(benchmark="rdwalk")

COUNTDOWN = "var x;\nwhile x >= 1 do\n    x := x - 1;\n    tick(1)\nod"
COUNTDOWN_UGLY = "var x;  # counts down\nwhile x >= 1 do x := x - 1; tick(1) od"


def _source_request(source=COUNTDOWN, **kwargs):
    kwargs.setdefault("init", {"x": 5.0})
    kwargs.setdefault("invariants", {1: "x >= 0", 2: "x >= 1"})
    kwargs.setdefault("degree", 1)
    return AnalysisRequest(source=source, **kwargs)


class TestRequestKey:
    def test_deterministic(self):
        assert request_key(RDWALK) == request_key(AnalysisRequest(benchmark="rdwalk"))

    def test_presentation_fields_excluded(self):
        named = AnalysisRequest(benchmark="rdwalk", name="alias", tag="sweep-1", timeout_s=5.0)
        assert request_key(named) == request_key(RDWALK)

    def test_formatting_and_comments_do_not_split_the_key(self):
        # The key hashes the parsed AST, not the source text — the
        # parser/pretty round-trip tests guard this canonicalization.
        assert request_key(_source_request(COUNTDOWN)) == request_key(
            _source_request(COUNTDOWN_UGLY)
        )

    @pytest.mark.parametrize(
        "override",
        [
            {"init": {"x": 50.0}},
            {"degree": 2},
            {"degree": "auto"},
            {"mode": "nonnegative"},
            {"compute_lower": False},
            {"max_multiplicands": 2},
            {"simulate_runs": 100},
        ],
    )
    def test_semantic_fields_split_the_key(self, override):
        assert request_key(AnalysisRequest(benchmark="rdwalk", **override)) != request_key(RDWALK)

    def test_simulation_engine_splits_the_key(self):
        # Same seed, different engine => different RNG stream => the
        # cached sim statistics must never alias.
        base = AnalysisRequest(benchmark="rdwalk", simulate_runs=100)
        keys = {
            request_key(
                AnalysisRequest(benchmark="rdwalk", simulate_runs=100, simulate_engine=e)
            )
            for e in ("auto", "vectorized", "reference")
        }
        assert len(keys) == 3
        assert request_key(base) in keys  # default engine is "auto"

    def test_auto_ceiling_splits_the_key(self):
        a = AnalysisRequest(benchmark="pol04", degree="auto", max_degree=2)
        b = AnalysisRequest(benchmark="pol04", degree="auto", max_degree=4)
        assert request_key(a) != request_key(b)

    def test_nondet_prob_splits_the_key(self):
        base = AnalysisRequest(benchmark="bitcoin_mining")
        coin = AnalysisRequest(benchmark="bitcoin_mining", nondet_prob=0.5)
        other = AnalysisRequest(benchmark="bitcoin_mining", nondet_prob=0.25)
        assert len({request_key(base), request_key(coin), request_key(other)}) == 3

    def test_distinct_probabilities_not_collapsed_by_display_rounding(self):
        # %g formatting shows both as 0.333333; the key must not.
        src = "var x;\nif prob({p}) then tick(1) fi"
        ka = request_key(AnalysisRequest(source=src.format(p="0.3333333"), init={}, degree=1))
        kb = request_key(AnalysisRequest(source=src.format(p="0.3333334"), init={}, degree=1))
        assert ka != kb

    def test_salt_in_fingerprint(self):
        assert request_fingerprint(RDWALK)["salt"] == cache_salt()
        assert ENTRY_SCHEMA in cache_salt()

    def test_unresolvable_request_raises_but_request_key_helper_swallows(self):
        bad = AnalysisRequest(benchmark="no_such_benchmark")
        with pytest.raises(KeyError):
            request_key(bad)
        assert ResultCache("/nonexistent-root-never-used").request_key(bad) is None


class TestStore:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        report = execute_request(_source_request())
        assert report.ok
        assert cache.put(_source_request(), report)
        got = cache.get(_source_request())
        assert got is not None
        assert got.to_dict() == report.to_dict()

    def test_disk_round_trip_survives_new_instance(self, tmp_path):
        first = ResultCache(tmp_path)
        report = execute_request(_source_request())
        first.put(_source_request(), report)
        second = ResultCache(tmp_path)  # cold memory, warm disk
        got = second.get(_source_request())
        assert got is not None and got.to_dict() == report.to_dict()
        assert second.stats().hits == 1

    def test_memory_lru_bounded_but_disk_retains(self, tmp_path):
        cache = ResultCache(tmp_path, max_memory_entries=1)
        a, b = _source_request(), AnalysisRequest(benchmark="rdwalk")
        cache.put(a, execute_request(a))
        cache.put(b, execute_request(b))
        assert cache.stats().memory_entries == 1
        assert cache.get(a) is not None  # evicted from memory, hit on disk
        assert cache.stats().entries == 2

    def test_non_ok_reports_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        bad = AnalysisRequest(source="var x;\nwhile x >= 1 do\n x := y\nod", init={}, degree=1)
        report = execute_request(bad)
        assert report.status == "error"
        assert not cache.put(bad, report)
        assert cache.stats().entries == 0

    def test_hit_reechoes_request_name_and_tag(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_source_request(), execute_request(_source_request()))
        got = cache.get(_source_request(name="renamed", tag="warm"))
        assert got.name == "renamed"
        assert got.tag == "warm"

    def test_corrupt_entry_is_a_miss_and_self_cleans(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_source_request(), execute_request(_source_request()))
        entry = next(tmp_path.glob("*.json"))
        entry.write_text("{not json")
        fresh = ResultCache(tmp_path)
        assert fresh.get(_source_request()) is None
        assert not entry.exists()

    def test_stale_salt_is_a_miss_and_self_cleans(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_source_request(), execute_request(_source_request()))
        entry = next(tmp_path.glob("*.json"))
        payload = json.loads(entry.read_text())
        payload["salt"] = "repro-cache/v0|ancient"
        entry.write_text(json.dumps(payload))
        fresh = ResultCache(tmp_path)
        assert fresh.get(_source_request()) is None
        assert not entry.exists()

    def test_store_on_unwritable_root_degrades_to_cold(self, tmp_path):
        blocked = tmp_path / "file-not-dir"
        blocked.write_text("occupied")
        cache = ResultCache(blocked)
        report = execute_request(_source_request())
        assert cache.put(_source_request(), report) is False
        assert cache.get(_source_request()) is None

    def test_mutating_a_hit_does_not_poison_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_source_request(), execute_request(_source_request()))
        first = cache.get(_source_request())
        first.warnings.append("mutated by caller")
        second = cache.get(_source_request())
        assert "mutated by caller" not in second.warnings


class TestStatsAndClear:
    def test_counters_and_census(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(_source_request()) is None  # miss
        cache.put(_source_request(), execute_request(_source_request()))
        assert cache.get(_source_request()) is not None  # hit
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.stores) == (1, 1, 1)
        assert stats.entries == 1 and stats.size_bytes > 0
        assert stats.root == str(tmp_path)
        assert set(stats.to_dict()) == {
            "root", "hits", "misses", "stores", "entries", "size_bytes", "memory_entries",
        }

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_source_request(), execute_request(_source_request()))
        cache.put(RDWALK, execute_request(AnalysisRequest(benchmark="rdwalk")))
        assert cache.clear() == 2
        assert cache.stats().entries == 0
        assert cache.stats().memory_entries == 0
        assert cache.get(RDWALK) is None

    def test_default_dir_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == str(tmp_path / "custom")
        assert str(ResultCache().root) == str(tmp_path / "custom")


class TestReportRoundTrip:
    def test_report_json_round_trip_is_lossless(self, tmp_path):
        report = execute_request(
            AnalysisRequest(benchmark="rdwalk", simulate_runs=50, simulate_seed=3, tag="rt")
        )
        clone = AnalysisReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert clone.to_dict() == report.to_dict()
