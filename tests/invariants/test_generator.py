"""Invariant-generator tests: interval boxes and octagon relations."""

import math

import pytest

from repro.invariants import (
    Interval,
    generate_interval_invariants,
    generate_invariants,
    generate_octagon_invariants,
)
from repro.semantics import build_cfg
from repro.syntax import parse_program


def _rows(region):
    """Flatten a region to its display-form constraint rows."""
    return [f"{g} >= 0" for d in region.disjuncts for g in d.constraints]


class TestInterval:
    def test_point(self):
        i = Interval.point(3.0)
        assert i.lo == i.hi == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)

    def test_join(self):
        assert Interval(0, 1).join(Interval(2, 3)) == Interval(0, 3)

    def test_meet(self):
        assert Interval(0, 2).meet(Interval(1, 3)) == Interval(1, 2)
        assert Interval(0, 1).meet(Interval(2, 3)) is None

    def test_widen(self):
        w = Interval(0, 1).widen(Interval(-1, 2))
        assert w.lo == -math.inf and w.hi == math.inf
        stable = Interval(0, 1).widen(Interval(0, 1))
        assert stable == Interval(0, 1)

    def test_add(self):
        assert Interval(1, 2).add(Interval(3, 4)) == Interval(4, 6)

    def test_scale_negative(self):
        assert Interval(1, 2).scale(-3) == Interval(-6, -3)

    def test_mul_mixed_signs(self):
        assert Interval(-1, 2).mul(Interval(-3, 1)) == Interval(-6, 3)

    def test_power_even(self):
        p = Interval(-2, 1).power(2)
        assert p.lo <= 0 <= 4 <= p.hi or p == Interval(-2, 4)  # sound over-approx

    def test_infinite_scale_no_nan(self):
        i = Interval(-math.inf, math.inf).scale(0.0)
        assert not math.isnan(i.lo) and not math.isnan(i.hi)


class TestGeneration:
    def test_straight_line(self):
        cfg = build_cfg(parse_program("var x, y; x := 3; y := x + 1; tick(y)"))
        inv = generate_interval_invariants(cfg, {"x": 0, "y": 0})
        tick_region = inv.get(3)
        assert tick_region.contains({"x": 3.0, "y": 4.0})
        assert not tick_region.contains({"x": 3.0, "y": 5.0})

    def test_loop_guard_recovered(self, rdwalk_cfg):
        inv = generate_interval_invariants(rdwalk_cfg, {"x": 10})
        # Inside the loop body, the guard x >= 1 must be known.
        assert not inv.get(2).contains({"x": 0.0})
        assert inv.get(2).contains({"x": 1.0})

    def test_invariant_sound_along_runs(self, rdwalk_cfg):
        inv = generate_interval_invariants(rdwalk_cfg, {"x": 10})
        inv.validate_by_simulation(rdwalk_cfg, {"x": 10}, runs=50)

    def test_exit_region_bounded(self, rdwalk_cfg):
        inv = generate_interval_invariants(rdwalk_cfg, {"x": 10})
        exit_region = inv.get(rdwalk_cfg.exit)
        assert not exit_region.contains({"x": 5.0})  # loop cannot exit with x = 5

    def test_branch_refinement(self):
        cfg = build_cfg(parse_program("var x; if x >= 3 then tick(x) else tick(-x) fi"))
        inv = generate_interval_invariants(cfg, {"x": 10})
        assert inv.get(2).contains({"x": 10.0})

    def test_unreachable_branch_has_no_entry(self):
        cfg = build_cfg(parse_program("var x; if x >= 100 then tick(1) else tick(2) fi"))
        inv = generate_interval_invariants(cfg, {"x": 1})
        # The then-branch (label 2) is unreachable from x = 1.
        assert 2 not in inv

    def test_sampling_bounds_used(self):
        cfg = build_cfg(parse_program("var x; sample r ~ unifint(1, 3); x := r; tick(x)"))
        inv = generate_interval_invariants(cfg, {"x": 0})
        region = inv.get(2)
        assert region.contains({"x": 2.0})
        assert not region.contains({"x": 4.0})

    def test_nondet_branches_both_covered(self):
        cfg = build_cfg(parse_program("var x; if * then x := 1 else x := 2 fi; tick(x)"))
        inv = generate_interval_invariants(cfg, {"x": 0})
        final = inv.get(4)
        assert final.contains({"x": 1.0}) and final.contains({"x": 2.0})

    def test_terminates_on_diverging_loop(self):
        cfg = build_cfg(parse_program("var x; while x >= 0 do x := x + 1 od"))
        inv = generate_interval_invariants(cfg, {"x": 0})
        assert inv.get(2).contains({"x": 1e9})


class TestCanonicalRows:
    """Row emission is deduplicated and in a pinned, stable order."""

    def test_interval_rows_are_sorted_and_unique(self, rdwalk_cfg):
        inv = generate_interval_invariants(rdwalk_cfg, {"x": 10})
        for label_id in (1, 2):
            rows = _rows(inv.get(label_id))
            assert len(rows) == len(set(rows))
            variables = [r.split()[0].lstrip("-") for r in rows]
            assert variables == sorted(variables)

    def test_interval_rows_pinned_for_ber(self):
        from repro.programs import get_benchmark

        bench = get_benchmark("ber")
        inv = generate_interval_invariants(bench.cfg, bench.init)
        # Per variable in name order: finite lo row, then finite hi row.
        assert _rows(inv.get(2)) == ["n - 100 >= 0", "-n + 100 >= 0", "x >= 0"]

    def test_repeated_generation_is_identical(self, rdwalk_cfg):
        first = generate_interval_invariants(rdwalk_cfg, {"x": 10})
        second = generate_interval_invariants(rdwalk_cfg, {"x": 10})
        for label_id in (1, 2):
            assert _rows(first.get(label_id)) == _rows(second.get(label_id))


class TestOctagonGeneration:
    COUPLED = (
        "var x, y;\n"
        "while x + y >= 1 do\n"
        "  if prob(0.5) then x := x - 1 else y := y - 1 fi;\n"
        "  tick(1)\nod\n"
    )

    def test_two_variable_guard_tightens_unary_bound(self):
        from repro.programs import get_benchmark

        bench = get_benchmark("ber")
        inv = generate_octagon_invariants(bench.cfg, bench.init)
        # ber's guard `x <= n - 1` plus the pinned n = 100 yields the
        # x <= 99 row that the interval generator cannot derive.
        assert _rows(inv.get(2)) == [
            "n - 100 >= 0",
            "-n + 100 >= 0",
            "x >= 0",
            "-x + 99 >= 0",
        ]

    def test_entailed_binary_rows_suppressed(self):
        from repro.programs import get_benchmark

        bench = get_benchmark("ber")
        inv = generate_octagon_invariants(bench.cfg, bench.init)
        # n is pinned to 100, so every +-x +-n row is implied by the
        # unary bounds and must not be emitted.
        for label_id in (1, 2, 3):
            for row in _rows(inv.get(label_id)):
                head = row.split(" >= ")[0]
                assert not ("x" in head and "n" in head), row

    def test_relational_sum_row_emitted(self):
        cfg = build_cfg(parse_program(self.COUPLED, name="coupled"))
        inv = generate_octagon_invariants(cfg, {"x": 5.0, "y": 5.0})
        # Inside the loop the octagon knows x + y >= 1, which no box
        # over x in [-4, 5], y in [-4, 5] implies.
        assert "y + x - 1 >= 0" in _rows(inv.get(2))

    def test_octagon_rows_sound_along_runs(self, rdwalk_cfg):
        inv = generate_octagon_invariants(rdwalk_cfg, {"x": 10})
        inv.validate_by_simulation(rdwalk_cfg, {"x": 10}, runs=50)

    def test_unreachable_label_has_no_entry(self):
        cfg = build_cfg(parse_program("var x; if x >= 100 then tick(1) else tick(2) fi"))
        inv = generate_octagon_invariants(cfg, {"x": 1})
        assert 2 not in inv


class TestDomainDispatch:
    def test_interval_dispatch_matches_direct_call(self, rdwalk_cfg):
        direct = generate_interval_invariants(rdwalk_cfg, {"x": 10})
        dispatched = generate_invariants(rdwalk_cfg, {"x": 10}, domain="interval")
        for label_id in (1, 2):
            assert _rows(direct.get(label_id)) == _rows(dispatched.get(label_id))

    def test_octagon_dispatch_matches_direct_call(self, rdwalk_cfg):
        direct = generate_octagon_invariants(rdwalk_cfg, {"x": 10})
        dispatched = generate_invariants(rdwalk_cfg, {"x": 10}, domain="octagon")
        for label_id in (1, 2):
            assert _rows(direct.get(label_id)) == _rows(dispatched.get(label_id))

    def test_unknown_domain_rejected(self, rdwalk_cfg):
        with pytest.raises(ValueError, match="invariant_domain"):
            generate_invariants(rdwalk_cfg, {"x": 10}, domain="polyhedra")
