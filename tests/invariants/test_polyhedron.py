"""Polyhedron and Region tests."""

import pytest

from repro.errors import InvariantError, NonLinearError
from repro.invariants import Polyhedron, Region
from repro.polynomials import Polynomial
from repro.syntax import parse_condition

X = Polynomial.variable("x")
Y = Polynomial.variable("y")


class TestPolyhedron:
    def test_whole_space(self):
        p = Polyhedron.whole_space()
        assert p.is_whole_space()
        assert p.contains({"x": -100.0})

    def test_contains(self):
        p = Polyhedron([X, 1 - X])  # 0 <= x <= 1
        assert p.contains({"x": 0.5})
        assert not p.contains({"x": 2.0})

    def test_contains_tolerance(self):
        p = Polyhedron([X])
        assert p.contains({"x": -1e-12})

    def test_nonlinear_rejected(self):
        with pytest.raises(NonLinearError):
            Polyhedron([X * X])

    def test_symbolic_rejected(self):
        from repro.polynomials import LinForm

        with pytest.raises(NonLinearError):
            Polyhedron([Polynomial.constant(LinForm.unknown("a"))])

    def test_trivially_true_constants_dropped(self):
        p = Polyhedron([Polynomial.constant(1.0), X])
        assert len(p) == 1

    def test_unsatisfiable_constant_rejected(self):
        with pytest.raises(InvariantError):
            Polyhedron([Polynomial.constant(-1.0)])

    def test_duplicates_dropped(self):
        p = Polyhedron([X, X])
        assert len(p) == 1

    def test_conjoin(self):
        p = Polyhedron([X]).conjoin(Polyhedron([Y]))
        assert len(p) == 2
        assert p.variables() == frozenset({"x", "y"})

    def test_from_condition_conjunctive(self):
        p = Polyhedron.from_condition(parse_condition("x >= 0 and y >= 1"))
        assert len(p) == 2

    def test_from_condition_strict_relaxed(self):
        p = Polyhedron.from_condition(parse_condition("x > 0"))
        assert p.contains({"x": 0.0})  # relaxed to closure

    def test_from_condition_disjunction_rejected(self):
        with pytest.raises(InvariantError):
            Polyhedron.from_condition(parse_condition("x >= 0 or y >= 0"))


class TestRegion:
    def test_whole_space(self):
        assert Region.whole_space().is_whole_space()

    def test_from_disjunctive_condition(self):
        r = Region.from_condition(parse_condition("x >= 1 or x <= -1"))
        assert len(r) == 2
        assert r.contains({"x": 2.0})
        assert r.contains({"x": -2.0})
        assert not r.contains({"x": 0.0})

    def test_false_condition_rejected(self):
        from repro.syntax import BoolConst

        with pytest.raises(InvariantError):
            Region.from_condition(BoolConst(False))

    def test_conjoin_cross_product(self):
        r1 = Region.from_condition(parse_condition("x >= 1 or x <= -1"))
        r2 = Region.from_condition(parse_condition("y >= 0 or y <= -5"))
        assert len(r1.conjoin(r2)) == 4

    def test_of_single_polyhedron(self):
        r = Region.of(Polyhedron([X]))
        assert len(r) == 1
        assert r.contains({"x": 1.0})

    def test_variables(self):
        r = Region.from_condition(parse_condition("x >= 0 or y >= 0"))
        assert r.variables() == frozenset({"x", "y"})

    def test_iteration(self):
        r = Region.from_condition(parse_condition("x >= 0 or x <= -2"))
        assert all(isinstance(p, Polyhedron) for p in r)
