"""InvariantMap annotation tests."""

import pytest

from repro.errors import InvariantError
from repro.invariants import InvariantMap


class TestInvariantMap:
    def test_trivial_defaults_to_whole_space(self, figure2_cfg):
        inv = InvariantMap.trivial()
        assert inv.get(1).is_whole_space()

    def test_from_strings(self, figure2_cfg):
        inv = InvariantMap.from_strings(figure2_cfg, {1: "x >= 0"})
        assert 1 in inv
        assert 2 not in inv
        assert inv.get(1).contains({"x": 0.0, "y": 0.0})

    def test_unknown_label_rejected(self, figure2_cfg):
        with pytest.raises(InvariantError):
            InvariantMap.from_strings(figure2_cfg, {42: "x >= 0"})

    def test_uniform(self, figure2_cfg):
        inv = InvariantMap.uniform(figure2_cfg, "x >= 0")
        for label in figure2_cfg.nonterminal_labels():
            assert label.id in inv

    def test_set_and_conjoin(self, figure2_cfg):
        inv = InvariantMap.trivial()
        inv.set(1, "x >= 0")
        inv.conjoin(1, "x <= 5")
        region = inv.get(1)
        assert region.contains({"x": 3.0})
        assert not region.contains({"x": 6.0})

    def test_merge(self, figure2_cfg):
        a = InvariantMap.from_strings(figure2_cfg, {1: "x >= 0"})
        b = InvariantMap.from_strings(figure2_cfg, {1: "x <= 10", 2: "x >= 1"})
        merged = a.merge(b)
        assert not merged.get(1).contains({"x": 11.0, "y": 0.0})
        assert 2 in merged

    def test_disjunctive_annotation(self, figure2_cfg):
        inv = InvariantMap.from_strings(figure2_cfg, {1: "x >= 1 or x <= 0"})
        assert len(inv.get(1)) == 2

    def test_validate_by_simulation_passes(self, figure2_cfg, figure2_invariants):
        figure2_invariants.validate_by_simulation(figure2_cfg, {"x": 10, "y": 0}, runs=20)

    def test_validate_by_simulation_catches_wrong_invariant(self, figure2_cfg):
        wrong = InvariantMap.from_strings(figure2_cfg, {2: "x >= 100"})
        with pytest.raises(InvariantError):
            wrong.validate_by_simulation(figure2_cfg, {"x": 10, "y": 0}, runs=20)

    def test_repr(self, figure2_cfg, figure2_invariants):
        assert "1:" in repr(figure2_invariants)
