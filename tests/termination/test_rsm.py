"""Ranking supermartingale / concentration certificate tests."""

import pytest

from repro.errors import InfeasibleError
from repro.invariants import InvariantMap
from repro.semantics import build_cfg
from repro.syntax import parse_program
from repro.termination import certify_concentration, synthesize_rsm


class TestRSM:
    def test_rdwalk_has_linear_rsm(self, rdwalk_cfg, rdwalk_invariants):
        cert = synthesize_rsm(rdwalk_cfg, rdwalk_invariants, {"x": 100})
        assert cert.certifies_concentration
        # Each loop iteration is 3 CFG steps; E[iterations] = 2x.
        assert cert.expected_time_bound >= 600.0

    def test_rsm_decreases_along_configurations(self, rdwalk_cfg, rdwalk_invariants):
        from repro.core import pre_expectation_value

        cert = synthesize_rsm(rdwalk_cfg, rdwalk_invariants, {"x": 10})
        for x in range(1, 20):
            v = {"x": float(x)}
            for label_id in (1, 2, 3):
                if label_id == 2 and x < 1:
                    continue
                pre = pre_expectation_value(rdwalk_cfg, cert.eta, label_id, v)
                eta = cert.eta[label_id].evaluate_numeric(v)
                assert pre <= eta - cert.epsilon + 1e-7

    def test_rsm_nonnegative_on_invariant(self, rdwalk_cfg, rdwalk_invariants):
        cert = synthesize_rsm(rdwalk_cfg, rdwalk_invariants, {"x": 10})
        for x in range(0, 30):
            assert cert.eta_at(1, {"x": float(x)}) >= -1e-7

    def test_nondeterministic_termination_is_demonic(self):
        # The scheduler may always pick the non-decreasing branch: no RSM.
        source = """
        var x;
        while x >= 1 do
            if * then x := x - 1 else x := x + 1 fi
        od
        """
        cfg = build_cfg(parse_program(source))
        inv = InvariantMap.from_strings(cfg, {i: "x >= 0" for i in range(1, 5)})
        with pytest.raises(InfeasibleError):
            synthesize_rsm(cfg, inv, {"x": 10})

    def test_nonterminating_loop_has_no_rsm(self):
        cfg = build_cfg(parse_program("var x; while x >= 0 do x := x + 1 od"))
        inv = InvariantMap.from_strings(cfg, {1: "x >= 0", 2: "x >= 0"})
        with pytest.raises(InfeasibleError):
            synthesize_rsm(cfg, inv, {"x": 0})

    def test_certify_concentration_returns_none_when_infeasible(self):
        cfg = build_cfg(parse_program("var x; while x >= 0 do x := x + 1 od"))
        inv = InvariantMap.from_strings(cfg, {1: "x >= 0", 2: "x >= 0"})
        assert certify_concentration(cfg, inv, {"x": 0}) is None

    def test_epsilon_must_be_positive(self, rdwalk_cfg, rdwalk_invariants):
        with pytest.raises(ValueError):
            synthesize_rsm(rdwalk_cfg, rdwalk_invariants, {"x": 1}, epsilon=0.0)

    def test_unbounded_update_blocks_concentration_flag(self):
        source = """
        var a;
        while a >= 5 do
            a := 0.5 * a
        od
        """
        cfg = build_cfg(parse_program(source))
        inv = InvariantMap.from_strings(cfg, {1: "a >= 0", 2: "a >= 5"})
        cert = certify_concentration(cfg, inv, {"a": 100})
        if cert is not None:
            assert not cert.certifies_concentration

    def test_expected_time_scales_with_epsilon(self, rdwalk_cfg, rdwalk_invariants):
        c1 = synthesize_rsm(rdwalk_cfg, rdwalk_invariants, {"x": 50}, epsilon=1.0)
        c2 = synthesize_rsm(rdwalk_cfg, rdwalk_invariants, {"x": 50}, epsilon=2.0)
        assert c2.expected_time_bound == pytest.approx(c1.expected_time_bound, rel=0.5)
