"""End-to-end checks over the full benchmark suite.

For every benchmark (15 from Table 2 + 10 from Table 3 + 5 from the
Table 6 extension families):

* the program parses, the CFG builds, and the annotated invariants hold
  along simulated runs;
* the PUCS (and PLCS where the regime admits one) synthesizes;
* the synthesized certificates satisfy (C3)/(C3') *exactly* at every
  configuration visited by simulated runs (the martingale validator
  evaluates Definition 6.3 with exact moments);
* the bounds bracket the simulated mean cost (on the prob(0.5) variant
  for nondeterministic programs);
* anchor values that the LP reproduces exactly match the paper.
"""

import pytest

from repro.analysis import check_cost_martingale
from repro.experiments import probabilistic_variant
from repro.programs import all_benchmarks, benchmarks_by_category, get_benchmark
from repro.semantics import simulate

ALL = all_benchmarks()
IDS = [b.name for b in ALL]

#: Smaller initial valuations for simulation-heavy checks.
SIM_INITS = {
    "bitcoin_pool": {"y": 20.0, "i": 0.0},
    "queuing_network": {"l1": 0.0, "l2": 0.0, "i": 1.0, "n": 240.0},
    "nested_loop": {"i": 50.0, "x": 0.0, "y": 0.0, "z": 0.0},
    "simple_loop": {"x": 100.0, "y": 0.0},
    "robot_2d": {"x": 100.0, "y": 90.0},
    "species_fight": {"a": 12.0, "b": 10.0},
    "prnes": {"y": 0.0, "n": -5.0},
}

_RESULT_CACHE = {}


def analyzed(bench):
    if bench.name not in _RESULT_CACHE:
        _RESULT_CACHE[bench.name] = bench.analyze()
    return _RESULT_CACHE[bench.name]


@pytest.mark.parametrize("bench", ALL, ids=IDS)
def test_program_parses_and_builds(bench):
    assert bench.program.pvars
    assert len(bench.cfg) >= 3
    assert bench.cfg.entry == 1


@pytest.mark.parametrize("bench", ALL, ids=IDS)
def test_invariants_reference_valid_labels(bench):
    bench.invariant_map()  # raises on unknown labels


@pytest.mark.parametrize("bench", ALL, ids=IDS)
def test_invariants_hold_along_runs(bench):
    init = SIM_INITS.get(bench.name, bench.init)
    sim_bench = probabilistic_variant(bench)
    inv = bench.invariant_map(init)
    inv.validate_by_simulation(sim_bench.cfg, init, runs=15, seed=0, max_steps=200_000)


@pytest.mark.parametrize("bench", ALL, ids=IDS)
def test_upper_bound_synthesizes(bench):
    result = analyzed(bench)
    assert result.upper is not None, result.warnings
    assert result.upper.bound.is_numeric()


@pytest.mark.parametrize("bench", ALL, ids=IDS)
def test_lower_bound_when_regime_admits(bench):
    result = analyzed(bench)
    if result.mode.lower:
        assert result.lower is not None, result.warnings
        assert result.lower.value <= result.upper.value + 1e-6


@pytest.mark.parametrize("bench", ALL, ids=IDS)
def test_pucs_is_cost_supermartingale(bench):
    """(C3) holds exactly at every simulated configuration."""
    result = analyzed(bench)
    init = SIM_INITS.get(bench.name, bench.init)
    sim_bench = probabilistic_variant(bench)
    report = check_cost_martingale(
        sim_bench.cfg, result.upper.h, "upper", init, runs=8, seed=0, max_steps=100_000
    )
    assert report.ok(tol=1e-4), report.worst_config


@pytest.mark.parametrize("bench", ALL, ids=IDS)
def test_plcs_is_cost_submartingale(bench):
    result = analyzed(bench)
    if result.lower is None:
        pytest.skip("no lower bound in this regime")
    init = SIM_INITS.get(bench.name, bench.init)
    sim_bench = probabilistic_variant(bench)
    report = check_cost_martingale(
        sim_bench.cfg, result.lower.h, "lower", init, runs=8, seed=0, max_steps=100_000
    )
    assert report.ok(tol=1e-4), report.worst_config


@pytest.mark.parametrize("bench", ALL, ids=IDS)
def test_bounds_bracket_simulation(bench):
    """UB >= simulated mean >= LB, within Monte-Carlo error.

    For nondeterministic programs the prob(0.5) policy is one concrete
    scheduler, so its expected cost is <= supval <= UB; the PLCS lower
    bound applies to supval, not to this policy, hence only the upper
    comparison is checked there.
    """
    result = analyzed(bench)
    init = SIM_INITS.get(bench.name, bench.init)
    sim_bench = probabilistic_variant(bench)
    stats = simulate(sim_bench.cfg, init, runs=120, seed=1, max_steps=bench.max_sim_steps)
    assert stats.termination_rate == 1.0
    margin = 4 * stats.stderr() + 1e-6
    ub = result.upper.bound_at(init)
    assert stats.mean <= ub + margin, (stats.mean, ub)
    if result.lower is not None and not bench.has_nondeterminism:
        lb = result.lower.bound_at(init)
        assert stats.mean >= lb - margin, (stats.mean, lb)


class TestExactAnchorValues:
    """Anchor values the LP reproduces exactly (cross-checked by hand)."""

    CASES = {
        "bitcoin_mining": ("upper", 1.475 - 1.475 * 100),
        "simple_loop": ("upper", (200 * 200 + 200) / 3),
        "nested_loop": ("upper", 150 * 150 / 3 + 150),
        "random_walk": ("upper", 2.5 * 12 - 2.5 * 20),
        "species_fight": ("upper", 40 * 16 * 10 - 180 * 16 - 180 * 10 + 810),
        "ber": ("upper", 200.0),
        "bin": ("upper", 20.0),
        "rdwalk": ("upper", 202.0),
        "C4B_t13": ("upper", 50.0),
        "pol05": ("upper", 0.5 * 50 * 50 + 2.5 * 50),
        "rdbub": ("upper", 3 * 20 * 20),
        "trader": ("upper", 5 * (30 * 30 + 30 - 5 * 5 - 5)),
    }

    @pytest.mark.parametrize("name", sorted(CASES), ids=sorted(CASES))
    def test_value(self, name):
        kind, expected = self.CASES[name]
        result = analyzed(get_benchmark(name))
        bound = result.upper if kind == "upper" else result.lower
        assert bound.value == pytest.approx(expected, rel=1e-5)

    LOWER_CASES = {
        "bitcoin_mining": -1.475 * 100,
        "simple_loop": (200 * 200 + 200) / 3 - 2 / 3,
        "nested_loop": 150 * 150 / 3 - 150 / 3,
        "random_walk": 2.5 * 12 - 2.5 * 20 - 2.5,
        "pollutant_disposal": -0.2 * 200 * 200 + 50.2 * 200 - 482.0,
    }

    @pytest.mark.parametrize("name", sorted(LOWER_CASES), ids=sorted(LOWER_CASES))
    def test_lower_value(self, name):
        result = analyzed(get_benchmark(name))
        assert result.lower.value == pytest.approx(self.LOWER_CASES[name], rel=1e-5)


class TestRegistry:
    def test_counts(self):
        assert len(benchmarks_by_category("table2")) == 15
        assert len(benchmarks_by_category("table3")) == 10
        assert len(benchmarks_by_category("table6")) == 5

    def test_lookup(self):
        assert get_benchmark("simple_loop").name == "simple_loop"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_benchmark("nope")

    def test_nondeterministic_benchmarks_identified(self):
        assert get_benchmark("bitcoin_mining").has_nondeterminism
        assert not get_benchmark("simple_loop").has_nondeterminism
        assert not get_benchmark("bitcoin_mining").simulation_supported

    def test_all_inits_deduplicated(self):
        bench = get_benchmark("bitcoin_mining")
        inits = bench.all_inits()
        assert len(inits) == 3
