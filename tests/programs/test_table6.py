"""The Table 6 extension families: lint, bounds and anchor values.

These benchmarks were modeled for this reimplementation (the paper
never evaluated them), so their contracts live here: every family ×
every registered initial valuation lints clean under strict checks,
analyzes without surprise warnings, and reproduces the hand-derived
closed-form bound values at its anchor.
"""

import pytest

from repro.api import AnalysisOptions
from repro.check import check_benchmark
from repro.programs import TABLE6_BENCHMARKS, benchmarks_by_category, get_benchmark

IDS = [bench.name for bench in TABLE6_BENCHMARKS]

#: Hand-derived PUCS/PLCS values at each benchmark's anchor valuation.
#: quicksort_rec's multiplicative updates put it in the nonnegative
#: regime, which admits no lower bound (documented as lower_skipped).
ANCHOR_VALUES = {
    "coupon_collector": (100.0, 95.0),  # 5n - 5c / minus one success
    "quicksort_rec": (261.3337, None),  # (8/3)n - 16/3 at n=100
    "gamblers_ruin": (100.0, 0.0),  # 10x at x=10
    "gamblers_ruin_momentum": (40.0, 0.0),  # 4x at x=10
    "retry_queue": (114.28571, 111.99999),  # (16/7)n at n=50
}


def test_registry_has_five_table6_families():
    assert benchmarks_by_category("table6") == TABLE6_BENCHMARKS
    assert len(TABLE6_BENCHMARKS) == 5


def test_all_families_are_simulable():
    # Table 6 reports a sim column for every row, so none of these may
    # use demonic nondeterminism.
    for bench in TABLE6_BENCHMARKS:
        assert not bench.has_nondeterminism
        assert bench.simulation_supported


@pytest.mark.parametrize("bench", TABLE6_BENCHMARKS, ids=IDS)
def test_lints_clean_at_every_init(bench):
    for init in bench.all_inits():
        result = check_benchmark(bench, init=init)
        assert result.clean, (init, [d.format() for d in result.diagnostics])


@pytest.mark.parametrize("bench", TABLE6_BENCHMARKS, ids=IDS)
def test_analyzes_without_warnings(bench):
    result = bench.analyze()
    assert result.upper is not None
    assert result.warnings == []


@pytest.mark.parametrize("bench", TABLE6_BENCHMARKS, ids=IDS)
def test_anchor_bound_values(bench):
    upper, lower = ANCHOR_VALUES[bench.name]
    result = bench.analyze()
    assert result.upper.value == pytest.approx(upper, rel=1e-3)
    if lower is None:
        assert result.lower is None
        assert result.lower_skipped is not None
    else:
        assert result.lower is not None
        assert result.lower.value == pytest.approx(lower, rel=1e-3)


def test_strict_check_through_options():
    # The batch/CI path uses check="strict"; the anchor runs must
    # survive it end to end, not just the standalone lint pass.
    options = AnalysisOptions(check="strict")
    for bench in TABLE6_BENCHMARKS:
        result = bench.analyze(options)
        assert result.diagnostics == []


def test_lookup_by_name():
    assert get_benchmark("retry_queue").category == "table6"
