"""CFG construction tests, including the paper's label numbering."""

import pytest

from repro.errors import CFGError
from repro.semantics import build_cfg
from repro.semantics.cfg import (
    BranchLabel,
    NondetLabel,
    ProbLabel,
)
from repro.syntax import parse_program


class TestFigure2Numbering:
    """The CFG of Figure 2 must match the paper: labels 1-5."""

    @pytest.fixture
    def cfg(self, figure2_cfg):
        return figure2_cfg

    def test_label_count(self, cfg):
        assert len(cfg) == 5

    def test_entry_and_exit(self, cfg):
        assert cfg.entry == 1
        assert cfg.exit == 5

    def test_kinds_in_order(self, cfg):
        kinds = [cfg.labels[i].kind for i in range(1, 6)]
        assert kinds == ["branch", "assign", "assign", "tick", "terminal"]

    def test_while_wiring(self, cfg):
        head = cfg.labels[1]
        assert isinstance(head, BranchLabel)
        assert head.is_loop_head
        assert head.succ_true == 2
        assert head.succ_false == 5

    def test_loop_back_edge(self, cfg):
        assert cfg.labels[4].succ == 1

    def test_predecessors(self, cfg):
        assert set(cfg.predecessors(1)) == {4}
        assert cfg.predecessors(5) == [1]


class TestConstruction:
    def test_skip_program(self):
        cfg = build_cfg(parse_program("skip"))
        assert cfg.entry == cfg.exit
        assert len(cfg) == 1

    def test_skip_elided_in_branches(self):
        cfg = build_cfg(parse_program("var x; if x >= 0 then x := 1 fi"))
        branch = cfg.labels[cfg.entry]
        assert branch.succ_false == cfg.exit

    def test_nondet_label(self):
        cfg = build_cfg(parse_program("var x; if * then x := 1 else x := 2 fi"))
        assert isinstance(cfg.labels[1], NondetLabel)
        assert len(cfg.nondet_labels()) == 1

    def test_prob_label(self):
        cfg = build_cfg(parse_program("var x; if prob(0.3) then x := 1 fi"))
        label = cfg.labels[1]
        assert isinstance(label, ProbLabel)
        assert label.succ_else == cfg.exit

    def test_tick_labels(self):
        cfg = build_cfg(parse_program("var x; tick(1); tick(x)"))
        assert len(cfg.tick_labels()) == 2

    def test_sequence_order(self):
        cfg = build_cfg(parse_program("var x; x := 1; x := 2; x := 3"))
        assert [cfg.labels[i].kind for i in (1, 2, 3)] == ["assign"] * 3
        assert cfg.labels[1].succ == 2
        assert cfg.labels[3].succ == cfg.exit

    def test_nested_loop_numbering(self):
        source = """
        var i, x;
        while i >= 1 do
            x := i;
            while x >= 1 do
                x := x - 1
            od;
            i := i - 1
        od
        """
        cfg = build_cfg(parse_program(source))
        assert cfg.labels[1].kind == "branch"
        assert cfg.labels[2].kind == "assign"  # x := i
        assert cfg.labels[3].kind == "branch"  # inner while
        assert cfg.labels[4].kind == "assign"  # x := x - 1
        assert cfg.labels[5].kind == "assign"  # i := i - 1
        assert cfg.labels[3].succ_false == 5

    def test_if_else_branch_ordering(self):
        cfg = build_cfg(parse_program("var x; if x >= 0 then x := 1 else x := 2 fi; tick(1)"))
        branch = cfg.labels[1]
        assert branch.succ_true == 2
        assert branch.succ_false == 3
        assert cfg.labels[2].succ == cfg.labels[3].succ == 4

    def test_every_successor_exists(self):
        from repro.programs import all_benchmarks

        for bench in all_benchmarks():
            cfg = bench.cfg
            ids = set(cfg.labels)
            for label in cfg:
                assert all(s in ids for s in label.successors())

    def test_terminal_has_no_successors(self, figure2_cfg):
        assert figure2_cfg.labels[figure2_cfg.exit].successors() == ()

    def test_unknown_label_lookup(self, figure2_cfg):
        with pytest.raises(CFGError):
            figure2_cfg.label(99)

    def test_pretty_contains_all_labels(self, figure2_cfg):
        text = figure2_cfg.pretty()
        for i in range(1, 6):
            assert f"{i}:" in text

    def test_to_networkx(self, figure2_cfg):
        graph = figure2_cfg.to_networkx()
        assert graph.number_of_nodes() == 5
        assert graph.has_edge(4, 1)
        assert graph.has_edge(1, 5)
