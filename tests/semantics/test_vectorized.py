"""Vectorized batch interpreter: consistency with the reference engine,
engine dispatch, scheduler compilation, truncation semantics."""

import math

import pytest

from repro.errors import SemanticsError, VectorizationError
from repro.programs import get_benchmark
from repro.semantics import (
    AUTO_MIN_RUNS,
    CallbackScheduler,
    ElseScheduler,
    FixedScheduler,
    RandomScheduler,
    ThenScheduler,
    build_cfg,
    compile_cfg,
    simulate,
    simulate_vectorized,
)
from repro.syntax import parse_program


def make(source):
    return build_cfg(parse_program(source))


def _means_compatible(a, b, sigmas=5.0):
    """Two engines' means agree within a z-test bracket."""
    scale = math.hypot(a.stderr(), b.stderr())
    if not math.isfinite(scale) or scale == 0.0:
        return a.mean == pytest.approx(b.mean)
    return abs(a.mean - b.mean) <= sigmas * scale


class TestDeterministicEquivalence:
    """On probability-free programs both engines must agree exactly."""

    CASES = [
        ("var x; x := 3; tick(2 * x); tick(1)", {"x": 0}, 7.0),
        ("var i; while i >= 1 do tick(i); i := i - 1 od", {"i": 4}, 10.0),
        ("var x; if x >= 0 then tick(1) else tick(2) fi", {"x": -1}, 2.0),
        ("var x; tick(5); tick(-8)", {"x": 0}, -3.0),
        ("var x, y; x := 5; y := x * x; tick(y)", {"x": 0, "y": 0}, 25.0),
    ]

    @pytest.mark.parametrize("source, init, expected", CASES)
    def test_exact_cost(self, source, init, expected):
        cfg = make(source)
        ref = simulate(cfg, init, runs=4, seed=0, engine="reference")
        vec = simulate(cfg, init, runs=4, seed=0, engine="vectorized")
        assert vec.engine == "vectorized"
        assert vec.costs == ref.costs == [expected] * 4
        assert vec.mean_steps == ref.mean_steps
        assert vec.termination_rate == ref.termination_rate == 1.0

    def test_guard_connectives(self):
        source = (
            "var x, y; if x >= 1 and not (y >= 1) then tick(1) fi; "
            "if x >= 5 or y <= 0 then tick(10) fi"
        )
        cfg = make(source)
        for init in ({"x": 1, "y": 0}, {"x": 0, "y": 2}, {"x": 6, "y": 3}):
            ref = simulate(cfg, init, runs=2, seed=0, engine="reference")
            vec = simulate(cfg, init, runs=2, seed=0, engine="vectorized")
            assert vec.costs == ref.costs

    def test_truncation_partition_matches(self):
        cfg = make("var x; while x >= 0 do x := x + 1; tick(1) od")
        ref = simulate(cfg, {"x": 0}, runs=5, seed=0, max_steps=1000, engine="reference")
        vec = simulate(cfg, {"x": 0}, runs=5, seed=0, max_steps=1000, engine="vectorized")
        assert ref.truncated == vec.truncated == 5
        assert ref.truncated_costs == vec.truncated_costs
        assert ref.mean_steps == vec.mean_steps == 1000

    def test_exact_budget_arrival_counts_as_truncated(self):
        # The whole program takes exactly 2 steps; with max_steps=2 the
        # run is at l_out when the budget check fires — the reference
        # loop counts that as truncated, the vectorized engine must too.
        cfg = make("var x; tick(1); x := 1")
        for engine in ("reference", "vectorized"):
            stats = simulate(cfg, {"x": 0}, runs=3, seed=0, max_steps=2, engine=engine)
            assert stats.truncated == 3, engine
            stats = simulate(cfg, {"x": 0}, runs=3, seed=0, max_steps=3, engine=engine)
            assert stats.truncated == 0, engine


class TestStatisticalConsistency:
    """On probabilistic programs the engines draw different RNG streams;
    their statistics must agree within Monte-Carlo error."""

    @pytest.mark.parametrize("name", ["rdwalk", "ber", "linear01", "race", "trader"])
    def test_registry_benchmarks(self, name):
        bench = get_benchmark(name)
        ref = simulate(bench.cfg, bench.init, runs=1500, seed=11, engine="reference")
        vec = simulate(bench.cfg, bench.init, runs=1500, seed=11, engine="vectorized")
        assert ref.truncated == vec.truncated == 0
        assert _means_compatible(ref, vec)

    def test_prob_branch(self):
        cfg = make("var x; if prob(0.25) then tick(1) fi")
        vec = simulate(cfg, {"x": 0}, runs=8000, seed=0, engine="vectorized")
        assert vec.mean == pytest.approx(0.25, abs=0.02)

    def test_sampling_distributions(self):
        # unif + discrete + geometric sampling all inside one program.
        cfg = make(
            "var a, b, c; sample u ~ uniform(0, 2); sample d ~ discrete(1: 0.5, 3: 0.5); "
            "sample g ~ geometric(0.5); a := u; b := d; c := g; tick(a + b + c)"
        )
        vec = simulate(cfg, {"a": 0, "b": 0, "c": 0}, runs=6000, seed=5, engine="vectorized")
        ref = simulate(cfg, {"a": 0, "b": 0, "c": 0}, runs=6000, seed=5, engine="reference")
        assert vec.mean == pytest.approx(1.0 + 2.0 + 2.0, abs=0.15)
        assert _means_compatible(ref, vec)


class TestReproducibility:
    def test_same_seed_bitwise_identical(self, rdwalk_cfg):
        a = simulate(rdwalk_cfg, {"x": 5}, runs=500, seed=42, engine="vectorized")
        b = simulate(rdwalk_cfg, {"x": 5}, runs=500, seed=42, engine="vectorized")
        assert a.costs == b.costs
        assert a.mean == b.mean and a.std == b.std

    def test_different_seeds_differ(self, rdwalk_cfg):
        a = simulate(rdwalk_cfg, {"x": 5}, runs=500, seed=1, engine="vectorized")
        b = simulate(rdwalk_cfg, {"x": 5}, runs=500, seed=2, engine="vectorized")
        assert a.costs != b.costs


class TestEngineDispatch:
    def test_auto_small_batch_uses_reference(self, rdwalk_cfg):
        stats = simulate(rdwalk_cfg, {"x": 5}, runs=AUTO_MIN_RUNS - 1, seed=0)
        assert stats.engine == "reference"

    def test_auto_large_batch_uses_vectorized(self, rdwalk_cfg):
        stats = simulate(rdwalk_cfg, {"x": 5}, runs=AUTO_MIN_RUNS, seed=0)
        assert stats.engine == "vectorized"

    def test_auto_matches_reference_stream_below_threshold(self, rdwalk_cfg):
        # Small seeded batches (the golden tables) keep their exact
        # historical reference-stream results under the default engine.
        auto = simulate(rdwalk_cfg, {"x": 5}, runs=30, seed=0)
        ref = simulate(rdwalk_cfg, {"x": 5}, runs=30, seed=0, engine="reference")
        assert auto.costs == ref.costs

    def test_forced_reference(self, rdwalk_cfg):
        stats = simulate(rdwalk_cfg, {"x": 5}, runs=200, seed=0, engine="reference")
        assert stats.engine == "reference"

    def test_invalid_engine_rejected(self, rdwalk_cfg):
        with pytest.raises(ValueError):
            simulate(rdwalk_cfg, {"x": 5}, runs=10, engine="turbo")

    def test_auto_falls_back_for_custom_scheduler(self):
        cfg = make("var x; if * then tick(10) else tick(-10) fi")
        sched = CallbackScheduler(lambda label, valuation, history: True)
        stats = simulate(cfg, {"x": 0}, runs=200, seed=0, scheduler=sched)
        assert stats.engine == "reference"
        assert stats.mean == 10.0

    def test_forced_vectorized_raises_for_custom_scheduler(self):
        cfg = make("var x; if * then tick(10) else tick(-10) fi")
        sched = CallbackScheduler(lambda label, valuation, history: True)
        with pytest.raises(VectorizationError):
            simulate(cfg, {"x": 0}, runs=200, seed=0, scheduler=sched, engine="vectorized")


class TestSchedulers:
    SOURCE = "var x; if * then tick(10) else tick(-10) fi"

    def test_then_else(self):
        cfg = make(self.SOURCE)
        assert simulate_vectorized(cfg, {"x": 0}, runs=8, scheduler=ThenScheduler(), seed=0).mean == 10.0
        assert simulate_vectorized(cfg, {"x": 0}, runs=8, scheduler=ElseScheduler(), seed=0).mean == -10.0

    def test_default_is_then(self):
        cfg = make(self.SOURCE)
        assert simulate_vectorized(cfg, {"x": 0}, runs=8, seed=0).mean == 10.0

    def test_fixed(self):
        cfg = make(self.SOURCE)
        (nd,) = cfg.nondet_labels()
        sched = FixedScheduler({nd.id: False}, default=True)
        assert simulate_vectorized(cfg, {"x": 0}, runs=8, scheduler=sched, seed=0).mean == -10.0

    def test_random_mixes(self):
        cfg = make(self.SOURCE)
        stats = simulate_vectorized(cfg, {"x": 0}, runs=4000, scheduler=RandomScheduler(0.25), seed=0)
        # E = 0.25 * 10 + 0.75 * (-10) = -5.
        assert stats.mean == pytest.approx(-5.0, abs=0.5)


class TestValidation:
    def test_unknown_initial_variable_rejected(self):
        cfg = make("var x; skip")
        with pytest.raises(SemanticsError):
            simulate_vectorized(cfg, {"q": 1}, runs=4)

    def test_zero_runs_rejected(self, rdwalk_cfg):
        with pytest.raises(ValueError):
            simulate_vectorized(rdwalk_cfg, {"x": 5}, runs=0)

    def test_bad_max_steps_rejected(self, rdwalk_cfg):
        with pytest.raises(ValueError):
            simulate_vectorized(rdwalk_cfg, {"x": 5}, runs=4, max_steps=0)


class TestCompileCache:
    def test_program_reused_per_cfg_and_policy(self, rdwalk_cfg):
        a = compile_cfg(rdwalk_cfg)
        b = compile_cfg(rdwalk_cfg, ThenScheduler())
        assert a is b  # default policy == ThenScheduler

    def test_distinct_policies_compile_separately(self):
        cfg = make("var x; if * then tick(10) else tick(-10) fi")
        assert compile_cfg(cfg, ThenScheduler()) is not compile_cfg(cfg, ElseScheduler())

    def test_distinct_cfgs_compile_separately(self, rdwalk_cfg):
        other = make("var x; tick(1)")
        assert compile_cfg(rdwalk_cfg) is not compile_cfg(other)
