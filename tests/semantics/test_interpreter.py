"""Interpreter tests: exact costs on deterministic programs, statistics
on probabilistic ones, scheduler interaction."""

import math
import random

import pytest

from repro.errors import SemanticsError
from repro.semantics import (
    CallbackScheduler,
    ElseScheduler,
    FixedScheduler,
    RandomScheduler,
    ThenScheduler,
    build_cfg,
    run,
    simulate,
)
from repro.syntax import parse_program


def make(source):
    return build_cfg(parse_program(source))


class TestDeterministic:
    def test_straight_line_cost(self):
        cfg = make("var x; x := 3; tick(2 * x); tick(1)")
        result = run(cfg, {"x": 0})
        assert result.terminated
        assert result.total_cost == 7.0

    def test_counted_loop(self):
        cfg = make("var i; while i >= 1 do tick(i); i := i - 1 od")
        result = run(cfg, {"i": 4})
        assert result.total_cost == 4 + 3 + 2 + 1

    def test_final_valuation(self):
        cfg = make("var x, y; x := 5; y := x * x")
        result = run(cfg, {"x": 0, "y": 0})
        assert result.final_valuation == {"x": 5.0, "y": 25.0}

    def test_branching(self):
        cfg = make("var x; if x >= 0 then tick(1) else tick(2) fi")
        assert run(cfg, {"x": 1}).total_cost == 1.0
        assert run(cfg, {"x": -1}).total_cost == 2.0

    def test_max_steps_truncation(self):
        cfg = make("var x; while x >= 0 do x := x + 1 od")
        result = run(cfg, {"x": 0}, max_steps=100)
        assert not result.terminated
        assert result.steps == 100

    def test_negative_costs_accumulate(self):
        cfg = make("var x; tick(5); tick(-8)")
        assert run(cfg, {"x": 0}).total_cost == -3.0

    def test_unknown_initial_variable_rejected(self):
        cfg = make("var x; skip")
        with pytest.raises(SemanticsError):
            run(cfg, {"q": 1})

    def test_unmentioned_variables_default_to_zero(self):
        cfg = make("var x, y; x := y + 1")
        assert run(cfg, {}).final_valuation["x"] == 1.0


class TestProbabilistic:
    def test_sampling_assignment(self):
        cfg = make("var x; sample r ~ point(7); x := r")
        assert run(cfg, {"x": 0}).final_valuation["x"] == 7.0

    def test_fresh_draw_each_access(self):
        # With resampling, two consecutive draws eventually differ.
        cfg = make("var a, b; sample r ~ discrete(0: 0.5, 1: 0.5); a := r; b := r")
        rng = random.Random(3)
        seen_diff = any(
            (res := run(cfg, {"a": 0, "b": 0}, rng=rng)).final_valuation["a"]
            != res.final_valuation["b"]
            for _ in range(50)
        )
        assert seen_diff

    def test_prob_branch_statistics(self):
        cfg = make("var x; if prob(0.25) then tick(1) fi")
        stats = simulate(cfg, {"x": 0}, runs=8000, seed=0)
        assert stats.mean == pytest.approx(0.25, abs=0.02)

    def test_geometric_expected_cost(self):
        # Ticks once per trial until success with p = 0.5: E = 2.
        cfg = make(
            "var going; going := 1; while going >= 1 do tick(1); "
            "if prob(0.5) then going := 0 fi od"
        )
        stats = simulate(cfg, {"going": 0}, runs=4000, seed=1)
        assert stats.mean == pytest.approx(2.0, abs=0.1)

    def test_rdwalk_expected_cost(self, rdwalk_cfg):
        stats = simulate(rdwalk_cfg, {"x": 10}, runs=3000, seed=2)
        assert stats.mean == pytest.approx(20.0, rel=0.1)

    def test_seed_reproducibility(self, rdwalk_cfg):
        s1 = simulate(rdwalk_cfg, {"x": 5}, runs=100, seed=42)
        s2 = simulate(rdwalk_cfg, {"x": 5}, runs=100, seed=42)
        assert s1.costs == s2.costs

    def test_termination_rate(self, rdwalk_cfg):
        stats = simulate(rdwalk_cfg, {"x": 5}, runs=200, seed=0)
        assert stats.termination_rate == 1.0

    def test_statistics_fields(self, rdwalk_cfg):
        stats = simulate(rdwalk_cfg, {"x": 5}, runs=500, seed=0)
        assert stats.min <= stats.mean <= stats.max
        assert stats.std > 0
        lo, hi = stats.confidence_interval()
        assert lo < stats.mean < hi

    def test_zero_runs_rejected(self, rdwalk_cfg):
        with pytest.raises(ValueError):
            simulate(rdwalk_cfg, {"x": 5}, runs=0)


class TestSchedulers:
    SOURCE = "var x; if * then tick(10) else tick(-10) fi"

    def test_then_scheduler(self):
        cfg = make(self.SOURCE)
        assert run(cfg, {"x": 0}, scheduler=ThenScheduler()).total_cost == 10.0

    def test_else_scheduler(self):
        cfg = make(self.SOURCE)
        assert run(cfg, {"x": 0}, scheduler=ElseScheduler()).total_cost == -10.0

    def test_fixed_scheduler(self):
        cfg = make(self.SOURCE)
        (nd,) = cfg.nondet_labels()
        sched = FixedScheduler({nd.id: False}, default=True)
        assert run(cfg, {"x": 0}, scheduler=sched).total_cost == -10.0

    def test_random_scheduler_mixes(self):
        cfg = make(self.SOURCE)
        sched = RandomScheduler(p_then=0.5, seed=0)
        costs = {run(cfg, {"x": 0}, scheduler=sched).total_cost for _ in range(50)}
        assert costs == {10.0, -10.0}

    def test_callback_scheduler_sees_state(self):
        from repro.semantics import CallbackScheduler

        cfg = make("var x; x := 3; if * then tick(1) else tick(2) fi")
        sched = CallbackScheduler(lambda label, valuation, history: valuation["x"] >= 2)
        assert run(cfg, {"x": 0}, scheduler=sched).total_cost == 1.0


class TestTrajectories:
    def test_trajectory_recorded(self, figure2_cfg):
        result = run(figure2_cfg, {"x": 3, "y": 0}, rng=random.Random(0), record_trajectory=True)
        assert result.trajectory is not None
        assert result.trajectory[0][0] == 1  # starts at the loop head
        assert result.trajectory[-1][0] == figure2_cfg.exit

    def test_trajectory_costs_sum_to_total(self, figure2_cfg):
        result = run(figure2_cfg, {"x": 5, "y": 0}, rng=random.Random(1), record_trajectory=True)
        assert sum(c for _, _, c in result.trajectory) == pytest.approx(result.total_cost)


class TestTruncation:
    """Regression tests: truncated (non-terminated) runs are counted and
    surfaced instead of silently skewing mean/std."""

    def test_truncated_runs_counted(self):
        cfg = make("var x; while x >= 0 do x := x + 1; tick(1) od")
        stats = simulate(cfg, {"x": 0}, runs=7, seed=0, max_steps=30)
        assert stats.truncated == 7
        assert stats.terminated_runs == 0
        assert stats.termination_rate == 0.0
        # Partial costs are *excluded* from the statistics: with no
        # terminated run there is no mean, only the diagnostic
        # truncated-run partial mean.
        assert math.isnan(stats.mean)
        assert math.isnan(stats.std)
        assert stats.costs == []
        assert stats.truncated_mean == pytest.approx(10.0)
        assert len(stats.truncated_costs) == 7

    def test_terminating_program_has_no_truncated_runs(self):
        cfg = make("var i; while i >= 1 do tick(i); i := i - 1 od")
        stats = simulate(cfg, {"i": 3}, runs=5, seed=0)
        assert stats.truncated == 0
        assert stats.termination_rate == 1.0
        assert stats.truncated_mean is None
        assert stats.truncated_costs == []

    def test_mixed_truncation_consistent_with_rate(self, figure2_cfg):
        stats = simulate(figure2_cfg, {"x": 4, "y": 0}, runs=40, seed=1, max_steps=30)
        assert stats.truncated == round((1.0 - stats.termination_rate) * stats.runs)
        assert 0 < stats.truncated < stats.runs
        # mean/std cover only the terminated runs now.
        assert len(stats.costs) == stats.terminated_runs
        assert len(stats.truncated_costs) == stats.truncated
        assert stats.mean == pytest.approx(sum(stats.costs) / stats.terminated_runs)
        assert stats.truncated_mean == pytest.approx(
            sum(stats.truncated_costs) / stats.truncated
        )

    def test_truncated_partial_costs_do_not_enter_mean(self):
        """Regression for the old downward bias: a truncated run's
        partial cost is a strict undercount of its true cost, and the
        pre-fix estimator folded it into the mean anyway.  The new
        statistics must be computable from the terminated costs alone."""
        cfg = make("var x; while x >= 1 do x := x + (1, -1) : (0.25, 0.75); tick(1) od")
        stats = simulate(cfg, {"x": 10}, runs=200, seed=3, max_steps=75)
        assert 0 < stats.truncated < stats.runs
        biased = (sum(stats.costs) + sum(stats.truncated_costs)) / stats.runs
        assert stats.mean == pytest.approx(sum(stats.costs) / len(stats.costs))
        assert stats.mean != pytest.approx(biased)
        # Every truncated partial cost undercounts a run that was still
        # going at the horizon (cost = iterations so far, one tick per
        # three CFG steps).
        assert all(cost <= 75 for cost in stats.truncated_costs)


class TestHistoryGating:
    """Regression tests: per-step valuation snapshots are only recorded
    when a history-consuming scheduler can actually read them — a 1M-step
    truncated run used to allocate one dict snapshot per step."""

    def test_custom_scheduler_still_sees_history(self):
        cfg = make("var x; x := 1; if * then tick(1) else tick(2) fi")
        seen = []
        sched = CallbackScheduler(
            lambda label, valuation, history: bool(seen.append(len(history))) or True
        )
        run(cfg, {"x": 0}, scheduler=sched)
        # The nondet label is the second step, so one prior entry.
        assert seen == [1]

    def test_builtin_schedulers_skip_history(self):
        cfg = make("var x; x := 1; if * then tick(1) else tick(2) fi")

        class Spy(ThenScheduler):
            # Inherits needs_history = False; record what arrives.
            def choose(self, label, valuation, history):
                assert history == []
                return True

        result = run(cfg, {"x": 0}, scheduler=Spy())
        assert result.total_cost == 1.0

    def test_long_truncated_run_stays_small(self):
        import tracemalloc

        cfg = make("var x; while x >= 0 do x := x + 1 od")
        tracemalloc.start()
        try:
            run(cfg, {"x": 0}, max_steps=200_000)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # 200k dict snapshots would be tens of MB; the gated run stays
        # within a small constant footprint.
        assert peak < 5 * 1024 * 1024
