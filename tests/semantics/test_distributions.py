"""Distribution tests: moments, support bounds, sampling statistics."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SemanticsError
from repro.semantics.distributions import (
    BernoulliDistribution,
    BinomialDistribution,
    DiscreteDistribution,
    Distribution,
    GeometricDistribution,
    PointDistribution,
    UniformDistribution,
    UniformIntDistribution,
)


class TestDiscrete:
    def test_moments(self):
        d = DiscreteDistribution([1, -1], [0.25, 0.75])
        assert d.moment(0) == 1.0
        assert d.moment(1) == pytest.approx(-0.5)
        assert d.moment(2) == pytest.approx(1.0)
        assert d.moment(3) == pytest.approx(-0.5)

    def test_mean_variance(self):
        d = DiscreteDistribution([0, 10], [0.5, 0.5])
        assert d.mean() == 5.0
        assert d.variance() == 25.0

    def test_support_bounds(self):
        assert DiscreteDistribution([3, -2, 7], [0.2, 0.3, 0.5]).support_bounds() == (-2, 7)

    def test_duplicate_values_merged(self):
        d = DiscreteDistribution([1, 1], [0.5, 0.5])
        assert d.values == (1.0,)
        assert d.probs == (1.0,)

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            DiscreteDistribution([1, 2], [0.5, 0.4])

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            DiscreteDistribution([1, 2], [-0.5, 1.5])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DiscreteDistribution([], [])

    def test_negative_moment_order_rejected(self):
        with pytest.raises(ValueError):
            DiscreteDistribution([1], [1.0]).moment(-1)

    def test_sampling_frequency(self):
        d = DiscreteDistribution([0, 1], [0.3, 0.7])
        rng = random.Random(0)
        mean = sum(d.sample(rng) for _ in range(20_000)) / 20_000
        assert mean == pytest.approx(0.7, abs=0.02)

    def test_is_bounded(self):
        assert DiscreteDistribution([1, 2], [0.5, 0.5]).is_bounded()


class TestBernoulli:
    def test_moments_all_equal_p(self):
        d = BernoulliDistribution(0.3)
        for k in range(1, 5):
            assert d.moment(k) == pytest.approx(0.3)

    def test_range_check(self):
        with pytest.raises(ValueError):
            BernoulliDistribution(1.5)


class TestBinomial:
    def test_mean(self):
        assert BinomialDistribution(10, 0.3).mean() == pytest.approx(3.0)

    def test_variance(self):
        assert BinomialDistribution(10, 0.3).variance() == pytest.approx(2.1)

    def test_support(self):
        assert BinomialDistribution(5, 0.5).support_bounds() == (0.0, 5.0)

    def test_degenerate(self):
        assert BinomialDistribution(0, 0.5).mean() == 0.0

    def test_probabilities_sum(self):
        d = BinomialDistribution(8, 0.37)
        assert sum(d.probs) == pytest.approx(1.0)


class TestUniform:
    def test_mean(self):
        assert UniformDistribution(1, 3).mean() == pytest.approx(2.0)

    def test_second_moment(self):
        # E[X^2] on [1, 3] is (27 - 1) / (3 * 2) = 13/3.
        assert UniformDistribution(1, 3).moment(2) == pytest.approx(13 / 3)

    def test_moment_zero(self):
        assert UniformDistribution(0, 1).moment(0) == 1.0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            UniformDistribution(3, 1)

    def test_sampling_in_support(self):
        d = UniformDistribution(-2, 5)
        rng = random.Random(1)
        assert all(-2 <= d.sample(rng) <= 5 for _ in range(1000))

    def test_moment_matches_quadrature(self):
        d = UniformDistribution(0.5, 2.5)
        for k in range(1, 6):
            n = 200_000
            approx = sum(
                (0.5 + (i + 0.5) * 2.0 / n) ** k for i in range(n)
            ) / n
            assert d.moment(k) == pytest.approx(approx, rel=1e-4)


class TestUniformInt:
    def test_mean(self):
        assert UniformIntDistribution(1, 10).mean() == pytest.approx(5.5)

    def test_second_moment(self):
        # E[X^2] for uniform{1..10} = 385/10.
        assert UniformIntDistribution(1, 10).moment(2) == pytest.approx(38.5)

    def test_single_point(self):
        d = UniformIntDistribution(4, 4)
        assert d.mean() == 4.0
        assert d.variance() == pytest.approx(0.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            UniformIntDistribution(5, 4)


class TestPoint:
    def test_moments(self):
        d = PointDistribution(3.0)
        assert d.moment(2) == 9.0
        assert d.variance() == pytest.approx(0.0)

    def test_sample_is_constant(self):
        d = PointDistribution(-2.5)
        assert d.sample(random.Random(0)) == -2.5


@given(
    st.lists(
        st.tuples(st.integers(-5, 5).map(float), st.floats(0.01, 1.0)), min_size=1, max_size=6
    )
)
@settings(max_examples=50)
def test_discrete_variance_nonnegative(pairs):
    values = [v for v, _ in pairs]
    weights = [w for _, w in pairs]
    total = sum(weights)
    d = DiscreteDistribution(values, [w / total for w in weights])
    assert d.variance() >= -1e-9


@given(st.floats(-5, 5), st.floats(0.1, 5))
@settings(max_examples=50)
def test_uniform_moments_within_support_bounds(a, width):
    d = UniformDistribution(a, a + width)
    lo, hi = d.support_bounds()
    assert lo <= d.mean() <= hi
    assert math.isfinite(d.moment(4))


class TestGeometric:
    def test_closed_form_first_two_moments(self):
        for p in (0.9, 0.5, 0.1, 1e-3, 1e-8):
            d = GeometricDistribution(p)
            assert d.moment(1) == pytest.approx(1.0 / p, rel=1e-12)
            assert d.moment(2) == pytest.approx((2.0 - p) / p**2, rel=1e-12)

    def test_small_p_mean_exact(self):
        # Regression: the old fixed 100k-term truncation returned a
        # badly wrong E[X] for small p (the mass sits near n ~ 1/p).
        assert GeometricDistribution(1e-6).moment(1) == pytest.approx(1e6, rel=1e-9)

    def test_third_moment_closed_form(self):
        # E[X^3] = (6 - 6p + p^2) / p^3 — exercises the adaptive series.
        for p in (0.7, 0.3, 0.05):
            d = GeometricDistribution(p)
            expected = (6.0 - 6.0 * p + p * p) / p**3
            assert d.moment(3) == pytest.approx(expected, rel=1e-9)

    def test_nonconvergent_order_raises(self):
        # k >= 3 with tiny p needs ~k/p >> 1M terms: must raise, never
        # silently return a truncated underestimate.
        with pytest.raises(SemanticsError):
            GeometricDistribution(1e-7).moment(3)

    def test_moment_zero_and_degenerate(self):
        assert GeometricDistribution(0.3).moment(0) == 1.0
        d = GeometricDistribution(1.0)
        assert d.moment(5) == 1.0
        assert d.sample(random.Random(0)) == 1.0

    def test_support_unbounded(self):
        d = GeometricDistribution(0.5)
        assert not d.is_bounded()
        assert d.support_bounds() == (1.0, math.inf)

    def test_samples_in_support(self):
        rng = random.Random(7)
        d = GeometricDistribution(0.3)
        draws = [d.sample(rng) for _ in range(500)]
        assert all(v >= 1 and v == int(v) for v in draws)
        assert sum(draws) / len(draws) == pytest.approx(1 / 0.3, rel=0.15)


class TestBisectSampling:
    """Regression: the O(log k) cumulative-weight sampler must stay
    draw-for-draw identical with the old linear scan (golden seeded
    fixtures embed its exact stream)."""

    DISTS = [
        DiscreteDistribution([-1.0, 0.0, 1.0], [0.5, 0.1, 0.4]),
        DiscreteDistribution([2.0], [1.0]),
        UniformIntDistribution(1, 10),
        BernoulliDistribution(0.25),
    ]

    @staticmethod
    def _linear_scan(dist, u):
        acc = 0.0
        for v, p in zip(dist.values, dist.probs):
            acc += p
            if u <= acc:
                return v
        return dist.values[-1]

    @pytest.mark.parametrize("dist", DISTS, ids=repr)
    def test_identical_to_linear_scan(self, dist):
        rng_new, rng_old = random.Random(123), random.Random(123)
        for _ in range(2000):
            assert dist.sample(rng_new) == self._linear_scan(dist, rng_old.random())

    def test_float_shortfall_clamps_to_last_value(self):
        dist = DiscreteDistribution([0.0, 1.0, 2.0], [1 / 3, 1 / 3, 1 / 3])

        class Top:
            def random(self):
                return 1.0

        assert dist.sample(Top()) == 2.0


class TestSampleBatch:
    """``sample_batch`` must agree statistically with ``sample`` for
    every distribution (the vectorized interpreter draws through it)."""

    DISTS = [
        DiscreteDistribution([-1.0, 0.0, 1.0], [0.5, 0.1, 0.4]),
        BernoulliDistribution(0.3),
        BinomialDistribution(8, 0.4),
        UniformDistribution(-2.0, 3.0),
        UniformIntDistribution(1, 10),
        PointDistribution(4.5),
        GeometricDistribution(0.35),
    ]

    @pytest.mark.parametrize("dist", DISTS, ids=repr)
    def test_statistical_equivalence(self, dist):
        import numpy as np

        n = 40_000
        batch = dist.sample_batch(np.random.default_rng(11), n)
        assert batch.shape == (n,)
        rng = random.Random(11)
        seq = [dist.sample(rng) for _ in range(n)]
        mu, var = dist.mean(), dist.variance()
        sigma = math.sqrt(var / n)
        tol = 6 * sigma + 1e-12
        assert abs(float(batch.mean()) - mu) <= tol
        assert abs(sum(seq) / n - mu) <= tol
        lo, hi = dist.support_bounds()
        assert float(batch.min()) >= lo and float(batch.max()) <= hi

    @pytest.mark.parametrize("dist", DISTS, ids=repr)
    def test_seeded_batch_reproducible(self, dist):
        import numpy as np

        a = dist.sample_batch(np.random.default_rng(5), 256)
        b = dist.sample_batch(np.random.default_rng(5), 256)
        assert (a == b).all()

    def test_base_class_sequential_fallback(self):
        import numpy as np

        class Tri(Distribution):
            """Minimal user distribution: only ``sample`` implemented."""

            def moment(self, k):
                return UniformDistribution(0, 1).moment(k)

            def sample(self, rng):
                return (rng.random() + rng.random()) / 2.0

            def support_bounds(self):
                return (0.0, 1.0)

        tri = Tri()
        batch = tri.sample_batch(np.random.default_rng(3), 5000)
        assert batch.dtype == np.float64 and batch.shape == (5000,)
        assert 0.0 <= batch.min() and batch.max() <= 1.0
        assert float(batch.mean()) == pytest.approx(0.5, abs=0.02)
        again = tri.sample_batch(np.random.default_rng(3), 5000)
        assert (batch == again).all()

    def test_point_batch_is_constant(self):
        import numpy as np

        batch = PointDistribution(7.0).sample_batch(np.random.default_rng(0), 64)
        assert (batch == 7.0).all()
