"""Distribution tests: moments, support bounds, sampling statistics."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semantics.distributions import (
    BernoulliDistribution,
    BinomialDistribution,
    DiscreteDistribution,
    PointDistribution,
    UniformDistribution,
    UniformIntDistribution,
)


class TestDiscrete:
    def test_moments(self):
        d = DiscreteDistribution([1, -1], [0.25, 0.75])
        assert d.moment(0) == 1.0
        assert d.moment(1) == pytest.approx(-0.5)
        assert d.moment(2) == pytest.approx(1.0)
        assert d.moment(3) == pytest.approx(-0.5)

    def test_mean_variance(self):
        d = DiscreteDistribution([0, 10], [0.5, 0.5])
        assert d.mean() == 5.0
        assert d.variance() == 25.0

    def test_support_bounds(self):
        assert DiscreteDistribution([3, -2, 7], [0.2, 0.3, 0.5]).support_bounds() == (-2, 7)

    def test_duplicate_values_merged(self):
        d = DiscreteDistribution([1, 1], [0.5, 0.5])
        assert d.values == (1.0,)
        assert d.probs == (1.0,)

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            DiscreteDistribution([1, 2], [0.5, 0.4])

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            DiscreteDistribution([1, 2], [-0.5, 1.5])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DiscreteDistribution([], [])

    def test_negative_moment_order_rejected(self):
        with pytest.raises(ValueError):
            DiscreteDistribution([1], [1.0]).moment(-1)

    def test_sampling_frequency(self):
        d = DiscreteDistribution([0, 1], [0.3, 0.7])
        rng = random.Random(0)
        mean = sum(d.sample(rng) for _ in range(20_000)) / 20_000
        assert mean == pytest.approx(0.7, abs=0.02)

    def test_is_bounded(self):
        assert DiscreteDistribution([1, 2], [0.5, 0.5]).is_bounded()


class TestBernoulli:
    def test_moments_all_equal_p(self):
        d = BernoulliDistribution(0.3)
        for k in range(1, 5):
            assert d.moment(k) == pytest.approx(0.3)

    def test_range_check(self):
        with pytest.raises(ValueError):
            BernoulliDistribution(1.5)


class TestBinomial:
    def test_mean(self):
        assert BinomialDistribution(10, 0.3).mean() == pytest.approx(3.0)

    def test_variance(self):
        assert BinomialDistribution(10, 0.3).variance() == pytest.approx(2.1)

    def test_support(self):
        assert BinomialDistribution(5, 0.5).support_bounds() == (0.0, 5.0)

    def test_degenerate(self):
        assert BinomialDistribution(0, 0.5).mean() == 0.0

    def test_probabilities_sum(self):
        d = BinomialDistribution(8, 0.37)
        assert sum(d.probs) == pytest.approx(1.0)


class TestUniform:
    def test_mean(self):
        assert UniformDistribution(1, 3).mean() == pytest.approx(2.0)

    def test_second_moment(self):
        # E[X^2] on [1, 3] is (27 - 1) / (3 * 2) = 13/3.
        assert UniformDistribution(1, 3).moment(2) == pytest.approx(13 / 3)

    def test_moment_zero(self):
        assert UniformDistribution(0, 1).moment(0) == 1.0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            UniformDistribution(3, 1)

    def test_sampling_in_support(self):
        d = UniformDistribution(-2, 5)
        rng = random.Random(1)
        assert all(-2 <= d.sample(rng) <= 5 for _ in range(1000))

    def test_moment_matches_quadrature(self):
        d = UniformDistribution(0.5, 2.5)
        for k in range(1, 6):
            n = 200_000
            approx = sum(
                (0.5 + (i + 0.5) * 2.0 / n) ** k for i in range(n)
            ) / n
            assert d.moment(k) == pytest.approx(approx, rel=1e-4)


class TestUniformInt:
    def test_mean(self):
        assert UniformIntDistribution(1, 10).mean() == pytest.approx(5.5)

    def test_second_moment(self):
        # E[X^2] for uniform{1..10} = 385/10.
        assert UniformIntDistribution(1, 10).moment(2) == pytest.approx(38.5)

    def test_single_point(self):
        d = UniformIntDistribution(4, 4)
        assert d.mean() == 4.0
        assert d.variance() == pytest.approx(0.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            UniformIntDistribution(5, 4)


class TestPoint:
    def test_moments(self):
        d = PointDistribution(3.0)
        assert d.moment(2) == 9.0
        assert d.variance() == pytest.approx(0.0)

    def test_sample_is_constant(self):
        d = PointDistribution(-2.5)
        assert d.sample(random.Random(0)) == -2.5


@given(
    st.lists(
        st.tuples(st.integers(-5, 5).map(float), st.floats(0.01, 1.0)), min_size=1, max_size=6
    )
)
@settings(max_examples=50)
def test_discrete_variance_nonnegative(pairs):
    values = [v for v, _ in pairs]
    weights = [w for _, w in pairs]
    total = sum(weights)
    d = DiscreteDistribution(values, [w / total for w in weights])
    assert d.variance() >= -1e-9


@given(st.floats(-5, 5), st.floats(0.1, 5))
@settings(max_examples=50)
def test_uniform_moments_within_support_bounds(a, width):
    d = UniformDistribution(a, a + width)
    lo, hi = d.support_bounds()
    assert lo <= d.mean() <= hi
    assert math.isfinite(d.moment(4))
