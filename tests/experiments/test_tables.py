"""Experiment harness tests (with small run counts for speed)."""

import pytest

from repro.experiments import (
    build_figure,
    build_table2,
    build_table4,
    build_table5,
    fmt,
    probabilistic_variant,
    render_table,
)
from repro.experiments.table2 import PAPER_74_UPPER, main as table2_main
from repro.experiments.table3 import build_table3
from repro.programs import get_benchmark


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return build_table2()

    def test_fifteen_rows(self, rows):
        assert len(rows) == 15

    def test_all_have_upper_bound(self, rows):
        assert all(r.our_upper for r in rows)

    def test_paper_column_complete(self, rows):
        assert all(r.paper_74 for r in rows)
        assert set(PAPER_74_UPPER) == {r.benchmark for r in rows}

    def test_baseline_refuses_variable_cost_programs(self, rows):
        by_name = {r.benchmark: r for r in rows}
        for name in ("pol04", "pol05", "trader"):
            assert by_name[name].baseline_upper is None

    def test_lower_bounds_where_regime_admits(self, rows):
        by_name = {r.benchmark: r for r in rows}
        assert by_name["ber"].our_lower is not None
        assert by_name["rdbub"].our_lower == "0"

    def test_renders(self):
        assert "Table 2" in table2_main()


class TestTable3:
    def test_rows_for_fast_subset(self):
        benches = [get_benchmark(n) for n in ("simple_loop", "random_walk")]
        rows = build_table3(benches)
        assert [r.benchmark for r in rows] == ["simple_loop", "random_walk"]
        assert all(r.upper for r in rows)
        assert all(r.runtime > 0 for r in rows)


class TestTable4:
    def test_bitcoin_rows_have_no_simulation(self):
        rows = build_table4(runs=10, benchmarks=[get_benchmark("bitcoin_mining")])
        assert len(rows) == 3
        assert all(r.sim_mean is None for r in rows)

    def test_simulable_rows_bracket(self):
        rows = build_table4(runs=150, benchmarks=[get_benchmark("simple_loop")])
        for row in rows:
            assert row.sim_mean is not None
            assert row.bracket_ok(slack=4 * row.sim_std / (150**0.5))


class TestTable5:
    def test_bitcoin_becomes_simulable(self):
        rows = build_table5(runs=30, benchmarks=[get_benchmark("bitcoin_mining")])
        assert all(r.sim_mean is not None for r in rows)
        assert all(r.benchmark == "bitcoin_mining_prob" for r in rows)

    def test_probabilistic_variant_identity_for_prob_programs(self):
        bench = get_benchmark("simple_loop")
        assert probabilistic_variant(bench) is bench

    def test_probabilistic_variant_bounds_still_synthesize(self):
        variant = probabilistic_variant(get_benchmark("bitcoin_mining"))
        result = variant.analyze()
        assert result.upper is not None
        # prob(0.5) reward acceptance: per-iteration expected cost is
        # 1 - 0.0005*5000*(0.99 + 0.01*0.5) = -1.4875.
        assert result.upper.value == pytest.approx(1.4875 - 1.4875 * 100, rel=1e-6)


class TestFigures:
    def test_series_bracketing(self):
        series = build_figure(get_benchmark("random_walk"), points=5, runs=120)
        assert len(series.xs) == 5
        assert series.figure_number == 21
        assert not series.bracketing_violations(slack=6.0)

    def test_plot_renders(self):
        from repro.experiments.figures import render_figure

        series = build_figure(get_benchmark("random_walk"), points=4, runs=40)
        text = render_figure(series)
        assert "Figure 21" in text
        assert "PUCS" in text


class TestFormatting:
    def test_fmt(self):
        assert fmt(None) == "-"
        assert fmt(0) == "0"
        assert fmt(12345.0) == "1.23e+04"
        assert fmt(1.5) == "1.5"

    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:2])


class TestJobsParity:
    """The --jobs flag must never change any reported bound."""

    def test_table3_parallel_matches_sequential(self):
        benches = [get_benchmark(n) for n in ("simple_loop", "random_walk", "bitcoin_mining")]
        seq = build_table3(benches)
        par = build_table3(benches, jobs=2)
        key = lambda r: (r.benchmark, r.upper, r.lower, r.upper_value, r.lower_value)
        assert [key(r) for r in par] == [key(r) for r in seq]

    def test_table5_parallel_matches_sequential(self):
        benches = [get_benchmark("bitcoin_mining"), get_benchmark("simple_loop")]
        seq = build_table5(runs=25, benchmarks=benches)
        par = build_table5(runs=25, benchmarks=benches, jobs=2)
        key = lambda r: (r.benchmark, r.upper_value, r.lower_value, r.sim_mean, r.sim_std)
        assert [key(r) for r in par] == [key(r) for r in seq]


class TestTableTails:
    """The tail-bound validation driver (new workload)."""

    def test_rows_are_sound_and_complete(self):
        from repro.experiments import build_table_tails

        suite = [("rdwalk", None), ("bitcoin_mining", 0.5)]
        rows = build_table_tails(runs=200, horizon=800, seed=0, suite=suite)
        assert [row.benchmark for row in rows] == ["rdwalk", "bitcoin_mining_prob"]
        for row in rows:
            assert row.unavailable is None, row.unavailable
            assert row.c > 0 and row.horizon == 800
            assert row.checks and row.sound
            # Bounds decrease as the probed offset grows.
            bounds = [check.bound for check in row.checks]
            assert bounds == sorted(bounds, reverse=True)

    def test_unavailable_benchmark_reports_reason(self):
        from repro.experiments import build_table_tails

        rows = build_table_tails(runs=10, horizon=100, suite=[("pol04", None)])
        (row,) = rows
        assert row.unavailable is not None
        assert "tail bound unavailable" in row.unavailable
        assert not row.checks

    def test_main_renders_summary_line(self):
        from repro.experiments.table_tails import main

        text = main(runs=50, horizon=400)
        assert "Tail bounds" in text
        assert "all empirical tails within bounds" in text
