"""Table 2 regeneration benchmarks.

Times PUCS synthesis (the paper's polynomial-time algorithm) on each of
the fifteen [74]-comparison programs and checks the synthesized bound
value, so a timing run doubles as a correctness run.

Regenerate the full table with ``python -m repro.experiments.table2``.
"""

import pytest

from repro.core import synthesize_pucs
from repro.programs import TABLE2_BENCHMARKS

IDS = [b.name for b in TABLE2_BENCHMARKS]


@pytest.mark.parametrize("bench", TABLE2_BENCHMARKS, ids=IDS)
def test_pucs_synthesis(benchmark, bench):
    inv = bench.invariant_map()

    result = benchmark(
        synthesize_pucs, bench.cfg, inv, bench.init, degree=bench.degree,
        nonnegative=(bench.mode == "nonnegative"),
    )
    assert result.bound.is_numeric()
    assert result.value is not None


def test_full_table2_build(benchmark):
    """One end-to-end regeneration of all fifteen rows (incl. baseline)."""
    from repro.experiments import build_table2

    rows = benchmark.pedantic(build_table2, rounds=1, iterations=1)
    assert len(rows) == 15
