"""Ablation benchmarks for the design choices called out in DESIGN.md.

* Template degree ``d``: infeasible below the true degree of the bound,
  stable at and above it; LP size (and time) grows polynomially.
* Handelman multiplicand cap ``K``: too small -> infeasible; the
  per-site default (degree of the target) is the sweet spot.
* Invariant strength: hand-written invariants vs the automatic interval
  generator alone.
* LP scale: variables/equalities as degree grows (polynomial-size
  reduction, Theorem 7.2).
"""

import pytest

from repro.analysis.bounds import analyze
from repro.core import synthesize_pucs
from repro.errors import InfeasibleError
from repro.programs import get_benchmark

SIMPLE = get_benchmark("simple_loop")
QUEUE = get_benchmark("queuing_network")


class TestDegreeAblation:
    def test_degree_below_true_bound_infeasible(self):
        with pytest.raises(InfeasibleError):
            synthesize_pucs(SIMPLE.cfg, SIMPLE.invariant_map(), SIMPLE.init, degree=1)

    @pytest.mark.parametrize("degree", [2, 3, 4])
    def test_degree_at_or_above_is_stable(self, benchmark, degree):
        result = benchmark.pedantic(
            synthesize_pucs,
            args=(SIMPLE.cfg, SIMPLE.invariant_map(), SIMPLE.init),
            kwargs={"degree": degree},
            rounds=2,
            iterations=1,
        )
        assert result.value == pytest.approx((200**2 + 200) / 3, rel=1e-4)

    def test_lp_size_grows_polynomially(self):
        sizes = {}
        for degree in (2, 3, 4):
            result = synthesize_pucs(SIMPLE.cfg, SIMPLE.invariant_map(), SIMPLE.init, degree=degree)
            sizes[degree] = result.lp_variables
        assert sizes[2] < sizes[3] < sizes[4]
        # Polynomial, not exponential: degree 4 under 20x degree 2.
        assert sizes[4] < 20 * sizes[2]


class TestMultiplicandAblation:
    @pytest.mark.parametrize("cap", [1, 2, 3])
    def test_cap_sweep(self, benchmark, cap):
        def attempt():
            try:
                return synthesize_pucs(
                    SIMPLE.cfg, SIMPLE.invariant_map(), SIMPLE.init, degree=2, max_multiplicands=cap
                )
            except InfeasibleError:
                return None

        result = benchmark.pedantic(attempt, rounds=2, iterations=1)
        if cap >= 2:
            assert result is not None and result.value == pytest.approx(13400.0, rel=1e-4)
        else:
            assert result is None  # degree-2 target needs 2 multiplicands


class TestInvariantAblation:
    def test_hand_invariants_beat_auto_on_queue(self, benchmark):
        def with_hand():
            return QUEUE.analyze().upper.value

        hand = benchmark.pedantic(with_hand, rounds=1, iterations=1)
        auto = analyze(QUEUE.program, init=QUEUE.init, degree=QUEUE.degree).upper
        # Auto-only intervals still give a sound bound, but not a better one.
        assert auto is None or auto.value >= hand - 1e-6

    def test_trivial_invariants_fail_on_simple_loop(self):
        result = analyze(SIMPLE.program, init=SIMPLE.init, auto_invariants=False, degree=2)
        assert result.upper is None  # nothing for Handelman to work with


class TestAnchorAblation:
    @pytest.mark.parametrize("x0", [10, 100, 1000])
    def test_bound_polynomial_independent_of_anchor(self, x0):
        result = synthesize_pucs(SIMPLE.cfg, SIMPLE.invariant_map(), {"x": x0, "y": 0}, degree=2)
        assert result.value == pytest.approx((x0 * x0 + x0) / 3, rel=1e-5)
