"""Micro-benchmarks of the pipeline stages (parser, CFG, interpreter,
pre-expectation, LP assembly) — useful for tracking performance of the
substrate independently of whole-table regeneration."""

import random

from repro.core import make_template, pre_expectation_cases
from repro.invariants import generate_interval_invariants
from repro.programs import get_benchmark
from repro.semantics import build_cfg, run, simulate
from repro.syntax import parse_program

POOL = get_benchmark("bitcoin_pool")
SIMPLE = get_benchmark("simple_loop")


def test_parse(benchmark):
    source = POOL.source
    prog = benchmark(parse_program, source)
    assert prog.pvars


def test_build_cfg(benchmark):
    cfg = benchmark(build_cfg, POOL.program)
    assert len(cfg) == 12


def test_interval_invariants(benchmark):
    inv = benchmark(generate_interval_invariants, SIMPLE.cfg, SIMPLE.init)
    assert 1 in inv


def test_single_run(benchmark):
    rng = random.Random(0)
    result = benchmark(run, SIMPLE.cfg, {"x": 50, "y": 0}, None, rng, 1_000_000)
    assert result.terminated


def test_simulation_batch(benchmark, repro_runs):
    stats = benchmark.pedantic(
        simulate,
        args=(SIMPLE.cfg, {"x": 50, "y": 0}),
        kwargs={"runs": repro_runs, "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert stats.termination_rate == 1.0


def test_pre_expectation_symbolic(benchmark):
    template = make_template(SIMPLE.cfg, 2)

    def all_cases():
        return [
            pre_expectation_cases(SIMPLE.cfg, template.polys, label)
            for label in SIMPLE.cfg.nonterminal_labels()
        ]

    cases = benchmark(all_cases)
    assert len(cases) == 4
