"""Wall-clock harness for the synthesis hot path.

Times the three experiment pipelines the paper's evaluation is built on
(Tables 2, 3 and 5) end-to-end — invariant assembly, template and
pre-expectation construction, Handelman certificate extraction and the
LP solve — and writes the measurements to ``BENCH_synthesis.json`` at
the repository root so future PRs have a trajectory to beat.

Simulation (the Monte-Carlo columns of Tables 4/5) is excluded: this
harness tracks the *synthesis* core, which is where the paper's tool
spends its time.

Usage::

    PYTHONPATH=src python benchmarks/perf_harness.py [--quick] [--repeats N]
                                                     [--output PATH] [--jobs N]
                                                     [--cache-dir DIR]

``--quick`` runs a single repeat on a benchmark subset (CI smoke test);
the default is best-of-3 on the full suite.  ``--jobs N`` routes each
suite through the batch engine's process pool (``repro.batch``); the
recorded baselines are sequential, so ``speedup`` is omitted there —
parallel timings measure throughput, not the single-analysis hot path.
``--cache-dir DIR`` routes through the engine with a content-addressed
result cache: the first repeat populates it, later repeats (and later
invocations) time the warm lookup path; baselines are likewise omitted.

Output schema (``repro-bench-synthesis/v1``)::

    {
      "schema": "repro-bench-synthesis/v1",
      "meta":   {"python": ..., "quick": ..., "repeats": ..., "timestamp": ...},
      "suites": {
        "<suite>": {
          "current_seconds":  <best-of-N wall-clock for this checkout>,
          "baseline_seconds": <pre-PR seed measurement, same machine class>,
          "speedup":          <baseline / current>,
          "benchmarks":       <number of benchmark programs timed>
        }, ...
      },
      "total": {"current_seconds": ..., "baseline_seconds": ..., "speedup": ...}
    }
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Tuple

from repro.programs import TABLE2_BENCHMARKS, TABLE3_BENCHMARKS, TABLE6_BENCHMARKS

#: Repository root — the default report location, so running the
#: harness from any working directory updates the tracked JSON.
_REPO_ROOT = Path(__file__).resolve().parent.parent
_DEFAULT_OUTPUT = str(_REPO_ROOT / "BENCH_synthesis.json")

#: Seed-implementation timings (commit 002b8b8, full suite, best of 3)
#: measured with this exact harness on the reference container before
#: the fast-synthesis-core rework landed.  They anchor the ``speedup``
#: column; re-measure and update if the harness itself or the benchmark
#: set changes.
PRE_PR_BASELINE_SECONDS: Dict[str, float] = {
    "table2": 0.1325,
    "table3": 0.4350,
    "table5": 0.3947,
    # table6 landed after these baselines were taken; its suite reports
    # baseline_seconds: null until a post-PR measurement is promoted.
}

#: Benchmarks kept in ``--quick`` mode (cheap but exercises every layer:
#: branching, probabilistic choice, nondeterminism, degree-2 templates).
#: Names must exist in the registry — ``_select`` silently falls back to
#: the first two benchmarks for a suite with no matches.
_QUICK_SET = {
    "ber",
    "linear01",
    "prdwalk",
    "pol04",
    "simple_loop",
    "bitcoin_mining",
    "goods_discount",
    "retry_queue",  # table6 representative: prob branch, degree-1 bound
}


def _clear_session_caches() -> None:
    """Reset cross-call memo tables so repeats measure steady state of a
    fresh process, not an ever-warmer cache."""
    try:
        from repro.core.handelman import clear_monoid_cache

        clear_monoid_cache()
    except ImportError:  # seed layout has no cache
        pass
    try:
        from repro.core.synthesis import clear_template_cache

        clear_template_cache()
    except ImportError:
        pass
    try:
        from repro.polynomials.monomial import clear_intern_cache

        clear_intern_cache()
    except ImportError:
        pass


def _select(benches, quick: bool):
    if not quick:
        return list(benches)
    picked = [b for b in benches if b.name in _QUICK_SET]
    return picked or list(benches)[:2]


def _run_benches(benches, jobs: int, cache=None) -> int:
    """Analyze ``benches`` sequentially in-process, or route them
    through an ``Analyzer`` session when ``jobs > 1`` or a result
    cache is in play (the cache lives at the engine layer)."""
    if jobs > 1 or cache is not None:
        from repro.api import Analyzer
        from repro.batch import AnalysisRequest

        with Analyzer(cache=cache, jobs=jobs) as analyzer:
            reports = analyzer.analyze_batch(
                [AnalysisRequest(benchmark=b.name) for b in benches]
            )
        failed = [r.name for r in reports if not r.ok]
        if failed:
            raise RuntimeError(f"batch analysis failed for {failed}")
    else:
        for bench in benches:
            bench.analyze()
    return len(benches)


def _run_table2(quick: bool, jobs: int = 1, cache=None) -> int:
    return _run_benches(_select(TABLE2_BENCHMARKS, quick), jobs, cache)


def _run_table3(quick: bool, jobs: int = 1, cache=None) -> int:
    return _run_benches(_select(TABLE3_BENCHMARKS, quick), jobs, cache)


def _run_table6(quick: bool, jobs: int = 1, cache=None) -> int:
    return _run_benches(_select(TABLE6_BENCHMARKS, quick), jobs, cache)


#: Table5's probabilistic variants, built once: ``probabilistic_variant``
#: returns a *new* Benchmark per call, and rebuilding it inside the
#: timed loop would charge transform/parse/CFG work to the synthesis
#: timing this harness is meant to isolate.
_TABLE5_VARIANTS: Dict[bool, list] = {}


def _table5_variants(quick: bool) -> list:
    variants = _TABLE5_VARIANTS.get(quick)
    if variants is None:
        from repro.experiments.table5 import probabilistic_variant

        variants = [probabilistic_variant(b) for b in _select(TABLE3_BENCHMARKS, quick)]
        _TABLE5_VARIANTS[quick] = variants
    return variants


def _run_table5(quick: bool, jobs: int = 1, cache=None) -> int:
    if jobs > 1 or cache is not None:
        from repro.api import Analyzer
        from repro.batch import requests_from_spec

        # Reuse the canonical suite expansion (coin-flip transformation
        # included) so the parallel timing measures the same workload as
        # ``repro batch {"suite": "table5"}``.
        selected = {b.name for b in _select(TABLE3_BENCHMARKS, quick)}
        requests = [
            r for r in requests_from_spec({"tasks": [{"suite": "table5"}]})
            if r.benchmark in selected
        ]
        with Analyzer(cache=cache, jobs=jobs) as analyzer:
            failed = [r.name for r in analyzer.analyze_batch(requests) if not r.ok]
        if failed:
            raise RuntimeError(f"batch analysis failed for {failed}")
        return len(requests)
    variants = _table5_variants(quick)
    for bench in variants:
        bench.analyze()
    return len(variants)


SUITES: List[Tuple[str, Callable[[bool, int, object], int]]] = [
    ("table2", _run_table2),
    ("table3", _run_table3),
    ("table5", _run_table5),
    ("table6", _run_table6),
]


def _warm_parse_caches(quick: bool) -> None:
    """Parsing and CFG construction are cached on the benchmark objects;
    warm them so the timings isolate the synthesis pipeline."""
    for bench in (
        _select(TABLE2_BENCHMARKS, quick)
        + _select(TABLE3_BENCHMARKS, quick)
        + _select(TABLE6_BENCHMARKS, quick)
    ):
        bench.cfg
        bench.invariant_map()
    for bench in _table5_variants(quick):
        bench.cfg
        bench.invariant_map()


def run(
    quick: bool = False,
    repeats: int = 3,
    output: str = _DEFAULT_OUTPUT,
    jobs: int = 1,
    cache=None,
) -> dict:
    _warm_parse_caches(quick)
    suites: Dict[str, dict] = {}
    for name, runner in SUITES:
        best = float("inf")
        count = 0
        for _ in range(max(1, repeats)):
            _clear_session_caches()
            start = time.perf_counter()
            count = runner(quick, jobs, cache)
            best = min(best, time.perf_counter() - start)
        # Baselines cover the *full* suite run sequentially with a cold
        # synthesis path; a --quick subset, a parallel run or a result
        # cache is not comparable, so baseline and speedup are omitted.
        comparable_suite = not quick and jobs == 1 and cache is None
        baseline = PRE_PR_BASELINE_SECONDS.get(name) if comparable_suite else None
        suites[name] = {
            "current_seconds": round(best, 4),
            "baseline_seconds": baseline,
            "speedup": round(baseline / best, 2) if baseline else None,
            "benchmarks": count,
        }
        print(f"{name}: {best:.4f}s over {count} benchmarks", flush=True)

    total_current = sum(s["current_seconds"] for s in suites.values())
    # The total speedup compares like with like: only suites that have a
    # pre-PR baseline participate (table6 postdates the baselines).
    total_baseline = sum(PRE_PR_BASELINE_SECONDS.values())
    baselined_current = sum(
        s["current_seconds"] for name, s in suites.items() if name in PRE_PR_BASELINE_SECONDS
    )
    comparable = not quick and jobs == 1 and cache is None
    report = {
        "schema": "repro-bench-synthesis/v1",
        "meta": {
            "python": sys.version.split()[0],
            "quick": quick,
            "repeats": repeats,
            "jobs": jobs,
            "cache": str(cache.root) if cache is not None else None,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "suites": suites,
        "total": {
            "current_seconds": round(total_current, 4),
            "baseline_seconds": total_baseline if comparable else None,
            "speedup": round(total_baseline / baselined_current, 2)
            if comparable and baselined_current
            else None,
        },
    }
    out_path = Path(output)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    if comparable:
        print(f"total: {total_current:.4f}s (baseline {total_baseline:.4f}s, "
              f"speedup {report['total']['speedup']}x)")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--quick", action="store_true", help="single repeat on a benchmark subset")
    parser.add_argument("--repeats", type=int, default=3, help="take the best of N runs")
    parser.add_argument("--output", default=_DEFAULT_OUTPUT, help="report path")
    parser.add_argument(
        "--jobs", type=int, default=1, help="fan each suite across N worker processes"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="route suites through the batch engine with a result cache at "
        "this directory (measures the warm-lookup path, not synthesis)",
    )
    args = parser.parse_args(argv)
    cache = None
    if args.cache_dir is not None:
        from repro.cache import ResultCache

        cache = ResultCache(args.cache_dir)
    run(
        quick=args.quick,
        repeats=1 if args.quick else args.repeats,
        output=args.output,
        jobs=args.jobs,
        cache=cache,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
