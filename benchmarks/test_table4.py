"""Table 4 regeneration benchmarks: bounds at three valuations plus
Monte-Carlo simulation per program.

The full-scale table (1000 runs per valuation, as in the paper) is
produced by ``python -m repro.experiments.table4``; here the simulation
is scaled down (``--repro-runs``, default 100) so the harness stays
fast while exercising the identical code path, and the bracketing
property UB >= mean >= LB is asserted on every row.
"""

import pytest

from repro.experiments.table4 import bench_rows
from repro.programs import TABLE3_BENCHMARKS, get_benchmark

#: Simulation-light subset: the full set is covered by the experiments
#: module; these five cover every regime (signed / nonnegative /
#: nondeterministic / init-dependent invariants).
SUBSET = ["bitcoin_mining", "simple_loop", "random_walk", "goods_discount", "pollutant_disposal"]


@pytest.mark.parametrize("name", SUBSET, ids=SUBSET)
def test_table4_rows(benchmark, name, repro_runs):
    bench = get_benchmark(name)

    rows = benchmark.pedantic(
        bench_rows, args=(bench,), kwargs={"runs": repro_runs, "seed": 0}, rounds=1, iterations=1
    )
    assert len(rows) == len(bench.all_inits())
    for row in rows:
        if row.sim_mean is None:
            continue
        slack = 5 * row.sim_std / (repro_runs**0.5) + 1e-6
        assert row.bracket_ok(slack=slack), (row.benchmark, row.init, row.sim_mean)


def test_all_programs_have_three_valuations():
    for bench in TABLE3_BENCHMARKS:
        assert len(bench.all_inits()) == 3
