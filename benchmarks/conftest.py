"""Shared helpers for the benchmark harness."""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-runs",
        type=int,
        default=100,
        help="simulated runs per valuation in simulation benchmarks",
    )


@pytest.fixture
def repro_runs(request):
    return request.config.getoption("--repro-runs")
