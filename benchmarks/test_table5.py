"""Table 5 regeneration benchmarks: the prob(0.5) variants.

Checks that after replacing nondeterminism with a fair coin both
Bitcoin programs become simulable and their simulated means fall inside
the re-synthesized bounds (the paper's Modified Bitcoin Mining rows).
"""

import pytest

from repro.experiments.table4 import bench_rows
from repro.experiments.table5 import probabilistic_variant
from repro.programs import get_benchmark

NONDET = ["bitcoin_mining", "bitcoin_pool"]


@pytest.mark.parametrize("name", NONDET, ids=NONDET)
def test_modified_bitcoin_rows(benchmark, name, repro_runs):
    bench = probabilistic_variant(get_benchmark(name))
    assert not bench.has_nondeterminism

    # Simulate only the cheapest valuation; the pool program's inner
    # loop makes large-y simulation expensive.
    small = dict(min(bench.all_inits(), key=lambda v: sum(abs(x) for x in v.values())))
    import dataclasses

    small_bench = dataclasses.replace(bench, init=small, extra_inits=[])

    rows = benchmark.pedantic(
        bench_rows,
        args=(small_bench,),
        kwargs={"runs": repro_runs, "seed": 0},
        rounds=1,
        iterations=1,
    )
    (row,) = rows
    assert row.sim_mean is not None
    slack = 6 * row.sim_std / (repro_runs**0.5) + 1e-6
    assert row.bracket_ok(slack=slack), (row.init, row.sim_mean, row.upper_value, row.lower_value)


def test_variant_bounds_shift_with_policy():
    """Replacing demonic choice by prob(0.5) must not *increase* the
    upper bound: the coin accepts rewards half the time."""
    orig = get_benchmark("bitcoin_mining").analyze()
    variant = probabilistic_variant(get_benchmark("bitcoin_mining")).analyze()
    assert variant.upper.value <= orig.upper.value + 1e-9
