"""Wall-clock harness for the Monte-Carlo simulation path.

Times the reference (one label per Python step) and vectorized (NumPy
batch superstep) engines over the full benchmark registry, plus the
10k-run empirical tail validation (``table_tails``) that motivated the
batch engine, and writes the measurements to ``BENCH_simulation.json``
at the repository root so future PRs have a trajectory to beat.

Synthesis (the LP/Handelman hot path) is excluded: that is
``benchmarks/perf_harness.py``'s territory.  This harness tracks pure
simulation throughput in runs/second.

Methodology: both engines run every registry benchmark from its
canonical initial valuation with the same step horizon.  The reference
engine gets a smaller batch (its cost is linear in runs, so runs/sec is
batch-size independent); the vectorized engine gets the full batch the
soundness layers actually use, *after* a warm-up call so compile time
is not billed to steady-state throughput (it is reported separately by
the cold/warm tail-validation split).  ``speedup`` is the ratio of
runs/second, which is directly comparable across batch sizes.

Usage::

    PYTHONPATH=src python benchmarks/sim_harness.py [--quick] [--output PATH]

``--quick`` shrinks batch sizes and the benchmark set (CI smoke test);
the committed JSON is a full run.

Output schema (``repro-bench-simulation/v1``)::

    {
      "schema": "repro-bench-simulation/v1",
      "meta": {"python": ..., "quick": ..., "reference_runs": ...,
               "vectorized_runs": ..., "max_steps": ..., "timestamp": ...},
      "benchmarks": {
        "<name>": {
          "reference_runs_per_s":  <reference engine throughput>,
          "vectorized_runs_per_s": <vectorized engine throughput>,
          "speedup":               <vectorized / reference>
        }, ...
      },
      "aggregate": {   # totals over the sweep (total runs / total seconds)
        "reference_runs_per_s": ..., "vectorized_runs_per_s": ...,
        "speedup": ...
      },
      "tail_validation": {   # build_table_tails at the paper's scale
        "runs": ..., "cold_seconds": <includes CFG compile>,
        "warm_seconds": ..., "rows": ..., "sound_rows": ...
      }
    }
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict

from repro.programs import all_benchmarks
from repro.semantics import simulate

#: Repository root — the default report location, so running the
#: harness from any working directory updates the tracked JSON.
_REPO_ROOT = Path(__file__).resolve().parent.parent
_DEFAULT_OUTPUT = str(_REPO_ROOT / "BENCH_simulation.json")

#: One step horizon for both engines: large enough that every registry
#: benchmark either terminates or accumulates a representative cost
#: prefix, small enough that the divergent benchmarks (nested_loop,
#: bitcoin_pool) stay affordable on the reference engine.
_MAX_STEPS = 10_000

#: Benchmarks kept in ``--quick`` mode — a spread over cheap/expensive,
#: terminating/truncating, prob/nondet so the smoke test exercises every
#: compilation path without the full sweep's reference-engine cost.
_QUICK_SET = {
    "rdwalk",
    "ber",
    "linear01",
    "race",
    "rdbub",
    "bitcoin_mining",
    "nested_loop",
    "retry_queue",  # table6 representative: prob branch, constant ticks
}


def _sweep(quick: bool) -> list:
    benches = list(all_benchmarks())
    if quick:
        benches = [b for b in benches if b.name in _QUICK_SET]
    return benches


def _time_engine(bench, engine: str, runs: int) -> float:
    """``(runs/second, elapsed_seconds)`` of ``engine`` on ``bench``."""
    # Warm up: compiles the CFG (vectorized) and touches every lazy
    # per-benchmark cache (parse, CFG build) out of the timed region.
    simulate(bench.cfg, bench.init, runs=4, seed=0, max_steps=_MAX_STEPS, engine=engine)
    start = time.perf_counter()
    simulate(bench.cfg, bench.init, runs=runs, seed=7, max_steps=_MAX_STEPS, engine=engine)
    elapsed = time.perf_counter() - start
    return runs / elapsed, elapsed


def _time_tail_validation(runs: int) -> dict:
    from repro.experiments.table_tails import build_table_tails

    start = time.perf_counter()
    rows = build_table_tails(runs=runs, seed=7)
    cold = time.perf_counter() - start
    start = time.perf_counter()
    rows = build_table_tails(runs=runs, seed=7)
    warm = time.perf_counter() - start
    return {
        "runs": runs,
        "cold_seconds": round(cold, 4),
        "warm_seconds": round(warm, 4),
        "rows": len(rows),
        "sound_rows": sum(1 for r in rows if r.sound),
    }


def run(quick: bool = False, output: str = _DEFAULT_OUTPUT) -> dict:
    ref_runs = 60 if quick else 300
    vec_runs = 4_000 if quick else 10_000
    benches = _sweep(quick)

    per_bench: Dict[str, dict] = {}
    ref_total = vec_total = 0.0
    for bench in benches:
        ref_rps, ref_s = _time_engine(bench, "reference", ref_runs)
        vec_rps, vec_s = _time_engine(bench, "vectorized", vec_runs)
        ref_total += ref_s
        vec_total += vec_s
        per_bench[bench.name] = {
            "reference_runs_per_s": round(ref_rps, 1),
            "vectorized_runs_per_s": round(vec_rps, 1),
            "speedup": round(vec_rps / ref_rps, 2),
        }
        print(
            f"{bench.name:20s} ref {ref_rps:10.0f} runs/s   "
            f"vec {vec_rps:10.0f} runs/s   {vec_rps / ref_rps:8.1f}x",
            flush=True,
        )

    agg_ref = len(benches) * ref_runs / ref_total
    agg_vec = len(benches) * vec_runs / vec_total
    tail = _time_tail_validation(2_000 if quick else 10_000)

    report = {
        "schema": "repro-bench-simulation/v1",
        "meta": {
            "python": sys.version.split()[0],
            "quick": quick,
            "reference_runs": ref_runs,
            "vectorized_runs": vec_runs,
            "max_steps": _MAX_STEPS,
            "benchmarks": len(benches),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "benchmarks": per_bench,
        "aggregate": {
            "reference_runs_per_s": round(agg_ref, 1),
            "vectorized_runs_per_s": round(agg_vec, 1),
            "speedup": round(agg_vec / agg_ref, 2),
        },
        "tail_validation": tail,
    }
    out_path = Path(output)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    print(
        f"aggregate: ref {agg_ref:.0f} runs/s, vec {agg_vec:.0f} runs/s "
        f"({agg_vec / agg_ref:.1f}x); tail validation "
        f"{tail['runs']} runs in {tail['cold_seconds']}s cold / "
        f"{tail['warm_seconds']}s warm, {tail['sound_rows']}/{tail['rows']} sound"
    )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller batches on a benchmark subset"
    )
    parser.add_argument("--output", default=_DEFAULT_OUTPUT, help="report path")
    args = parser.parse_args(argv)
    run(quick=args.quick, output=args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
