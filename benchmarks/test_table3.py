"""Table 3 regeneration benchmarks.

Times the full analysis (classification + PUCS + PLCS where admitted)
per benchmark; the paper reports these runtimes in Table 3 (6-282 s in
Matlab — our LP-backed pipeline is substantially faster, but the
*relative* ordering, with the queuing network slowest, is reproduced).

Regenerate the table with ``python -m repro.experiments.table3``.
"""

import pytest

from repro.programs import TABLE3_BENCHMARKS

IDS = [b.name for b in TABLE3_BENCHMARKS]


@pytest.mark.parametrize("bench", TABLE3_BENCHMARKS, ids=IDS)
def test_full_analysis(benchmark, bench):
    result = benchmark.pedantic(bench.analyze, rounds=3, iterations=1)
    assert result.upper is not None


def test_queuing_network_is_slowest():
    """Sanity: the degree-3, 4-variable queuing network dominates runtime,
    matching the paper's Table 3 ordering."""
    import time

    times = {}
    for bench in TABLE3_BENCHMARKS:
        start = time.perf_counter()
        bench.analyze()
        times[bench.name] = time.perf_counter() - start
    assert times["queuing_network"] == max(times.values())
