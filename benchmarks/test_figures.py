"""Figures 15-24 regeneration benchmarks.

Builds the bound/simulation sweep series for each figure at reduced
resolution (full resolution: ``python -m repro.experiments.figures``)
and asserts the plots' defining property: the simulated mean stays
between the PUCS and PLCS curves at every sweep point.
"""

import pytest

from repro.experiments.figures import FIGURE_NUMBERS, build_figure
from repro.programs import get_benchmark

#: Fast sweeps for every figure; heavyweight programs get fewer points.
FIGURE_SUBSET = {
    "bitcoin_mining": (6, 60),
    "species_fight": (5, 60),
    "simple_loop": (5, 60),
    "random_walk": (6, 120),
    "goods_discount": (5, 60),
    "pollutant_disposal": (5, 60),
}


@pytest.mark.parametrize("name", sorted(FIGURE_SUBSET), ids=sorted(FIGURE_SUBSET))
def test_figure_series(benchmark, name):
    bench = get_benchmark(name)
    points, runs = FIGURE_SUBSET[name]

    series = benchmark.pedantic(
        build_figure, args=(bench,), kwargs={"points": points, "runs": runs, "seed": 0},
        rounds=1, iterations=1,
    )
    assert len(series.xs) == points
    assert series.figure_number == FIGURE_NUMBERS[name]
    # Tolerance: 6 Monte-Carlo standard errors per sweep point.
    assert not series.bracketing_violations(slack=1e-6, z=6.0), (
        series.xs,
        series.upper,
        series.sim_mean,
        series.lower,
    )
