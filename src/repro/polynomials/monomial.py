"""Monomials: finite power products of named variables.

A :class:`Monomial` is an immutable, hashable mapping from variable
names to positive integer exponents, e.g. ``x**2 * y``.  Monomials are
the dictionary keys of sparse :class:`~repro.polynomials.Polynomial`
objects, so hashing and comparison need to be cheap and total.
"""

from __future__ import annotations

from itertools import combinations_with_replacement
from typing import Iterable, Iterator, Mapping, Tuple

__all__ = ["Monomial", "monomials_up_to_degree"]


class Monomial:
    """An immutable power product ``prod(var**exp)``.

    The empty product (degree 0) represents the constant monomial ``1``.
    """

    __slots__ = ("_powers", "_hash")

    def __init__(self, powers: Mapping[str, int] | Iterable[Tuple[str, int]] = ()):
        items = powers.items() if isinstance(powers, Mapping) else powers
        cleaned = []
        for var, exp in items:
            if exp < 0:
                raise ValueError(f"negative exponent {exp} for variable {var!r}")
            if exp > 0:
                cleaned.append((str(var), int(exp)))
        cleaned.sort()
        self._powers: Tuple[Tuple[str, int], ...] = tuple(cleaned)
        self._hash = hash(self._powers)

    # -- constructors ---------------------------------------------------

    @classmethod
    def one(cls) -> "Monomial":
        """The constant monomial ``1``."""
        return _ONE

    @classmethod
    def variable(cls, name: str, exp: int = 1) -> "Monomial":
        """The monomial ``name**exp``."""
        return cls({name: exp})

    # -- inspection -----------------------------------------------------

    @property
    def powers(self) -> Tuple[Tuple[str, int], ...]:
        """Sorted tuple of ``(variable, exponent)`` pairs."""
        return self._powers

    def degree(self) -> int:
        """Total degree (sum of exponents)."""
        return sum(exp for _, exp in self._powers)

    def degree_in(self, var: str) -> int:
        """Exponent of ``var`` (0 if absent)."""
        for name, exp in self._powers:
            if name == var:
                return exp
        return 0

    def variables(self) -> frozenset:
        """Set of variables occurring with positive exponent."""
        return frozenset(name for name, _ in self._powers)

    def is_constant(self) -> bool:
        """True iff this is the constant monomial ``1``."""
        return not self._powers

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(self._powers)

    def __len__(self) -> int:
        return len(self._powers)

    # -- algebra ----------------------------------------------------------

    def __mul__(self, other: "Monomial") -> "Monomial":
        if not isinstance(other, Monomial):
            return NotImplemented
        merged = dict(self._powers)
        for var, exp in other._powers:
            merged[var] = merged.get(var, 0) + exp
        return Monomial(merged)

    def __pow__(self, k: int) -> "Monomial":
        if k < 0:
            raise ValueError("monomials cannot be raised to negative powers")
        return Monomial({var: exp * k for var, exp in self._powers})

    def without(self, var: str) -> "Monomial":
        """This monomial with ``var`` removed entirely."""
        return Monomial([(v, e) for v, e in self._powers if v != var])

    def evaluate(self, valuation: Mapping[str, float]) -> float:
        """Numeric value under a (total, for its variables) valuation."""
        result = 1.0
        for var, exp in self._powers:
            result *= float(valuation[var]) ** exp
        return result

    # -- dunder plumbing --------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Monomial) and self._powers == other._powers

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Monomial") -> bool:
        """Graded lexicographic order (useful for stable printing)."""
        if not isinstance(other, Monomial):
            return NotImplemented
        return (self.degree(), self._powers) < (other.degree(), other._powers)

    def __repr__(self) -> str:
        return f"Monomial({dict(self._powers)!r})"

    def __str__(self) -> str:
        if not self._powers:
            return "1"
        parts = []
        for var, exp in self._powers:
            parts.append(var if exp == 1 else f"{var}^{exp}")
        return "*".join(parts)


_ONE = Monomial()


def monomials_up_to_degree(variables: Iterable[str], degree: int) -> list:
    """All monomials over ``variables`` of total degree at most ``degree``.

    Returned in graded lexicographic order, starting with the constant
    monomial ``1``.  This is the monomial basis used for the degree-``d``
    templates of Section 7, step (1) of the paper.
    """
    names = sorted(set(variables))
    result = [Monomial.one()]
    for d in range(1, degree + 1):
        for combo in combinations_with_replacement(names, d):
            powers: dict = {}
            for name in combo:
                powers[name] = powers.get(name, 0) + 1
            result.append(Monomial(powers))
    return result
