"""Monomials: finite power products of named variables.

A :class:`Monomial` is an immutable, hashable mapping from variable
names to positive integer exponents, e.g. ``x**2 * y``.  Monomials are
the dictionary keys of sparse :class:`~repro.polynomials.Polynomial`
objects, so hashing and comparison need to be cheap and total.

Monomials are *interned*: constructing the same power product twice
returns the same object.  The synthesis pipeline builds millions of
monomials from a universe of at most a few hundred distinct power
products (the degree-``d`` basis over the program variables), so
interning turns most constructions into a single dict lookup and makes
equality an identity check.  The total degree is computed once at
interning time and cached.
"""

from __future__ import annotations

from itertools import combinations_with_replacement
from typing import Dict, Iterable, Iterator, Mapping, Tuple

__all__ = ["Monomial", "monomials_up_to_degree", "clear_intern_cache"]

#: Normalised powers tuple -> the unique Monomial carrying it.  Bounded
#: in practice by the power products actually constructed (the degree-d
#: basis over the variable names in play); long-lived sweeps over many
#: programs with disjoint variable universes can reset it via
#: :func:`clear_intern_cache`.
_INTERN: Dict[Tuple[Tuple[str, int], ...], "Monomial"] = {}


def clear_intern_cache() -> None:
    """Reset the intern table (long-running sweeps, benchmarks).

    Safe at any time: monomials created before the reset stay valid and
    still compare equal to later ones by value — only the
    same-object-identity guarantee is scoped to one intern epoch.
    """
    _INTERN.clear()
    _INTERN[_ONE._powers] = _ONE


class Monomial:
    """An immutable, interned power product ``prod(var**exp)``.

    The empty product (degree 0) represents the constant monomial ``1``.
    Equal power products are guaranteed to be the *same* object, so
    ``==`` degrades to ``is`` for monomials built through any public
    constructor.
    """

    __slots__ = ("_powers", "_hash", "_degree")

    def __new__(cls, powers: Mapping[str, int] | Iterable[Tuple[str, int]] = ()):
        items = powers.items() if isinstance(powers, Mapping) else powers
        merged: dict = {}
        for var, exp in items:
            if exp < 0:
                raise ValueError(f"negative exponent {exp} for variable {var!r}")
            if exp > 0:
                # Merge duplicates from iterable input — the intern key
                # must have exactly one entry per variable.
                name = str(var)
                merged[name] = merged.get(name, 0) + int(exp)
        return cls._of(tuple(sorted(merged.items())))

    @classmethod
    def _of(cls, key: Tuple[Tuple[str, int], ...]) -> "Monomial":
        """Interned monomial for an already-normalised powers tuple.

        ``key`` must be sorted by variable name with strictly positive
        integer exponents; this is the trusted fast path the arithmetic
        methods use to skip re-validation.
        """
        cached = _INTERN.get(key)
        if cached is None:
            cached = object.__new__(cls)
            cached._powers = key
            cached._hash = hash(key)
            cached._degree = sum(exp for _, exp in key)
            _INTERN[key] = cached
        return cached

    # -- constructors ---------------------------------------------------

    @classmethod
    def one(cls) -> "Monomial":
        """The constant monomial ``1``."""
        return _ONE

    @classmethod
    def variable(cls, name: str, exp: int = 1) -> "Monomial":
        """The monomial ``name**exp``."""
        return cls({name: exp})

    # -- inspection -----------------------------------------------------

    @property
    def powers(self) -> Tuple[Tuple[str, int], ...]:
        """Sorted tuple of ``(variable, exponent)`` pairs."""
        return self._powers

    def degree(self) -> int:
        """Total degree (sum of exponents); cached at interning time."""
        return self._degree

    def degree_in(self, var: str) -> int:
        """Exponent of ``var`` (0 if absent)."""
        for name, exp in self._powers:
            if name == var:
                return exp
        return 0

    def variables(self) -> frozenset:
        """Set of variables occurring with positive exponent."""
        return frozenset(name for name, _ in self._powers)

    def is_constant(self) -> bool:
        """True iff this is the constant monomial ``1``."""
        return not self._powers

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(self._powers)

    def __len__(self) -> int:
        return len(self._powers)

    # -- algebra ----------------------------------------------------------

    def __mul__(self, other: "Monomial") -> "Monomial":
        if not isinstance(other, Monomial):
            return NotImplemented
        if not self._powers:
            return other
        if not other._powers:
            return self
        merged = dict(self._powers)
        for var, exp in other._powers:
            existing = merged.get(var)
            merged[var] = exp if existing is None else existing + exp
        return Monomial._of(tuple(sorted(merged.items())))

    def __pow__(self, k: int) -> "Monomial":
        if k < 0:
            raise ValueError("monomials cannot be raised to negative powers")
        if k == 0:
            return _ONE
        if k == 1:
            return self
        return Monomial._of(tuple((var, exp * k) for var, exp in self._powers))

    def without(self, var: str) -> "Monomial":
        """This monomial with ``var`` removed entirely."""
        if self.degree_in(var) == 0:
            return self
        return Monomial._of(tuple(p for p in self._powers if p[0] != var))

    def evaluate(self, valuation: Mapping[str, float]) -> float:
        """Numeric value under a (total, for its variables) valuation."""
        result = 1.0
        for var, exp in self._powers:
            result *= float(valuation[var]) ** exp
        return result

    # -- dunder plumbing --------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, Monomial) and self._powers == other._powers

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Monomial") -> bool:
        """Graded lexicographic order (useful for stable printing)."""
        if not isinstance(other, Monomial):
            return NotImplemented
        return (self._degree, self._powers) < (other._degree, other._powers)

    def __reduce__(self):
        # Interning happens through __new__, so unpickling re-interns.
        return (Monomial, (self._powers,))

    def __repr__(self) -> str:
        return f"Monomial({dict(self._powers)!r})"

    def __str__(self) -> str:
        if not self._powers:
            return "1"
        parts = []
        for var, exp in self._powers:
            parts.append(var if exp == 1 else f"{var}^{exp}")
        return "*".join(parts)


_ONE = Monomial()


def monomials_up_to_degree(variables: Iterable[str], degree: int) -> list:
    """All monomials over ``variables`` of total degree at most ``degree``.

    Returned in graded lexicographic order, starting with the constant
    monomial ``1``.  This is the monomial basis used for the degree-``d``
    templates of Section 7, step (1) of the paper.
    """
    names = sorted(set(variables))
    result = [Monomial.one()]
    for d in range(1, degree + 1):
        for combo in combinations_with_replacement(names, d):
            powers: dict = {}
            for name in combo:
                powers[name] = powers.get(name, 0) + 1
            result.append(Monomial._of(tuple(sorted(powers.items()))))
    return result
