"""Polynomial algebra substrate.

Sparse multivariate polynomials (:class:`Polynomial`) over named
variables, monomial bases for synthesis templates, affine forms over LP
unknowns (:class:`LinForm`) and the expectation operator that powers the
pre-expectation calculus of Definition 6.3.
"""

from .expectation import expectation
from .linform import Coeff, LinForm
from .monomial import Monomial, monomials_up_to_degree
from .polynomial import Polynomial

__all__ = [
    "Coeff",
    "LinForm",
    "Monomial",
    "Polynomial",
    "expectation",
    "monomials_up_to_degree",
]
