"""Sparse multivariate polynomials with numeric or symbolic coefficients.

This is the workhorse data structure of the whole pipeline:

* program arithmetic expressions (``<expr>``/``<pexpr>`` in Fig. 1 of the
  paper) are numeric polynomials over program and sampling variables;
* invariant constraints are numeric polynomials of degree at most 1;
* synthesis templates (Section 7, step (1)) are polynomials whose
  coefficients are :class:`~repro.polynomials.linform.LinForm` affine
  expressions in the LP unknowns ``a_ij``.

A polynomial is a sparse mapping from :class:`Monomial` to coefficient.
Coefficients may be ``float`` or ``LinForm``; the arithmetic helpers in
:mod:`repro.polynomials.linform` keep mixed arithmetic correct and raise
on operations (symbolic x symbolic products) that would leave the affine
fragment the LP reduction needs.

Internally the arithmetic methods accumulate into plain dicts and seal
the result through the trusted :meth:`Polynomial._raw` constructor; only
the public ``__init__`` re-validates keys, so building a polynomial from
``k`` operations costs ``O(terms)`` instead of ``O(terms * k)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple, Union

from ..errors import ZERO_TOL, NonLinearError
from .linform import Coeff, LinForm, cadd, cis_zero, cmul, cneg
from .monomial import Monomial

__all__ = ["Polynomial"]

Scalar = Union[int, float]
_ZERO_TOL = ZERO_TOL


def _acc(table: Dict[Monomial, Coeff], mono: Monomial, coeff: Coeff) -> None:
    """Accumulate ``coeff * mono`` into a mutable term table."""
    existing = table.get(mono)
    table[mono] = coeff if existing is None else cadd(existing, coeff)


def _prune_table(table: Dict[Monomial, Coeff]) -> Dict[Monomial, Coeff]:
    """Delete exactly-zero coefficients (cancellations) in place."""
    dead = [m for m, c in table.items() if cis_zero(c)]
    for m in dead:
        del table[m]
    return table


class Polynomial:
    """A sparse multivariate polynomial ``sum(coeff * monomial)``."""

    __slots__ = ("_terms",)

    def __init__(self, terms: Mapping[Monomial, Coeff] | Iterable[Tuple[Monomial, Coeff]] = ()):
        items = terms.items() if isinstance(terms, Mapping) else terms
        self._terms: Dict[Monomial, Coeff] = {}
        for mono, coeff in items:
            if not isinstance(mono, Monomial):
                raise TypeError(f"expected Monomial key, got {type(mono).__name__}")
            if not cis_zero(coeff):
                existing = self._terms.get(mono)
                self._terms[mono] = coeff if existing is None else cadd(existing, coeff)
        self._prune()

    def _prune(self) -> None:
        dead = [m for m, c in self._terms.items() if cis_zero(c)]
        for m in dead:
            del self._terms[m]

    # -- constructors ---------------------------------------------------

    @classmethod
    def _raw(cls, terms: Dict[Monomial, Coeff]) -> "Polynomial":
        """Trusted constructor: takes ownership of ``terms``.

        Keys must already be :class:`Monomial` instances and values
        nonzero coefficients — callers accumulate via :func:`_acc` and
        prune cancellations themselves.  This is the internal fast path;
        external code should use the validating ``__init__``.
        """
        self = object.__new__(cls)
        self._terms = terms
        return self

    @classmethod
    def zero(cls) -> "Polynomial":
        return cls._raw({})

    @classmethod
    def constant(cls, value: Coeff) -> "Polynomial":
        return cls({Monomial.one(): value})

    @classmethod
    def variable(cls, name: str) -> "Polynomial":
        return cls._raw({Monomial.variable(name): 1.0})

    @classmethod
    def monomial(cls, mono: Monomial, coeff: Coeff = 1.0) -> "Polynomial":
        return cls({mono: coeff})

    @classmethod
    def from_coeffs(cls, coeffs: Mapping[str, Scalar], const: Scalar = 0.0) -> "Polynomial":
        """Linear polynomial ``const + sum(coeffs[v] * v)`` — handy for invariants."""
        terms: Dict[Monomial, Coeff] = {Monomial.one(): float(const)}
        for var, coeff in coeffs.items():
            terms[Monomial.variable(var)] = float(coeff)
        return cls(terms)

    # -- inspection -----------------------------------------------------

    def terms(self) -> Iterator[Tuple[Monomial, Coeff]]:
        return iter(self._terms.items())

    def monomials(self) -> Iterator[Monomial]:
        return iter(self._terms)

    def coeff(self, mono: Monomial) -> Coeff:
        """Coefficient of ``mono`` (0.0 if absent)."""
        return self._terms.get(mono, 0.0)

    def constant_term(self) -> Coeff:
        return self.coeff(Monomial.one())

    def degree(self) -> int:
        """Total degree; the zero polynomial has degree 0."""
        if not self._terms:
            return 0
        return max(m.degree() for m in self._terms)

    def degree_in(self, var: str) -> int:
        if not self._terms:
            return 0
        return max((m.degree_in(var) for m in self._terms), default=0)

    def variables(self) -> frozenset:
        out: set = set()
        for m in self._terms:
            out |= m.variables()
        return frozenset(out)

    def unknowns(self) -> frozenset:
        """LP unknowns occurring in any symbolic coefficient."""
        out: set = set()
        for c in self._terms.values():
            if isinstance(c, LinForm):
                out |= c.unknowns()
        return frozenset(out)

    def is_zero(self, tol: float = 0.0) -> bool:
        return all(cis_zero(c, tol) for c in self._terms.values())

    def is_constant(self) -> bool:
        return all(m.is_constant() for m in self._terms)

    def is_numeric(self) -> bool:
        """True iff no coefficient is symbolic."""
        return not any(isinstance(c, LinForm) for c in self._terms.values())

    def is_linear(self) -> bool:
        """Degree at most 1 (affine)."""
        return self.degree() <= 1

    def __bool__(self) -> bool:
        return bool(self._terms)

    def __len__(self) -> int:
        return len(self._terms)

    # -- algebra ----------------------------------------------------------

    def __add__(self, other: Union["Polynomial", Scalar, LinForm]) -> "Polynomial":
        if isinstance(other, (int, float, LinForm)):
            if cis_zero(other):
                return self
            other = Polynomial.constant(other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        terms = dict(self._terms)
        for mono, coeff in other._terms.items():
            existing = terms.get(mono)
            if existing is None:
                terms[mono] = coeff
            else:
                merged = cadd(existing, coeff)
                if cis_zero(merged):
                    del terms[mono]
                else:
                    terms[mono] = merged
        return Polynomial._raw(terms)

    __radd__ = __add__

    def __neg__(self) -> "Polynomial":
        return Polynomial._raw({m: cneg(c) for m, c in self._terms.items()})

    def __sub__(self, other: Union["Polynomial", Scalar, LinForm]) -> "Polynomial":
        if isinstance(other, (int, float, LinForm)):
            if cis_zero(other):
                return self
            other = Polynomial.constant(other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        terms = dict(self._terms)
        for mono, coeff in other._terms.items():
            existing = terms.get(mono)
            if existing is None:
                terms[mono] = cneg(coeff)
            else:
                merged = cadd(existing, cneg(coeff))
                if cis_zero(merged):
                    del terms[mono]
                else:
                    terms[mono] = merged
        return Polynomial._raw(terms)

    def __rsub__(self, other: Union[Scalar, LinForm]) -> "Polynomial":
        return (-self) + other

    def __mul__(self, other: Union["Polynomial", Scalar, LinForm]) -> "Polynomial":
        if isinstance(other, (int, float, LinForm)):
            if cis_zero(other):
                return Polynomial._raw({})
            return Polynomial._raw({m: cmul(c, other) for m, c in self._terms.items()})
        if not isinstance(other, Polynomial):
            return NotImplemented
        terms: Dict[Monomial, Coeff] = {}
        for m1, c1 in self._terms.items():
            for m2, c2 in other._terms.items():
                _acc(terms, m1 * m2, cmul(c1, c2))
        return Polynomial._raw(_prune_table(terms))

    __rmul__ = __mul__

    def __truediv__(self, other: Scalar) -> "Polynomial":
        return self * (1.0 / float(other))

    def __pow__(self, k: int) -> "Polynomial":
        if k < 0:
            raise ValueError("polynomials cannot be raised to negative powers")
        result = Polynomial.constant(1.0)
        base = self
        while k:
            if k & 1:
                result = result * base
            base = base * base if k > 1 else base
            k >>= 1
        return result

    # -- substitution and evaluation ----------------------------------------

    def contains_variable(self, var: str) -> bool:
        """True iff ``var`` occurs with positive exponent in some term.

        Short-circuits over the monomials instead of materialising the
        full :meth:`variables` set.
        """
        return any(m.degree_in(var) for m in self._terms)

    def substitute(self, var: str, replacement: "Polynomial") -> "Polynomial":
        """Replace every occurrence of ``var`` by ``replacement``.

        Single pass: every term's expansion is accumulated into one
        shared coefficient table.  Powers of ``replacement`` are cached
        so that the common case (a degree-``d`` template composed with
        an update expression) stays cheap.
        """
        if not self.contains_variable(var):
            return self
        powers: Dict[int, Polynomial] = {1: replacement}

        def power(k: int) -> Polynomial:
            if k not in powers:
                powers[k] = power(k - 1) * replacement
            return powers[k]

        out: Dict[Monomial, Coeff] = {}
        for mono, coeff in self._terms.items():
            exp = mono.degree_in(var)
            if exp == 0:
                _acc(out, mono, coeff)
                continue
            rest = mono.without(var)
            for m2, c2 in power(exp)._terms.items():
                _acc(out, rest * m2, cmul(coeff, c2))
        return Polynomial._raw(_prune_table(out))

    def substitute_all(self, mapping: Mapping[str, "Polynomial"]) -> "Polynomial":
        """Simultaneous substitution of several variables.

        Simultaneity matters when replacements mention substituted
        variables (e.g. swapping ``x`` and ``y``); each original term is
        expanded against the *original* monomial in one pass, so later
        substitutions never see earlier replacements.
        """
        relevant = {v for v in mapping if self.contains_variable(v)}
        if not relevant:
            return self
        powers: Dict[Tuple[str, int], Polynomial] = {}

        def power(var: str, k: int) -> Polynomial:
            cached = powers.get((var, k))
            if cached is None:
                cached = mapping[var] if k == 1 else power(var, k - 1) * mapping[var]
                powers[(var, k)] = cached
            return cached

        out: Dict[Monomial, Coeff] = {}
        for mono, coeff in self._terms.items():
            substituted = [(v, e) for v, e in mono.powers if v in relevant]
            if not substituted:
                _acc(out, mono, coeff)
                continue
            rest = Monomial._of(tuple(p for p in mono.powers if p[0] not in relevant))
            piece = Polynomial._raw({rest: coeff})
            for v, e in substituted:
                piece = piece * power(v, e)
            for m2, c2 in piece._terms.items():
                _acc(out, m2, c2)
        return Polynomial._raw(_prune_table(out))

    def evaluate(self, valuation: Mapping[str, float]) -> Coeff:
        """Value under a total valuation of all variables.

        Returns a ``float`` for numeric polynomials and a ``LinForm``
        for templates.
        """
        total: Coeff = 0.0
        for mono, coeff in self._terms.items():
            total = cadd(total, cmul(coeff, mono.evaluate(valuation)))
        return total

    def evaluate_numeric(self, valuation: Mapping[str, float]) -> float:
        value = self.evaluate(valuation)
        if isinstance(value, LinForm):
            if not value.is_constant():
                raise NonLinearError("polynomial still contains unsolved LP unknowns")
            return value.const
        return float(value)

    def partial_evaluate(self, valuation: Mapping[str, float]) -> "Polynomial":
        """Fix some variables to numbers, leaving the rest symbolic."""
        return self.substitute_all(
            {var: Polynomial.constant(float(value)) for var, value in valuation.items()}
        )

    def map_coeffs(self, fn) -> "Polynomial":
        """Apply ``fn`` to every coefficient (used to instantiate templates)."""
        out: Dict[Monomial, Coeff] = {}
        for m, c in self._terms.items():
            mapped = fn(c)
            if not cis_zero(mapped):
                out[m] = mapped
        return Polynomial._raw(out)

    def instantiate(self, assignment: Mapping[str, float]) -> "Polynomial":
        """Replace symbolic coefficients by their solved numeric values."""

        def solve(c: Coeff) -> float:
            if isinstance(c, LinForm):
                return c.evaluate(assignment)
            return float(c)

        return self.map_coeffs(solve)

    def round(self, ndigits: int = 9) -> "Polynomial":
        """Round numeric coefficients (cosmetic; for printing and tests)."""

        def rnd(c: Coeff) -> Coeff:
            if isinstance(c, LinForm):
                return LinForm(
                    round(c.const, ndigits),
                    {n: round(v, ndigits) for n, v in c.terms.items()},
                )
            return round(float(c), ndigits)

        return self.map_coeffs(rnd)

    # -- comparison and printing -------------------------------------------

    def almost_equal(self, other: "Polynomial", tol: float = 1e-7) -> bool:
        """Numeric coefficient-wise comparison with tolerance."""
        monos = set(self._terms) | set(other._terms)
        for mono in monos:
            a, b = self.coeff(mono), other.coeff(mono)
            if isinstance(a, LinForm) or isinstance(b, LinForm):
                raise NonLinearError("almost_equal requires numeric polynomials")
            if abs(float(a) - float(b)) > tol:
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, float)):
            other = Polynomial.constant(float(other))
        if not isinstance(other, Polynomial):
            return NotImplemented
        return (self - other).is_zero(_ZERO_TOL)

    def __hash__(self) -> int:
        items = tuple(sorted(self._terms.items(), key=lambda kv: kv[0]))
        return hash(items)

    def __repr__(self) -> str:
        return f"Polynomial({self})"

    def __str__(self) -> str:
        if not self._terms:
            return "0"
        parts = []
        for mono in sorted(self._terms, reverse=True):
            coeff = self._terms[mono]
            if isinstance(coeff, LinForm):
                body = f"({coeff})"
                text = body if mono.is_constant() else f"{body}*{mono}"
                parts.append(("+", text))
                continue
            value = float(coeff)
            sign = "+" if value >= 0 else "-"
            mag = abs(value)
            if mono.is_constant():
                text = f"{mag:g}"
            elif mag == 1.0:
                text = str(mono)
            else:
                text = f"{mag:g}*{mono}"
            parts.append((sign, text))
        first_sign, first_text = parts[0]
        out = first_text if first_sign == "+" else f"-{first_text}"
        for sign, text in parts[1:]:
            out += f" {sign} {text}"
        return out
