"""Affine forms over named LP unknowns.

During template synthesis (Section 7 of the paper) polynomial
coefficients are not numbers but *affine expressions* in the unknown
template coefficients ``a_ij`` and the Handelman multipliers ``c_k``.
:class:`LinForm` represents such an expression::

    const + sum(coeff_i * unknown_i)

LinForms support addition, subtraction and multiplication by scalars
(and by *constant* LinForms).  Multiplying two genuinely symbolic
LinForms would create a quadratic expression, which the LP reduction
cannot handle; that operation raises :class:`NonLinearError`, which in
practice flags a template-construction bug early.
"""

from __future__ import annotations

from typing import Dict, Mapping, Union

from ..errors import NonLinearError

__all__ = ["LinForm", "Coeff", "cadd", "cmul", "cneg", "cis_zero", "as_linform"]

Scalar = Union[int, float]


class LinForm:
    """An affine expression ``const + sum(coeff * unknown)``."""

    __slots__ = ("const", "terms")

    def __init__(self, const: Scalar = 0.0, terms: Mapping[str, Scalar] | None = None):
        self.const = float(const)
        self.terms: Dict[str, float] = {}
        if terms:
            for name, coeff in terms.items():
                c = float(coeff)
                if c != 0.0:
                    self.terms[name] = c

    # -- constructors ---------------------------------------------------

    @classmethod
    def unknown(cls, name: str, coeff: Scalar = 1.0) -> "LinForm":
        """The form ``coeff * name``."""
        return cls(0.0, {name: coeff})

    @classmethod
    def constant(cls, value: Scalar) -> "LinForm":
        """The constant form ``value``."""
        return cls(value)

    # -- inspection -----------------------------------------------------

    def is_constant(self) -> bool:
        return not self.terms

    def is_zero(self, tol: float = 0.0) -> bool:
        return abs(self.const) <= tol and not self.terms

    def unknowns(self) -> frozenset:
        return frozenset(self.terms)

    def evaluate(self, assignment: Mapping[str, float]) -> float:
        """Numeric value once every unknown has been solved for."""
        return self.const + sum(c * float(assignment[name]) for name, c in self.terms.items())

    # -- algebra ----------------------------------------------------------

    def __add__(self, other: Union["LinForm", Scalar]) -> "LinForm":
        if isinstance(other, (int, float)):
            return LinForm(self.const + other, self.terms)
        if isinstance(other, LinForm):
            terms = dict(self.terms)
            for name, coeff in other.terms.items():
                terms[name] = terms.get(name, 0.0) + coeff
            return LinForm(self.const + other.const, terms)
        return NotImplemented

    __radd__ = __add__

    def __neg__(self) -> "LinForm":
        return LinForm(-self.const, {n: -c for n, c in self.terms.items()})

    def __sub__(self, other: Union["LinForm", Scalar]) -> "LinForm":
        return self + (-other if isinstance(other, LinForm) else -float(other))

    def __rsub__(self, other: Scalar) -> "LinForm":
        return (-self) + float(other)

    def __mul__(self, other: Union["LinForm", Scalar]) -> "LinForm":
        if isinstance(other, (int, float)):
            return LinForm(self.const * other, {n: c * other for n, c in self.terms.items()})
        if isinstance(other, LinForm):
            if other.is_constant():
                return self * other.const
            if self.is_constant():
                return other * self.const
            raise NonLinearError(
                "product of two symbolic LinForms is not affine; "
                "templates may only be multiplied by numeric polynomials"
            )
        return NotImplemented

    __rmul__ = __mul__

    def __truediv__(self, other: Scalar) -> "LinForm":
        return self * (1.0 / float(other))

    # -- dunder plumbing --------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, float)):
            return self.is_constant() and self.const == float(other)
        if isinstance(other, LinForm):
            return self.const == other.const and self.terms == other.terms
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.const, tuple(sorted(self.terms.items()))))

    def __repr__(self) -> str:
        return f"LinForm({self.const!r}, {self.terms!r})"

    def __str__(self) -> str:
        parts = []
        if self.const or not self.terms:
            parts.append(f"{self.const:g}")
        for name in sorted(self.terms):
            coeff = self.terms[name]
            sign = "+" if coeff >= 0 else "-"
            mag = abs(coeff)
            term = name if mag == 1.0 else f"{mag:g}*{name}"
            if parts:
                parts.append(f"{sign} {term}")
            else:
                parts.append(term if coeff >= 0 else f"-{term}")
        return " ".join(parts)


#: A polynomial coefficient: either a plain number or a symbolic affine form.
Coeff = Union[float, int, LinForm]


def as_linform(value: Coeff) -> LinForm:
    """Coerce a numeric or LinForm coefficient to a LinForm."""
    if isinstance(value, LinForm):
        return value
    return LinForm(float(value))


def cadd(a: Coeff, b: Coeff) -> Coeff:
    """Add two coefficients, staying numeric when both are numeric."""
    if isinstance(a, LinForm) or isinstance(b, LinForm):
        return as_linform(a) + as_linform(b)
    return float(a) + float(b)


def cmul(a: Coeff, b: Coeff) -> Coeff:
    """Multiply two coefficients (at most one may be symbolic)."""
    if isinstance(a, LinForm) or isinstance(b, LinForm):
        return as_linform(a) * (b if isinstance(b, (int, float)) else as_linform(b))
    return float(a) * float(b)


def cneg(a: Coeff) -> Coeff:
    """Negate a coefficient."""
    if isinstance(a, LinForm):
        return -a
    return -float(a)


def cis_zero(a: Coeff, tol: float = 0.0) -> bool:
    """True if a coefficient is (numerically) zero."""
    if isinstance(a, LinForm):
        return a.is_zero(tol)
    return abs(float(a)) <= tol
