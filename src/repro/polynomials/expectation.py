"""Expectation of a polynomial over independent sampling variables.

This implements the ``E_u[h(l', F(v, u))]`` operator of Definition 6.3:
given a polynomial over program *and* sampling variables, replace each
power ``r**k`` of a sampling variable by the ``k``-th raw moment of its
distribution.  Sampling variables are mutually independent (each is a
fresh draw, Section 2.2), so a product ``r1**k1 * r2**k2`` contributes
``E[r1**k1] * E[r2**k2]``.

Distributions are duck-typed: anything exposing ``moment(k) -> float``
works (see :mod:`repro.semantics.distributions`).
"""

from __future__ import annotations

from typing import Mapping

from .linform import cadd, cis_zero, cmul
from .monomial import Monomial
from .polynomial import Polynomial

__all__ = ["expectation"]


def expectation(poly: Polynomial, distributions: Mapping[str, object]) -> Polynomial:
    """Integrate out the sampling variables of ``poly``.

    ``distributions`` maps sampling-variable names to distribution
    objects with a ``moment(k)`` method.  Variables of ``poly`` that do
    not appear in the mapping are treated as program variables and left
    symbolic.  Raises ``KeyError``-free: unknown variables simply stay.
    """
    if not distributions:
        return poly
    sampled = set(distributions)
    if not any(var in sampled for mono in poly.monomials() for var, _ in mono):
        return poly
    out: dict = {}
    for mono, coeff in poly.terms():
        factor = 1.0
        residual = []
        for var, exp in mono:
            if var in sampled:
                factor *= float(distributions[var].moment(exp))
            else:
                residual.append((var, exp))
        reduced = Monomial._of(tuple(residual))
        scaled = cmul(coeff, factor)
        existing = out.get(reduced)
        out[reduced] = scaled if existing is None else cadd(existing, scaled)
    dead = [m for m, c in out.items() if cis_zero(c)]
    for m in dead:
        del out[m]
    return Polynomial._raw(out)
