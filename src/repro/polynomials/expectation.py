"""Expectation of a polynomial over independent sampling variables.

This implements the ``E_u[h(l', F(v, u))]`` operator of Definition 6.3:
given a polynomial over program *and* sampling variables, replace each
power ``r**k`` of a sampling variable by the ``k``-th raw moment of its
distribution.  Sampling variables are mutually independent (each is a
fresh draw, Section 2.2), so a product ``r1**k1 * r2**k2`` contributes
``E[r1**k1] * E[r2**k2]``.

Distributions are duck-typed: anything exposing ``moment(k) -> float``
works (see :mod:`repro.semantics.distributions`).
"""

from __future__ import annotations

from typing import Mapping

from .linform import cmul
from .monomial import Monomial
from .polynomial import Polynomial

__all__ = ["expectation"]


def expectation(poly: Polynomial, distributions: Mapping[str, object]) -> Polynomial:
    """Integrate out the sampling variables of ``poly``.

    ``distributions`` maps sampling-variable names to distribution
    objects with a ``moment(k)`` method.  Variables of ``poly`` that do
    not appear in the mapping are treated as program variables and left
    symbolic.  Raises ``KeyError``-free: unknown variables simply stay.
    """
    if not distributions:
        return poly
    sampled = set(distributions)
    result = Polynomial.zero()
    for mono, coeff in poly.terms():
        factor = 1.0
        residual: dict = {}
        for var, exp in mono:
            if var in sampled:
                factor *= float(distributions[var].moment(exp))
            else:
                residual[var] = exp
        result = result + Polynomial.monomial(Monomial(residual), cmul(coeff, factor))
    return result
