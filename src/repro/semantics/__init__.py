"""Program semantics: distributions, control-flow graphs, interpreter."""

from .cfg import (
    CFG,
    AssignLabel,
    BranchLabel,
    Label,
    NondetLabel,
    ProbLabel,
    TerminalLabel,
    TickLabel,
    build_cfg,
)
from .distributions import (
    BernoulliDistribution,
    BinomialDistribution,
    DiscreteDistribution,
    Distribution,
    PointDistribution,
    UniformDistribution,
    UniformIntDistribution,
)
from .interpreter import AUTO_MIN_RUNS, RunResult, SimulationStats, run, simulate
from .schedulers import (
    CallbackScheduler,
    ElseScheduler,
    FixedScheduler,
    RandomScheduler,
    Scheduler,
    ThenScheduler,
)

from .vectorized import BatchProgram, compile_cfg, simulate_vectorized

__all__ = [
    "AUTO_MIN_RUNS",
    "BatchProgram",
    "CFG",
    "AssignLabel",
    "BernoulliDistribution",
    "BinomialDistribution",
    "BranchLabel",
    "CallbackScheduler",
    "DiscreteDistribution",
    "Distribution",
    "ElseScheduler",
    "FixedScheduler",
    "Label",
    "NondetLabel",
    "PointDistribution",
    "ProbLabel",
    "RandomScheduler",
    "RunResult",
    "Scheduler",
    "SimulationStats",
    "TerminalLabel",
    "TickLabel",
    "ThenScheduler",
    "UniformDistribution",
    "UniformIntDistribution",
    "build_cfg",
    "compile_cfg",
    "run",
    "simulate",
    "simulate_vectorized",
]
