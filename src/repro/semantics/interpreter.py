"""Monte-Carlo operational semantics (Appendix C).

Runs execute the CFG one label at a time: assignments draw fresh values
for every sampling variable they mention, branching labels test their
guard, probabilistic labels flip a coin, nondeterministic labels consult
the scheduler, and tick labels accrue cost.  A run terminates when it
reaches ``l_out``.

:func:`simulate` aggregates many runs into the mean/std statistics that
Tables 4 and 5 of the paper report (1000 simulated executions each).
By default it dispatches large batches to the NumPy batch interpreter
(:mod:`repro.semantics.vectorized`), falling back to the pure-Python
reference loop here for programs or schedulers the compiler cannot
handle — see the ``engine`` parameter.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..deadline import active_deadline, check_deadline
from ..errors import SemanticsError, VectorizationError
from .cfg import (
    CFG,
    AssignLabel,
    BranchLabel,
    NondetLabel,
    ProbLabel,
    TerminalLabel,
    TickLabel,
)
from .schedulers import Scheduler, ThenScheduler

__all__ = ["AUTO_MIN_RUNS", "RunResult", "SimulationStats", "run", "simulate"]

#: Batch size below which ``engine="auto"`` keeps the reference
#: interpreter: per-superstep NumPy dispatch overhead only amortizes
#: across enough concurrent runs.  Small seeded batches (e.g. the
#: golden tables' 8–30 run columns) therefore keep their exact
#: historical streams.
AUTO_MIN_RUNS = 64


@dataclass
class RunResult:
    """Outcome of a single run."""

    total_cost: float
    steps: int
    terminated: bool
    final_valuation: Dict[str, float]
    #: Present only when ``record_trajectory=True``:
    #: list of (label id, valuation snapshot, step cost).
    trajectory: Optional[List[Tuple[int, Dict[str, float], float]]] = None


@dataclass
class SimulationStats:
    """Aggregate cost statistics over many runs (cf. Tables 4-5).

    ``mean``/``std``/``min``/``max`` (and ``costs``) cover *terminated*
    runs only: a run cut off at ``max_steps`` has merely a partial
    accumulated cost, and folding it into the mean used to silently
    bias Monte-Carlo soundness checks low.  Truncated runs are counted
    in ``truncated`` and their partial costs reported separately
    (``truncated_mean``/``truncated_costs``); with no terminated runs
    at all the statistics are ``nan``.
    """

    runs: int
    mean: float
    std: float
    min: float
    max: float
    mean_steps: float
    termination_rate: float
    #: Runs cut off at ``max_steps`` before reaching ``l_out``; their
    #: partial costs are *excluded* from ``mean``/``std``/``costs``.
    truncated: int = 0
    #: Mean *partial* accumulated cost of the truncated runs (``None``
    #: when every run terminated) — a lower bound on what those runs
    #: would have cost, reported for diagnostics only.
    truncated_mean: Optional[float] = None
    #: Total costs of the terminated runs.
    costs: List[float] = field(repr=False, default_factory=list)
    #: Partial costs of the truncated runs.
    truncated_costs: List[float] = field(repr=False, default_factory=list)
    #: Which interpreter produced these statistics: ``"reference"`` (the
    #: pure-Python loop) or ``"vectorized"`` (the NumPy batch stepper).
    engine: str = "reference"

    @property
    def terminated_runs(self) -> int:
        return self.runs - self.truncated

    def stderr(self) -> float:
        """Standard error of the mean (over terminated runs)."""
        if self.terminated_runs <= 1:
            return float("inf")
        return self.std / math.sqrt(self.terminated_runs)

    def confidence_interval(self, z: float = 2.576) -> Tuple[float, float]:
        """Normal-approximation CI for the mean (default 99%)."""
        half = z * self.stderr()
        return (self.mean - half, self.mean + half)


def _sample_valuation(cfg: CFG, expr_vars, rng: random.Random) -> Dict[str, float]:
    """Draw one value for every sampling variable in ``expr_vars``."""
    draws: Dict[str, float] = {}
    for var in expr_vars:
        dist = cfg.rvars.get(var)
        if dist is not None:
            draws[var] = dist.sample(rng)
    return draws


def run(
    cfg: CFG,
    init: Mapping[str, float],
    scheduler: Optional[Scheduler] = None,
    rng: Optional[random.Random] = None,
    max_steps: int = 1_000_000,
    record_trajectory: bool = False,
) -> RunResult:
    """Execute one run from the initial valuation ``init``.

    Runs that exceed ``max_steps`` are truncated and reported with
    ``terminated=False`` (their accumulated cost so far is returned).
    """
    scheduler = scheduler or ThenScheduler()
    scheduler.reset()
    rng = rng or random.Random()

    valuation: Dict[str, float] = {var: 0.0 for var in cfg.pvars}
    for var, value in init.items():
        if var not in valuation:
            raise SemanticsError(f"initial valuation mentions unknown variable {var!r}")
        valuation[var] = float(value)

    # Valuation snapshots are only materialized when something can read
    # them: a history-consuming scheduler AND a nondeterministic label
    # to consult it at.  Unconditional recording used to allocate one
    # dict per step — a million snapshots on a truncated 1M-step run.
    record_history = scheduler.needs_history and any(
        isinstance(label, NondetLabel) for label in cfg.labels.values()
    )
    history: List[Tuple[int, Dict[str, float]]] = []
    trajectory: Optional[List[Tuple[int, Dict[str, float], float]]] = [] if record_trajectory else None

    current = cfg.entry
    total_cost = 0.0
    steps = 0
    # Periodic cooperative-timeout checkpoint (threaded budgets): only
    # armed sessions pay the per-step flag test, and a single long run
    # cannot outlive its task's deadline by more than ~16k steps.
    deadline_armed = active_deadline() is not None

    while steps < max_steps:
        if deadline_armed and (steps & 16383) == 0:
            check_deadline()
        label = cfg.labels[current]
        if isinstance(label, TerminalLabel):
            if trajectory is not None:
                trajectory.append((label.id, dict(valuation), 0.0))
            return RunResult(total_cost, steps, True, valuation, trajectory)

        step_cost = 0.0
        if isinstance(label, AssignLabel):
            draws = _sample_valuation(cfg, label.expr.variables(), rng)
            scope = dict(valuation)
            scope.update(draws)
            value = label.expr.evaluate_numeric(scope)
            nxt = label.succ
        elif isinstance(label, BranchLabel):
            nxt = label.succ_true if label.cond.evaluate(valuation) else label.succ_false
        elif isinstance(label, ProbLabel):
            nxt = label.succ_then if rng.random() < label.prob else label.succ_else
        elif isinstance(label, NondetLabel):
            take_then = scheduler.choose(label, valuation, history)
            nxt = label.succ_then if take_then else label.succ_else
        elif isinstance(label, TickLabel):
            step_cost = label.cost.evaluate_numeric(valuation)
            total_cost += step_cost
            nxt = label.succ
        else:  # pragma: no cover - exhaustive over label kinds
            raise SemanticsError(f"unknown label kind {label.kind!r}")

        if trajectory is not None:
            trajectory.append((label.id, dict(valuation), step_cost))
        if record_history:
            history.append((label.id, dict(valuation)))
        if isinstance(label, AssignLabel):
            valuation[label.var] = value

        current = nxt
        steps += 1

    return RunResult(total_cost, steps, False, valuation, trajectory)


def build_stats(
    runs: int,
    costs: List[float],
    truncated_costs: List[float],
    total_steps: int,
    engine: str = "reference",
) -> SimulationStats:
    """Aggregate per-run outcomes into :class:`SimulationStats`.

    Shared by the reference and vectorized engines so both produce
    statistics through the exact same float arithmetic.
    """
    terminated = len(costs)
    if terminated:
        mean = sum(costs) / terminated
        var = sum((c - mean) ** 2 for c in costs) / (terminated - 1) if terminated > 1 else 0.0
        std, lo, hi = math.sqrt(var), min(costs), max(costs)
    else:
        mean = std = lo = hi = float("nan")
    return SimulationStats(
        runs=runs,
        mean=mean,
        std=std,
        min=lo,
        max=hi,
        mean_steps=total_steps / runs,
        termination_rate=terminated / runs,
        truncated=runs - terminated,
        truncated_mean=(sum(truncated_costs) / len(truncated_costs)) if truncated_costs else None,
        costs=costs,
        truncated_costs=truncated_costs,
        engine=engine,
    )


def simulate(
    cfg: CFG,
    init: Mapping[str, float],
    runs: int = 1000,
    scheduler: Optional[Scheduler] = None,
    seed: Optional[int] = None,
    max_steps: int = 1_000_000,
    engine: str = "auto",
) -> SimulationStats:
    """Run ``runs`` independent executions and aggregate cost statistics.

    ``engine`` selects the interpreter:

    * ``"auto"`` (default) — compile to the NumPy batch stepper of
      :mod:`repro.semantics.vectorized` when the batch is large enough
      (``runs >= AUTO_MIN_RUNS``) and the program/scheduler is
      vectorizable, otherwise fall back to the reference loop
      transparently;
    * ``"vectorized"`` — force the batch stepper (raises
      :class:`~repro.errors.VectorizationError` when unsupported);
    * ``"reference"`` — force the pure-Python loop.

    The two engines draw from different RNG streams (``random.Random``
    vs :class:`numpy.random.Generator`), so their seeded results are
    statistically equivalent but not bitwise equal; each engine on its
    own is bit-reproducible for a fixed seed.
    """
    if runs <= 0:
        raise ValueError("number of runs must be positive")
    if engine not in ("auto", "vectorized", "reference"):
        raise ValueError(
            f"engine must be 'auto', 'vectorized' or 'reference', got {engine!r}"
        )
    if engine == "vectorized" or (engine == "auto" and runs >= AUTO_MIN_RUNS):
        from .vectorized import simulate_vectorized

        try:
            return simulate_vectorized(
                cfg, init, runs=runs, scheduler=scheduler, seed=seed, max_steps=max_steps
            )
        except VectorizationError:
            if engine == "vectorized":
                raise

    rng = random.Random(seed)
    costs: List[float] = []
    truncated_costs: List[float] = []
    total_steps = 0
    for _ in range(runs):
        check_deadline()  # cooperative per-run timeout checkpoint
        result = run(cfg, init, scheduler=scheduler, rng=rng, max_steps=max_steps)
        if result.terminated:
            costs.append(result.total_cost)
        else:
            truncated_costs.append(result.total_cost)
        total_steps += result.steps
    return build_stats(runs, costs, truncated_costs, total_steps, engine="reference")
