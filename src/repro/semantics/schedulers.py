"""Schedulers: policies resolving demonic nondeterminism (Appendix C).

A scheduler chooses, at every nondeterministic label, between the
``then`` and ``else`` branch.  The paper allows fully history-dependent
schedulers; the interpreter passes the run prefix so user-defined
schedulers can use it.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Callable, Mapping, Optional, Sequence, Tuple

from .cfg import NondetLabel

__all__ = [
    "Scheduler",
    "ThenScheduler",
    "ElseScheduler",
    "FixedScheduler",
    "RandomScheduler",
    "CallbackScheduler",
]

#: One step of history: (label id, valuation snapshot).
HistoryEntry = Tuple[int, Mapping[str, float]]


class Scheduler(ABC):
    """Policy interface: return True for the then-branch."""

    #: Whether :meth:`choose` actually reads the run-prefix ``history``
    #: argument.  The interpreter only materializes per-step valuation
    #: snapshots when this is True *and* the CFG has nondeterministic
    #: labels — recording a million dict snapshots for a scheduler that
    #: never looks at them was a real memory bug.  Defaults to True so
    #: user-defined schedulers stay fully history-dependent unless they
    #: opt out; the built-in memoryless policies below all opt out.
    needs_history: bool = True

    @abstractmethod
    def choose(
        self,
        label: NondetLabel,
        valuation: Mapping[str, float],
        history: Sequence[HistoryEntry],
    ) -> bool:
        """Resolve the choice at ``label`` given the current state."""

    def reset(self) -> None:
        """Called once per run; stateful schedulers may override."""


class ThenScheduler(Scheduler):
    """Always takes the then-branch."""

    needs_history = False

    def choose(self, label, valuation, history) -> bool:
        return True


class ElseScheduler(Scheduler):
    """Always takes the else-branch."""

    needs_history = False

    def choose(self, label, valuation, history) -> bool:
        return False


class FixedScheduler(Scheduler):
    """A memoryless policy given as ``{label_id: take_then}``.

    Labels absent from the mapping fall back to ``default``.
    """

    needs_history = False

    def __init__(self, choices: Mapping[int, bool], default: bool = True):
        self.choices = dict(choices)
        self.default = default

    def choose(self, label, valuation, history) -> bool:
        return self.choices.get(label.id, self.default)


class RandomScheduler(Scheduler):
    """Flips a (biased) coin at every nondeterministic label.

    Note this is *not* the same as replacing ``if *`` by ``if prob(p)``
    in the analysis — it merely gives simulations a concrete policy.
    """

    needs_history = False

    def __init__(self, p_then: float = 0.5, seed: Optional[int] = None):
        if not 0.0 <= p_then <= 1.0:
            raise ValueError("p_then must be in [0, 1]")
        self.p_then = p_then
        self._rng = random.Random(seed)

    def choose(self, label, valuation, history) -> bool:
        return self._rng.random() < self.p_then


class CallbackScheduler(Scheduler):
    """Wraps an arbitrary callable ``(label, valuation, history) -> bool``."""

    def __init__(self, fn: Callable[[NondetLabel, Mapping[str, float], Sequence[HistoryEntry]], bool]):
        self.fn = fn

    def choose(self, label, valuation, history) -> bool:
        return bool(self.fn(label, valuation, history))
