"""Control-flow graphs for probabilistic programs (Section 2.2).

A CFG is the tuple ``(Vp, Vr, L, ->)`` of the paper: program variables,
sampling variables, labels and transitions.  Labels carry their kind —
assignment, branching, probabilistic, nondeterministic, tick — plus the
special terminal label ``l_out``.

Labels are numbered **in textual program order starting from 1**, with
``l_out`` receiving the last number, exactly like the paper's examples
(Figure 2: ``while`` = 1, the two assignments = 2, 3, ``tick`` = 4,
``l_out`` = 5).  This makes it possible to attach the paper's printed
invariants to labels by number.

``skip`` statements are elided from the CFG (they change nothing and
carry no cost); the paper itself omits ``else skip`` branches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import CFGError
from ..polynomials import Polynomial
from ..syntax.ast import (
    Assign,
    BoolExpr,
    If,
    NondetIf,
    ProbIf,
    Program,
    Seq,
    Skip,
    Stmt,
    Tick,
    While,
)

__all__ = [
    "Label",
    "AssignLabel",
    "BranchLabel",
    "ProbLabel",
    "NondetLabel",
    "TickLabel",
    "TerminalLabel",
    "CFG",
    "build_cfg",
]


@dataclass(frozen=True)
class Label:
    """Base class for CFG labels; ``id`` is the program-order number."""

    id: int

    @property
    def kind(self) -> str:
        raise NotImplementedError

    def successors(self) -> Tuple[int, ...]:
        raise NotImplementedError


@dataclass(frozen=True)
class AssignLabel(Label):
    """``var := expr`` (``expr`` may mention sampling variables)."""

    var: str
    expr: Polynomial
    succ: int = -1

    @property
    def kind(self) -> str:
        return "assign"

    def successors(self) -> Tuple[int, ...]:
        return (self.succ,)

    def describe(self) -> str:
        return f"{self.var} := {self.expr}"


@dataclass(frozen=True)
class BranchLabel(Label):
    """Conditional branching on ``cond`` (``if`` or ``while`` guard)."""

    cond: BoolExpr
    succ_true: int = -1
    succ_false: int = -1
    is_loop_head: bool = False

    @property
    def kind(self) -> str:
        return "branch"

    def successors(self) -> Tuple[int, ...]:
        return (self.succ_true, self.succ_false)

    def describe(self) -> str:
        head = "while" if self.is_loop_head else "if"
        return f"{head} {self.cond}"


@dataclass(frozen=True)
class ProbLabel(Label):
    """Probabilistic branching: then with probability ``prob``."""

    prob: float
    succ_then: int = -1
    succ_else: int = -1

    @property
    def kind(self) -> str:
        return "prob"

    def successors(self) -> Tuple[int, ...]:
        return (self.succ_then, self.succ_else)

    def describe(self) -> str:
        return f"if prob({self.prob:g})"


@dataclass(frozen=True)
class NondetLabel(Label):
    """Demonic nondeterministic branching (``if *``)."""

    succ_then: int = -1
    succ_else: int = -1

    @property
    def kind(self) -> str:
        return "nondet"

    def successors(self) -> Tuple[int, ...]:
        return (self.succ_then, self.succ_else)

    def describe(self) -> str:
        return "if *"


@dataclass(frozen=True)
class TickLabel(Label):
    """``tick(cost)`` — triggers ``cost`` and moves on."""

    cost: Polynomial
    succ: int = -1

    @property
    def kind(self) -> str:
        return "tick"

    def successors(self) -> Tuple[int, ...]:
        return (self.succ,)

    def describe(self) -> str:
        return f"tick({self.cost})"


@dataclass(frozen=True)
class TerminalLabel(Label):
    """The terminal label ``l_out``; runs stay here forever at no cost."""

    @property
    def kind(self) -> str:
        return "terminal"

    def successors(self) -> Tuple[int, ...]:
        return ()

    def describe(self) -> str:
        return "l_out"


class CFG:
    """A control-flow graph together with its variable declarations."""

    def __init__(
        self,
        program: Program,
        labels: Dict[int, Label],
        entry: int,
        exit_: int,
        positions: Optional[Dict[int, Tuple[int, int]]] = None,
    ):
        self.program = program
        self.labels = labels
        self.entry = entry
        self.exit = exit_
        #: label id -> (line, column) of the statement's first token, for
        #: labels whose statement carried parser position info.  Purely
        #: diagnostic; programmatically built CFGs leave it empty.
        self.positions: Dict[int, Tuple[int, int]] = dict(positions or {})
        self._check()

    def _check(self) -> None:
        ids = set(self.labels)
        if self.entry not in ids:
            raise CFGError(f"entry label {self.entry} missing")
        if self.exit not in ids:
            raise CFGError(f"exit label {self.exit} missing")
        if not isinstance(self.labels[self.exit], TerminalLabel):
            raise CFGError("exit label must be terminal")
        for label in self.labels.values():
            for succ in label.successors():
                if succ not in ids:
                    raise CFGError(f"label {label.id} points at missing label {succ}")

    # -- inspection -----------------------------------------------------

    def label(self, label_id: int) -> Label:
        try:
            return self.labels[label_id]
        except KeyError:
            raise CFGError(f"no label with id {label_id}") from None

    def __iter__(self) -> Iterator[Label]:
        return iter(sorted(self.labels.values(), key=lambda l: l.id))

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def pvars(self) -> List[str]:
        return self.program.pvars

    @property
    def rvars(self) -> Dict[str, object]:
        return self.program.rvars

    def nonterminal_labels(self) -> List[Label]:
        return [l for l in self if not isinstance(l, TerminalLabel)]

    def tick_labels(self) -> List[TickLabel]:
        return [l for l in self if isinstance(l, TickLabel)]

    def nondet_labels(self) -> List[NondetLabel]:
        return [l for l in self if isinstance(l, NondetLabel)]

    def predecessors(self, label_id: int) -> List[int]:
        return [l.id for l in self if label_id in l.successors()]

    def to_networkx(self):
        """Export as a :mod:`networkx` DiGraph (for analysis/plotting)."""
        import networkx as nx

        graph = nx.DiGraph()
        for label in self:
            graph.add_node(label.id, kind=label.kind, text=label.describe())
        for label in self:
            for succ in label.successors():
                graph.add_edge(label.id, succ)
        return graph

    def pretty(self) -> str:
        """Human-readable dump, one line per label."""
        lines = []
        for label in self:
            succs = ",".join(str(s) for s in label.successors()) or "-"
            lines.append(f"{label.id:>3}: [{label.kind:>8}] {label.describe()}  -> {succs}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------


def _assign_ids(stmt: Stmt, counter: List[int], ids: Dict[int, int]) -> None:
    """First pass: number every labelled statement in textual order.

    ``ids`` maps ``id(stmt)`` (object identity) to the label number.
    ``Seq`` and ``Skip`` nodes are transparent.
    """
    if isinstance(stmt, Seq):
        for child in stmt.stmts:
            _assign_ids(child, counter, ids)
        return
    if isinstance(stmt, Skip):
        return
    ids[id(stmt)] = counter[0]
    counter[0] += 1
    if isinstance(stmt, While):
        _assign_ids(stmt.body, counter, ids)
    elif isinstance(stmt, (If, ProbIf, NondetIf)):
        _assign_ids(stmt.then_branch, counter, ids)
        _assign_ids(stmt.else_branch, counter, ids)


def _wire(stmt: Stmt, next_id: int, ids: Dict[int, int], labels: Dict[int, Label]) -> int:
    """Second pass: create labels and wire successors.

    Returns the entry label id of ``stmt`` (``next_id`` if the statement
    is empty, i.e. a skip).
    """
    if isinstance(stmt, Skip):
        return next_id
    if isinstance(stmt, Seq):
        entry = next_id
        for child in reversed(stmt.stmts):
            entry = _wire(child, entry, ids, labels)
        return entry

    label_id = ids[id(stmt)]
    if isinstance(stmt, Assign):
        labels[label_id] = AssignLabel(label_id, stmt.var, stmt.expr, succ=next_id)
    elif isinstance(stmt, Tick):
        labels[label_id] = TickLabel(label_id, stmt.cost, succ=next_id)
    elif isinstance(stmt, If):
        then_entry = _wire(stmt.then_branch, next_id, ids, labels)
        else_entry = _wire(stmt.else_branch, next_id, ids, labels)
        labels[label_id] = BranchLabel(label_id, stmt.cond, succ_true=then_entry, succ_false=else_entry)
    elif isinstance(stmt, ProbIf):
        then_entry = _wire(stmt.then_branch, next_id, ids, labels)
        else_entry = _wire(stmt.else_branch, next_id, ids, labels)
        labels[label_id] = ProbLabel(label_id, stmt.prob, succ_then=then_entry, succ_else=else_entry)
    elif isinstance(stmt, NondetIf):
        then_entry = _wire(stmt.then_branch, next_id, ids, labels)
        else_entry = _wire(stmt.else_branch, next_id, ids, labels)
        labels[label_id] = NondetLabel(label_id, succ_then=then_entry, succ_else=else_entry)
    elif isinstance(stmt, While):
        body_entry = _wire(stmt.body, label_id, ids, labels)
        labels[label_id] = BranchLabel(
            label_id, stmt.cond, succ_true=body_entry, succ_false=next_id, is_loop_head=True
        )
    else:
        raise CFGError(f"cannot build CFG for statement {type(stmt).__name__}")
    return label_id


def build_cfg(program: Program) -> CFG:
    """Build the CFG of ``program`` with paper-style label numbering."""
    counter = [1]
    ids: Dict[int, int] = {}
    _assign_ids(program.body, counter, ids)
    exit_id = counter[0]
    labels: Dict[int, Label] = {exit_id: TerminalLabel(exit_id)}
    entry = _wire(program.body, exit_id, ids, labels)
    positions: Dict[int, Tuple[int, int]] = {}
    for stmt in program.statements():
        label_id = ids.get(id(stmt))
        if label_id is not None and stmt.pos is not None:
            positions[label_id] = stmt.pos
    return CFG(program, labels, entry=entry, exit_=exit_id, positions=positions)
