"""Vectorized Monte-Carlo batch interpreter (NumPy).

The reference interpreter (:mod:`repro.semantics.interpreter`) executes
one label of one run per Python-bytecode step; Tables 4–5, the
Monte-Carlo soundness brackets and the ``table_tails`` empirical tail
validation all push 10k+ runs through it, making simulation — not LP
solving — the dominant cost of the soundness layers.  This module
compiles the probabilistic CFG *once* into a batch stepper that
advances **all** concurrently-live runs through one straight-line
segment per vectorized NumPy op.

Compilation model
-----------------

* The CFG is blocked into *segments*: maximal straight-line chains of
  assignment/tick labels, terminated by at most one control label
  (branch / prob / nondet).  Segment heads are the classic basic-block
  leaders — the entry label plus every control-transfer target and
  every join point — so a run's program counter only ever rests on a
  head (or ``l_out``).
* Per-run state is a ``(runs, len(pvars))`` float64 matrix plus int64
  ``steps``, float64 ``cost`` and a boolean active mask.  Each
  superstep retires truncated runs (``steps >= max_steps``, checked
  *before* the terminal test, exactly like the reference loop's
  ``while steps < max_steps``), retires runs at ``l_out`` as
  terminated, then executes one segment per distinct live
  program-counter value.
* Sampling variables are drawn via ``Distribution.sample_batch`` — one
  :class:`numpy.random.Generator` call per (label, superstep) instead
  of one ``random.Random`` call per (label, run).
* Arithmetic and boolean expressions are compiled to closures over
  state-matrix columns; guards and costs see exactly the monomials the
  reference interpreter evaluates.

Supported schedulers are the memoryless built-ins (``ThenScheduler``,
``ElseScheduler``, ``FixedScheduler``, ``RandomScheduler``).  Anything
potentially history-dependent (``CallbackScheduler``, user-defined
``Scheduler`` subclasses) raises
:class:`~repro.errors.VectorizationError` at compile time, which
``simulate(engine="auto")`` turns into a transparent fallback to the
reference interpreter.

Determinism: for a fixed ``seed`` the vectorized engine is
bit-reproducible (same partition, same costs, same stats).  It draws
from a different RNG stream than the reference engine
(:class:`numpy.random.Generator` vs :class:`random.Random`), so the two
are *statistically* — not bitwise — equivalent; the consistency suite
in ``tests/semantics/test_vectorized.py`` checks both properties.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..deadline import check_deadline
from ..errors import SemanticsError, VectorizationError
from ..syntax.ast import And, Atom, BoolConst, BoolExpr, Not, Or
from .cfg import (
    CFG,
    AssignLabel,
    BranchLabel,
    Label,
    NondetLabel,
    ProbLabel,
    TerminalLabel,
    TickLabel,
)
from .schedulers import (
    ElseScheduler,
    FixedScheduler,
    RandomScheduler,
    Scheduler,
    ThenScheduler,
)

__all__ = ["BatchProgram", "compile_cfg", "simulate_vectorized"]


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------

#: A compiled expression: (rows, draws) -> float64 array.  ``rows`` is
#: the (m, pvars) slice of the state matrix for the cohort, ``draws``
#: maps sampling-variable names to freshly drawn (m,) arrays.
_ExprFn = Callable[[np.ndarray, Mapping[str, np.ndarray]], np.ndarray]

#: A compiled guard: rows -> bool array.
_CondFn = Callable[[np.ndarray], np.ndarray]


def _compile_poly(poly, columns: Mapping[str, int], rvars) -> _ExprFn:
    """Compile a numeric polynomial to a batch evaluator.

    Program variables resolve to state-matrix columns, sampling
    variables (restricted to ``rvars``) to per-step draw arrays;
    anything else is a compile error — the reference interpreter would
    fail on such a variable at runtime too.
    """
    constant = 0.0
    terms: List[Tuple[float, Tuple[Tuple[str, object, int], ...]]] = []
    for mono, coeff in poly.terms():
        coeff = float(coeff)
        factors = []
        for var, exp in mono.powers:
            if var in columns:
                factors.append(("p", columns[var], exp))
            elif var in rvars:
                factors.append(("r", var, exp))
            else:
                raise VectorizationError(f"expression mentions unknown variable {var!r}")
        if not factors:
            constant += coeff
        else:
            terms.append((coeff, tuple(factors)))

    def evaluate(rows: np.ndarray, draws: Mapping[str, np.ndarray]) -> np.ndarray:
        out = np.full(rows.shape[0], constant, dtype=np.float64)
        for coeff, factors in terms:
            acc: Optional[np.ndarray] = None
            for kind, key, exp in factors:
                col = rows[:, key] if kind == "p" else draws[key]
                factor = col if exp == 1 else col**exp
                acc = factor if acc is None else acc * factor
            out += coeff * acc
        return out

    return evaluate


def _compile_cond(cond: BoolExpr, columns: Mapping[str, int]) -> _CondFn:
    """Compile a boolean guard to a batch evaluator over program vars."""
    if isinstance(cond, Atom):
        poly_fn = _compile_poly(cond.poly, columns, rvars=frozenset())
        if cond.strict:
            return lambda rows: poly_fn(rows, {}) > 0.0
        return lambda rows: poly_fn(rows, {}) >= 0.0
    if isinstance(cond, BoolConst):
        value = bool(cond.value)
        return lambda rows: np.full(rows.shape[0], value, dtype=bool)
    if isinstance(cond, And):
        left = _compile_cond(cond.left, columns)
        right = _compile_cond(cond.right, columns)
        return lambda rows: left(rows) & right(rows)
    if isinstance(cond, Or):
        left = _compile_cond(cond.left, columns)
        right = _compile_cond(cond.right, columns)
        return lambda rows: left(rows) | right(rows)
    if isinstance(cond, Not):
        operand = _compile_cond(cond.operand, columns)
        return lambda rows: ~operand(rows)
    raise VectorizationError(f"cannot vectorize guard {cond!r}")


# ---------------------------------------------------------------------------
# Scheduler compilation
# ---------------------------------------------------------------------------


def _scheduler_key(scheduler: Optional[Scheduler]):
    """A hashable compile-cache key for vectorizable schedulers."""
    if scheduler is None or type(scheduler) is ThenScheduler:
        return ("const", True)
    if type(scheduler) is ElseScheduler:
        return ("const", False)
    if type(scheduler) is FixedScheduler:
        return ("fixed", tuple(sorted(scheduler.choices.items())), scheduler.default)
    if type(scheduler) is RandomScheduler:
        return ("coin", scheduler.p_then)
    raise VectorizationError(
        f"scheduler {type(scheduler).__name__} is not vectorizable "
        "(history-dependent or user-defined); use engine='reference' "
        "or let engine='auto' fall back"
    )


def _nondet_choice(label: NondetLabel, key) -> Tuple[str, object]:
    """Resolve one nondet label's policy under a compiled scheduler key."""
    kind = key[0]
    if kind == "const":
        return ("const", key[1])
    if kind == "fixed":
        choices = dict(key[1])
        return ("const", choices.get(label.id, key[2]))
    return ("coin", key[1])


# ---------------------------------------------------------------------------
# Segments
# ---------------------------------------------------------------------------


class _Segment:
    """One basic block: a straight-line chain plus an optional control
    label, executed for a cohort of runs in lockstep."""

    __slots__ = ("head", "straight", "control", "fallthrough", "length", "has_tick")

    def __init__(self, head: int):
        self.head = head
        #: Compiled ``op(rows, cost_delta, rng)`` chain for the
        #: assign/tick labels; each mutates the cohort-local state
        #: matrix (and tick ops accumulate into ``cost_delta``).
        self.straight: List[Callable] = []
        #: Compiled ``op(rows, rng) -> pc values`` control op, or None.
        self.control: Optional[Callable] = None
        #: Successor head when the segment ends without a control label.
        self.fallthrough: Optional[int] = None
        #: Labels executed by a full pass (straight chain + control).
        self.length: int = 0
        #: Whether any straight op accrues cost (skips the delta array).
        self.has_tick: bool = False


class BatchProgram:
    """A CFG compiled for batch execution (see module docstring)."""

    def __init__(self, cfg: CFG, scheduler_key):
        self.cfg = cfg
        self.scheduler_key = scheduler_key
        self.pvars: List[str] = list(cfg.pvars)
        self.columns: Dict[str, int] = {var: i for i, var in enumerate(self.pvars)}
        self.entry = cfg.entry
        self.exit = cfg.exit
        self.segments: Dict[int, _Segment] = {}
        self._compile()

    # -- compilation ----------------------------------------------------

    def _leaders(self) -> set:
        """Basic-block leader ids: where a pc may come to rest."""
        leaders = {self.entry}
        pred_count: Dict[int, int] = {}
        for label in self.cfg.labels.values():
            succs = label.successors()
            for succ in succs:
                pred_count[succ] = pred_count.get(succ, 0) + 1
            if len(succs) > 1:
                leaders.update(succs)
        leaders.update(lid for lid, count in pred_count.items() if count > 1)
        leaders.discard(self.exit)
        return leaders

    def _compile(self) -> None:
        rvars = self.cfg.rvars
        leaders = self._leaders()
        for head in sorted(leaders):
            segment = _Segment(head)
            current = head
            seen = set()
            while True:
                if current in seen:  # pragma: no cover - needs a leaderless cycle
                    raise VectorizationError(f"irreducible chain at label {current}")
                seen.add(current)
                label = self.cfg.labels[current]
                if isinstance(label, (AssignLabel, TickLabel)):
                    segment.straight.append(self._compile_straight(label, rvars))
                    segment.has_tick = segment.has_tick or isinstance(label, TickLabel)
                    nxt = label.succ
                    if nxt == self.exit or nxt in leaders:
                        segment.fallthrough = nxt
                        break
                    current = nxt
                elif isinstance(label, (BranchLabel, ProbLabel, NondetLabel)):
                    segment.control = self._compile_control(label)
                    break
                elif isinstance(label, TerminalLabel):  # pragma: no cover - the
                    segment.fallthrough = label.id      # exit is never a leader
                    break
                else:
                    raise VectorizationError(f"unknown label kind {label.kind!r}")
            segment.length = len(segment.straight) + (1 if segment.control is not None else 0)
            self.segments[head] = segment
        # Chain loop bodies into their loop-head test: a segment falling
        # through to a control-only segment absorbs that control op, so
        # one `while` iteration is one superstep instead of two (and all
        # iterating runs stay in a single cohort).  The control-only
        # segment itself remains for runs that enter at it.
        for segment in self.segments.values():
            if segment.control is None and segment.fallthrough != self.exit:
                target = self.segments[segment.fallthrough]
                if not target.straight and target.control is not None:
                    segment.control = target.control
                    segment.fallthrough = None
                    segment.length += 1

    def _compile_straight(self, label: Label, rvars) -> Callable:
        """Compile an assign/tick label to an op over the cohort-local
        state matrix: ``op(rows, cost_delta, rng)``."""
        if isinstance(label, TickLabel):
            cost_fn = _compile_poly(label.cost, self.columns, rvars=frozenset())

            def tick_op(rows, cost_delta, rng):
                cost_delta += cost_fn(rows, {})

            return tick_op

        assert isinstance(label, AssignLabel)
        sampled = sorted(v for v in label.expr.variables() if v in rvars)
        dists = [(name, rvars[name]) for name in sampled]
        expr_fn = _compile_poly(label.expr, self.columns, rvars=frozenset(sampled))
        target = self.columns.get(label.var)
        if target is None:
            raise VectorizationError(f"assignment to unknown variable {label.var!r}")

        def assign_op(rows, cost_delta, rng):
            draws = {name: dist.sample_batch(rng, rows.shape[0]) for name, dist in dists}
            rows[:, target] = expr_fn(rows, draws)

        return assign_op

    def _compile_control(self, label: Label) -> Callable:
        """Compile a branch/prob/nondet label to ``op(rows, rng)``
        returning the cohort's next pc values (array or scalar)."""
        if isinstance(label, BranchLabel):
            cond_fn = _compile_cond(label.cond, self.columns)
            succ_true, succ_false = label.succ_true, label.succ_false

            def branch_op(rows, rng):
                return np.where(cond_fn(rows), succ_true, succ_false)

            return branch_op

        if isinstance(label, ProbLabel):
            prob, succ_then, succ_else = label.prob, label.succ_then, label.succ_else

            def prob_op(rows, rng):
                return np.where(rng.random(rows.shape[0]) < prob, succ_then, succ_else)

            return prob_op

        assert isinstance(label, NondetLabel)
        kind, value = _nondet_choice(label, self.scheduler_key)
        succ_then, succ_else = label.succ_then, label.succ_else
        if kind == "const":
            chosen = succ_then if value else succ_else

            def const_op(rows, rng):
                return chosen

            return const_op

        p_then = float(value)

        def coin_op(rows, rng):
            return np.where(rng.random(rows.shape[0]) < p_then, succ_then, succ_else)

        return coin_op

    # -- execution ------------------------------------------------------

    def run_batch(
        self,
        init: Mapping[str, float],
        runs: int,
        rng: np.random.Generator,
        max_steps: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Advance ``runs`` executions to termination or truncation.

        Returns ``(cost, steps, terminated)`` arrays of length ``runs``;
        runs with ``terminated[i] == False`` hit the step budget.
        """
        state = np.zeros((runs, len(self.pvars)), dtype=np.float64)
        for var, value in init.items():
            col = self.columns.get(var)
            if col is None:
                raise SemanticsError(f"initial valuation mentions unknown variable {var!r}")
            state[:, col] = float(value)

        pc = np.full(runs, self.entry, dtype=np.int64)
        steps = np.zeros(runs, dtype=np.int64)
        cost = np.zeros(runs, dtype=np.float64)
        active = np.ones(runs, dtype=bool)
        terminated = np.zeros(runs, dtype=bool)

        while True:
            check_deadline()  # cooperative per-superstep timeout checkpoint
            # Truncation is tested before the terminal label, mirroring
            # the reference loop: a run arriving at l_out exactly at the
            # step budget counts as truncated there too.
            np.logical_and(active, steps < max_steps, out=active)
            done = active & (pc == self.exit)
            if done.any():
                terminated |= done
                active &= ~done
            live = np.flatnonzero(active)
            if live.size == 0:
                break
            live_pc = pc[live]
            first_pc = int(live_pc[0])
            if (live_pc == first_pc).all():
                # Single cohort (the common case once loop bodies absorb
                # their loop-head test): skip the unique() hash pass.
                self._run_segment(
                    self.segments[first_pc], live, state, pc, steps, cost, rng, max_steps
                )
            else:
                for head in np.unique(live_pc):
                    self._run_segment(
                        self.segments[int(head)],
                        live[live_pc == head],
                        state,
                        pc,
                        steps,
                        cost,
                        rng,
                        max_steps,
                    )

        return cost, steps, terminated

    def _run_segment(self, segment, idx, state, pc, steps, cost, rng, max_steps):
        """Execute one segment for the cohort ``idx`` (all at its head).

        The cohort's state rows are gathered into one contiguous local
        matrix, every op of the segment runs on it, and the result is
        scattered back once — fancy indexing the full state per label
        was the dominant superstep cost.  When every run can afford the
        whole segment (the overwhelmingly common case: budgets are huge
        relative to segment lengths) no per-label budget checks run at
        all; otherwise the slow path narrows the cohort label by label,
        so a run stops exactly when its budget is spent, like the
        reference loop.
        """
        rows = state[idx]
        budget = steps[idx]
        if int(budget.max()) + segment.length <= max_steps:
            cost_delta = np.zeros(idx.size) if segment.has_tick else None
            for op in segment.straight:
                op(rows, cost_delta, rng)
            if segment.straight:
                state[idx] = rows
            steps[idx] = budget + segment.length
            if cost_delta is not None:
                cost[idx] += cost_delta
            if segment.control is not None:
                pc[idx] = segment.control(rows, rng)
            else:
                pc[idx] = segment.fallthrough
            return

        # Slow path: some run exhausts its budget mid-segment.  Runs
        # dropped from ``sel`` keep their partial updates; the next
        # superstep retires them as truncated (steps >= max_steps)
        # without consulting their pc, so it may stay mid-segment.
        m = idx.size
        cost_delta = np.zeros(m)
        budget = budget.copy()
        sel = np.arange(m)
        first = True
        for op in segment.straight:
            if not first:
                sel = sel[budget[sel] < max_steps]
                if sel.size == 0:
                    break
            first = False
            sub_rows = rows[sel]
            sub_cost = cost_delta[sel]
            op(sub_rows, sub_cost, rng)
            rows[sel] = sub_rows
            cost_delta[sel] = sub_cost
            budget[sel] += 1
        if sel.size:
            if segment.control is not None:
                if not first:
                    sel = sel[budget[sel] < max_steps]
                if sel.size:
                    pc[idx[sel]] = segment.control(rows[sel], rng)
                    budget[sel] += 1
            else:
                pc[idx[sel]] = segment.fallthrough
        state[idx] = rows
        steps[idx] = budget
        cost[idx] += cost_delta


# ---------------------------------------------------------------------------
# Compile cache + entry points
# ---------------------------------------------------------------------------

#: cfg -> {scheduler_key: BatchProgram}; weak keys so CFGs stay
#: collectable.  simulate() is called in tight sweeps (figures, tail
#: validation, MC brackets) over the same CFG, so recompiling per call
#: would cost more than small batches take to run.
_COMPILE_CACHE: "weakref.WeakKeyDictionary[CFG, Dict[object, BatchProgram]]" = (
    weakref.WeakKeyDictionary()
)


def compile_cfg(cfg: CFG, scheduler: Optional[Scheduler] = None) -> BatchProgram:
    """Compile ``cfg`` under a vectorizable scheduler policy, memoized
    per (cfg, policy).

    Raises :class:`~repro.errors.VectorizationError` when the program or
    scheduler cannot be vectorized.
    """
    key = _scheduler_key(scheduler)
    per_cfg = _COMPILE_CACHE.get(cfg)
    if per_cfg is None:
        per_cfg = {}
        _COMPILE_CACHE[cfg] = per_cfg
    program = per_cfg.get(key)
    if program is None:
        program = BatchProgram(cfg, key)
        per_cfg[key] = program
    return program


def simulate_vectorized(
    cfg: CFG,
    init: Mapping[str, float],
    runs: int = 1000,
    scheduler: Optional[Scheduler] = None,
    seed: Optional[int] = None,
    max_steps: int = 1_000_000,
):
    """Vectorized equivalent of :func:`repro.semantics.simulate`.

    Compiles (or reuses a cached compilation of) the CFG and advances
    all ``runs`` executions in NumPy batch supersteps.  Statistics are
    aggregated through the same :func:`~.interpreter.build_stats` path
    as the reference engine.
    """
    from .interpreter import build_stats

    if runs <= 0:
        raise ValueError("number of runs must be positive")
    if max_steps < 1:
        raise ValueError("max_steps must be >= 1")
    program = compile_cfg(cfg, scheduler)
    rng = np.random.default_rng(seed)
    cost, steps, terminated = program.run_batch(init, runs, rng, max_steps)
    costs = [float(c) for c in cost[terminated]]
    truncated_costs = [float(c) for c in cost[~terminated]]
    return build_stats(runs, costs, truncated_costs, int(steps.sum()), engine="vectorized")
