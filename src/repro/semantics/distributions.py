"""Probability distributions for sampling variables.

The paper (Remark 1) supports *any* predefined distribution for sampling
variables; what the analysis actually consumes is

* raw moments ``E[r**k]`` (for the pre-expectation calculus), and
* support bounds (for the bounded-update side condition of Theorem 6.10),

while the Monte-Carlo interpreter additionally needs ``sample(rng)``.
All distributions here provide the three, exactly.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, Sequence, Tuple

__all__ = [
    "Distribution",
    "DiscreteDistribution",
    "BernoulliDistribution",
    "BinomialDistribution",
    "UniformDistribution",
    "UniformIntDistribution",
    "PointDistribution",
]


class Distribution(ABC):
    """A probability distribution over the reals."""

    @abstractmethod
    def moment(self, k: int) -> float:
        """The raw moment ``E[X**k]`` (``k >= 0``)."""

    @abstractmethod
    def sample(self, rng) -> float:
        """Draw one value using a :class:`random.Random`-like ``rng``."""

    @abstractmethod
    def support_bounds(self) -> Tuple[float, float]:
        """An interval ``[lo, hi]`` containing the support."""

    def mean(self) -> float:
        return self.moment(1)

    def variance(self) -> float:
        m1 = self.moment(1)
        return self.moment(2) - m1 * m1

    def is_bounded(self) -> bool:
        """True iff the support is contained in a finite interval."""
        lo, hi = self.support_bounds()
        return math.isfinite(lo) and math.isfinite(hi)


class DiscreteDistribution(Distribution):
    """A finite discrete distribution ``(v1, ..., vk) : (p1, ..., pk)``.

    This is the paper's inline notation, e.g.
    ``y := y + (-1, 0, 1) : (0.5, 0.1, 0.4)`` in Figure 4.
    """

    def __init__(self, values: Sequence[float], probs: Sequence[float]):
        if len(values) != len(probs):
            raise ValueError("values and probabilities must have equal length")
        if not values:
            raise ValueError("discrete distribution needs at least one outcome")
        if any(p < 0 for p in probs):
            raise ValueError("probabilities must be nonnegative")
        total = float(sum(probs))
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"probabilities must sum to 1 (got {total})")
        merged: Dict[float, float] = {}
        for v, p in zip(values, probs):
            merged[float(v)] = merged.get(float(v), 0.0) + float(p)
        self.values: Tuple[float, ...] = tuple(merged)
        self.probs: Tuple[float, ...] = tuple(merged[v] for v in self.values)

    def moment(self, k: int) -> float:
        if k < 0:
            raise ValueError("moment order must be nonnegative")
        return sum(p * v**k for v, p in zip(self.values, self.probs))

    def sample(self, rng) -> float:
        u = rng.random()
        acc = 0.0
        for v, p in zip(self.values, self.probs):
            acc += p
            if u <= acc:
                return v
        return self.values[-1]

    def support_bounds(self) -> Tuple[float, float]:
        return (min(self.values), max(self.values))

    def __repr__(self) -> str:
        pairs = ", ".join(f"{v:g}: {p:g}" for v, p in zip(self.values, self.probs))
        return f"discrete({pairs})"


class BernoulliDistribution(DiscreteDistribution):
    """Value 1 with probability ``p``, else 0."""

    def __init__(self, p: float):
        if not 0.0 <= p <= 1.0:
            raise ValueError("Bernoulli parameter must be in [0, 1]")
        self.p = float(p)
        super().__init__([0.0, 1.0], [1.0 - p, p])

    def __repr__(self) -> str:
        return f"bernoulli({self.p:g})"


class BinomialDistribution(DiscreteDistribution):
    """Number of successes in ``n`` independent ``p``-trials."""

    def __init__(self, n: int, p: float):
        if n < 0:
            raise ValueError("binomial count must be nonnegative")
        if not 0.0 <= p <= 1.0:
            raise ValueError("binomial parameter must be in [0, 1]")
        self.n = int(n)
        self.p = float(p)
        values = list(range(n + 1))
        probs = [math.comb(n, k) * p**k * (1.0 - p) ** (n - k) for k in values]
        super().__init__([float(v) for v in values], probs)

    def __repr__(self) -> str:
        return f"binomial({self.n}, {self.p:g})"


class UniformDistribution(Distribution):
    """Continuous uniform on ``[a, b]``.

    Raw moments are exact: ``E[X**k] = (b**(k+1) - a**(k+1)) / ((k+1)(b-a))``.
    """

    def __init__(self, a: float, b: float):
        if not b > a:
            raise ValueError("uniform distribution requires a < b")
        self.a = float(a)
        self.b = float(b)

    def moment(self, k: int) -> float:
        if k < 0:
            raise ValueError("moment order must be nonnegative")
        if k == 0:
            return 1.0
        return (self.b ** (k + 1) - self.a ** (k + 1)) / ((k + 1) * (self.b - self.a))

    def sample(self, rng) -> float:
        return rng.uniform(self.a, self.b)

    def support_bounds(self) -> Tuple[float, float]:
        return (self.a, self.b)

    def __repr__(self) -> str:
        return f"uniform({self.a:g}, {self.b:g})"


class UniformIntDistribution(DiscreteDistribution):
    """Uniform over the integers ``a, a+1, ..., b`` (inclusive).

    Used e.g. by the Pollutant Disposal benchmark ("integer-valued random
    variables which have an equivalent sampling rate between 1 and 10").
    """

    def __init__(self, a: int, b: int):
        if b < a:
            raise ValueError("uniform-int distribution requires a <= b")
        self.a = int(a)
        self.b = int(b)
        count = self.b - self.a + 1
        super().__init__([float(v) for v in range(self.a, self.b + 1)], [1.0 / count] * count)

    def __repr__(self) -> str:
        return f"unifint({self.a}, {self.b})"


class PointDistribution(DiscreteDistribution):
    """The degenerate distribution concentrated on one value."""

    def __init__(self, value: float):
        self.value = float(value)
        super().__init__([float(value)], [1.0])

    def __repr__(self) -> str:
        return f"point({self.value:g})"
