"""Probability distributions for sampling variables.

The paper (Remark 1) supports *any* predefined distribution for sampling
variables; what the analysis actually consumes is

* raw moments ``E[r**k]`` (for the pre-expectation calculus), and
* support bounds (for the bounded-update side condition of Theorem 6.10),

while the Monte-Carlo interpreter additionally needs ``sample(rng)``.
All distributions here provide the three, exactly.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, Sequence, Tuple

__all__ = [
    "Distribution",
    "DiscreteDistribution",
    "BernoulliDistribution",
    "BinomialDistribution",
    "UniformDistribution",
    "UniformIntDistribution",
    "PointDistribution",
    "GeometricDistribution",
]


class Distribution(ABC):
    """A probability distribution over the reals."""

    @abstractmethod
    def moment(self, k: int) -> float:
        """The raw moment ``E[X**k]`` (``k >= 0``)."""

    @abstractmethod
    def sample(self, rng) -> float:
        """Draw one value using a :class:`random.Random`-like ``rng``."""

    @abstractmethod
    def support_bounds(self) -> Tuple[float, float]:
        """An interval ``[lo, hi]`` containing the support."""

    def mean(self) -> float:
        return self.moment(1)

    def variance(self) -> float:
        m1 = self.moment(1)
        return self.moment(2) - m1 * m1

    def is_bounded(self) -> bool:
        """True iff the support is contained in a finite interval."""
        lo, hi = self.support_bounds()
        return math.isfinite(lo) and math.isfinite(hi)


class DiscreteDistribution(Distribution):
    """A finite discrete distribution ``(v1, ..., vk) : (p1, ..., pk)``.

    This is the paper's inline notation, e.g.
    ``y := y + (-1, 0, 1) : (0.5, 0.1, 0.4)`` in Figure 4.
    """

    def __init__(self, values: Sequence[float], probs: Sequence[float]):
        if len(values) != len(probs):
            raise ValueError("values and probabilities must have equal length")
        if not values:
            raise ValueError("discrete distribution needs at least one outcome")
        if any(p < 0 for p in probs):
            raise ValueError("probabilities must be nonnegative")
        total = float(sum(probs))
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"probabilities must sum to 1 (got {total})")
        merged: Dict[float, float] = {}
        for v, p in zip(values, probs):
            merged[float(v)] = merged.get(float(v), 0.0) + float(p)
        self.values: Tuple[float, ...] = tuple(merged)
        self.probs: Tuple[float, ...] = tuple(merged[v] for v in self.values)

    def moment(self, k: int) -> float:
        if k < 0:
            raise ValueError("moment order must be nonnegative")
        return sum(p * v**k for v, p in zip(self.values, self.probs))

    def sample(self, rng) -> float:
        u = rng.random()
        acc = 0.0
        for v, p in zip(self.values, self.probs):
            acc += p
            if u <= acc:
                return v
        return self.values[-1]

    def support_bounds(self) -> Tuple[float, float]:
        return (min(self.values), max(self.values))

    def __repr__(self) -> str:
        pairs = ", ".join(f"{v:g}: {p:g}" for v, p in zip(self.values, self.probs))
        return f"discrete({pairs})"


class BernoulliDistribution(DiscreteDistribution):
    """Value 1 with probability ``p``, else 0."""

    def __init__(self, p: float):
        if not 0.0 <= p <= 1.0:
            raise ValueError("Bernoulli parameter must be in [0, 1]")
        self.p = float(p)
        super().__init__([0.0, 1.0], [1.0 - p, p])

    def __repr__(self) -> str:
        return f"bernoulli({self.p:g})"


class BinomialDistribution(DiscreteDistribution):
    """Number of successes in ``n`` independent ``p``-trials."""

    def __init__(self, n: int, p: float):
        if n < 0:
            raise ValueError("binomial count must be nonnegative")
        if not 0.0 <= p <= 1.0:
            raise ValueError("binomial parameter must be in [0, 1]")
        self.n = int(n)
        self.p = float(p)
        values = list(range(n + 1))
        probs = [math.comb(n, k) * p**k * (1.0 - p) ** (n - k) for k in values]
        super().__init__([float(v) for v in values], probs)

    def __repr__(self) -> str:
        return f"binomial({self.n}, {self.p:g})"


class UniformDistribution(Distribution):
    """Continuous uniform on ``[a, b]``.

    Raw moments are exact: ``E[X**k] = (b**(k+1) - a**(k+1)) / ((k+1)(b-a))``.
    """

    def __init__(self, a: float, b: float):
        if not b > a:
            raise ValueError("uniform distribution requires a < b")
        self.a = float(a)
        self.b = float(b)

    def moment(self, k: int) -> float:
        if k < 0:
            raise ValueError("moment order must be nonnegative")
        if k == 0:
            return 1.0
        return (self.b ** (k + 1) - self.a ** (k + 1)) / ((k + 1) * (self.b - self.a))

    def sample(self, rng) -> float:
        return rng.uniform(self.a, self.b)

    def support_bounds(self) -> Tuple[float, float]:
        return (self.a, self.b)

    def __repr__(self) -> str:
        return f"uniform({self.a:g}, {self.b:g})"


class UniformIntDistribution(DiscreteDistribution):
    """Uniform over the integers ``a, a+1, ..., b`` (inclusive).

    Used e.g. by the Pollutant Disposal benchmark ("integer-valued random
    variables which have an equivalent sampling rate between 1 and 10").
    """

    def __init__(self, a: int, b: int):
        if b < a:
            raise ValueError("uniform-int distribution requires a <= b")
        self.a = int(a)
        self.b = int(b)
        count = self.b - self.a + 1
        super().__init__([float(v) for v in range(self.a, self.b + 1)], [1.0 / count] * count)

    def __repr__(self) -> str:
        return f"unifint({self.a}, {self.b})"


class PointDistribution(DiscreteDistribution):
    """The degenerate distribution concentrated on one value."""

    def __init__(self, value: float):
        self.value = float(value)
        super().__init__([float(value)], [1.0])

    def __repr__(self) -> str:
        return f"point({self.value:g})"


class GeometricDistribution(Distribution):
    """Number of trials until the first success: support ``{1, 2, ...}``.

    The canonical *unbounded*-support distribution: expected-cost
    synthesis still works (all raw moments are finite), but the
    bounded-update side condition of Theorem 6.10 fails statically, so
    tail bounds are unavailable (the lint pass reports ``REP006``).

    Raw moments are computed by truncated summation of
    ``n**k * p * (1-p)**(n-1)``; the geometric tail makes the truncation
    error negligible at machine precision.
    """

    def __init__(self, p: float):
        if not 0.0 < p <= 1.0:
            raise ValueError("geometric parameter must be in (0, 1]")
        self.p = float(p)

    def moment(self, k: int) -> float:
        if k < 0:
            raise ValueError("moment order must be nonnegative")
        if k == 0:
            return 1.0
        if self.p == 1.0:
            return 1.0
        q = 1.0 - self.p
        total = 0.0
        term_weight = self.p  # p * q**(n-1)
        for n in range(1, 100_000):
            term = (float(n) ** k) * term_weight
            total += term
            term_weight *= q
            if term < 1e-16 * max(total, 1.0) and n > 1.0 / self.p:
                break
        return total

    def sample(self, rng) -> float:
        if self.p == 1.0:
            return 1.0
        # Inverse transform: ceil(log(1-u) / log(1-p)), clamped to >= 1.
        u = rng.random()
        return float(max(1, math.ceil(math.log1p(-u) / math.log(1.0 - self.p))))

    def support_bounds(self) -> Tuple[float, float]:
        return (1.0, math.inf)

    def __repr__(self) -> str:
        return f"geometric({self.p:g})"
