"""Probability distributions for sampling variables.

The paper (Remark 1) supports *any* predefined distribution for sampling
variables; what the analysis actually consumes is

* raw moments ``E[r**k]`` (for the pre-expectation calculus), and
* support bounds (for the bounded-update side condition of Theorem 6.10),

while the Monte-Carlo interpreter additionally needs ``sample(rng)`` and
the vectorized batch interpreter ``sample_batch(rng, n)`` — a whole
batch of independent draws through a :class:`numpy.random.Generator`.
All distributions here provide the four, exactly; ``sample_batch`` has a
sequential fallback in the base class so user-defined distributions that
only implement ``sample`` keep working everywhere (just without the
vectorized speedup).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from bisect import bisect_left
from typing import Dict, Sequence, Tuple

from ..errors import SemanticsError

__all__ = [
    "Distribution",
    "DiscreteDistribution",
    "BernoulliDistribution",
    "BinomialDistribution",
    "UniformDistribution",
    "UniformIntDistribution",
    "PointDistribution",
    "GeometricDistribution",
]

#: Hard ceiling on adaptive moment summation (see
#: :meth:`GeometricDistribution.moment`): exceeding it raises instead of
#: silently returning a truncated underestimate.
_MOMENT_MAX_TERMS = 1_000_000

#: Relative tolerance the certified summation remainder must reach.
_MOMENT_REL_TOL = 1e-12


class _SequentialAdapter:
    """Present a :class:`numpy.random.Generator` as the ``random.Random``
    subset (``random()``/``uniform()``) that ``sample`` consumes, for the
    base-class ``sample_batch`` fallback."""

    __slots__ = ("_rng",)

    def __init__(self, rng):
        self._rng = rng

    def random(self) -> float:
        return float(self._rng.random())

    def uniform(self, a: float, b: float) -> float:
        return float(self._rng.uniform(a, b))


class Distribution(ABC):
    """A probability distribution over the reals."""

    @abstractmethod
    def moment(self, k: int) -> float:
        """The raw moment ``E[X**k]`` (``k >= 0``)."""

    @abstractmethod
    def sample(self, rng) -> float:
        """Draw one value using a :class:`random.Random`-like ``rng``."""

    def sample_batch(self, rng, n: int):
        """Draw ``n`` independent values as a float array.

        ``rng`` is a :class:`numpy.random.Generator`.  Subclasses
        override this with a truly vectorized implementation; the base
        fallback loops over :meth:`sample` so any distribution works
        with the batch interpreter.
        """
        import numpy as np

        adapter = _SequentialAdapter(rng)
        return np.array([self.sample(adapter) for _ in range(n)], dtype=np.float64)

    @abstractmethod
    def support_bounds(self) -> Tuple[float, float]:
        """An interval ``[lo, hi]`` containing the support."""

    def mean(self) -> float:
        return self.moment(1)

    def variance(self) -> float:
        m1 = self.moment(1)
        return self.moment(2) - m1 * m1

    def is_bounded(self) -> bool:
        """True iff the support is contained in a finite interval."""
        lo, hi = self.support_bounds()
        return math.isfinite(lo) and math.isfinite(hi)

    # Distributions are immutable values: two instances of the same
    # class with the same parameters are the same distribution.  Without
    # this, ``parse(pretty(p))`` produced a Program whose rvars compared
    # unequal to the original's (the fuzz round-trip tests caught it).
    def _eq_key(self) -> tuple:
        """Value-equality key; parameterized subclasses override.

        The fallback is identity, so user-defined distributions without
        a key keep their old behaviour.
        """
        return (id(self),)

    def __eq__(self, other: object):
        if type(self) is not type(other):
            return NotImplemented
        return self._eq_key() == other._eq_key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._eq_key()))


class DiscreteDistribution(Distribution):
    """A finite discrete distribution ``(v1, ..., vk) : (p1, ..., pk)``.

    This is the paper's inline notation, e.g.
    ``y := y + (-1, 0, 1) : (0.5, 0.1, 0.4)`` in Figure 4.
    """

    def __init__(self, values: Sequence[float], probs: Sequence[float]):
        if len(values) != len(probs):
            raise ValueError("values and probabilities must have equal length")
        if not values:
            raise ValueError("discrete distribution needs at least one outcome")
        if any(p < 0 for p in probs):
            raise ValueError("probabilities must be nonnegative")
        total = float(sum(probs))
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"probabilities must sum to 1 (got {total})")
        merged: Dict[float, float] = {}
        for v, p in zip(values, probs):
            merged[float(v)] = merged.get(float(v), 0.0) + float(p)
        self.values: Tuple[float, ...] = tuple(merged)
        self.probs: Tuple[float, ...] = tuple(merged[v] for v in self.values)
        # Cumulative weights for O(log k) inverse-CDF sampling.  Built
        # with the same left-to-right float accumulation the former
        # linear scan used, so draws are bit-for-bit identical on the
        # same ``rng`` stream (the golden seeded fixtures depend on it).
        cum = []
        acc = 0.0
        for p in self.probs:
            acc += p
            cum.append(acc)
        self._cum: Tuple[float, ...] = tuple(cum)
        self._batch_arrays = None  # lazy (cum, values) ndarrays for sample_batch

    def moment(self, k: int) -> float:
        if k < 0:
            raise ValueError("moment order must be nonnegative")
        return sum(p * v**k for v, p in zip(self.values, self.probs))

    def sample(self, rng) -> float:
        # First index with cum >= u — exactly the first outcome the old
        # linear scan accepted (`u <= acc`), found in O(log k).
        u = rng.random()
        i = bisect_left(self._cum, u)
        if i >= len(self.values):  # float accumulation fell short of 1
            return self.values[-1]
        return self.values[i]

    def sample_batch(self, rng, n: int):
        import numpy as np

        if self._batch_arrays is None:
            self._batch_arrays = (
                np.asarray(self._cum, dtype=np.float64),
                np.asarray(self.values, dtype=np.float64),
            )
        cum, values = self._batch_arrays
        u = rng.random(n)
        idx = np.searchsorted(cum, u, side="left")
        np.clip(idx, 0, len(values) - 1, out=idx)
        return values[idx]

    def support_bounds(self) -> Tuple[float, float]:
        return (min(self.values), max(self.values))

    def _eq_key(self) -> tuple:
        return (self.values, self.probs)

    def __repr__(self) -> str:
        pairs = ", ".join(f"{v:g}: {p:g}" for v, p in zip(self.values, self.probs))
        return f"discrete({pairs})"


class BernoulliDistribution(DiscreteDistribution):
    """Value 1 with probability ``p``, else 0."""

    def __init__(self, p: float):
        if not 0.0 <= p <= 1.0:
            raise ValueError("Bernoulli parameter must be in [0, 1]")
        self.p = float(p)
        super().__init__([0.0, 1.0], [1.0 - p, p])

    def __repr__(self) -> str:
        return f"bernoulli({self.p:g})"


class BinomialDistribution(DiscreteDistribution):
    """Number of successes in ``n`` independent ``p``-trials."""

    def __init__(self, n: int, p: float):
        if n < 0:
            raise ValueError("binomial count must be nonnegative")
        if not 0.0 <= p <= 1.0:
            raise ValueError("binomial parameter must be in [0, 1]")
        self.n = int(n)
        self.p = float(p)
        values = list(range(n + 1))
        probs = [math.comb(n, k) * p**k * (1.0 - p) ** (n - k) for k in values]
        super().__init__([float(v) for v in values], probs)

    def __repr__(self) -> str:
        return f"binomial({self.n}, {self.p:g})"


class UniformDistribution(Distribution):
    """Continuous uniform on ``[a, b]``.

    Raw moments are exact: ``E[X**k] = (b**(k+1) - a**(k+1)) / ((k+1)(b-a))``.
    """

    def __init__(self, a: float, b: float):
        if not b > a:
            raise ValueError("uniform distribution requires a < b")
        self.a = float(a)
        self.b = float(b)

    def moment(self, k: int) -> float:
        if k < 0:
            raise ValueError("moment order must be nonnegative")
        if k == 0:
            return 1.0
        return (self.b ** (k + 1) - self.a ** (k + 1)) / ((k + 1) * (self.b - self.a))

    def sample(self, rng) -> float:
        return rng.uniform(self.a, self.b)

    def sample_batch(self, rng, n: int):
        return rng.uniform(self.a, self.b, n)

    def support_bounds(self) -> Tuple[float, float]:
        return (self.a, self.b)

    def _eq_key(self) -> tuple:
        return (self.a, self.b)

    def __repr__(self) -> str:
        return f"uniform({self.a:g}, {self.b:g})"


class UniformIntDistribution(DiscreteDistribution):
    """Uniform over the integers ``a, a+1, ..., b`` (inclusive).

    Used e.g. by the Pollutant Disposal benchmark ("integer-valued random
    variables which have an equivalent sampling rate between 1 and 10").
    """

    def __init__(self, a: int, b: int):
        if b < a:
            raise ValueError("uniform-int distribution requires a <= b")
        self.a = int(a)
        self.b = int(b)
        count = self.b - self.a + 1
        super().__init__([float(v) for v in range(self.a, self.b + 1)], [1.0 / count] * count)

    def __repr__(self) -> str:
        return f"unifint({self.a}, {self.b})"


class PointDistribution(DiscreteDistribution):
    """The degenerate distribution concentrated on one value."""

    def __init__(self, value: float):
        self.value = float(value)
        super().__init__([float(value)], [1.0])

    def sample_batch(self, rng, n: int):
        import numpy as np

        return np.full(n, self.value, dtype=np.float64)

    def __repr__(self) -> str:
        return f"point({self.value:g})"


class GeometricDistribution(Distribution):
    """Number of trials until the first success: support ``{1, 2, ...}``.

    The canonical *unbounded*-support distribution: expected-cost
    synthesis still works (all raw moments are finite), but the
    bounded-update side condition of Theorem 6.10 fails statically, so
    tail bounds are unavailable (the lint pass reports ``REP006``).

    The first two raw moments use the closed forms ``E[X] = 1/p`` and
    ``E[X**2] = (2 - p)/p**2``; higher orders sum
    ``n**k * p * (1-p)**(n-1)`` adaptively until a certified geometric
    majorant of the remainder is negligible, and *raise* (rather than
    silently undershoot) when the tolerance cannot be met within the
    term budget — a fixed 100k-term truncation used to return a badly
    wrong value for small ``p``.
    """

    def __init__(self, p: float):
        if not 0.0 < p <= 1.0:
            raise ValueError("geometric parameter must be in (0, 1]")
        self.p = float(p)

    def moment(self, k: int) -> float:
        if k < 0:
            raise ValueError("moment order must be nonnegative")
        if k == 0:
            return 1.0
        if self.p == 1.0:
            return 1.0
        if k == 1:
            return 1.0 / self.p
        if k == 2:
            return (2.0 - self.p) / (self.p * self.p)
        q = 1.0 - self.p
        total = 0.0
        term = self.p  # n = 1: 1**k * p * q**0
        n = 1
        while n <= _MOMENT_MAX_TERMS:
            total += term
            # term_{n+1} / term_n = q * ((n+1)/n)**k, decreasing in n.
            # Once it drops below 1 the remaining terms are dominated by
            # the geometric series term * (r + r**2 + ...).
            ratio = q * ((n + 1.0) / n) ** k
            if ratio < 1.0 and term * ratio / (1.0 - ratio) <= _MOMENT_REL_TOL * total:
                return total
            n += 1
            term *= ratio
        raise SemanticsError(
            f"geometric(p={self.p:g}).moment({k}) did not converge within "
            f"{_MOMENT_MAX_TERMS} terms; p is too small for reliable "
            "truncated summation at this order"
        )

    def sample(self, rng) -> float:
        if self.p == 1.0:
            return 1.0
        # Inverse transform: ceil(log(1-u) / log(1-p)), clamped to >= 1.
        u = rng.random()
        return float(max(1, math.ceil(math.log1p(-u) / math.log(1.0 - self.p))))

    def sample_batch(self, rng, n: int):
        import numpy as np

        if self.p == 1.0:
            return np.ones(n, dtype=np.float64)
        u = rng.random(n)
        draws = np.ceil(np.log1p(-u) / math.log(1.0 - self.p))
        return np.maximum(draws, 1.0)

    def support_bounds(self) -> Tuple[float, float]:
        return (1.0, math.inf)

    def _eq_key(self) -> tuple:
        return (self.p,)

    def __repr__(self) -> str:
        return f"geometric({self.p:g})"
