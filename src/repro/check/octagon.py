"""Forward octagon abstract interpretation over the probabilistic CFG.

The relational companion of :mod:`repro.check.interp`: where the
interval domain tracks one box per label, this domain tracks all
constraints of the form ``±x ±y <= c`` (plus the unary bounds
``±x <= c``) in a closed difference-bound matrix (DBM) per label.  The
paper's method consumes linear invariants as an *input* (it used the
Stanford Invariant Generator); this module is the reproduction's own
relational generator, so facts like ``n - x >= 0`` no longer have to be
hand-annotated before synthesis can use them as Gamma rows.

Representation (Miné's encoding): variable ``k`` of the octagon owns
the two signed indices ``2k`` (standing for ``+x_k``) and ``2k + 1``
(standing for ``-x_k``); entry ``m[i][j]`` upper-bounds ``V_i - V_j``
where ``V`` is the signed valuation.  Concretely:

* ``x <= c``      is ``m[2k][2k+1] = 2c``
* ``x >= c``      is ``m[2k+1][2k] = -2c``
* ``x + y <= c``  is ``m[2k][2l+1] = c``  (and its coherent mirror)
* ``x - y <= c``  is ``m[2k][2l] = c``    (and its coherent mirror)

The coherence invariant ``m[i][j] == m[bar(j)][bar(i)]`` (``bar`` flips
``2k <-> 2k+1``) is maintained by every constructor and mutator.

The fixpoint engine mirrors :func:`repro.check.interp.analyze_cfg`
exactly — same FIFO worklist, widening-after-k, descending narrowing
passes scaled by CFG size, distributions abstracted to their support
and nondeterministic branches joined — and carries the same soundness
contract: every concretely reachable state at a label satisfies every
constraint of that label's octagon (``tests/check/test_octagon.py``
drives the interpreter against this containment).

Widened states are stored *unclosed* (closing a widened DBM can undo
the extrapolation and forfeit termination); they are closed lazily, on
a copy, whenever used as a transfer input or queried.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..polynomials import Monomial, Polynomial
from ..semantics.cfg import (
    CFG,
    AssignLabel,
    BranchLabel,
    NondetLabel,
    ProbLabel,
    TickLabel,
)
from ..syntax.ast import BoolExpr
from .interp import Interval, _eval_poly, _RefineMemo

__all__ = ["Octagon", "OctagonAnalysis", "analyze_cfg_octagon"]

_INF = math.inf


class Octagon:
    """One abstract state: a DBM over ``2n`` signed variable indices.

    A plain ``__slots__`` class like :class:`~repro.check.interp.Interval`
    and for the same reason — the worklist allocates these in its inner
    loop.  Instances are treated as immutable once stored in the
    analysis; all mutators are only called on fresh copies.
    """

    __slots__ = ("vars", "index", "m", "closed")

    def __init__(self, variables: Tuple[str, ...], m: List[List[float]], closed: bool = False):
        self.vars = tuple(variables)
        self.index = {var: k for k, var in enumerate(self.vars)}
        self.m = m
        self.closed = closed

    # -- constructors ---------------------------------------------------

    @classmethod
    def top(cls, variables) -> "Octagon":
        variables = tuple(variables)
        n2 = 2 * len(variables)
        m = [[0.0 if i == j else _INF for j in range(n2)] for i in range(n2)]
        return cls(variables, m, closed=True)

    @classmethod
    def from_point(cls, variables, valuation: Mapping[str, float]) -> "Octagon":
        """The octagon of one concrete point (the entry state)."""
        oct_ = cls.top(variables)
        for k, var in enumerate(oct_.vars):
            value = float(valuation.get(var, 0.0))
            oct_.m[2 * k][2 * k + 1] = 2.0 * value
            oct_.m[2 * k + 1][2 * k] = -2.0 * value
        oct_.closed = False
        closed = oct_.close()
        assert closed is not None  # a point is never empty
        return closed

    def copy(self) -> "Octagon":
        return Octagon(self.vars, [row[:] for row in self.m], closed=self.closed)

    # -- basic structure ------------------------------------------------

    def set_bound(self, i: int, j: int, c: float) -> None:
        """Tighten ``V_i - V_j <= c`` (coherent mirror included)."""
        if c < self.m[i][j]:
            self.m[i][j] = c
            self.m[j ^ 1][i ^ 1] = c
            self.closed = False

    def forget(self, k: int) -> None:
        """Project out variable ``k`` (call on a *closed* matrix, so
        relations among the other variables survive via closure)."""
        a, b = 2 * k, 2 * k + 1
        n2 = 2 * len(self.vars)
        for i in range(n2):
            self.m[i][a] = self.m[i][b] = _INF
            self.m[a][i] = self.m[b][i] = _INF
        self.m[a][a] = self.m[b][b] = 0.0

    # -- closure --------------------------------------------------------

    def close(self) -> Optional["Octagon"]:
        """The strong closure, or ``None`` when the octagon is empty.

        Floyd–Warshall shortest paths over the ``2n`` signed indices
        followed by the strengthening step ``m[i][j] <- min(m[i][j],
        (m[i][bar(i)] + m[bar(j)][j]) / 2)``, run twice — at our sizes
        (``2n <= 10``) the second round is cheap insurance that the
        strengthened entries are themselves path-propagated.
        """
        if self.closed:
            return self
        n2 = 2 * len(self.vars)
        m = [row[:] for row in self.m]
        for _ in range(2):
            for k in range(n2):
                mk = m[k]
                for i in range(n2):
                    mik = m[i][k]
                    if mik == _INF:
                        continue
                    row = m[i]
                    for j in range(n2):
                        alt = mik + mk[j]
                        if alt < row[j]:
                            row[j] = alt
            for i in range(n2):
                half_i = m[i][i ^ 1]
                if half_i == _INF:
                    continue
                row = m[i]
                for j in range(n2):
                    alt = (half_i + m[j ^ 1][j]) / 2.0
                    if alt < row[j]:
                        row[j] = alt
        for i in range(n2):
            if m[i][i] < 0.0:
                return None
            m[i][i] = 0.0
        return Octagon(self.vars, m, closed=True)

    # -- lattice operations ---------------------------------------------

    def join(self, other: "Octagon") -> "Octagon":
        """Entrywise max of the closed forms (octagon union hull)."""
        a, b = self.close(), other.close()
        if a is None:
            return b if b is not None else self
        if b is None:
            return a
        m = [
            [max(x, y) for x, y in zip(row_a, row_b)]
            for row_a, row_b in zip(a.m, b.m)
        ]
        return Octagon(self.vars, m, closed=True)

    def widen(self, newer: "Octagon") -> "Octagon":
        """Standard DBM widening: unstable entries jump to infinity.

        Uses *this* (possibly unclosed) matrix as the reference — the
        result is deliberately not closed, which is what guarantees
        termination of the ascending phase.
        """
        m = [
            [old if new <= old else _INF for old, new in zip(row_old, row_new)]
            for row_old, row_new in zip(self.m, newer.m)
        ]
        return Octagon(self.vars, m, closed=False)

    def equals(self, other: "Octagon") -> bool:
        return self.vars == other.vars and self.m == other.m

    # -- queries (on closed matrices) -----------------------------------

    def interval_of(self, var: str) -> Interval:
        """The unary bounds of ``var`` (tightest when closed)."""
        k = self.index[var]
        return Interval(-self.m[2 * k + 1][2 * k] / 2.0, self.m[2 * k][2 * k + 1] / 2.0)

    def box(self) -> Dict[str, Interval]:
        """The interval projection (an :mod:`.interp`-style state)."""
        return {var: self.interval_of(var) for var in self.vars}

    def sum_bounds(self, va: str, vb: str) -> Tuple[float, float]:
        """Bounds ``lo <= va + vb <= hi`` from the DBM."""
        a, b = self.index[va], self.index[vb]
        return (-self.m[2 * a + 1][2 * b], self.m[2 * a][2 * b + 1])

    def diff_bounds(self, va: str, vb: str) -> Tuple[float, float]:
        """Bounds ``lo <= va - vb <= hi`` from the DBM."""
        a, b = self.index[va], self.index[vb]
        return (-self.m[2 * b][2 * a], self.m[2 * a][2 * b])

    def contains(self, valuation: Mapping[str, float], tol: float = 1e-9) -> bool:
        """Does the concrete point satisfy every constraint?

        ``tol`` is absolute, per DBM entry (unary entries carry doubled
        bounds, so the effective per-variable slack matches the interval
        domain's).
        """
        signed: List[float] = []
        for var in self.vars:
            value = float(valuation.get(var, 0.0))
            signed.append(value)
            signed.append(-value)
        n2 = len(signed)
        for i in range(n2):
            vi = signed[i]
            row = self.m[i]
            for j in range(n2):
                bound = row[j]
                if bound != _INF and vi - signed[j] > bound + tol:
                    return False
        return True

    def __repr__(self) -> str:
        parts = []
        for var in self.vars:
            iv = self.interval_of(var)
            parts.append(f"{var} in {iv}")
        return f"Octagon({', '.join(parts)})"


# ---------------------------------------------------------------------------
# Transfer functions
# ---------------------------------------------------------------------------


def _linear_parts(
    poly: Polynomial, rvar_bounds: Mapping[str, Tuple[float, float]], pvar_index: Mapping[str, int]
) -> Optional[Tuple[Dict[str, float], float, float]]:
    """Split a linear polynomial into program-variable coefficients and
    the interval of its variable-free remainder (constant + sampling
    variables over their support).  ``None`` when not linear."""
    coeffs: Dict[str, float] = {}
    g_lo = g_hi = 0.0
    for mono, coeff in poly.terms():
        c = float(coeff)
        if mono.degree() == 0:
            g_lo += c
            g_hi += c
            continue
        if mono.degree() != 1:
            return None
        ((var, _),) = tuple(mono)
        if var in pvar_index:
            coeffs[var] = coeffs.get(var, 0.0) + c
            continue
        lo, hi = rvar_bounds.get(var, (-_INF, _INF))
        add_lo, add_hi = (c * lo, c * hi) if c >= 0.0 else (c * hi, c * lo)
        g_lo += add_lo
        g_hi += add_hi
    if math.isnan(g_lo) or math.isnan(g_hi):
        return None
    return coeffs, g_lo, g_hi


def _shift(oct_: Octagon, k: int, g_lo: float, g_hi: float) -> None:
    """Exact transfer of ``x_k := x_k + g`` with ``g in [g_lo, g_hi]``."""
    a, b = 2 * k, 2 * k + 1
    n2 = 2 * len(oct_.vars)
    for i in range(n2):
        ti = 1 if i == a else (-1 if i == b else 0)
        row = oct_.m[i]
        for j in range(n2):
            if i == j:
                continue
            d = ti - (1 if j == a else (-1 if j == b else 0))
            if d == 0 or row[j] == _INF:
                continue
            row[j] = row[j] + (g_hi * d if d > 0 else g_lo * d)
    oct_.closed = False


def _swap_sign(oct_: Octagon, k: int) -> None:
    """In-place ``x_k := -x_k``: swap the two signed indices of ``k``."""
    a, b = 2 * k, 2 * k + 1
    oct_.m[a], oct_.m[b] = oct_.m[b], oct_.m[a]
    for row in oct_.m:
        row[a], row[b] = row[b], row[a]


def _assign(
    state: Octagon,
    var: str,
    expr: Polynomial,
    rvar_bounds: Mapping[str, Tuple[float, float]],
) -> Optional[Octagon]:
    """The abstract assignment ``var := expr`` on a *closed* state."""
    oct_ = state.copy()
    k = oct_.index[var]
    parts = _linear_parts(expr, rvar_bounds, oct_.index) if expr.is_linear() else None
    if parts is not None:
        coeffs, g_lo, g_hi = parts
        a_self = coeffs.pop(var, 0.0)
        others = {v: c for v, c in coeffs.items() if c != 0.0}
        if not others and a_self == 1.0:
            _shift(oct_, k, g_lo, g_hi)
            return oct_
        if not others and a_self == -1.0:
            _swap_sign(oct_, k)
            _shift(oct_, k, g_lo, g_hi)
            return oct_
        if not others and a_self == 0.0:
            oct_.forget(k)
            if g_hi != _INF:
                oct_.set_bound(2 * k, 2 * k + 1, 2.0 * g_hi)
            if g_lo != -_INF:
                oct_.set_bound(2 * k + 1, 2 * k, -2.0 * g_lo)
            oct_.closed = False
            return oct_
        if a_self == 0.0 and len(others) == 1:
            ((other, a_other),) = others.items()
            if a_other in (1.0, -1.0):
                # x := +-y + g: forget x, then pin its relation to y.
                ell = oct_.index[other]
                oct_.forget(k)
                if a_other == 1.0:
                    if g_hi != _INF:  # x - y <= g_hi
                        oct_.set_bound(2 * k, 2 * ell, g_hi)
                    if g_lo != -_INF:  # y - x <= -g_lo
                        oct_.set_bound(2 * ell, 2 * k, -g_lo)
                else:
                    if g_hi != _INF:  # x + y <= g_hi
                        oct_.set_bound(2 * k, 2 * ell + 1, g_hi)
                    if g_lo != -_INF:  # -x - y <= -g_lo
                        oct_.set_bound(2 * k + 1, 2 * ell, -g_lo)
                oct_.closed = False
                return oct_
    # General fallback: interval-evaluate over the box projection, then
    # forget the target's relations and keep only its unary bounds.
    value = _eval_poly(expr, state.box(), rvar_bounds)
    oct_.forget(k)
    if value.hi != _INF:
        oct_.set_bound(2 * k, 2 * k + 1, 2.0 * value.hi)
    if value.lo != -_INF:
        oct_.set_bound(2 * k + 1, 2 * k, -2.0 * value.lo)
    oct_.closed = False
    return oct_


def _apply_atom(oct_: Octagon, decomp) -> bool:
    """Meet one decomposed guard atom into ``oct_`` (in place).

    ``decomp`` is the output of :func:`_octagon_atom`; returns False
    when the atom is not octagon-expressible (sound skip).
    """
    if decomp is None:
        return False
    kind, payload = decomp
    if kind == "unary":
        k, lower, bound = payload
        if lower:  # x >= bound
            oct_.set_bound(2 * k + 1, 2 * k, -2.0 * bound)
        else:  # x <= bound
            oct_.set_bound(2 * k, 2 * k + 1, 2.0 * bound)
        return True
    s1, k, s2, ell, c = payload  # s1*x_k + s2*x_l <= c
    if s1 > 0 and s2 > 0:
        oct_.set_bound(2 * k, 2 * ell + 1, c)
    elif s1 > 0:
        oct_.set_bound(2 * k, 2 * ell, c)
    elif s2 > 0:
        oct_.set_bound(2 * ell, 2 * k, c)
    else:
        oct_.set_bound(2 * k + 1, 2 * ell, c)
    return True


def _octagon_atom(atom, pvar_index: Mapping[str, int]):
    """Decompose a guard atom into an octagon constraint, if it is one.

    Handles exactly the atoms the domain can represent: single-variable
    linear bounds (matching the interval domain's refinement) and
    two-variable linear atoms whose coefficients have equal magnitude
    (``x + y <= c``, ``i - j >= 0``, ...).  Anything else — strict
    inequalities are relaxed first — is skipped, which is sound.
    """
    poly = atom.relaxed().poly
    if not poly.is_linear():
        return None
    variables = sorted(poly.variables())
    if not all(var in pvar_index for var in variables):
        return None
    b = float(poly.constant_term())
    if len(variables) == 1:
        (var,) = variables
        a = float(poly.coeff(Monomial.variable(var)))
        if a == 0.0:
            return None
        # a*x + b >= 0
        k = pvar_index[var]
        return ("unary", (k, a > 0.0, -b / a))
    if len(variables) == 2:
        va, vb = variables
        a1 = float(poly.coeff(Monomial.variable(va)))
        a2 = float(poly.coeff(Monomial.variable(vb)))
        if a1 == 0.0 or abs(a1) != abs(a2):
            return None
        # a1*x + a2*y + b >= 0  <=>  (-a1/s)*x + (-a2/s)*y <= b/s, s = |a1|
        s = abs(a1)
        return ("binary", (-a1 / s, pvar_index[va], -a2 / s, pvar_index[vb], b / s))
    return None


class _OctagonMemo(_RefineMemo):
    """The interval refine-memo plus per-atom octagon decompositions."""

    __slots__ = ("octagon_atoms",)

    def __init__(self):
        super().__init__()
        self.octagon_atoms: Dict[int, object] = {}

    def octagon_atom(self, atom, pvar_index):
        key = id(atom)
        if key not in self.octagon_atoms:
            self.octagon_atoms[key] = _octagon_atom(atom, pvar_index)
        return self.octagon_atoms[key]


def _refine(
    state: Octagon, cond: BoolExpr, assume_true: bool, memo: _OctagonMemo
) -> Optional[Octagon]:
    """Refine a *closed* state assuming ``cond`` is true (or false)."""
    disjuncts = memo.disjuncts(cond, assume_true)
    if not disjuncts:
        return None  # condition is constant-false: branch unreachable
    refined: List[Octagon] = []
    for conj in disjuncts:
        current = state.copy()
        for atom in conj:
            _apply_atom(current, memo.octagon_atom(atom, state.index))
        closed = current.close()
        if closed is not None:
            refined.append(closed)
    if not refined:
        return None
    out = refined[0]
    for other in refined[1:]:
        out = out.join(other)
    return out


def _edge_states(
    label,
    state: Octagon,
    rvar_bounds: Mapping[str, Tuple[float, float]],
    memo: _OctagonMemo,
) -> List[Tuple[int, Optional[Octagon]]]:
    """The abstract states flowing out of ``label`` (input closed)."""
    if isinstance(label, AssignLabel):
        return [(label.succ, _assign(state, label.var, label.expr, rvar_bounds))]
    if isinstance(label, BranchLabel):
        return [
            (label.succ_true, _refine(state, label.cond, True, memo)),
            (label.succ_false, _refine(state, label.cond, False, memo)),
        ]
    if isinstance(label, (ProbLabel, NondetLabel)):
        return [(label.succ_then, state), (label.succ_else, state)]
    if isinstance(label, TickLabel):
        return [(label.succ, state)]
    return []  # terminal


# ---------------------------------------------------------------------------
# The analysis
# ---------------------------------------------------------------------------


@dataclass
class OctagonAnalysis:
    """The fixpoint of one octagon analysis, plus rule/Gamma queries.

    ``states`` maps every label id to its *closed* octagon or ``None``
    for labels the analysis proved unreachable; the query surface
    mirrors :class:`~repro.check.interp.AbstractAnalysis`.
    """

    cfg: CFG
    init: Dict[str, float]
    entry_state: Octagon
    states: Dict[int, Optional[Octagon]]
    rvar_bounds: Dict[str, Tuple[float, float]]
    _memo: _OctagonMemo = field(repr=False, default_factory=_OctagonMemo)

    def state(self, label_id: int) -> Optional[Octagon]:
        return self.states.get(label_id)

    def reachable(self, label_id: int) -> bool:
        """False only when the label is *provably* unreachable."""
        return self.states.get(label_id) is not None

    def contains(self, label_id: int, valuation: Mapping[str, float], tol: float = 1e-9) -> bool:
        """Is the concrete ``valuation`` inside the label's octagon?

        The soundness property (mirroring the interval analysis): every
        concretely reachable state must satisfy this; an unreachable
        label contains nothing.
        """
        state = self.states.get(label_id)
        if state is None:
            return False
        return state.contains(valuation, tol)

    def eval_poly(self, label_id: int, poly: Polynomial) -> Optional[Interval]:
        """Bounds of ``poly`` over the label's octagon.

        Exact (DBM entries) for linear polynomials over one variable or
        two variables with equal-magnitude coefficients; any other shape
        falls back to interval evaluation over the box projection —
        still sound, since the box contains the octagon.
        """
        state = self.states.get(label_id)
        if state is None:
            return None
        if poly.is_linear():
            parts = _linear_parts(poly, self.rvar_bounds, state.index)
            if parts is not None:
                coeffs, g_lo, g_hi = parts
                live = {v: c for v, c in coeffs.items() if c != 0.0}
                if len(live) == 1:
                    ((var, a),) = live.items()
                    scaled = state.interval_of(var).scale(a)
                    return Interval(scaled.lo + g_lo, scaled.hi + g_hi)
                if len(live) == 2:
                    (va, a1), (vb, a2) = sorted(live.items())
                    if abs(a1) == abs(a2):
                        # Bounds of the unit form (+-va +-vb), then scale
                        # by the common positive magnitude and shift by g.
                        s = abs(a1)
                        if a1 > 0 and a2 > 0:
                            lo, hi = state.sum_bounds(va, vb)
                        elif a1 > 0:
                            lo, hi = state.diff_bounds(va, vb)
                        elif a2 > 0:
                            lo, hi = state.diff_bounds(vb, va)
                        else:
                            sum_lo, sum_hi = state.sum_bounds(va, vb)
                            lo, hi = -sum_hi, -sum_lo
                        return Interval(s * lo + g_lo, s * hi + g_hi)
        return _eval_poly(poly, state.box(), self.rvar_bounds)

    def constraints_at(self, label_id: int) -> Optional[List[Polynomial]]:
        """The label's octagon as canonical ``p >= 0`` Gamma rows.

        ``None`` for unreachable labels.  Rows come out deduplicated and
        in a canonical order (unary bounds per variable, then binary
        constraints per sorted variable pair); binary rows entailed by
        the unary bounds alone are suppressed, so annotating with the
        octagon never bloats the Handelman products with redundancies.
        """
        state = self.states.get(label_id)
        if state is None:
            return None
        rows: List[Polynomial] = []
        box = {var: state.interval_of(var) for var in state.vars}
        for var in sorted(state.vars):
            iv = box[var]
            if math.isfinite(iv.lo):
                rows.append(Polynomial.variable(var) - iv.lo)
            if math.isfinite(iv.hi):
                rows.append(Polynomial.constant(iv.hi) - Polynomial.variable(var))
        ordered = sorted(state.vars)
        for a_pos, va in enumerate(ordered):
            for vb in ordered[a_pos + 1 :]:
                pa, pb = Polynomial.variable(va), Polynomial.variable(vb)
                sum_lo, sum_hi = state.sum_bounds(va, vb)
                diff_lo, diff_hi = state.diff_bounds(va, vb)
                if math.isfinite(sum_lo) and sum_lo > box[va].lo + box[vb].lo:
                    rows.append(pa + pb - sum_lo)  # va + vb >= sum_lo
                if math.isfinite(sum_hi) and sum_hi < box[va].hi + box[vb].hi:
                    rows.append(Polynomial.constant(sum_hi) - pa - pb)
                if math.isfinite(diff_lo) and diff_lo > box[va].lo - box[vb].hi:
                    rows.append(pa - pb - diff_lo)  # va - vb >= diff_lo
                if math.isfinite(diff_hi) and diff_hi < box[va].hi - box[vb].lo:
                    rows.append(Polynomial.constant(diff_hi) - pa + pb)
        return rows


def analyze_cfg_octagon(
    cfg: CFG,
    init: Mapping[str, float],
    widen_after: int = 3,
    narrow_passes: int = 3,
    max_iterations: int = 10_000,
) -> OctagonAnalysis:
    """Run the octagon analysis from the initial valuation ``init``.

    Variables not mentioned by ``init`` start at 0 (matching the
    interpreter).  Defaults and loop structure mirror
    :func:`repro.check.interp.analyze_cfg` entry for entry.
    """
    rvar_bounds = {name: dist.support_bounds() for name, dist in cfg.rvars.items()}
    memo = _OctagonMemo()
    variables = tuple(sorted(cfg.pvars))
    entry_state = Octagon.from_point(variables, init)

    states: Dict[int, Optional[Octagon]] = {label.id: None for label in cfg}
    visit_counts: Dict[int, int] = {label.id: 0 for label in cfg}
    states[cfg.entry] = entry_state

    worklist: List[int] = [cfg.entry]
    iterations = 0
    while worklist and iterations < max_iterations:
        iterations += 1
        label_id = worklist.pop(0)
        state = states[label_id]
        if state is None:
            continue
        closed = state.close()
        if closed is None:
            continue
        label = cfg.labels[label_id]

        for succ, new_state in _edge_states(label, closed, rvar_bounds, memo):
            if new_state is None:
                continue
            old = states[succ]
            merged = new_state if old is None else old.join(new_state)
            if old is not None and visit_counts[succ] >= widen_after:
                merged = old.widen(merged)
            if old is None or not old.equals(merged):
                states[succ] = merged
                visit_counts[succ] += 1
                if succ not in worklist:
                    worklist.append(succ)

    # Descending (narrowing) passes, mirroring the interval engine: a
    # refinement travels one edge per pass, so the cap scales with the
    # CFG and iteration stops early once the states stabilise.
    max_narrow = narrow_passes * max(1, len(cfg.labels)) if narrow_passes else 0
    for _ in range(max_narrow):
        inflow: Dict[int, Optional[Octagon]] = {label.id: None for label in cfg}
        inflow[cfg.entry] = entry_state
        for label_id, state in states.items():
            if state is None:
                continue
            closed = state.close()
            if closed is None:
                continue
            for succ, new_state in _edge_states(cfg.labels[label_id], closed, rvar_bounds, memo):
                if new_state is None:
                    continue
                old = inflow[succ]
                inflow[succ] = new_state if old is None else old.join(new_state)
        stable = all(
            (states[label_id] is None) == (inflow[label_id] is None)
            and (states[label_id] is None or states[label_id].equals(inflow[label_id]))
            for label_id in states
        )
        states = inflow
        if stable:
            break

    final: Dict[int, Optional[Octagon]] = {}
    for label_id, state in states.items():
        final[label_id] = None if state is None else state.close()

    return OctagonAnalysis(
        cfg=cfg,
        init={var: float(value) for var, value in init.items()},
        entry_state=entry_state,
        states=final,
        rvar_bounds=rvar_bounds,
        _memo=memo,
    )
