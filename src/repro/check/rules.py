"""The rule-driven lint pass: abstract states in, diagnostics out.

Each rule inspects the program/CFG and the interval fixpoint of
:mod:`repro.check.interp` and emits :class:`Diagnostic` records with
stable ``REP0xx`` codes.  Rules are deliberately *proof-based* where
they claim dead code or unsound invariants: "unreachable", "edge never
taken" and "invariant excludes reachable states" all rest on the
over-approximating abstract semantics, so a finding is a theorem about
the program, not a heuristic — the registry benchmarks lint clean under
``--strict`` and the seeded-defect corpus pins each code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Set

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from .octagon import OctagonAnalysis

from ..invariants.annotations import InvariantMap
from ..semantics.cfg import (
    CFG,
    AssignLabel,
    BranchLabel,
    ProbLabel,
    TerminalLabel,
    TickLabel,
    _assign_ids,
)
from ..syntax.ast import Assign, If, Tick, While
from .diagnostics import Diagnostic, sort_diagnostics
from .interp import AbstractAnalysis, _eval_poly

__all__ = ["run_rules"]

#: Interval-emptiness tolerance: a constraint whose supremum over the
#: abstract box is below ``-_TOL`` provably excludes the whole box.
_TOL = 1e-9


def _where(cfg: CFG, label_id: Optional[int]) -> Dict[str, Optional[int]]:
    """Location kwargs for a diagnostic anchored at a CFG label."""
    pos = cfg.positions.get(label_id) if label_id is not None else None
    return {
        "label": label_id,
        "line": pos[0] if pos else None,
        "column": pos[1] if pos else None,
    }


def _stmt_label_ids(cfg: CFG) -> Dict[int, int]:
    """``id(stmt) -> label id`` for the CFG's own program.

    Re-runs the deterministic numbering pass of :func:`build_cfg`, so
    AST-level rules (e.g. the no-assignment-loop check) can anchor
    findings at the exact label the statement compiled to.
    """
    counter = [1]
    ids: Dict[int, int] = {}
    _assign_ids(cfg.program.body, counter, ids)
    return ids


def _full_init(cfg: CFG, init: Mapping[str, float]) -> Dict[str, float]:
    """The concrete entry valuation (unset variables default to 0)."""
    return {var: float(init.get(var, 0.0)) for var in cfg.pvars}


# ---------------------------------------------------------------------------
# Individual rules
# ---------------------------------------------------------------------------


def _rule_init_vars(cfg: CFG, init: Mapping[str, float], out: List[Diagnostic]) -> None:
    """REP001: initial valuation references undeclared variables."""
    unknown = sorted(set(init) - set(cfg.pvars))
    if unknown:
        out.append(
            Diagnostic.of(
                "REP001",
                f"initial valuation mentions undeclared variables: {unknown} "
                f"(program variables: {sorted(cfg.pvars)})",
            )
        )


def _rule_uninitialized_reads(
    cfg: CFG, init: Mapping[str, float], out: List[Diagnostic]
) -> None:
    """REP002: variable read before assignment with no initial value.

    A forward must-assigned dataflow: at each label, the set of
    variables assigned on *every* path from entry.  Reading a variable
    outside that set — and outside the initial valuation — silently
    uses the implicit default 0.
    """
    init_vars = set(init) & set(cfg.pvars)
    assigned: Dict[int, Optional[Set[str]]] = {label.id: None for label in cfg}
    assigned[cfg.entry] = set(init_vars)
    worklist = [cfg.entry]
    while worklist:
        label_id = worklist.pop(0)
        label = cfg.labels[label_id]
        outgoing = set(assigned[label_id])
        if isinstance(label, AssignLabel):
            outgoing.add(label.var)
        for succ in label.successors():
            old = assigned[succ]
            new = set(outgoing) if old is None else (old & outgoing)
            if old is None or new != old:
                assigned[succ] = new
                worklist.append(succ)

    pvars = set(cfg.pvars)
    reported: Set[str] = set()
    for label in cfg:
        have = assigned.get(label.id)
        if have is None:  # structurally unreachable from entry
            continue
        if isinstance(label, AssignLabel):
            reads = label.expr.variables() & pvars
        elif isinstance(label, BranchLabel):
            reads = label.cond.variables() & pvars
        elif isinstance(label, TickLabel):
            reads = label.cost.variables() & pvars
        else:
            continue
        for var in sorted(reads):
            if var not in have and var not in reported:
                reported.add(var)
                out.append(
                    Diagnostic.of(
                        "REP002",
                        f"variable {var!r} is read before any assignment and has no "
                        "initial value; it silently defaults to 0",
                        **_where(cfg, label.id),
                    )
                )


def _rule_unreachable(cfg: CFG, analysis: AbstractAnalysis, out: List[Diagnostic]) -> None:
    """REP003: provably unreachable statements.

    Only boundary labels are reported — the first dead label after a
    reachable predecessor — so one dead branch yields one finding, not
    one per statement it contains.
    """
    for label in cfg:
        if isinstance(label, TerminalLabel) or analysis.reachable(label.id):
            continue
        preds = cfg.predecessors(label.id)
        if preds and not any(analysis.reachable(p) for p in preds):
            continue  # interior of a dead region; the boundary is reported
        out.append(
            Diagnostic.of(
                "REP003",
                f"unreachable statement: {label.describe()}",
                **_where(cfg, label.id),
            )
        )


def _rule_dead_branches(cfg: CFG, analysis: AbstractAnalysis, out: List[Diagnostic]) -> None:
    """REP004: branch edges that are provably never taken."""
    for label in cfg:
        if not isinstance(label, BranchLabel) or not analysis.reachable(label.id):
            continue
        true_ok, false_ok = analysis.branch_feasibility(label)
        if not true_ok:
            message = (
                f"loop body is never entered: guard '{label.cond}' is provably false"
                if label.is_loop_head
                else f"then-branch is never taken: condition '{label.cond}' is provably false"
            )
            out.append(Diagnostic.of("REP004", message, **_where(cfg, label.id)))
        if not false_ok:
            message = (
                f"loop guard '{label.cond}' provably never becomes false"
                if label.is_loop_head
                else f"else-branch is never taken: condition '{label.cond}' provably holds"
            )
            out.append(Diagnostic.of("REP004", message, **_where(cfg, label.id)))


def _rule_dead_ticks(cfg: CFG, analysis: AbstractAnalysis, out: List[Diagnostic]) -> None:
    """REP005: tick whose cost is provably zero at the tick site."""
    for label in cfg.tick_labels():
        value = analysis.eval_poly(label.id, label.cost)
        if value is not None and value.lo == 0.0 and value.hi == 0.0:
            out.append(
                Diagnostic.of(
                    "REP005",
                    f"tick({label.cost}) accrues provably zero cost",
                    **_where(cfg, label.id),
                )
            )


def _rule_unbounded_support(cfg: CFG, out: List[Diagnostic]) -> None:
    """REP006: sampling variables with unbounded support.

    Tail (concentration) analysis needs an almost-sure step-difference
    bound, and the bounded-update side condition of Theorem 6.10 needs
    finite support; both are statically impossible here, so
    ``analyze(tails=True)`` will degrade to a warning.
    """
    used = set()
    for label in cfg:
        if isinstance(label, AssignLabel):
            used |= label.expr.variables()
        elif isinstance(label, TickLabel):
            used |= label.cost.variables()
    for name in sorted(cfg.rvars):
        dist = cfg.rvars[name]
        if name not in used:
            continue  # dead sampling variable: REP009's business
        if not dist.is_bounded():
            lo, hi = dist.support_bounds()
            out.append(
                Diagnostic.of(
                    "REP006",
                    f"sampling variable {name!r} ~ {dist!r} has unbounded support "
                    f"[{lo:g}, {hi:g}]; tail bounds and the bounded-update side "
                    "condition are unavailable",
                )
            )


def _rule_nondet_cap(cfg: CFG, nondet_cap: int, out: List[Diagnostic]) -> None:
    """REP007: nondet label count exceeds the PLCS enumeration cap.

    Pre-reports (from the static label count, before any template or LP
    work) what synthesis would only discover after assembly: lower-bound
    policy enumeration falls back to the all-then policy.
    """
    count = len(cfg.nondet_labels())
    if count > nondet_cap:
        out.append(
            Diagnostic.of(
                "REP007",
                f"{count} nondeterministic labels exceed the PLCS policy enumeration "
                f"cap of {nondet_cap}; lower-bound synthesis will fall back to the "
                "all-then policy and may be suboptimal",
            )
        )


def _rule_static_loops(
    cfg: CFG, analysis: AbstractAnalysis, out: List[Diagnostic]
) -> None:
    """REP008: a loop whose body changes no variable, with a guard that
    can hold — once entered, the state never changes and the loop never
    exits (divergence, infinite expected cost if it ticks)."""
    ids = _stmt_label_ids(cfg)
    for stmt in cfg.program.statements():
        if not isinstance(stmt, While):
            continue
        body_assigns = any(
            isinstance(child, Assign)
            for child in _subtree(stmt.body)
        )
        if body_assigns:
            continue
        label_id = ids.get(id(stmt))
        if label_id is None or not analysis.reachable(label_id):
            continue
        label = cfg.labels[label_id]
        true_ok, _ = analysis.branch_feasibility(label)
        if true_ok:
            out.append(
                Diagnostic.of(
                    "REP008",
                    f"loop body assigns no variable, so guard '{stmt.cond}' can never "
                    "change once it holds: the loop diverges",
                    **_where(cfg, label_id),
                )
            )


def _subtree(stmt) -> List:
    stack, seen = [stmt], []
    while stack:
        node = stack.pop()
        seen.append(node)
        stack.extend(node.children())
    return seen


def _rule_unused_vars(cfg: CFG, out: List[Diagnostic]) -> None:
    """REP009: declared variables the program never mentions."""
    used: Set[str] = set()
    for stmt in cfg.program.statements():
        if isinstance(stmt, Assign):
            used.add(stmt.var)
            used |= stmt.expr.variables()
        elif isinstance(stmt, Tick):
            used |= stmt.cost.variables()
        elif isinstance(stmt, (While, If)):
            used |= stmt.cond.variables()
    for var in cfg.pvars:
        if var not in used:
            out.append(Diagnostic.of("REP009", f"program variable {var!r} is never used"))
    for var in sorted(cfg.rvars):
        if var not in used:
            out.append(Diagnostic.of("REP009", f"sampling variable {var!r} is never used"))


def _rule_invariants(
    cfg: CFG,
    analysis: AbstractAnalysis,
    init: Mapping[str, float],
    invariants: Optional[InvariantMap],
    out: List[Diagnostic],
) -> None:
    """REP010: user-supplied invariants that exclude reachable states.

    Two sound refutations, both LP-free:

    * the concrete initial valuation reaches the entry label, so an
      entry invariant that excludes it is unsound outright;
    * at any label, an invariant region that is provably disjoint from
      the abstract box excludes every state the (sound) interval
      analysis admits there — if the label is reachable at all, the
      invariant's Gamma is wrong and will poison synthesis.
    """
    if invariants is None:
        return
    point = _full_init(cfg, init)
    for label_id, region in sorted(invariants.items()):
        if label_id == cfg.entry and not region.contains(point):
            out.append(
                Diagnostic.of(
                    "REP010",
                    f"invariant at entry label {label_id} excludes the initial "
                    f"valuation {point}: the annotation is unsound",
                    **_where(cfg, label_id),
                )
            )
            continue
        state = analysis.state(label_id)
        if state is None:
            continue  # unreachable label: any invariant is vacuously fine
        all_empty = True
        for polyhedron in region.disjuncts:
            empty = False
            for constraint in polyhedron.constraints:
                value = _eval_poly(constraint, state, analysis.rvar_bounds)
                if value.hi < -_TOL:
                    empty = True
                    break
            if not empty:
                all_empty = False
                break
        if all_empty and region.disjuncts:
            out.append(
                Diagnostic.of(
                    "REP010",
                    f"invariant at label {label_id} excludes every reachable state "
                    "(disjoint from the interval fixpoint): the annotation is unsound",
                    **_where(cfg, label_id),
                )
            )


def _rule_octagon_invariants(
    cfg: CFG,
    octagon: "OctagonAnalysis",
    init: Mapping[str, float],
    invariants: Optional[InvariantMap],
    out: List[Diagnostic],
) -> None:
    """REP013/REP014: user invariants vs. the inferred relational octagon.

    Only runs when the analysis was requested with
    ``invariant_domain="octagon"``.  Two findings:

    * REP013 (warning): every constraint of a (single-polyhedron) user
      invariant already holds throughout the label's octagon — the
      annotation is entailed by what the analysis infers on its own and
      can be dropped;
    * REP014 (error under strict): some user constraint is provably
      negative over the whole reachable octagon, i.e. the annotation
      contradicts every state the relational analysis admits.  This
      generalizes REP010 to relational facts (e.g. ``x - y >= 5`` when
      the octagon knows ``x <= y``); labels REP010 already refuted via
      the interval box are skipped so one unsound annotation yields one
      error.
    """
    if invariants is None:
        return
    point = _full_init(cfg, init)
    rep010_labels = {d.label for d in out if d.code == "REP010"}
    for label_id, region in sorted(invariants.items()):
        if label_id in rep010_labels:
            continue
        if label_id == cfg.entry and not region.contains(point):
            continue  # REP010's entry check already covers this shape
        state = octagon.state(label_id)
        if state is None:
            continue  # unreachable label: any invariant is vacuously fine
        all_empty = bool(region.disjuncts)
        for polyhedron in region.disjuncts:
            empty = False
            for constraint in polyhedron.constraints:
                value = octagon.eval_poly(label_id, constraint)
                if value is not None and value.hi < -_TOL:
                    empty = True
                    break
            if not empty:
                all_empty = False
                break
        if all_empty:
            out.append(
                Diagnostic.of(
                    "REP014",
                    f"invariant at label {label_id} excludes every reachable state "
                    "(disjoint from the octagon fixpoint): the annotation is unsound",
                    **_where(cfg, label_id),
                )
            )
            continue
        if len(region.disjuncts) != 1:
            continue  # entailment of a union is not a per-row check
        (polyhedron,) = region.disjuncts
        entailed = bool(polyhedron.constraints)
        for constraint in polyhedron.constraints:
            value = octagon.eval_poly(label_id, constraint)
            if value is None or value.lo < -_TOL:
                entailed = False
                break
        if entailed:
            out.append(
                Diagnostic.of(
                    "REP013",
                    f"invariant at label {label_id} is entailed by the inferred "
                    "octagon invariant; the annotation can be dropped",
                    **_where(cfg, label_id),
                )
            )


def _rule_degenerate_prob(cfg: CFG, out: List[Diagnostic]) -> None:
    """REP011: probabilistic branches taken with probability 0 or 1."""
    for label in cfg:
        if isinstance(label, ProbLabel) and label.prob in (0.0, 1.0):
            side = "else" if label.prob == 0.0 else "then"
            out.append(
                Diagnostic.of(
                    "REP011",
                    f"probabilistic branch with p={label.prob:g} always takes the "
                    f"{side}-branch; use a plain statement or 'if *' instead",
                    **_where(cfg, label.id),
                )
            )


def _rule_entry_guard(cfg: CFG, init: Mapping[str, float], out: List[Diagnostic]) -> None:
    """REP012: the program entry is a loop whose guard is false at the
    initial valuation — the whole program performs no work at ``v*``."""
    entry = cfg.labels[cfg.entry]
    if not isinstance(entry, BranchLabel) or not entry.is_loop_head:
        return
    if not entry.cond.evaluate(_full_init(cfg, init)):
        out.append(
            Diagnostic.of(
                "REP012",
                f"entry loop guard '{entry.cond}' is false at the initial valuation "
                f"{_full_init(cfg, init)}; the program performs no work",
                **_where(cfg, cfg.entry),
            )
        )


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def run_rules(
    cfg: CFG,
    analysis: AbstractAnalysis,
    init: Mapping[str, float],
    invariants: Optional[InvariantMap] = None,
    nondet_cap: Optional[int] = None,
    octagon: Optional["OctagonAnalysis"] = None,
) -> List[Diagnostic]:
    """Run every lint rule; returns diagnostics in reading order.

    ``octagon`` — the relational fixpoint, when the caller analyzed
    with ``invariant_domain="octagon"`` — enables the REP013/REP014
    relational annotation checks; the default interval-only pass is
    byte-identical to previous releases.
    """
    if nondet_cap is None:
        from ..core.synthesis import _MAX_NONDET_ENUMERATION

        nondet_cap = _MAX_NONDET_ENUMERATION
    out: List[Diagnostic] = []
    _rule_init_vars(cfg, init, out)
    _rule_uninitialized_reads(cfg, init, out)
    _rule_unreachable(cfg, analysis, out)
    _rule_dead_branches(cfg, analysis, out)
    _rule_dead_ticks(cfg, analysis, out)
    _rule_unbounded_support(cfg, out)
    _rule_nondet_cap(cfg, nondet_cap, out)
    _rule_static_loops(cfg, analysis, out)
    _rule_unused_vars(cfg, out)
    _rule_invariants(cfg, analysis, init, invariants, out)
    if octagon is not None:
        _rule_octagon_invariants(cfg, octagon, init, invariants, out)
    _rule_degenerate_prob(cfg, out)
    _rule_entry_guard(cfg, init, out)
    return sort_diagnostics(out)
