"""Static analysis front gate: interval abstract interpretation + lint.

``repro.check`` catches malformed programs, dead code and unsound
invariants *before* any Handelman/LP work: the synthesis pipeline is
only as sound as the invariants fed into it, and a bad input otherwise
surfaces as a deep ``SynthesisError`` or an infeasible LP minutes later.

Layout:

* :mod:`~repro.check.interp` — the forward interval abstract
  interpreter over the probabilistic CFG (also the engine behind
  :func:`repro.invariants.generate_interval_invariants`);
* :mod:`~repro.check.octagon` — the relational octagon interpreter
  (``+-x +-y <= c`` as a closed difference-bound matrix; the engine
  behind :func:`repro.invariants.generate_octagon_invariants`);
* :mod:`~repro.check.diagnostics` — ``Diagnostic`` records with stable
  ``REP0xx`` codes (catalogued in ``docs/checks.md``);
* :mod:`~repro.check.rules` — the lint rules;
* :mod:`~repro.check.runner` — entry points for programs, benchmarks
  and batch requests.

Import-order note: ``repro.invariants.generator`` imports
:mod:`.interp`, so this package must keep :mod:`.interp` importable
before :mod:`.rules` (which uses ``repro.invariants`` submodules) and
must not import the analysis stack at module level (see ``runner``).
"""

from .diagnostics import CODES, SEVERITIES, CheckResult, Diagnostic, sort_diagnostics
from .interp import AbstractAnalysis, Interval, analyze_cfg
from .octagon import Octagon, OctagonAnalysis, analyze_cfg_octagon
from .rules import run_rules
from .runner import check_benchmark, check_cfg, check_program, check_request

__all__ = [
    "AbstractAnalysis",
    "CODES",
    "CheckResult",
    "Diagnostic",
    "Interval",
    "Octagon",
    "OctagonAnalysis",
    "SEVERITIES",
    "analyze_cfg",
    "analyze_cfg_octagon",
    "check_benchmark",
    "check_cfg",
    "check_program",
    "check_request",
    "run_rules",
    "sort_diagnostics",
]
