"""Entry points of the lint pass: programs, benchmarks and batch requests.

The heavy imports (:mod:`repro.programs`, :mod:`repro.batch.engine`) are
deferred into the functions that need them: ``repro.check`` sits *below*
the analysis stack in the import graph (``repro.invariants.generator``
imports :mod:`repro.check.interp`), so importing them at module level
would create a cycle through partially initialised packages.

Every entry point takes ``invariant_domain``: the default
``"interval"`` pass is byte-identical to previous releases, while
``"octagon"`` additionally runs the relational fixpoint and the
REP013/REP014 annotation checks against it.
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from ..invariants.annotations import InvariantMap
from ..semantics.cfg import CFG, build_cfg
from ..syntax.ast import Program
from ..syntax.parser import parse_program
from .diagnostics import CheckResult
from .interp import analyze_cfg
from .octagon import analyze_cfg_octagon
from .rules import run_rules

__all__ = ["check_benchmark", "check_cfg", "check_program", "check_request"]


def _coerce_invariants(cfg: CFG, invariants) -> Optional[InvariantMap]:
    if invariants is None or isinstance(invariants, InvariantMap):
        return invariants
    if isinstance(invariants, Mapping):
        return InvariantMap.from_strings(cfg, invariants)
    raise TypeError(
        f"invariants must be an InvariantMap or a label->condition mapping, "
        f"got {type(invariants).__name__}"
    )


def check_cfg(
    cfg: CFG,
    init: Optional[Mapping[str, float]] = None,
    invariants: Optional[InvariantMap] = None,
    nondet_cap: Optional[int] = None,
    invariant_domain: str = "interval",
) -> CheckResult:
    """Lint a CFG: run the interval fixpoint, then every rule."""
    from ..invariants.generator import INVARIANT_DOMAINS

    if invariant_domain not in INVARIANT_DOMAINS:
        raise ValueError(
            f"invariant_domain must be one of {INVARIANT_DOMAINS}, got {invariant_domain!r}"
        )
    init = dict(init or {})
    pvar_init = {k: v for k, v in init.items() if k in cfg.pvars}
    analysis = analyze_cfg(cfg, pvar_init)
    octagon = analyze_cfg_octagon(cfg, pvar_init) if invariant_domain == "octagon" else None
    diagnostics = run_rules(
        cfg, analysis, init, invariants, nondet_cap=nondet_cap, octagon=octagon
    )
    return CheckResult(diagnostics)


def check_program(
    program: Union[str, Program],
    init: Optional[Mapping[str, float]] = None,
    invariants=None,
    cfg: Optional[CFG] = None,
    nondet_cap: Optional[int] = None,
    invariant_domain: str = "interval",
) -> CheckResult:
    """Lint a program (surface source or AST).

    ``invariants`` may be an :class:`InvariantMap` or a mapping from
    label id to a condition string / BoolExpr (``# @invariant`` form).
    Parse errors propagate as :class:`~repro.errors.ParseError` — a
    program that does not parse is *malformed*, not a lint finding.
    """
    if isinstance(program, str):
        program = parse_program(program)
    if cfg is None:
        cfg = build_cfg(program)
    return check_cfg(
        cfg,
        init,
        _coerce_invariants(cfg, invariants),
        nondet_cap=nondet_cap,
        invariant_domain=invariant_domain,
    )


def check_benchmark(
    bench,
    init: Optional[Mapping[str, float]] = None,
    invariant_domain: str = "interval",
) -> CheckResult:
    """Lint a registry benchmark with its declared invariants and init."""
    anchor = dict(init) if init is not None else dict(bench.init)
    return check_program(
        bench.program,
        init=anchor,
        invariants=bench.invariant_map(anchor),
        cfg=bench.cfg,
        invariant_domain=invariant_domain,
    )


def check_request(request) -> CheckResult:
    """Lint one batch :class:`~repro.batch.spec.AnalysisRequest`.

    Resolves the benchmark/source exactly like the batch engine does
    (including ``nondet_prob`` variants), so a clean lint here means the
    engine will analyse the same CFG the lint saw.
    """
    from ..batch.engine import _resolve_benchmark

    request.validate()
    bench = _resolve_benchmark(request)
    init = dict(request.init) if request.init is not None else dict(bench.init)
    return check_benchmark(
        bench, init=init, invariant_domain=getattr(request, "invariant_domain", "interval")
    )
