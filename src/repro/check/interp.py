"""Forward interval abstract interpretation over the probabilistic CFG.

This is the shared abstract-interpretation core of the reproduction:
the automatic invariant generator (:mod:`repro.invariants.generator`)
and the lint pass (:mod:`repro.check.rules`) both run it.  It computes
one interval per program variable at every CFG label:

* transfer functions follow the label kinds — assignments evaluate
  their polynomial over intervals (sampling variables contribute their
  distribution's support bounds), branch guards refine the intervals of
  variables they bound, probabilistic and nondeterministic branches
  propagate to both successors;
* a FIFO worklist with widening at frequently-revisited labels (loop
  heads among them) guarantees termination, and a few descending
  (narrowing) passes recover the guard-derived bounds widening
  destroyed;
* the result is sound: every concretely reachable state at a label lies
  inside that label's abstract box (the property test in
  ``tests/check`` exercises exactly this containment).

Beyond the per-label states, :class:`AbstractAnalysis` answers the
queries the lint rules need: reachability, branch-edge feasibility and
interval evaluation of polynomials at a label.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..polynomials import Monomial, Polynomial
from ..semantics.cfg import (
    CFG,
    AssignLabel,
    BranchLabel,
    NondetLabel,
    ProbLabel,
    TickLabel,
)
from ..syntax.ast import Atom, BoolExpr

__all__ = ["AbstractAnalysis", "Interval", "State", "analyze_cfg"]

_INF = math.inf


class Interval:
    """A closed interval ``[lo, hi]`` (possibly unbounded).

    A plain ``__slots__`` class rather than a dataclass: the worklist
    iteration allocates intervals in its innermost loops and the frozen
    dataclass ``object.__setattr__`` construction showed up in profiles.
    Instances are treated as immutable by convention.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: float = -_INF, hi: float = _INF):
        if lo > hi:
            raise ValueError(f"empty interval [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi

    @classmethod
    def top(cls) -> "Interval":
        return _TOP

    @classmethod
    def point(cls, value: float) -> "Interval":
        return cls(value, value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def is_top(self) -> bool:
        return self.lo == -_INF and self.hi == _INF

    # -- lattice operations ------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def widen(self, newer: "Interval") -> "Interval":
        """Standard interval widening: unstable bounds jump to infinity."""
        lo = self.lo if newer.lo >= self.lo else -_INF
        hi = self.hi if newer.hi <= self.hi else _INF
        return Interval(lo, hi)

    def meet(self, other: "Interval") -> Optional["Interval"]:
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def __le__(self, other: "Interval") -> bool:
        return self.lo >= other.lo and self.hi <= other.hi

    def contains(self, value: float, tol: float = 1e-9) -> bool:
        return self.lo - tol <= value <= self.hi + tol

    # -- arithmetic ----------------------------------------------------------

    def add(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def scale(self, factor: float) -> "Interval":
        points = [factor * self.lo, factor * self.hi]
        points = [0.0 if math.isnan(p) else p for p in points]
        return Interval(min(points), max(points))

    def mul(self, other: "Interval") -> "Interval":
        products = []
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                p = a * b
                products.append(0.0 if math.isnan(p) else p)
        return Interval(min(products), max(products))

    def power(self, k: int) -> "Interval":
        result = Interval.point(1.0)
        for _ in range(k):
            result = result.mul(self)
        return result

    def __repr__(self) -> str:
        return f"[{self.lo:g}, {self.hi:g}]"


_TOP = Interval()

State = Dict[str, Interval]


def _mul_bounds(alo: float, ahi: float, blo: float, bhi: float) -> Tuple[float, float]:
    """Interval product on raw floats (NaN from ``0 * inf`` maps to 0)."""
    lo = hi = None
    for a in (alo, ahi):
        for b in (blo, bhi):
            p = a * b
            if p != p:  # NaN
                p = 0.0
            if lo is None or p < lo:
                lo = p
            if hi is None or p > hi:
                hi = p
    return lo, hi


def _eval_poly(
    poly: Polynomial, state: State, rvar_bounds: Mapping[str, Tuple[float, float]]
) -> Interval:
    """Interval evaluation of a (numeric) polynomial.

    Works on raw float bounds instead of allocating an ``Interval`` per
    intermediate — this is the hottest spot of the worklist iteration.
    """
    total_lo = total_hi = 0.0
    for mono, coeff in poly.terms():
        term_lo = term_hi = 1.0
        for var, exp in mono:
            if var in rvar_bounds:
                base_lo, base_hi = rvar_bounds[var]
            else:
                interval = state.get(var)
                base_lo, base_hi = (
                    (interval.lo, interval.hi) if interval is not None else (-_INF, _INF)
                )
            pow_lo, pow_hi = 1.0, 1.0
            for _ in range(exp):
                pow_lo, pow_hi = _mul_bounds(pow_lo, pow_hi, base_lo, base_hi)
            term_lo, term_hi = _mul_bounds(term_lo, term_hi, pow_lo, pow_hi)
        c = float(coeff)
        scaled_lo, scaled_hi = _mul_bounds(term_lo, term_hi, c, c)
        total_lo += scaled_lo
        total_hi += scaled_hi
    return Interval(total_lo, total_hi)


def _linear_bound(atom: Atom) -> Optional[Tuple[str, float, float]]:
    """Decompose ``a*x + b >= 0`` into ``(x, a, b)`` if single-variable linear."""
    poly = atom.relaxed().poly
    if not poly.is_linear():
        return None
    variables = poly.variables()
    if len(variables) != 1:
        return None
    (var,) = variables
    a = float(poly.coeff(Monomial.variable(var)))
    b = float(poly.constant_term())
    if a == 0.0:
        return None
    return var, a, b


class _RefineMemo:
    """Per-analysis cache of guard decompositions.

    The worklist revisits the same branch conditions dozens of times;
    DNF conversion and the per-atom linear-bound decomposition are pure
    functions of AST nodes that stay alive (referenced by the CFG) for
    the whole analysis, so they are memoised by node identity here.
    """

    __slots__ = ("dnf", "bounds")

    def __init__(self):
        self.dnf: Dict[Tuple[int, bool], list] = {}
        self.bounds: Dict[int, Optional[Tuple[str, float, float]]] = {}

    def disjuncts(self, cond: BoolExpr, assume_true: bool) -> list:
        key = (id(cond), assume_true)
        cached = self.dnf.get(key)
        if cached is None:
            cached = cond.to_dnf() if assume_true else cond.negate().to_dnf()
            self.dnf[key] = cached
        return cached

    def linear_bound(self, atom: Atom) -> Optional[Tuple[str, float, float]]:
        key = id(atom)
        if key not in self.bounds:
            self.bounds[key] = _linear_bound(atom)
        return self.bounds[key]


def _refine(
    state: State, cond: BoolExpr, assume_true: bool, memo: _RefineMemo
) -> Optional[State]:
    """Refine intervals assuming ``cond`` is true (or false).

    Only single-variable linear atoms refine; anything else is ignored
    (a sound over-approximation).  Returns ``None`` when the branch is
    provably unreachable.
    """
    disjuncts = memo.disjuncts(cond, assume_true)
    if not disjuncts:
        return None  # condition is constant-false: branch unreachable
    refined_states: List[State] = []
    for conj in disjuncts:
        current: Optional[State] = dict(state)
        for atom in conj:
            decomp = memo.linear_bound(atom)
            if decomp is None or current is None:
                continue
            var, a, b = decomp
            bound = -b / a
            limit = Interval(bound, _INF) if a > 0 else Interval(-_INF, bound)
            met = current.get(var, Interval.top()).meet(limit)
            if met is None:
                current = None
                break
            current[var] = met
        if current is not None:
            refined_states.append(current)
    if not refined_states:
        return None
    out = refined_states[0]
    for other in refined_states[1:]:
        out = _join_states(out, other)
    return out


def _join_states(a: State, b: State) -> State:
    keys = set(a) | set(b)
    return {k: a.get(k, Interval.top()).join(b.get(k, Interval.top())) for k in keys}


def _states_equal(a: Optional[State], b: Optional[State]) -> bool:
    if a is None or b is None:
        return a is b
    keys = set(a) | set(b)
    return all(a.get(k, Interval.top()) == b.get(k, Interval.top()) for k in keys)


def _edge_states(
    label,
    state: State,
    rvar_bounds: Mapping[str, Tuple[float, float]],
    memo: _RefineMemo,
) -> List[Tuple[int, Optional[State]]]:
    """The abstract states flowing out of ``label`` along each edge."""
    if isinstance(label, AssignLabel):
        new_state = dict(state)
        new_state[label.var] = _eval_poly(label.expr, state, rvar_bounds)
        return [(label.succ, new_state)]
    if isinstance(label, BranchLabel):
        return [
            (label.succ_true, _refine(state, label.cond, True, memo)),
            (label.succ_false, _refine(state, label.cond, False, memo)),
        ]
    if isinstance(label, (ProbLabel, NondetLabel)):
        return [(label.succ_then, dict(state)), (label.succ_else, dict(state))]
    if isinstance(label, TickLabel):
        return [(label.succ, dict(state))]
    return []  # terminal


@dataclass
class AbstractAnalysis:
    """The fixpoint of one interval analysis, plus lint-rule queries.

    ``states`` maps every label id to its abstract box (one interval
    per program variable) or ``None`` for labels the analysis proved
    unreachable.  All queries are over-approximating: "unreachable" and
    "infeasible" answers are proofs, "reachable"/"feasible" are not.
    """

    cfg: CFG
    init: Dict[str, float]
    entry_state: State
    states: Dict[int, Optional[State]]
    rvar_bounds: Dict[str, Tuple[float, float]]
    _memo: _RefineMemo = field(repr=False, default_factory=_RefineMemo)

    def state(self, label_id: int) -> Optional[State]:
        return self.states.get(label_id)

    def reachable(self, label_id: int) -> bool:
        """False only when the label is *provably* unreachable."""
        return self.states.get(label_id) is not None

    def branch_feasibility(self, label: BranchLabel) -> Tuple[bool, bool]:
        """(true-edge feasible, false-edge feasible) at ``label``.

        ``False`` is a proof that the edge is never taken from any
        state the abstract fixpoint admits at the label.
        """
        state = self.states.get(label.id)
        if state is None:
            return (False, False)
        return (
            _refine(state, label.cond, True, self._memo) is not None,
            _refine(state, label.cond, False, self._memo) is not None,
        )

    def eval_poly(self, label_id: int, poly: Polynomial) -> Optional[Interval]:
        """Interval value of ``poly`` over the label's abstract box."""
        state = self.states.get(label_id)
        if state is None:
            return None
        return _eval_poly(poly, state, self.rvar_bounds)

    def contains(self, label_id: int, valuation: Mapping[str, float], tol: float = 1e-9) -> bool:
        """Is the concrete ``valuation`` inside the label's box?

        The soundness property: every concretely reachable state must
        satisfy this (the property test drives the interpreter against
        it).  An unreachable label contains nothing.
        """
        state = self.states.get(label_id)
        if state is None:
            return False
        for var, interval in state.items():
            if not interval.contains(float(valuation.get(var, 0.0)), tol):
                return False
        return True


def analyze_cfg(
    cfg: CFG,
    init: Mapping[str, float],
    widen_after: int = 3,
    narrow_passes: int = 3,
    max_iterations: int = 10_000,
) -> AbstractAnalysis:
    """Run the interval analysis from the initial valuation ``init``.

    Variables not mentioned by ``init`` start at 0 (matching the
    interpreter).  The ascending phase uses widening for termination; a
    few descending (narrowing) passes then recover the guard-derived
    bounds that widening destroyed.
    """
    rvar_bounds = {name: dist.support_bounds() for name, dist in cfg.rvars.items()}
    memo = _RefineMemo()
    entry_state: State = {var: Interval.point(float(init.get(var, 0.0))) for var in cfg.pvars}

    states: Dict[int, Optional[State]] = {label.id: None for label in cfg}
    visit_counts: Dict[int, int] = {label.id: 0 for label in cfg}
    states[cfg.entry] = entry_state

    worklist: List[int] = [cfg.entry]
    iterations = 0
    while worklist and iterations < max_iterations:
        iterations += 1
        label_id = worklist.pop(0)
        state = states[label_id]
        if state is None:
            continue
        label = cfg.labels[label_id]

        for succ, new_state in _edge_states(label, state, rvar_bounds, memo):
            if new_state is None:
                continue
            old = states[succ]
            merged = new_state if old is None else _join_states(old, new_state)
            if old is not None and visit_counts[succ] >= widen_after:
                merged = {
                    k: old.get(k, Interval.top()).widen(merged.get(k, Interval.top()))
                    for k in merged
                }
            if not _states_equal(old, merged):
                states[succ] = merged
                visit_counts[succ] += 1
                if succ not in worklist:
                    worklist.append(succ)

    # Descending (narrowing) passes: recompute every label's state from
    # its predecessors' stable states.  Starting from a sound
    # post-fixpoint, each pass stays sound and recovers guard bounds.
    # A refinement travels one edge per pass, so a fixed pass count
    # silently under-narrows loop heads of long loop bodies (the fuzz
    # generator found this as loop-head invariants missing the counter's
    # lower bound); iterate until stable instead, scaling the cap with
    # the CFG so termination stays unconditional.
    max_narrow = narrow_passes * max(1, len(cfg.labels)) if narrow_passes else 0
    for _ in range(max_narrow):
        inflow: Dict[int, Optional[State]] = {label.id: None for label in cfg}
        inflow[cfg.entry] = dict(entry_state)
        for label_id, state in states.items():
            if state is None:
                continue
            for succ, new_state in _edge_states(cfg.labels[label_id], state, rvar_bounds, memo):
                if new_state is None:
                    continue
                old = inflow[succ]
                inflow[succ] = new_state if old is None else _join_states(old, new_state)
        stable = all(
            (states[label_id] is None) == (inflow[label_id] is None)
            and (states[label_id] is None or _states_equal(states[label_id], inflow[label_id]))
            for label_id in states
        )
        states = inflow
        if stable:
            break

    return AbstractAnalysis(
        cfg=cfg,
        init={var: float(value) for var, value in init.items()},
        entry_state=entry_state,
        states=states,
        rvar_bounds=rvar_bounds,
        _memo=memo,
    )
