"""Diagnostic records of the static-analysis lint pass.

Every finding of :mod:`repro.check` is a :class:`Diagnostic` with a
*stable* code (``REP0xx``) so that front ends, CI gates and service
clients can match on findings without parsing prose.  Codes are never
reused or renumbered; retired checks leave a hole.  The full catalog
(with minimal triggering programs) lives in ``docs/checks.md``.

Severities are two-level: ``"error"`` findings make strict mode reject
the program before any LP work (``status="rejected"`` reports), while
``"warning"`` findings are advisory and never block analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

__all__ = ["CODES", "CheckResult", "Diagnostic", "SEVERITIES"]

SEVERITIES = ("error", "warning")

#: code -> (severity, one-line summary).  The single source of truth
#: for which codes exist; ``docs/checks.md`` catalogs them for humans.
CODES: Dict[str, tuple] = {
    "REP001": ("error", "initial valuation references undeclared variables"),
    "REP002": ("warning", "variable read before assignment without an initial value"),
    "REP003": ("warning", "unreachable statement"),
    "REP004": ("warning", "branch edge is provably never taken"),
    "REP005": ("warning", "tick with provably zero cost"),
    "REP006": ("warning", "sampling variable has unbounded support"),
    "REP007": ("warning", "nondeterministic labels exceed the PLCS enumeration cap"),
    "REP008": ("error", "loop body changes no variable while its guard can hold"),
    "REP009": ("warning", "declared variable is never used"),
    "REP010": ("error", "invariant excludes reachable states"),
    "REP011": ("warning", "probabilistic branch with degenerate probability"),
    "REP012": ("warning", "entry loop guard is false at the initial valuation"),
    "REP013": ("warning", "invariant is weaker than the inferred octagon"),
    "REP014": ("error", "invariant contradicts the inferred reachable octagon"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, severity, message and location.

    ``label`` is the CFG label number the finding is anchored to (the
    paper's program-order numbering), ``line``/``column`` the source
    position when the program came from surface text; any of the three
    may be ``None`` for program-level findings (e.g. an ill-formed
    initial valuation).
    """

    code: str
    severity: str
    message: str
    label: Optional[int] = None
    line: Optional[int] = None
    column: Optional[int] = None

    def __post_init__(self):
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}, got {self.severity!r}")

    @classmethod
    def of(cls, code: str, message: str, **where: Any) -> "Diagnostic":
        """Build a diagnostic with the catalog severity for ``code``."""
        return cls(code=code, severity=CODES[code][0], message=message, **where)

    def format(self) -> str:
        """One human-readable line (the CLI output format)."""
        place = ""
        if self.line is not None:
            place = f"{self.line}:{self.column if self.column is not None else 0}: "
        elif self.label is not None:
            place = f"label {self.label}: "
        return f"{place}{self.code} {self.severity}: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "label": self.label,
            "line": self.line,
            "column": self.column,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Diagnostic":
        known = {"code", "severity", "message", "label", "line", "column"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown diagnostic field(s): {sorted(unknown)}")
        return cls(**dict(data))


@dataclass
class CheckResult:
    """The outcome of one lint pass: an ordered list of diagnostics.

    Ordering is deterministic (source position, then label, then code)
    so that reports and golden files are byte-stable.
    """

    diagnostics: List[Diagnostic]

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings permitted)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """No findings at all."""
        return not self.diagnostics

    def codes(self) -> List[str]:
        """Distinct codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [d.to_dict() for d in self.diagnostics]

    def format_lines(self) -> List[str]:
        return [d.format() for d in self.diagnostics]


def sort_diagnostics(diagnostics: List[Diagnostic]) -> List[Diagnostic]:
    """Deterministic reading order: position, then label, then code."""

    def key(d: Diagnostic):
        return (
            d.line if d.line is not None else 10**9,
            d.column if d.column is not None else 10**9,
            d.label if d.label is not None else 10**9,
            d.code,
            d.message,
        )

    return sorted(diagnostics, key=key)
