"""Shared infrastructure for the experiment harness.

Formatting helpers, an ASCII plotter for the Appendix F figures, and the
per-benchmark record types the table modules share.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = [
    "fmt",
    "fmt_poly",
    "render_table",
    "ascii_plot",
    "BoundsRow",
    "add_driver_args",
    "driver_analyzer",
    "driver_cache",
    "table_analyzer",
]


def add_driver_args(parser) -> None:
    """Engine flags every table driver shares (``--jobs``, caching and
    the LP solver backend)."""
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the content-addressed result cache"
    )
    parser.add_argument(
        "--cache-dir", default=None, help="result cache directory (default: $REPRO_CACHE_DIR)"
    )
    parser.add_argument(
        "--solver", default=None, help="LP solver backend (e.g. highs, linprog; default: auto)"
    )


def driver_cache(args):
    """The result cache a driver ``__main__`` should pass to the engine.

    Caching is on by default so a warm re-run of a table short-circuits
    straight to stored bounds; ``--no-cache`` recomputes everything.
    """
    if getattr(args, "no_cache", False):
        return None
    from ..cache import ResultCache

    return ResultCache(getattr(args, "cache_dir", None))


def driver_analyzer(args):
    """The :class:`repro.api.Analyzer` session a driver ``__main__``
    should run its tables on (cache + pool + solver from the CLI)."""
    from ..api import Analyzer

    return Analyzer(
        cache=driver_cache(args),
        jobs=getattr(args, "jobs", 1),
        solver=getattr(args, "solver", None),
    )


@contextmanager
def table_analyzer(analyzer, jobs: int = 1, cache=None):
    """The session a ``build_tableN`` call should use.

    Yields ``analyzer`` untouched when one is passed; otherwise builds
    an ephemeral :class:`repro.api.Analyzer` from the legacy
    ``jobs``/``cache`` arguments and closes it (releasing its worker
    pool) when the table is done.
    """
    if analyzer is not None:
        yield analyzer
        return
    from ..api import Analyzer

    ephemeral = Analyzer(cache=cache, jobs=jobs)
    try:
        yield ephemeral
    finally:
        ephemeral.close()


def fmt(value: Optional[float], digits: int = 4) -> str:
    """Format a number the way the paper's tables do (short, scientific
    for large magnitudes)."""
    if value is None:
        return "-"
    if value == 0:
        return "0"
    if abs(value) >= 1e4 or abs(value) < 1e-3:
        return f"{value:.{digits - 2}e}"
    return f"{value:.{digits}g}"


def fmt_poly(poly, ndigits: int = 5) -> str:
    """Render a bound polynomial compactly."""
    if poly is None:
        return "-"
    return str(poly.round(ndigits))


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Plain-text table with aligned columns."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = []
    sep = "  "
    lines.append(sep.join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append(sep.join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append(sep.join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


@dataclass
class BoundsRow:
    """One benchmark x initial-valuation record."""

    benchmark: str
    init: dict
    upper_value: Optional[float] = None
    upper_str: str = "-"
    upper_time: Optional[float] = None
    lower_value: Optional[float] = None
    lower_str: str = "-"
    lower_time: Optional[float] = None
    sim_mean: Optional[float] = None
    sim_std: Optional[float] = None

    def bracket_ok(self, slack: float = 0.0) -> bool:
        """Does the simulated mean fall between the bounds (with slack)?"""
        if self.sim_mean is None:
            return True
        if self.upper_value is not None and self.sim_mean > self.upper_value + slack:
            return False
        if self.lower_value is not None and self.sim_mean < self.lower_value - slack:
            return False
        return True


def ascii_plot(
    xs: Sequence[float],
    series: Sequence[Sequence[Optional[float]]],
    labels: Sequence[str],
    width: int = 68,
    height: int = 18,
    title: str = "",
) -> str:
    """Minimal ASCII line plot used to regenerate Figures 15-24.

    ``series`` is a list of y-vectors (same length as ``xs``); ``None``
    entries are skipped.  Each series is drawn with its own glyph.
    """
    glyphs = "UO*x+#"
    points = [
        (x, y, glyphs[s % len(glyphs)])
        for s, ys in enumerate(series)
        for x, y in zip(xs, ys)
        if y is not None and math.isfinite(y)
    ]
    if not points:
        return f"{title}\n(no data)"
    xmin, xmax = min(p[0] for p in points), max(p[0] for p in points)
    ymin, ymax = min(p[1] for p in points), max(p[1] for p in points)
    if xmax == xmin:
        xmax = xmin + 1.0
    if ymax == ymin:
        ymax = ymin + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for x, y, glyph in points:
        col = int((x - xmin) / (xmax - xmin) * (width - 1))
        row = int((y - ymin) / (ymax - ymin) * (height - 1))
        grid[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(f"{glyphs[s % len(glyphs)]} = {label}" for s, label in enumerate(labels))
    lines.append(legend)
    lines.append(f"y in [{fmt(ymin)}, {fmt(ymax)}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" x in [{fmt(xmin)}, {fmt(xmax)}]")
    return "\n".join(lines)
