"""Table 2: comparison with Ngo-Carbonneaux-Hoffmann [74].

For each of the fifteen Absynth-style benchmarks this prints

* the upper bound of our reimplemented [74]-style baseline (nonnegative
  potentials; ``n/a`` where the program leaves the [74] fragment),
* the PUCS upper bound and PLCS lower bound of the paper's method,
* the bounds the paper reports, for side-by-side comparison.

Run as ``python -m repro.experiments.table2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..baseline import baseline_upper_bound
from ..errors import SynthesisError, UnsupportedProgramError
from ..programs import TABLE2_BENCHMARKS, Benchmark
from .common import fmt, fmt_poly, render_table

__all__ = ["Table2Row", "build_table2", "main"]


@dataclass
class Table2Row:
    benchmark: str
    baseline_upper: Optional[str]
    our_upper: Optional[str]
    our_lower: Optional[str]
    our_upper_value: Optional[float]
    our_lower_value: Optional[float]
    paper_74: Optional[str]
    paper_upper: Optional[str]
    paper_lower: Optional[str]


def _row(bench: Benchmark) -> Table2Row:
    result = bench.analyze()
    try:
        base = baseline_upper_bound(bench.cfg, bench.invariant_map(), bench.init, degree=bench.degree)
        baseline_str: Optional[str] = fmt_poly(base.bound)
    except (UnsupportedProgramError, SynthesisError):
        baseline_str = None
    return Table2Row(
        benchmark=bench.name,
        baseline_upper=baseline_str,
        our_upper=fmt_poly(result.upper_bound) if result.upper else None,
        our_lower=fmt_poly(result.lower_bound) if result.lower else ("0" if bench.paper_lower == "0" else None),
        our_upper_value=result.upper.value if result.upper else None,
        our_lower_value=result.lower.value if result.lower else None,
        paper_74=bench.paper_upper and None,  # placeholder, set below
        paper_upper=bench.paper_upper,
        paper_lower=bench.paper_lower,
    )


#: The "[74]" column of Table 2, transcribed from the paper.
PAPER_74_UPPER = {
    "ber": "2*n - 2*x",
    "bin": "0.2*n + 1.8",
    "linear01": "0.6*x",
    "prdwalk": "1.14286*n - 1.14286*x + 4.5714",
    "race": "0.666667*t - 0.666667*h + 6",
    "rdseql": "2.25*x + y",
    "rdwalk": "2*n - 2*x + 2",
    "sprdwalk": "2*n - 2*x",
    "C4B_t13": "1.25*x + y",
    "prnes": "0.052631*y - 68.4795*n",
    "condand": "m + n",
    "pol04": "4.5*x^2 + 7.5*x",
    "pol05": "x^2 + x",
    "rdbub": "3*n^2",
    "trader": "-5*smin^2 - 5*smin + 5*s^2 + 5*s",
}


def build_table2() -> List[Table2Row]:
    rows = []
    for bench in TABLE2_BENCHMARKS:
        row = _row(bench)
        row.paper_74 = PAPER_74_UPPER.get(bench.name)
        rows.append(row)
    return rows


def main() -> str:
    rows = build_table2()
    text_rows = [
        [
            r.benchmark,
            r.baseline_upper or "n/a",
            r.our_upper or "-",
            r.our_lower or "-",
            r.paper_74 or "-",
            r.paper_upper or "-",
            r.paper_lower or "-",
        ]
        for r in rows
    ]
    headers = [
        "program",
        "[74]-style baseline (ours)",
        "PUCS upper (ours)",
        "PLCS lower (ours)",
        "[74] (paper)",
        "PUCS (paper)",
        "PLCS (paper)",
    ]
    out = "Table 2: upper/lower bounds vs the [74] baseline\n" + render_table(headers, text_rows)
    return out


if __name__ == "__main__":
    print(main())
