"""Table 2: comparison with Ngo-Carbonneaux-Hoffmann [74].

For each of the fifteen Absynth-style benchmarks this prints

* the upper bound of our reimplemented [74]-style baseline (nonnegative
  potentials; ``n/a`` where the program leaves the [74] fragment),
* the PUCS upper bound and PLCS lower bound of the paper's method,
* the bounds the paper reports, for side-by-side comparison.

PUCS/PLCS synthesis runs through the batch engine (``jobs > 1`` fans
the benchmarks across worker processes; bounds are identical for every
``jobs`` value).  The [74]-style baseline column is computed in-driver:
it is a single cheap LP per program and needs the local CFG objects.

Run as ``python -m repro.experiments.table2 [--jobs N]``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import List, Optional

from ..baseline import baseline_upper_bound
from ..batch import AnalysisReport, AnalysisRequest
from ..errors import SynthesisError, UnsupportedProgramError
from ..programs import TABLE2_BENCHMARKS, Benchmark
from .common import add_driver_args, driver_analyzer, fmt_poly, render_table, table_analyzer

__all__ = ["Table2Row", "build_table2", "main"]


@dataclass
class Table2Row:
    benchmark: str
    baseline_upper: Optional[str]
    our_upper: Optional[str]
    our_lower: Optional[str]
    our_upper_value: Optional[float]
    our_lower_value: Optional[float]
    paper_74: Optional[str]
    paper_upper: Optional[str]
    paper_lower: Optional[str]


def _row(bench: Benchmark, report: AnalysisReport) -> Table2Row:
    try:
        base = baseline_upper_bound(bench.cfg, bench.invariant_map(), bench.init, degree=bench.degree)
        baseline_str: Optional[str] = fmt_poly(base.bound)
    except (UnsupportedProgramError, SynthesisError):
        baseline_str = None
    return Table2Row(
        benchmark=bench.name,
        baseline_upper=baseline_str,
        our_upper=report.upper_bound,
        our_lower=report.lower_bound
        if report.lower_bound is not None
        else ("0" if bench.paper_lower == "0" else None),
        our_upper_value=report.upper_value,
        our_lower_value=report.lower_value,
        paper_74=bench.paper_upper and None,  # placeholder, set below
        paper_upper=bench.paper_upper,
        paper_lower=bench.paper_lower,
    )


#: The "[74]" column of Table 2, transcribed from the paper.
PAPER_74_UPPER = {
    "ber": "2*n - 2*x",
    "bin": "0.2*n + 1.8",
    "linear01": "0.6*x",
    "prdwalk": "1.14286*n - 1.14286*x + 4.5714",
    "race": "0.666667*t - 0.666667*h + 6",
    "rdseql": "2.25*x + y",
    "rdwalk": "2*n - 2*x + 2",
    "sprdwalk": "2*n - 2*x",
    "C4B_t13": "1.25*x + y",
    "prnes": "0.052631*y - 68.4795*n",
    "condand": "m + n",
    "pol04": "4.5*x^2 + 7.5*x",
    "pol05": "x^2 + x",
    "rdbub": "3*n^2",
    "trader": "-5*smin^2 - 5*smin + 5*s^2 + 5*s",
}


def build_table2(jobs: int = 1, cache=None, analyzer=None) -> List[Table2Row]:
    requests = [AnalysisRequest(benchmark=bench.name) for bench in TABLE2_BENCHMARKS]
    with table_analyzer(analyzer, jobs=jobs, cache=cache) as session:
        reports = session.analyze_batch(requests)
    rows = []
    for bench, report in zip(TABLE2_BENCHMARKS, reports):
        row = _row(bench, report)
        row.paper_74 = PAPER_74_UPPER.get(bench.name)
        rows.append(row)
    return rows


def main(jobs: int = 1, cache=None, analyzer=None) -> str:
    rows = build_table2(jobs=jobs, cache=cache, analyzer=analyzer)
    text_rows = [
        [
            r.benchmark,
            r.baseline_upper or "n/a",
            r.our_upper or "-",
            r.our_lower or "-",
            r.paper_74 or "-",
            r.paper_upper or "-",
            r.paper_lower or "-",
        ]
        for r in rows
    ]
    headers = [
        "program",
        "[74]-style baseline (ours)",
        "PUCS upper (ours)",
        "PLCS lower (ours)",
        "[74] (paper)",
        "PUCS (paper)",
        "PLCS (paper)",
    ]
    out = "Table 2: upper/lower bounds vs the [74] baseline\n" + render_table(headers, text_rows)
    return out


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    add_driver_args(parser)
    args = parser.parse_args()
    with driver_analyzer(args) as _analyzer:
        print(main(analyzer=_analyzer))
