"""Tail-bound validation table: Azuma bounds vs. empirical frequencies.

A new workload on top of the paper's tables: for representative Table 2
benchmarks and Table 5 coin-flip variants, derive the concentration
bound ``P[cost >= E + t, T <= n] <= exp(-t^2/(2 c^2 n))`` from the
synthesized certificate (:mod:`repro.analysis.tails`) and validate it
against the *empirical* tail frequencies of seeded interpreter runs
truncated at the same horizon.  Every probe must satisfy
``freq <= bound`` — an unsound step-difference bound ``c`` or a broken
certificate fails loudly here, exactly like the Monte-Carlo bracket
checks do for the expected-cost bounds.

Run as ``python -m repro.experiments.table_tails [--runs N]
[--horizon N] [--seed S]``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..api import AnalysisOptions
from ..programs import get_benchmark, probabilistic_variant
from ..semantics import simulate
from .common import add_driver_args, driver_analyzer, fmt, render_table, table_analyzer

__all__ = ["TAIL_SUITE", "TailCheck", "TailRow", "build_table_tails", "main"]

#: (benchmark name, nondet_prob) pairs: Table 2 representatives plus
#: Table 5 coin-flip variants.  Chosen for having degree-1 certificates
#: with a constant step-difference bound *and* being simulable.
TAIL_SUITE: List[Tuple[str, Optional[float]]] = [
    ("rdwalk", None),
    ("ber", None),
    ("bin", None),
    ("prdwalk", None),
    ("sprdwalk", None),
    ("C4B_t13", None),
    ("random_walk", None),
    ("bitcoin_mining", 0.5),
]


@dataclass
class TailCheck:
    """One probe of the bound against the empirical tail frequency."""

    t: float
    bound: float
    freq: float

    @property
    def ok(self) -> bool:
        return self.freq <= self.bound


@dataclass
class TailRow:
    """One benchmark's tail-bound validation record."""

    benchmark: str
    init: dict
    expected: Optional[float] = None
    c: Optional[float] = None
    horizon: Optional[int] = None
    refit: bool = False
    runs: int = 0
    truncated: int = 0
    checks: List[TailCheck] = field(default_factory=list)
    #: Why no tail bound was derived (``None`` when one was).
    unavailable: Optional[str] = None

    @property
    def sound(self) -> bool:
        """Every probed bound dominates its empirical frequency."""
        return all(check.ok for check in self.checks)


def build_table_tails(
    runs: int = 2000,
    horizon: int = 2000,
    seed: int = 0,
    suite: Optional[List[Tuple[str, Optional[float]]]] = None,
    analyzer=None,
) -> List[TailRow]:
    """Derive and empirically validate tail bounds over the suite.

    The simulation truncates at ``horizon`` steps — the same ``n`` the
    guarantee is stated for — so the empirical frequency of
    ``cost >= E + t`` among runs that terminate within the horizon
    estimates exactly the probability the bound dominates.
    """
    rows: List[TailRow] = []
    with table_analyzer(analyzer) as session:
        for name, prob in suite if suite is not None else TAIL_SUITE:
            bench = get_benchmark(name)
            if prob is not None:
                bench = probabilistic_variant(bench, prob=prob)
            init = dict(bench.init)
            row = TailRow(benchmark=bench.name, init=init)
            result = session.synthesize(
                bench, AnalysisOptions(tails=True, tail_horizon=horizon)
            )
            if result.tail is None:
                row.unavailable = next(
                    (w for w in result.warnings if "tail bound unavailable" in w),
                    "tail bound unavailable",
                )
                rows.append(row)
                continue
            tail = result.tail
            row.expected = tail.expected
            row.c = tail.c
            row.horizon = tail.horizon
            row.refit = tail.refit
            stats = simulate(bench.cfg, init, runs=runs, seed=seed, max_steps=horizon)
            row.runs = stats.runs
            row.truncated = stats.truncated
            for probe in tail.probes:
                exceeding = sum(1 for cost in stats.costs if cost >= tail.expected + probe.t)
                row.checks.append(
                    TailCheck(t=probe.t, bound=probe.bound, freq=exceeding / runs)
                )
            rows.append(row)
    return rows


def main(
    runs: int = 2000, horizon: int = 2000, seed: int = 0, analyzer=None
) -> str:
    rows = build_table_tails(runs=runs, horizon=horizon, seed=seed, analyzer=analyzer)
    text_rows = []
    for row in rows:
        if row.unavailable is not None:
            text_rows.append(
                [row.benchmark, "-", "-", "-", "unavailable", row.unavailable[:48]]
            )
            continue
        checks = "  ".join(
            f"P[>E+{check.t:.0f}] {check.freq:.4f}<={check.bound:.4f}"
            for check in row.checks
        )
        text_rows.append(
            [
                row.benchmark,
                fmt(row.expected),
                fmt(row.c),
                str(row.horizon),
                "ok" if row.sound else "VIOLATED",
                checks,
            ]
        )
    headers = ["program", "E", "c", "n", "sound", "empirical tail vs bound"]
    available = [row for row in rows if row.unavailable is None]
    violated = sum(1 for row in available if not row.sound)
    if violated:
        footer = f"\n{violated} violated bound(s)"
    elif not available:
        # Never claim success when nothing was validated: an infeasible
        # tail LP across the whole suite must fail the CI grep loudly.
        footer = "\nno tail bounds available - nothing validated"
    else:
        footer = (
            f"\nall empirical tails within bounds "
            f"({len(available)}/{len(rows)} rows validated)"
        )
    return (
        f"Tail bounds: Azuma-Hoeffding vs {runs} simulated runs (horizon {horizon})\n"
        + render_table(headers, text_rows)
        + footer
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=2000, help="simulated runs per benchmark")
    parser.add_argument("--horizon", type=int, default=2000, help="step horizon n")
    parser.add_argument("--seed", type=int, default=0)
    add_driver_args(parser)
    args = parser.parse_args()
    with driver_analyzer(args) as _analyzer:
        print(main(runs=args.runs, horizon=args.horizon, seed=args.seed, analyzer=_analyzer))
