"""Table 4: numeric bounds at several initial valuations + simulation.

For every Table 3 benchmark and each of its three initial valuations
this reports the PUCS/PLCS values with synthesis runtimes, plus the
mean/std of simulated total cost.  As in the paper, programs with
nondeterminism (the two Bitcoin examples) have no simulation column —
Monte-Carlo needs a policy; Table 5 handles them by replacing ``if *``
with a coin flip.

All work goes through the batch engine; ``jobs > 1`` parallelizes the
(benchmark, valuation) grid without changing any reported bound.

Run as ``python -m repro.experiments.table4 [--runs N] [--jobs N]``.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from ..batch import AnalysisReport, AnalysisRequest, run_batch
from ..programs import TABLE3_BENCHMARKS, Benchmark
from .common import (
    BoundsRow,
    add_driver_args,
    driver_analyzer,
    fmt,
    render_table,
    table_analyzer,
)

__all__ = ["bench_requests", "bench_rows", "build_table4", "main", "rows_from_reports"]


def bench_requests(
    bench: Benchmark,
    runs: int = 1000,
    seed: int = 0,
    simulate_nondet: bool = False,
    nondet_prob: Optional[float] = None,
) -> List[AnalysisRequest]:
    """One request per initial valuation of ``bench`` (the Table 4 grid).

    ``nondet_prob`` applies the Table 5 coin-flip transformation, which
    also makes the nondeterministic benchmarks simulable.
    """
    simulable = bench.simulation_supported or nondet_prob is not None or simulate_nondet
    return [
        AnalysisRequest.for_benchmark(
            bench,
            init=init,
            nondet_prob=nondet_prob,
            simulate_nondet=simulate_nondet,
            simulate_runs=runs if simulable else None,
            simulate_seed=seed,
            simulate_max_steps=bench.max_sim_steps,
        )
        for init in sorted(bench.all_inits(), key=lambda v: sorted(v.items()))
    ]


def rows_from_reports(reports: List[AnalysisReport]) -> List[BoundsRow]:
    """Project engine reports onto the table's row records."""
    rows = []
    for report in reports:
        row = BoundsRow(benchmark=report.name, init=dict(report.init))
        row.upper_value = report.upper_value
        row.upper_time = report.upper_runtime
        if report.upper_bound is not None:
            row.upper_str = report.upper_bound
        row.lower_value = report.lower_value
        row.lower_time = report.lower_runtime
        if report.lower_bound is not None:
            row.lower_str = report.lower_bound
        if row.upper_time is None:
            # Synthesis-only elapsed time (never simulation), matching
            # what the paper's T(s) columns measure.
            row.upper_time = (
                report.analysis_runtime if report.analysis_runtime is not None else report.runtime
            )
        row.sim_mean = report.sim_mean
        row.sim_std = report.sim_std
        rows.append(row)
    return rows


def bench_rows(
    bench: Benchmark,
    runs: int = 1000,
    seed: int = 0,
    simulate_nondet: bool = False,
) -> List[BoundsRow]:
    """Bounds + simulation rows for every initial valuation of ``bench``."""
    requests = bench_requests(bench, runs=runs, seed=seed, simulate_nondet=simulate_nondet)
    return rows_from_reports(run_batch(requests))


def build_table4(
    runs: int = 1000,
    seed: int = 0,
    benchmarks: Optional[List[Benchmark]] = None,
    jobs: int = 1,
    cache=None,
    analyzer=None,
) -> List[BoundsRow]:
    requests: List[AnalysisRequest] = []
    for bench in benchmarks or TABLE3_BENCHMARKS:
        requests.extend(bench_requests(bench, runs=runs, seed=seed))
    with table_analyzer(analyzer, jobs=jobs, cache=cache) as session:
        return rows_from_reports(session.analyze_batch(requests))


def main(runs: int = 1000, seed: int = 0, jobs: int = 1, cache=None, analyzer=None) -> str:
    rows = build_table4(runs=runs, seed=seed, jobs=jobs, cache=cache, analyzer=analyzer)
    text_rows = [
        [
            r.benchmark,
            ", ".join(f"{k}={v:g}" for k, v in r.init.items() if v),
            fmt(r.upper_value),
            fmt(r.upper_time, 3),
            fmt(r.lower_value),
            fmt(r.lower_time, 3),
            fmt(r.sim_mean),
            fmt(r.sim_std),
        ]
        for r in rows
    ]
    headers = ["program", "v0", "PUCS", "T(s)", "PLCS", "T(s)", "sim mean", "sim std"]
    return (
        f"Table 4: numeric bounds and simulation ({runs} runs per valuation)\n"
        + render_table(headers, text_rows)
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=1000, help="simulated runs per valuation")
    parser.add_argument("--seed", type=int, default=0)
    add_driver_args(parser)
    args = parser.parse_args()
    with driver_analyzer(args) as _analyzer:
        print(main(runs=args.runs, seed=args.seed, analyzer=_analyzer))
