"""Table 4: numeric bounds at several initial valuations + simulation.

For every Table 3 benchmark and each of its three initial valuations
this reports the PUCS/PLCS values with synthesis runtimes, plus the
mean/std of simulated total cost.  As in the paper, programs with
nondeterminism (the two Bitcoin examples) have no simulation column —
Monte-Carlo needs a policy; Table 5 handles them by replacing ``if *``
with a coin flip.

Run as ``python -m repro.experiments.table4 [--runs N]``.
"""

from __future__ import annotations

import argparse
import time
from typing import List, Optional

from ..programs import TABLE3_BENCHMARKS, Benchmark
from ..semantics import simulate
from .common import BoundsRow, fmt, render_table

__all__ = ["build_table4", "main"]


def bench_rows(
    bench: Benchmark,
    runs: int = 1000,
    seed: int = 0,
    simulate_nondet: bool = False,
) -> List[BoundsRow]:
    """Bounds + simulation rows for every initial valuation of ``bench``."""
    rows = []
    for init in sorted(bench.all_inits(), key=lambda v: sorted(v.items())):
        t0 = time.perf_counter()
        result = bench.analyze(init=init)
        t_total = time.perf_counter() - t0
        row = BoundsRow(benchmark=bench.name, init=dict(init))
        if result.upper:
            row.upper_value = result.upper.value
            row.upper_str = str(result.upper.bound.round(5))
            row.upper_time = result.upper.runtime
        if result.lower:
            row.lower_value = result.lower.value
            row.lower_str = str(result.lower.bound.round(5))
            row.lower_time = result.lower.runtime
        if row.upper_time is None:
            row.upper_time = t_total
        if bench.simulation_supported or simulate_nondet:
            stats = simulate(bench.cfg, init, runs=runs, seed=seed, max_steps=bench.max_sim_steps)
            row.sim_mean = stats.mean
            row.sim_std = stats.std
        rows.append(row)
    return rows


def build_table4(
    runs: int = 1000, seed: int = 0, benchmarks: Optional[List[Benchmark]] = None
) -> List[BoundsRow]:
    rows: List[BoundsRow] = []
    for bench in benchmarks or TABLE3_BENCHMARKS:
        rows.extend(bench_rows(bench, runs=runs, seed=seed))
    return rows


def main(runs: int = 1000, seed: int = 0) -> str:
    rows = build_table4(runs=runs, seed=seed)
    text_rows = [
        [
            r.benchmark,
            ", ".join(f"{k}={v:g}" for k, v in r.init.items() if v),
            fmt(r.upper_value),
            fmt(r.upper_time, 3),
            fmt(r.lower_value),
            fmt(r.lower_time, 3),
            fmt(r.sim_mean),
            fmt(r.sim_std),
        ]
        for r in rows
    ]
    headers = ["program", "v0", "PUCS", "T(s)", "PLCS", "T(s)", "sim mean", "sim std"]
    return (
        f"Table 4: numeric bounds and simulation ({runs} runs per valuation)\n"
        + render_table(headers, text_rows)
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=1000, help="simulated runs per valuation")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    print(main(runs=args.runs, seed=args.seed))
