"""Experiment harness regenerating every table and figure of the paper.

* ``python -m repro.experiments.table2`` — Table 2 (vs the [74] baseline)
* ``python -m repro.experiments.table3`` — Table 3 (symbolic bounds)
* ``python -m repro.experiments.table4`` — Table 4 (numeric bounds + simulation)
* ``python -m repro.experiments.table5`` — Table 5 (nondet replaced by prob(0.5))
* ``python -m repro.experiments.table6`` — Table 6 (extension families, not in the paper)
* ``python -m repro.experiments.figures`` — Figures 15-24 (bound/simulation curves)
* ``python -m repro.experiments.table_tails`` — Azuma tail bounds vs. empirical
  interpreter tail frequencies (new workload, not in the paper)
"""

from .common import BoundsRow, ascii_plot, fmt, fmt_poly, render_table
from .figures import FigureSeries, build_all_figures, build_figure
from .table2 import Table2Row, build_table2
from .table3 import Table3Row, build_table3
from .table4 import build_table4
from .table5 import build_table5, probabilistic_variant
from .table6 import build_table6
from .table_tails import TailCheck, TailRow, build_table_tails

__all__ = [
    "BoundsRow",
    "FigureSeries",
    "Table2Row",
    "Table3Row",
    "TailCheck",
    "TailRow",
    "ascii_plot",
    "build_all_figures",
    "build_figure",
    "build_table2",
    "build_table3",
    "build_table4",
    "build_table5",
    "build_table6",
    "build_table_tails",
    "fmt",
    "fmt_poly",
    "probabilistic_variant",
    "render_table",
]
