"""Table 3: symbolic PUCS/PLCS bounds and runtimes on the new benchmarks.

Run as ``python -m repro.experiments.table3``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from ..programs import TABLE3_BENCHMARKS, Benchmark
from .common import fmt, fmt_poly, render_table

__all__ = ["Table3Row", "build_table3", "main"]


@dataclass
class Table3Row:
    benchmark: str
    init: dict
    upper: Optional[str]
    lower: Optional[str]
    upper_value: Optional[float]
    lower_value: Optional[float]
    runtime: float
    paper_upper: Optional[str]
    paper_lower: Optional[str]


def build_table3(benchmarks: Optional[List[Benchmark]] = None) -> List[Table3Row]:
    rows = []
    for bench in benchmarks or TABLE3_BENCHMARKS:
        start = time.perf_counter()
        result = bench.analyze()
        elapsed = time.perf_counter() - start
        rows.append(
            Table3Row(
                benchmark=bench.name,
                init=dict(bench.init),
                upper=fmt_poly(result.upper_bound) if result.upper else None,
                lower=fmt_poly(result.lower_bound) if result.lower else None,
                upper_value=result.upper.value if result.upper else None,
                lower_value=result.lower.value if result.lower else None,
                runtime=elapsed,
                paper_upper=bench.paper_upper,
                paper_lower=bench.paper_lower,
            )
        )
    return rows


def main() -> str:
    rows = build_table3()
    text_rows = [
        [
            r.benchmark,
            ", ".join(f"{k}={v:g}" for k, v in r.init.items() if v),
            r.upper or "-",
            r.lower or "-",
            fmt(r.runtime, 3) + "s",
        ]
        for r in rows
    ]
    headers = ["program", "v0", "h(l_in) in PUCS", "h(l_in) in PLCS", "runtime"]
    out = "Table 3: symbolic bounds via PUCS and PLCS\n" + render_table(headers, text_rows)
    out += "\n\nPaper-reported bounds for comparison:\n"
    paper_rows = [[r.benchmark, r.paper_upper or "-", r.paper_lower or "-"] for r in rows]
    out += render_table(["program", "paper PUCS", "paper PLCS"], paper_rows)
    return out


if __name__ == "__main__":
    print(main())
