"""Table 3: symbolic PUCS/PLCS bounds and runtimes on the new benchmarks.

Analyses run through the batch engine (:mod:`repro.batch`); pass
``jobs > 1`` to fan the benchmarks across worker processes.  The bounds
are identical for every ``jobs`` value — synthesis is deterministic —
only the wall clock changes.

Run as ``python -m repro.experiments.table3 [--jobs N]``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import List, Optional

from ..batch import AnalysisRequest
from ..programs import TABLE3_BENCHMARKS, Benchmark
from .common import add_driver_args, driver_analyzer, fmt, render_table, table_analyzer

__all__ = ["Table3Row", "build_table3", "main"]


@dataclass
class Table3Row:
    benchmark: str
    init: dict
    upper: Optional[str]
    lower: Optional[str]
    upper_value: Optional[float]
    lower_value: Optional[float]
    runtime: float
    paper_upper: Optional[str]
    paper_lower: Optional[str]


def build_table3(
    benchmarks: Optional[List[Benchmark]] = None, jobs: int = 1, cache=None, analyzer=None
) -> List[Table3Row]:
    benches = list(benchmarks or TABLE3_BENCHMARKS)
    requests = [AnalysisRequest(benchmark=bench.name) for bench in benches]
    with table_analyzer(analyzer, jobs=jobs, cache=cache) as session:
        reports = session.analyze_batch(requests)
    rows = []
    for bench, report in zip(benches, reports):
        rows.append(
            Table3Row(
                benchmark=bench.name,
                init=dict(bench.init),
                upper=report.upper_bound,
                lower=report.lower_bound,
                upper_value=report.upper_value,
                lower_value=report.lower_value,
                runtime=report.runtime,
                paper_upper=bench.paper_upper,
                paper_lower=bench.paper_lower,
            )
        )
    return rows


def main(jobs: int = 1, cache=None, analyzer=None) -> str:
    rows = build_table3(jobs=jobs, cache=cache, analyzer=analyzer)
    text_rows = [
        [
            r.benchmark,
            ", ".join(f"{k}={v:g}" for k, v in r.init.items() if v),
            r.upper or "-",
            r.lower or "-",
            fmt(r.runtime, 3) + "s",
        ]
        for r in rows
    ]
    headers = ["program", "v0", "h(l_in) in PUCS", "h(l_in) in PLCS", "runtime"]
    out = "Table 3: symbolic bounds via PUCS and PLCS\n" + render_table(headers, text_rows)
    out += "\n\nPaper-reported bounds for comparison:\n"
    paper_rows = [[r.benchmark, r.paper_upper or "-", r.paper_lower or "-"] for r in rows]
    out += render_table(["program", "paper PUCS", "paper PLCS"], paper_rows)
    return out


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    add_driver_args(parser)
    args = parser.parse_args()
    with driver_analyzer(args) as _analyzer:
        print(main(analyzer=_analyzer))
