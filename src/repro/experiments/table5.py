"""Table 5: nondeterminism replaced by ``prob(0.5)``.

The paper's Table 5 re-runs the experiment suite after replacing every
demonic ``if *`` with a fair coin flip, which makes the two Bitcoin
programs simulable.  The replacement preserves label numbering (a
nondeterministic label becomes a probabilistic one in place), so the
invariants carry over unchanged; the batch engine applies it per task
via the request's ``nondet_prob`` field and we reuse the Table 4 row
machinery.

Run as ``python -m repro.experiments.table5 [--runs N] [--jobs N]``.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from ..batch import AnalysisRequest
from ..programs import TABLE3_BENCHMARKS, Benchmark, probabilistic_variant
from .common import (
    BoundsRow,
    add_driver_args,
    driver_analyzer,
    fmt,
    render_table,
    table_analyzer,
)
from .table4 import bench_requests, rows_from_reports

__all__ = ["probabilistic_variant", "build_table5", "main"]


def _table5_requests(
    runs: int, seed: int, benchmarks: Optional[List[Benchmark]]
) -> List[AnalysisRequest]:
    requests: List[AnalysisRequest] = []
    for bench in benchmarks or TABLE3_BENCHMARKS:
        prob = 0.5 if bench.has_nondeterminism else None
        requests.extend(bench_requests(bench, runs=runs, seed=seed, nondet_prob=prob))
    return requests


def build_table5(
    runs: int = 1000,
    seed: int = 0,
    benchmarks: Optional[List[Benchmark]] = None,
    jobs: int = 1,
    cache=None,
    analyzer=None,
) -> List[BoundsRow]:
    with table_analyzer(analyzer, jobs=jobs, cache=cache) as session:
        return rows_from_reports(session.analyze_batch(_table5_requests(runs, seed, benchmarks)))


def main(runs: int = 1000, seed: int = 0, jobs: int = 1, cache=None, analyzer=None) -> str:
    rows = build_table5(runs=runs, seed=seed, jobs=jobs, cache=cache, analyzer=analyzer)
    text_rows = [
        [
            r.benchmark,
            ", ".join(f"{k}={v:g}" for k, v in r.init.items() if v),
            fmt(r.upper_value),
            fmt(r.lower_value),
            fmt(r.sim_mean),
            fmt(r.sim_std),
        ]
        for r in rows
    ]
    headers = ["program", "v0", "PUCS", "PLCS", "sim mean", "sim std"]
    return (
        f"Table 5: nondeterminism replaced with prob(0.5) ({runs} runs per valuation)\n"
        + render_table(headers, text_rows)
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=1000, help="simulated runs per valuation")
    parser.add_argument("--seed", type=int, default=0)
    add_driver_args(parser)
    args = parser.parse_args()
    with driver_analyzer(args) as _analyzer:
        print(main(runs=args.runs, seed=args.seed, analyzer=_analyzer))
