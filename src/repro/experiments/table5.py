"""Table 5: nondeterminism replaced by ``prob(0.5)``.

The paper's Table 5 re-runs the experiment suite after replacing every
demonic ``if *`` with a fair coin flip, which makes the two Bitcoin
programs simulable.  We rebuild each benchmark through
:func:`repro.syntax.replace_nondet` (the transformation preserves label
numbering, so invariants carry over unchanged) and reuse the Table 4
machinery.

Run as ``python -m repro.experiments.table5 [--runs N]``.
"""

from __future__ import annotations

import argparse
from dataclasses import replace as dataclass_replace
from typing import List, Optional

from ..programs import TABLE3_BENCHMARKS, Benchmark
from ..syntax import pretty, replace_nondet
from .common import BoundsRow, fmt, render_table
from .table4 import bench_rows

__all__ = ["probabilistic_variant", "build_table5", "main"]


def probabilistic_variant(bench: Benchmark, prob: float = 0.5) -> Benchmark:
    """The benchmark with ``if *`` replaced by ``if prob(prob)``.

    Returns ``bench`` itself when it has no nondeterminism.  The CFG of
    the variant has identical label numbering (a nondeterministic label
    becomes a probabilistic one in place), so the invariants transfer.
    """
    if not bench.has_nondeterminism:
        return bench
    transformed = replace_nondet(bench.program, prob=prob)
    return dataclass_replace(
        bench,
        name=f"{bench.name}_prob",
        title=f"{bench.title} (nondet -> prob({prob:g}))",
        source=pretty(transformed),
    )


def build_table5(
    runs: int = 1000, seed: int = 0, benchmarks: Optional[List[Benchmark]] = None
) -> List[BoundsRow]:
    rows: List[BoundsRow] = []
    for bench in benchmarks or TABLE3_BENCHMARKS:
        variant = probabilistic_variant(bench)
        rows.extend(bench_rows(variant, runs=runs, seed=seed))
    return rows


def main(runs: int = 1000, seed: int = 0) -> str:
    rows = build_table5(runs=runs, seed=seed)
    text_rows = [
        [
            r.benchmark,
            ", ".join(f"{k}={v:g}" for k, v in r.init.items() if v),
            fmt(r.upper_value),
            fmt(r.lower_value),
            fmt(r.sim_mean),
            fmt(r.sim_std),
        ]
        for r in rows
    ]
    headers = ["program", "v0", "PUCS", "PLCS", "sim mean", "sim std"]
    return (
        f"Table 5: nondeterminism replaced with prob(0.5) ({runs} runs per valuation)\n"
        + render_table(headers, text_rows)
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=1000, help="simulated runs per valuation")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    print(main(runs=args.runs, seed=args.seed))
