"""Figures 15-24: bound curves vs simulation across initial valuations.

Appendix F of the paper plots, for each of the ten benchmarks, the PUCS
upper bound, the PLCS lower bound and the simulated mean cost over ~20
initial valuations.  This module regenerates those series and renders
them as ASCII plots (plus the raw numbers, which the test-suite checks
for the bracketing property UB >= mean >= LB).

Programs with nondeterminism are swept in their ``prob(0.5)`` variants
(as in the paper's second simulation experiment), so a simulation series
exists for every figure.

Run as ``python -m repro.experiments.figures [--runs N] [--points K]``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..programs import TABLE3_BENCHMARKS, Benchmark
from ..semantics import simulate
from .common import ascii_plot, fmt, render_table
from .table5 import probabilistic_variant

__all__ = ["FigureSeries", "build_figure", "build_all_figures", "main"]

#: Paper figure number per benchmark (Figures 15-24 in order).
FIGURE_NUMBERS = {
    "bitcoin_mining": 15,
    "bitcoin_pool": 16,
    "queuing_network": 17,
    "species_fight": 18,
    "simple_loop": 19,
    "nested_loop": 20,
    "random_walk": 21,
    "robot_2d": 22,
    "goods_discount": 23,
    "pollutant_disposal": 24,
}


@dataclass
class FigureSeries:
    """The three series of one Appendix-F figure."""

    benchmark: str
    figure_number: int
    sweep_var: str
    xs: List[float]
    upper: List[Optional[float]]
    lower: List[Optional[float]]
    sim_mean: List[Optional[float]]
    sim_stderr: List[Optional[float]] = None

    def bracketing_violations(self, slack: float = 0.0, z: float = 5.0) -> List[float]:
        """Sweep points where the simulated mean escapes the bounds.

        The tolerance at each point is ``slack + z`` standard errors of
        that point's Monte-Carlo mean.
        """
        bad = []
        stderrs = self.sim_stderr or [0.0] * len(self.xs)
        for x, ub, lb, mean, se in zip(self.xs, self.upper, self.lower, self.sim_mean, stderrs):
            if mean is None:
                continue
            tol = slack + z * (se or 0.0)
            if ub is not None and mean > ub + tol:
                bad.append(x)
            elif lb is not None and mean < lb - tol:
                bad.append(x)
        return bad


def build_figure(
    bench: Benchmark,
    points: int = 20,
    runs: int = 200,
    seed: int = 0,
) -> FigureSeries:
    """Sweep the benchmark's figure variable and collect the series.

    Bounds are re-synthesized at every sweep point (each initial
    valuation is its own anchor ``v*``, matching how the paper's plots
    were produced); the simulation uses the ``prob(0.5)`` variant when
    the program is nondeterministic.
    """
    if bench.sweep_var is None or bench.sweep_range is None:
        raise ValueError(f"benchmark {bench.name} has no figure sweep configured")
    sim_bench = probabilistic_variant(bench)
    lo, hi = bench.sweep_range
    xs = [lo + (hi - lo) * i / (points - 1) for i in range(points)]

    upper: List[Optional[float]] = []
    lower: List[Optional[float]] = []
    sim_mean: List[Optional[float]] = []
    sim_stderr: List[Optional[float]] = []
    from ..api import AnalysisOptions

    for x in xs:
        init: Dict[str, float] = dict(bench.init)
        init[bench.sweep_var] = x
        result = bench.analyze(AnalysisOptions(init=init))
        upper.append(result.upper.value if result.upper else None)
        lower.append(result.lower.value if result.lower else None)
        stats = simulate(
            sim_bench.cfg, init, runs=runs, seed=seed, max_steps=bench.max_sim_steps
        )
        sim_mean.append(stats.mean)
        sim_stderr.append(stats.stderr())
    return FigureSeries(
        benchmark=bench.name,
        figure_number=FIGURE_NUMBERS.get(bench.name, 0),
        sweep_var=bench.sweep_var,
        xs=xs,
        upper=upper,
        lower=lower,
        sim_mean=sim_mean,
        sim_stderr=sim_stderr,
    )


def build_all_figures(
    points: int = 20, runs: int = 200, seed: int = 0, benchmarks: Optional[List[Benchmark]] = None
) -> List[FigureSeries]:
    return [
        build_figure(bench, points=points, runs=runs, seed=seed)
        for bench in (benchmarks or TABLE3_BENCHMARKS)
    ]


def render_figure(series: FigureSeries) -> str:
    title = f"Figure {series.figure_number}: {series.benchmark} (sweep {series.sweep_var})"
    plot = ascii_plot(
        series.xs,
        [series.upper, series.lower, series.sim_mean],
        labels=["PUCS upper", "PLCS lower", "simulated mean"],
        title=title,
    )
    rows = [
        [fmt(x), fmt(ub), fmt(lb), fmt(mean)]
        for x, ub, lb, mean in zip(series.xs, series.upper, series.lower, series.sim_mean)
    ]
    table = render_table([series.sweep_var, "PUCS", "PLCS", "sim mean"], rows)
    return f"{plot}\n\n{table}"


def main(points: int = 20, runs: int = 200, seed: int = 0) -> str:
    chunks = []
    for series in build_all_figures(points=points, runs=runs, seed=seed):
        chunks.append(render_figure(series))
        chunks.append("")
    return "\n".join(chunks)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=20)
    parser.add_argument("--runs", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    print(main(points=args.points, runs=args.runs, seed=args.seed))
