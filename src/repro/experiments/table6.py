"""Table 6: bounds + simulation for the extension benchmark families.

These are the workloads the paper never evaluated (coupon collector,
randomized quicksort, gambler's-ruin variants, a service retry loop;
see :mod:`repro.programs.table6`).  Every family is purely
probabilistic, so the table reports the PUCS/PLCS values for each
initial valuation next to the seeded Monte-Carlo mean/std — the same
grid shape as Table 4.

Run as ``python -m repro.experiments.table6 [--runs N] [--jobs N]``.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from ..batch import AnalysisRequest
from ..programs import TABLE6_BENCHMARKS, Benchmark
from .common import (
    BoundsRow,
    add_driver_args,
    driver_analyzer,
    fmt,
    render_table,
    table_analyzer,
)
from .table4 import bench_requests, rows_from_reports

__all__ = ["build_table6", "main"]


def _table6_requests(
    runs: int, seed: int, benchmarks: Optional[List[Benchmark]]
) -> List[AnalysisRequest]:
    requests: List[AnalysisRequest] = []
    for bench in benchmarks or TABLE6_BENCHMARKS:
        requests.extend(bench_requests(bench, runs=runs, seed=seed))
    return requests


def build_table6(
    runs: int = 1000,
    seed: int = 0,
    benchmarks: Optional[List[Benchmark]] = None,
    jobs: int = 1,
    cache=None,
    analyzer=None,
) -> List[BoundsRow]:
    with table_analyzer(analyzer, jobs=jobs, cache=cache) as session:
        return rows_from_reports(session.analyze_batch(_table6_requests(runs, seed, benchmarks)))


def main(runs: int = 1000, seed: int = 0, jobs: int = 1, cache=None, analyzer=None) -> str:
    rows = build_table6(runs=runs, seed=seed, jobs=jobs, cache=cache, analyzer=analyzer)
    text_rows = [
        [
            r.benchmark,
            ", ".join(f"{k}={v:g}" for k, v in r.init.items() if v),
            fmt(r.upper_value),
            fmt(r.lower_value),
            fmt(r.sim_mean),
            fmt(r.sim_std),
        ]
        for r in rows
    ]
    headers = ["program", "v0", "PUCS", "PLCS", "sim mean", "sim std"]
    return (
        f"Table 6: extension families, bounds and simulation ({runs} runs per valuation)\n"
        + render_table(headers, text_rows)
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=1000, help="simulated runs per valuation")
    parser.add_argument("--seed", type=int, default=0)
    add_driver_args(parser)
    args = parser.parse_args()
    with driver_analyzer(args) as _analyzer:
        print(main(runs=args.runs, seed=args.seed, analyzer=_analyzer))
