"""``repro.api`` — the one typed front door to the analysis pipeline.

Every front end of this reproduction (the CLI, the HTTP service, the
batch engine, the Table 2-5 experiment drivers, the perf harness) is a
thin adapter over the three names this package exports first:

:class:`AnalysisOptions`
    A frozen, validated, JSON-round-trippable record of *how* to
    analyze — degree plan (including ``"auto"`` escalation), soundness
    mode, Handelman multiplicand cap, invariant policy, initial
    valuation, coin-flip transformation, simulation settings, timeout
    and LP solver backend.
:class:`Analyzer`
    A session facade owning the result cache, the solver backend and
    the worker pool; ``analyze()`` returns the canonical
    :class:`AnalysisReport`, ``analyze_batch()`` fans out, and
    ``parse``/``build_cfg``/``derive_invariants``/``synthesize``
    expose the pipeline stage by stage.
:class:`AnalysisRequest` / :class:`AnalysisReport`
    The JSON work unit and the canonical result record (schema
    ``repro-report/v6``; :func:`report_to_v1` ... :func:`report_to_v5`
    and the lenient :meth:`AnalysisReport.from_dict` bridge older
    consumers and producers).

The static lint pass (:mod:`repro.check`) surfaces here through
``AnalysisOptions(check="warn"|"strict")`` — findings ride on
``AnalysisReport.diagnostics``, and strict-mode errors reject the task
(``status="rejected"``) before any LP work — and through
:meth:`Analyzer.lint`, which returns the raw :class:`CheckResult`.

Resilience knobs surface here too: :class:`RetryPolicy` (from
:mod:`repro.resilience`) rides on ``AnalysisOptions.retry`` and
governs crash-retry of pool workers that die mid-task.

Quick start::

    from repro.api import AnalysisOptions, Analyzer

    analyzer = Analyzer(AnalysisOptions(degree="auto"), cache=True)
    report = analyzer.analyze("rdwalk")
    print(report.upper_bound, report.upper_value)

Solver backends are pluggable: implement
:class:`repro.core.solvers.SolverBackend`, call
:func:`register_backend`, and name it in
``AnalysisOptions(solver=...)`` — the resolved backend id is part of
every cache fingerprint, so distinct backends never alias entries.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from ..batch.spec import (
    REPORT_SCHEMA,
    REPORT_SCHEMA_V1,
    REPORT_SCHEMA_V2,
    REPORT_SCHEMA_V3,
    REPORT_SCHEMA_V4,
    REPORT_SCHEMA_V5,
    AnalysisReport,
    AnalysisRequest,
    load_spec,
    requests_from_spec,
)
from ..check import CheckResult, Diagnostic
from ..cache import ResultCache, request_fingerprint, request_key
from ..resilience import RetryPolicy
from ..core.solvers import (
    SolveOutcome,
    SolverBackend,
    available_backends,
    backend_specs,
    default_backend_id,
    get_backend,
    register_backend,
    resolve_backend,
    use_solver,
)
from .analyzer import Analyzer
from .options import AnalysisOptions

__all__ = [
    "AnalysisOptions",
    "AnalysisReport",
    "AnalysisRequest",
    "Analyzer",
    "CheckResult",
    "Diagnostic",
    "REPORT_SCHEMA",
    "REPORT_SCHEMA_V1",
    "REPORT_SCHEMA_V2",
    "REPORT_SCHEMA_V3",
    "REPORT_SCHEMA_V4",
    "REPORT_SCHEMA_V5",
    "ResultCache",
    "RetryPolicy",
    "SolveOutcome",
    "SolverBackend",
    "available_backends",
    "backend_specs",
    "default_backend_id",
    "get_backend",
    "load_spec",
    "register_backend",
    "report_from_dict",
    "report_to_v1",
    "report_to_v2",
    "report_to_v3",
    "report_to_v4",
    "report_to_v5",
    "request_fingerprint",
    "request_key",
    "requests_from_spec",
    "resolve_backend",
    "use_solver",
    "version_info",
]


def report_to_v1(report: AnalysisReport) -> Dict[str, Any]:
    """``report`` as a pre-``repro.api`` (``repro-report/v1``) dict —
    bitwise what a v1 writer produced for the same analysis."""
    return report.to_v1_dict()


def report_to_v2(report: AnalysisReport) -> Dict[str, Any]:
    """``report`` as a pre-tail-bound (``repro-report/v2``) dict —
    bitwise what a v2 writer produced for the same analysis."""
    return report.to_v2_dict()


def report_to_v3(report: AnalysisReport) -> Dict[str, Any]:
    """``report`` as a pre-resilience (``repro-report/v3``) dict —
    bitwise what a v3 writer produced for the same analysis."""
    return report.to_v3_dict()


def report_to_v4(report: AnalysisReport) -> Dict[str, Any]:
    """``report`` as a pre-lint (``repro-report/v4``) dict — bitwise
    what a v4 writer produced for the same analysis."""
    return report.to_v4_dict()


def report_to_v5(report: AnalysisReport) -> Dict[str, Any]:
    """``report`` as a pre-relational-invariants (``repro-report/v5``)
    dict — bitwise what a v5 writer produced for the same analysis."""
    return report.to_v5_dict()


def report_from_dict(data: Mapping[str, Any]) -> AnalysisReport:
    """Read a v6, v5, v4, v3, v2 *or* v1 report dict (the lenient
    reader shim)."""
    return AnalysisReport.from_dict(data)


def version_info() -> Dict[str, Any]:
    """Versions and schemas of everything a client can depend on."""
    from .. import __version__
    from ..cache import ENTRY_SCHEMA

    return {
        "repro": __version__,
        "schemas": {
            "report": REPORT_SCHEMA,
            "report_compat": [
                REPORT_SCHEMA_V1,
                REPORT_SCHEMA_V2,
                REPORT_SCHEMA_V3,
                REPORT_SCHEMA_V4,
                REPORT_SCHEMA_V5,
            ],
            "cache_entry": ENTRY_SCHEMA,
        },
        "solver_backends": backend_specs(),
    }
