"""The one typed options object of the public API.

Every front end used to re-thread its own copy of the degree / mode /
invariant / simulation / timeout kwarg sprawl.  :class:`AnalysisOptions`
consolidates all of it: an immutable, validated, JSON-round-trippable
record of *how* to analyze — the *what* (a benchmark name, source text,
a :class:`~repro.programs.Benchmark`) stays separate and is supplied to
:meth:`repro.api.Analyzer.analyze` next to it.

Layering (spec-file ``defaults`` + per-task overrides, session options
+ per-call overrides) goes through :meth:`AnalysisOptions.merge`, which
takes mappings/keywords of *explicitly set* fields — never a second
options object, whose untouched defaults would be indistinguishable
from deliberate choices.
"""

from __future__ import annotations

import json
from collections.abc import Mapping as _MappingABC
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Mapping, Optional, Union

from ..batch.spec import DEFAULT_MAX_DEGREE, AnalysisRequest
from ..resilience import RetryPolicy

__all__ = ["AnalysisOptions"]


@dataclass(frozen=True)
class AnalysisOptions:
    """Everything that configures one expected-cost analysis.

    All fields are JSON-plain and validated at construction.  Instances
    are frozen: derive variations with :meth:`merge`.
    """

    #: Template degree plan: ``None`` (the benchmark's default, 2 for
    #: inline source), a fixed positive int, or ``"auto"`` — escalate
    #: d = 1..``max_degree`` until every requested bound is feasible.
    degree: Union[int, str, None] = None
    #: Ceiling for ``degree="auto"`` escalation.
    max_degree: int = DEFAULT_MAX_DEGREE
    #: Soundness regime: ``None`` (benchmark default / ``"auto"``),
    #: ``"auto"``, ``"signed"`` or ``"nonnegative"``.
    mode: Optional[str] = None
    #: Attempt the PLCS lower bound when the regime admits one.
    compute_lower: bool = True
    #: Handelman multiplicand cap K (``None`` = the degree default).
    max_multiplicands: Optional[int] = None
    #: LP solver backend id (see ``repro.core.solvers``); ``None`` or
    #: ``"auto"`` resolves to the environment default.
    solver: Optional[str] = None
    #: Per-label invariant annotations for inline-source programs
    #: (registry benchmarks carry their own).
    invariants: Optional[Dict[int, str]] = None
    #: Strengthen annotations with automatically generated interval
    #: invariants (the paper uses StInG similarly).
    auto_invariants: bool = True
    #: Abstract domain of the automatic invariant generator:
    #: ``"interval"`` (per-variable boxes) or ``"octagon"`` (relational
    #: ``+-x +-y <= c`` constraints, conjoined into annotated labels
    #: and enabling the REP013/REP014 lint checks).
    invariant_domain: str = "interval"
    #: Initial valuation ``v*``; ``None`` uses the benchmark anchor.
    init: Optional[Dict[str, float]] = None
    #: Replace every ``if *`` by ``if prob(p)`` before analysis (the
    #: Table 5 transformation); ``None`` leaves the program as-is.
    nondet_prob: Optional[float] = None
    #: Monte-Carlo runs to simulate after synthesis (``None`` = none).
    simulate_runs: Optional[int] = None
    simulate_seed: int = 0
    simulate_max_steps: int = 1_000_000
    #: Simulation engine: ``"auto"`` (NumPy batch stepper for large
    #: batches, with transparent fallback), ``"vectorized"`` (force the
    #: batch stepper) or ``"reference"`` (pure-Python loop).
    simulate_engine: str = "auto"
    #: Simulate even a nondeterministic program (default then-branch
    #: scheduler); off because a demonic bound is not comparable to one
    #: fixed policy's statistics.
    simulate_nondet: bool = False
    #: Per-task wall-clock budget in seconds (``status="timeout"``).
    timeout_s: Optional[float] = None
    #: Free-form caller tag, echoed on the report (not fingerprinted).
    tag: Optional[str] = None
    #: Also derive an Azuma–Hoeffding concentration (tail) bound
    #: ``P[cost >= E + t, T <= n] <= exp(-t^2/(2 c^2 n))`` from the
    #: upper certificate (:mod:`repro.analysis.tails`).
    tails: bool = False
    #: Step horizon ``n`` of the tail guarantee; ``None`` uses the
    #: interpreter's default truncation (1e6 steps).
    tail_horizon: Optional[int] = None
    #: Offsets ``t`` to pre-evaluate the tail bound at; ``None`` picks
    #: multiples of the natural scale ``c * sqrt(horizon)``.
    tail_probes: Optional[list] = None
    #: Static lint pass (:mod:`repro.check`) before synthesis:
    #: ``"off"`` skips it, ``"warn"`` attaches diagnostics to the
    #: result/report and proceeds, ``"strict"`` rejects programs with
    #: error-severity findings before any LP work
    #: (``status="rejected"`` reports, :class:`~repro.errors.CheckError`
    #: from :func:`repro.analysis.analyze`).
    check: str = "off"
    #: Crash-retry budget for pool workers that die mid-task
    #: (:class:`repro.resilience.RetryPolicy`, or its ``to_dict``
    #: mapping — coerced); ``None`` uses the engine default (one retry
    #: with jittered backoff).  A scheduling knob like ``timeout_s``:
    #: never part of the cache fingerprint.
    retry: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        # Normalize the mapping fields to plain, correctly-typed dicts
        # (JSON object keys arrive as strings) before validating.
        if self.invariants is not None:
            try:
                coerced = {int(label): str(cond) for label, cond in dict(self.invariants).items()}
            except (TypeError, ValueError):
                raise ValueError(
                    f"invariant labels must be integers, got {sorted(dict(self.invariants))!r}"
                ) from None
            object.__setattr__(self, "invariants", coerced)
        if self.init is not None:
            try:
                object.__setattr__(
                    self, "init", {str(var): float(value) for var, value in dict(self.init).items()}
                )
            except (TypeError, ValueError):
                raise ValueError(f"init values must be numbers, got {self.init!r}") from None
        if self.tail_probes is not None:
            try:
                object.__setattr__(self, "tail_probes", [float(t) for t in self.tail_probes])
            except (TypeError, ValueError):
                raise ValueError(f"tail_probes must be numbers, got {self.tail_probes!r}") from None
        if self.retry is not None:
            object.__setattr__(self, "retry", RetryPolicy.coerce(self.retry))
        self._validate()

    def _validate(self) -> None:
        if self.degree is not None and self.degree != "auto":
            if not isinstance(self.degree, int) or isinstance(self.degree, bool) or self.degree < 1:
                raise ValueError(f"degree must be a positive int or 'auto', got {self.degree!r}")
        if not isinstance(self.max_degree, int) or self.max_degree < 1:
            raise ValueError(f"max_degree must be an int >= 1, got {self.max_degree!r}")
        if self.mode is not None and self.mode not in ("auto", "signed", "nonnegative"):
            raise ValueError(f"mode must be 'auto', 'signed' or 'nonnegative', got {self.mode!r}")
        if self.max_multiplicands is not None and self.max_multiplicands < 1:
            raise ValueError(f"max_multiplicands must be >= 1, got {self.max_multiplicands!r}")
        if self.invariant_domain not in ("interval", "octagon"):
            raise ValueError(
                f"invariant_domain must be 'interval' or 'octagon', got {self.invariant_domain!r}"
            )
        if self.solver is not None and not isinstance(self.solver, str):
            raise ValueError(f"solver must be a backend name string, got {self.solver!r}")
        if self.nondet_prob is not None and not (0.0 <= self.nondet_prob <= 1.0):
            raise ValueError(f"nondet_prob must be in [0, 1], got {self.nondet_prob}")
        if self.simulate_runs is not None and self.simulate_runs <= 0:
            raise ValueError(f"simulate_runs must be positive, got {self.simulate_runs}")
        if self.simulate_max_steps < 1:
            raise ValueError(f"simulate_max_steps must be >= 1, got {self.simulate_max_steps}")
        if self.simulate_engine not in ("auto", "vectorized", "reference"):
            raise ValueError(
                "simulate_engine must be 'auto', 'vectorized' or 'reference', "
                f"got {self.simulate_engine!r}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if not isinstance(self.tails, bool):
            raise ValueError(f"tails must be a bool, got {self.tails!r}")
        if self.tail_horizon is not None:
            if not isinstance(self.tail_horizon, int) or isinstance(self.tail_horizon, bool) or self.tail_horizon < 1:
                raise ValueError(f"tail_horizon must be an int >= 1, got {self.tail_horizon!r}")
        if self.tail_probes is not None:
            if not self.tail_probes:
                raise ValueError("tail_probes must be a non-empty list of positive offsets")
            if any(t <= 0 for t in self.tail_probes):
                raise ValueError(f"tail_probes must be positive, got {self.tail_probes!r}")
        if self.check not in ("off", "warn", "strict"):
            raise ValueError(f"check must be 'off', 'warn' or 'strict', got {self.check!r}")

    # -- layering -------------------------------------------------------

    def merge(self, *layers: Mapping[str, Any], **overrides: Any) -> "AnalysisOptions":
        """A new options object with later layers winning.

        ``layers`` are mappings of explicitly-set fields (e.g. a spec
        file's ``defaults`` then a task object); ``overrides`` apply
        last.  Unknown keys raise, and the merged result re-validates::

            AnalysisOptions().merge(spec["defaults"], task, degree=3)
        """
        known = {f.name for f in fields(self)}
        updates: Dict[str, Any] = {}
        for layer in layers:
            if not isinstance(layer, _MappingABC):
                raise TypeError(
                    "merge() layers must be mappings of option fields; to layer two "
                    "AnalysisOptions, pass the explicit fields as a dict "
                    f"(got {type(layer).__name__})"
                )
            updates.update(layer)
        updates.update(overrides)
        unknown = set(updates) - known
        if unknown:
            raise ValueError(f"unknown option field(s): {sorted(unknown)}")
        return replace(self, **updates)

    # -- JSON -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-plain dict of every field (round-trips via
        :meth:`from_dict`)."""
        out: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, RetryPolicy):
                value = value.to_dict()
            elif isinstance(value, dict):
                value = dict(value)
            elif isinstance(value, list):
                value = list(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AnalysisOptions":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown option field(s): {sorted(unknown)}")
        return cls(**dict(data))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AnalysisOptions":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(f"options JSON must be an object, got {type(data).__name__}")
        return cls.from_dict(data)

    def degree_plan(self, default: Optional[int] = None) -> list:
        """The degrees a caller should attempt, in order.

        ``"auto"`` escalates 1..``max_degree``; a fixed degree is a
        one-element plan; ``None`` defers to ``default`` (a benchmark's
        own degree — kept as ``None`` when no default is given so the
        callee can resolve it).
        """
        if self.degree == "auto":
            return list(range(1, self.max_degree + 1))
        if self.degree is not None:
            return [int(self.degree)]
        return [default]

    # -- bridging to the engine -----------------------------------------

    def to_request(
        self,
        benchmark: Optional[str] = None,
        source: Optional[str] = None,
        name: Optional[str] = None,
    ) -> AnalysisRequest:
        """The engine/cache work unit for these options applied to one
        program (exactly one of ``benchmark``/``source``)."""
        request = AnalysisRequest(
            benchmark=benchmark,
            source=source,
            name=name,
            init=dict(self.init) if self.init is not None else None,
            invariants=dict(self.invariants) if self.invariants is not None else None,
            degree=self.degree,
            max_degree=self.max_degree,
            mode=self.mode,
            compute_lower=self.compute_lower,
            max_multiplicands=self.max_multiplicands,
            solver=self.solver,
            auto_invariants=self.auto_invariants,
            invariant_domain=self.invariant_domain,
            nondet_prob=self.nondet_prob,
            simulate_runs=self.simulate_runs,
            simulate_seed=self.simulate_seed,
            simulate_max_steps=self.simulate_max_steps,
            simulate_engine=self.simulate_engine,
            simulate_nondet=self.simulate_nondet,
            timeout_s=self.timeout_s,
            tag=self.tag,
            tails=self.tails,
            tail_horizon=self.tail_horizon,
            tail_probes=list(self.tail_probes) if self.tail_probes is not None else None,
            check=self.check,
            retry=self.retry.to_dict() if self.retry is not None else None,
        )
        request.validate()
        return request

    @classmethod
    def from_request(cls, request: AnalysisRequest) -> "AnalysisOptions":
        """The options embedded in an engine request (drops the program
        identity — ``benchmark``/``source``/``name``)."""
        return cls(
            degree=request.degree,
            max_degree=request.max_degree,
            mode=request.mode,
            compute_lower=request.compute_lower,
            max_multiplicands=request.max_multiplicands,
            solver=request.solver,
            invariants=dict(request.invariants) if request.invariants is not None else None,
            auto_invariants=request.auto_invariants,
            invariant_domain=request.invariant_domain,
            init=dict(request.init) if request.init is not None else None,
            nondet_prob=request.nondet_prob,
            simulate_runs=request.simulate_runs,
            simulate_seed=request.simulate_seed,
            simulate_max_steps=request.simulate_max_steps,
            simulate_engine=request.simulate_engine,
            simulate_nondet=request.simulate_nondet,
            timeout_s=request.timeout_s,
            tag=request.tag,
            tails=request.tails,
            tail_horizon=request.tail_horizon,
            tail_probes=list(request.tail_probes) if request.tail_probes is not None else None,
            check=request.check,
            retry=request.retry,
        )
