"""The session facade of the public API.

An :class:`Analyzer` owns the resources an analysis session shares —
the content-addressed :class:`~repro.cache.ResultCache`, the resolved
LP solver backend, and the worker process pool — and exposes the whole
pipeline behind two calls plus staged inspection points:

* :meth:`Analyzer.analyze` — one program (benchmark name, source text,
  a :class:`~repro.programs.Benchmark`, a parsed
  :class:`~repro.syntax.ast.Program`) to one canonical
  :class:`~repro.batch.spec.AnalysisReport`, cache-consulted;
* :meth:`Analyzer.analyze_batch` — many requests across the session's
  pool, reports in request order;
* :meth:`Analyzer.parse` / :meth:`build_cfg` / :meth:`lint` /
  :meth:`derive_invariants` / :meth:`synthesize` — the paper's
  pipeline one stage at a time, returning the intermediate artifacts
  (AST, CFG, lint :class:`~repro.check.CheckResult`, invariant map,
  rich :class:`CostAnalysisResult`).

Every front end (CLI, HTTP service, batch engine drivers, experiment
tables, perf harness) is a thin adapter over this class, so a knob
added to :class:`AnalysisOptions` is immediately available everywhere.
"""

from __future__ import annotations

import re
import threading
from pathlib import Path
from typing import Any, Callable, List, Mapping, Optional, Sequence, Union

from ..analysis.bounds import CostAnalysisResult, attach_tail_bound_for
from ..batch.engine import _cached_execute, run_batch
from ..batch.spec import AnalysisReport, AnalysisRequest
from ..invariants import InvariantMap, generate_invariants
from ..programs import Benchmark, get_benchmark
from ..semantics.cfg import CFG, build_cfg
from ..syntax.ast import Program
from ..syntax.parser import parse_program
from ..syntax.pretty import pretty
from .options import AnalysisOptions

__all__ = ["Analyzer"]

#: A bare identifier-ish string is treated as a registry benchmark
#: name; anything else (whitespace, keywords, operators) is source.
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.\-]*$")

#: What ``analyze``/``synthesize``/``fingerprint`` accept as a program.
ProgramLike = Union[str, Program, Benchmark]


def _resolve_cache(cache):
    """``None``/``False`` = no cache, ``True`` = the default store, a
    path = a store there, anything else = an already-built cache."""
    if cache is None or cache is False:
        return None
    from ..cache import ResultCache

    if cache is True:
        return ResultCache()
    if isinstance(cache, (str, Path)):
        return ResultCache(cache)
    return cache


class Analyzer:
    """One analysis session: options + cache + solver + process pool.

    ::

        from repro.api import AnalysisOptions, Analyzer

        with Analyzer(AnalysisOptions(degree="auto"), cache=True, jobs=4) as az:
            report = az.analyze("rdwalk")
            reports = az.analyze_batch([{"suite": "table3"}])

    The session's ``options`` are the defaults for every call; per-call
    ``options=`` replaces them wholesale and keyword ``overrides``
    tweak individual fields.
    """

    def __init__(
        self,
        options: Optional[AnalysisOptions] = None,
        *,
        cache=None,
        jobs: int = 1,
        solver: Optional[str] = None,
    ):
        base = options if options is not None else AnalysisOptions()
        if solver is not None:
            base = base.merge(solver=solver)
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self._options = base
        self._cache = _resolve_cache(cache)
        self._jobs = jobs
        self._pool = None
        self._pool_lock = threading.Lock()
        self._closed = False

    # -- session resources ----------------------------------------------

    @property
    def options(self) -> AnalysisOptions:
        return self._options

    @property
    def cache(self):
        """The session's :class:`~repro.cache.ResultCache` (or None)."""
        return self._cache

    @property
    def jobs(self) -> int:
        return self._jobs

    def _session_pool(self):
        """The lazily-created pool sized ``jobs`` (None when jobs == 1).

        Lazy init is locked: the HTTP service shares one Analyzer
        across handler threads, and two concurrent first batches must
        not each fork a pool (the loser's workers would leak).
        """
        if self._closed:
            raise RuntimeError("Analyzer is closed")
        if self._jobs == 1:
            return None
        with self._pool_lock:
            if self._closed:
                raise RuntimeError("Analyzer is closed")
            if self._pool is None:
                from ..resilience import ResilientPool

                self._pool = ResilientPool(processes=self._jobs)
            return self._pool

    def close(self) -> None:
        """Release the worker pool; the cache store stays on disk."""
        with self._pool_lock:
            self._closed = True
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
                self._pool = None

    def __enter__(self) -> "Analyzer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- options & request plumbing -------------------------------------

    def _merged(self, options: Optional[AnalysisOptions], overrides: Mapping[str, Any]) -> AnalysisOptions:
        base = options if options is not None else self._options
        return base.merge(**overrides) if overrides else base

    def request(
        self,
        program: ProgramLike,
        options: Optional[AnalysisOptions] = None,
        **overrides: Any,
    ) -> AnalysisRequest:
        """The engine/cache work unit ``analyze`` would execute.

        Exposed so callers can inspect, batch or fingerprint exactly
        what a call will do.  A parsed :class:`Program` is embedded as
        pretty-printed source (requests are JSON-plain); float literals
        that don't survive ``%g`` formatting should be submitted as
        source text or via :meth:`synthesize`, which analyzes the AST
        as-is.
        """
        opts = self._merged(options, overrides)
        if isinstance(program, Benchmark):
            payload = opts.to_dict()
            # The program identity supplies init/invariants defaults;
            # drop unset degree/mode so for_benchmark can fall back to
            # an ad-hoc benchmark's own settings.
            init = payload.pop("init")
            payload.pop("invariants")
            for key in ("degree", "mode"):
                if payload[key] is None:
                    payload.pop(key)
            return AnalysisRequest.for_benchmark(program, init=init, **payload)
        if isinstance(program, Program):
            return opts.to_request(source=pretty(program), name=program.name)
        if isinstance(program, str):
            if _NAME_RE.match(program):
                # Raises KeyError with a did-you-mean suggestion for a
                # typo'd benchmark name instead of a baffling parse error.
                get_benchmark(program)
                return opts.to_request(benchmark=program)
            return opts.to_request(source=program)
        raise TypeError(
            "program must be a benchmark name, source text, a Benchmark or a "
            f"parsed Program, got {type(program).__name__}"
        )

    def fingerprint(self, program: ProgramLike, options=None, **overrides: Any) -> str:
        """The content-addressed cache key for this (program, options).

        Two calls that fingerprint equal are guaranteed byte-identical
        reports against a shared cache, whatever front end issues them.
        """
        from ..cache import request_key

        return request_key(self.request(program, options, **overrides))

    def request_cache_key(self, request: AnalysisRequest) -> Optional[str]:
        """The session-level cache key for an engine request — session
        solver filled in, exactly as :meth:`analyze_batch` would run it
        — or ``None`` when the session has no cache or the request is
        unresolvable (unknown benchmark, parse error).  The HTTP
        service keys its single-flight request coalescing on this.
        """
        if self._cache is None:
            return None
        if request.solver is None and self._options.solver is not None:
            from dataclasses import replace as _dc_replace

            request = _dc_replace(request, solver=self._options.solver)
        return self._cache.request_key(request)

    def cached_report(self, key: str, request: AnalysisRequest) -> Optional[AnalysisReport]:
        """Session-cache lookup only — no execution.  Counts a hit or a
        miss on the session cache like any other consult."""
        if self._cache is None:
            return None
        return self._cache.lookup_for(key, request)

    # -- full pipeline ---------------------------------------------------

    def analyze(
        self,
        program: ProgramLike,
        options: Optional[AnalysisOptions] = None,
        **overrides: Any,
    ) -> AnalysisReport:
        """Run the full pipeline on one program; the canonical report.

        Consults/populates the session cache, runs on the session's
        solver backend, honors timeouts and simulation settings —
        byte-identical to what the batch engine, CLI and HTTP service
        produce for the same request against the same store.
        """
        report, _, _ = _cached_execute(self.request(program, options, **overrides), self._cache)
        return report

    def analyze_batch(
        self,
        requests: Sequence[Union[AnalysisRequest, Mapping[str, Any]]],
        progress: Optional[Callable[[AnalysisReport], None]] = None,
        jobs: Optional[int] = None,
    ) -> List[AnalysisReport]:
        """Execute many requests; reports come back in request order.

        ``requests`` may mix :class:`AnalysisRequest` objects and plain
        spec-task dicts (``{"suite": ...}`` expansion included).  Tasks
        that don't pin a solver inherit the session's.  ``jobs``
        defaults to the session's degree of parallelism (its persistent
        pool); pass an explicit value to override for one batch.
        """
        from ..batch.spec import requests_from_spec

        resolved: List[AnalysisRequest] = []
        for item in requests:
            if isinstance(item, AnalysisRequest):
                resolved.append(item)
            elif isinstance(item, Mapping) and "tasks" in item:
                # A full {"defaults": ..., "tasks": ...} spec object.
                resolved.extend(requests_from_spec(item))
            elif isinstance(item, Mapping):
                resolved.extend(requests_from_spec([dict(item)]))
            else:
                raise TypeError(
                    f"requests must be AnalysisRequest objects or task dicts, "
                    f"got {type(item).__name__}"
                )
        session_solver = self._options.solver
        if session_solver is not None:
            from dataclasses import replace as _dc_replace

            # Fill on copies: the caller's request objects must not be
            # retroactively pinned to this session's backend.
            resolved = [
                _dc_replace(request, solver=session_solver)
                if request.solver is None
                else request
                for request in resolved
            ]
        effective_jobs = self._jobs if jobs is None else jobs
        pool = self._session_pool() if jobs is None else None
        return run_batch(
            resolved,
            jobs=effective_jobs,
            progress=progress,
            cache=self._cache,
            pool=pool,
            # Session-level crash-retry default; per-request ``retry``
            # fields still win inside the engine.
            retry=self._options.retry,
        )

    # -- staged pipeline -------------------------------------------------

    def parse(self, source: str, name: Optional[str] = None) -> Program:
        """Stage 1: surface syntax to AST."""
        return parse_program(source, name=name)

    def build_cfg(self, program: Union[str, Program, Benchmark]) -> CFG:
        """Stage 2: AST to the labelled control-flow graph."""
        if isinstance(program, Benchmark):
            return program.cfg
        if isinstance(program, str):
            program = self.parse(program)
        return build_cfg(program)

    def lint(
        self,
        program: ProgramLike,
        options: Optional[AnalysisOptions] = None,
        **overrides: Any,
    ):
        """Stage 2.5: the static lint pass (:mod:`repro.check`).

        Returns the :class:`~repro.check.CheckResult` for the exact CFG
        the full pipeline would analyze — benchmark resolution,
        ``options.init``/``options.invariants`` and the coin-flip
        transformation all apply.  No LP work, no cache.
        """
        from ..check import check_benchmark, check_program
        from ..programs import probabilistic_variant
        from ..syntax.transform import replace_nondet

        opts = self._merged(options, overrides)
        if isinstance(program, str) and _NAME_RE.match(program):
            program = get_benchmark(program)
        if isinstance(program, Benchmark):
            if opts.nondet_prob is not None and program.has_nondeterminism:
                program = probabilistic_variant(program, prob=opts.nondet_prob)
            init = dict(opts.init) if opts.init is not None else None
            return check_benchmark(program, init=init, invariant_domain=opts.invariant_domain)
        parsed = self.parse(program) if isinstance(program, str) else program
        if not isinstance(parsed, Program):
            raise TypeError(
                "program must be a benchmark name, source text, a Benchmark or a "
                f"parsed Program, got {type(program).__name__}"
            )
        if opts.nondet_prob is not None and parsed.has_nondeterminism():
            parsed = replace_nondet(parsed, prob=opts.nondet_prob)
        return check_program(
            parsed,
            init=dict(opts.init) if opts.init is not None else None,
            invariants=dict(opts.invariants) if opts.invariants else None,
            invariant_domain=opts.invariant_domain,
        )

    def derive_invariants(
        self,
        program: Union[str, Program, Benchmark, CFG],
        options: Optional[AnalysisOptions] = None,
        **overrides: Any,
    ) -> InvariantMap:
        """Stage 3: the invariant map synthesis will run under.

        Assembles annotations (the benchmark's own, or
        ``options.invariants`` for inline source) and — when
        ``options.auto_invariants`` — strengthens them with
        automatically generated invariants in
        ``options.invariant_domain``, exactly as the full pipeline
        does: interval invariants fill unannotated labels only, while
        octagon invariants additionally conjoin into annotated ones.
        """
        opts = self._merged(options, overrides)
        if isinstance(program, Benchmark):
            cfg = program.cfg
            init = dict(opts.init) if opts.init is not None else dict(program.init)
            inv = program.invariant_map(init)
        else:
            cfg = program if isinstance(program, CFG) else self.build_cfg(program)
            init = dict(opts.init) if opts.init is not None else {}
            if opts.invariants:
                inv = InvariantMap.from_strings(cfg, dict(opts.invariants))
            else:
                inv = InvariantMap.trivial()
        if opts.auto_invariants:
            auto = generate_invariants(cfg, init, domain=opts.invariant_domain)
            for label_id, region in auto.items():
                if label_id not in inv:
                    inv.set(label_id, region)
                elif opts.invariant_domain == "octagon":
                    inv.conjoin(label_id, region)
        return inv

    def synthesize(
        self,
        program: ProgramLike,
        options: Optional[AnalysisOptions] = None,
        *,
        check_concentration: bool = False,
        **overrides: Any,
    ) -> CostAnalysisResult:
        """Stage 4: the rich in-process result (program, CFG, invariant
        map, :class:`BoundResult` objects, warnings).

        Unlike :meth:`analyze` this bypasses the cache and the process
        pool — it exists to hand back the intermediate artifacts the
        flat report cannot carry.  Degree escalation, the coin-flip
        transformation and the session solver all still apply.  A
        parsed :class:`Program` is analyzed *as parsed* (no
        pretty-print round trip, so exact float literals survive).
        """
        from ..analysis.bounds import analyze as _analyze
        from ..core.solvers import use_solver
        from ..syntax.transform import replace_nondet

        opts = self._merged(options, overrides)
        if isinstance(program, Benchmark):
            return program.analyze_with(opts, check_concentration=check_concentration)
        if isinstance(program, str) and _NAME_RE.match(program):
            return get_benchmark(program).analyze_with(
                opts, check_concentration=check_concentration
            )
        parsed = self.parse(program) if isinstance(program, str) else program
        if not isinstance(parsed, Program):
            raise TypeError(
                "program must be a benchmark name, source text, a Benchmark or a "
                f"parsed Program, got {type(program).__name__}"
            )
        if opts.nondet_prob is not None and parsed.has_nondeterminism():
            parsed = replace_nondet(parsed, prob=opts.nondet_prob)
        result: Optional[CostAnalysisResult] = None
        diagnostics = None
        with use_solver(opts.solver):
            for index, degree in enumerate(opts.degree_plan(default=2)):
                result = _analyze(
                    parsed,
                    init=dict(opts.init) if opts.init is not None else {},
                    invariants=dict(opts.invariants) if opts.invariants else None,
                    degree=degree,
                    auto_invariants=opts.auto_invariants,
                    invariant_domain=opts.invariant_domain,
                    check_concentration=check_concentration,
                    compute_lower=opts.compute_lower,
                    max_multiplicands=opts.max_multiplicands,
                    mode=opts.mode if opts.mode is not None else "auto",
                    # Lint once, on the first degree — the program and
                    # invariants don't change across escalation steps.
                    check=opts.check if index == 0 else "off",
                )
                if index == 0:
                    diagnostics = result.diagnostics
                if result.complete_for(opts.compute_lower):
                    break
            assert result is not None  # the degree plan is never empty
            # The escalation winner may be a later degree whose analyze()
            # call skipped the lint; carry the findings over.
            result.diagnostics = diagnostics
            # Once, on the final result only (see analyze_with).
            attach_tail_bound_for(result, opts)
        return result

    def __repr__(self) -> str:
        cache = getattr(self._cache, "root", None)
        return (
            f"Analyzer(jobs={self._jobs}, cache={str(cache) if cache else None!r}, "
            f"solver={self._options.solver!r})"
        )
