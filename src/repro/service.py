"""Long-lived JSON analysis service (``repro serve``).

A stdlib-only HTTP adapter over one shared
:class:`repro.api.Analyzer` session (which owns the content-addressed
result cache, the solver backend and the worker pool), so repeated
analysis traffic short-circuits to cache lookups instead of re-running
LP synthesis:

``POST /analyze``
    Body is one :class:`~repro.batch.spec.AnalysisRequest` object
    (same JSON shape as a spec-file task), a list of tasks, or a full
    ``{"defaults": ..., "tasks": ...}`` spec (suite expansion
    included).  A single request returns its ``AnalysisReport`` JSON —
    byte-identical to what the CLI/engine produce for the same request
    against the same cache; a multi-task body returns
    ``{"schema": "repro-service/v2", "reports": [...]}``.
``GET /benchmarks``
    The benchmark registry (names, categories, degrees, anchors).
``GET /options/defaults``
    The :class:`repro.api.AnalysisOptions` defaults as JSON — what an
    omitted field in a POSTed task means.
``GET /version``
    repro + schema versions and the registered LP solver backends.
``GET /cache/stats``
    Live counters + disk census of the backing store.
``GET /healthz``
    Liveness probe with version and uptime.

Analysis failures (bad benchmark name, parse errors, infeasible LPs)
are *not* HTTP errors: they come back as structured reports with
``status: "error"`` inside a 200 response, exactly as in batch output.
HTTP 400 is reserved for malformed envelopes (bad JSON, unknown
request fields), 404/405 for bad routes.

``ThreadingHTTPServer`` handles each connection on its own thread; the
shared :class:`~repro.cache.ResultCache` is thread-safe and the engine
is re-entrant.  Per-task ``timeout_s`` budgets *are* enforced on
handler threads: SIGALRM is main-thread-only, so the engine arms the
cooperative deadline of :mod:`repro.deadline`, checked at the
synthesis/simulation checkpoints — a blown budget surfaces as a
``status: "timeout"`` report exactly as in batch runs (the overshoot
is bounded by the longest uninterruptible LP step, not by the task).
"""

from __future__ import annotations

import json
import sys
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Mapping, Optional, Tuple
from urllib.parse import urlparse

from .api import AnalysisOptions, Analyzer, version_info
from .batch import AnalysisRequest, requests_from_spec

__all__ = ["AnalysisHTTPServer", "create_server", "run_server", "serve"]

SERVICE_SCHEMA = "repro-service/v2"


class AnalysisHTTPServer(ThreadingHTTPServer):
    """HTTP server whose handlers share one ``Analyzer`` session."""

    daemon_threads = True

    def __init__(
        self,
        address,
        jobs: int = 1,
        cache=None,
        verbose: bool = False,
        analyzer: Optional[Analyzer] = None,
    ):
        super().__init__(address, _Handler)
        self._owns_analyzer = analyzer is None
        if analyzer is None:
            analyzer = Analyzer(cache=cache, jobs=jobs)
        self.analyzer = analyzer
        self.verbose = verbose
        self.started = time.time()

    @property
    def jobs(self) -> int:
        return self.analyzer.jobs

    @property
    def cache(self):
        return self.analyzer.cache

    @property
    def port(self) -> int:
        return self.server_address[1]

    def server_close(self) -> None:  # noqa: D102 - stdlib override
        super().server_close()
        # Only release a session this server created; a lent Analyzer
        # (create_server(analyzer=...)) stays usable by its owner.
        if self._owns_analyzer:
            self.analyzer.close()


def _benchmark_listing() -> List[Dict[str, Any]]:
    from .programs import all_benchmarks

    return [
        {
            "name": bench.name,
            "title": bench.title,
            "category": bench.category,
            "degree": bench.degree,
            "mode": bench.mode,
            "nondeterministic": bench.has_nondeterminism,
            "init": dict(bench.init),
        }
        for bench in all_benchmarks()
    ]


def _parse_analyze_body(body: Any) -> Tuple[List[AnalysisRequest], bool]:
    """Expand a ``POST /analyze`` body into engine requests.

    Returns ``(requests, single)``; ``single`` marks the
    one-request-object form whose response is the bare report.
    """
    if isinstance(body, Mapping) and "tasks" not in body and "suite" not in body:
        request = AnalysisRequest.from_dict(body)
        request.validate()
        return [request], True
    if isinstance(body, Mapping) and "suite" in body and "tasks" not in body:
        return requests_from_spec([dict(body)]), False
    return requests_from_spec(body), False


class _Handler(BaseHTTPRequestHandler):
    server: AnalysisHTTPServer

    # Keep-alive is safe: every response carries Content-Length.
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        if self.server.verbose:
            sys.stderr.write(f"[serve] {self.address_string()} {format % args}\n")

    # -- plumbing -------------------------------------------------------

    def _send_json(self, status: int, payload: Mapping[str, Any]) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> Optional[Any]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            # The unread body would desynchronize a keep-alive
            # connection (its bytes parse as the next request line).
            self.close_connection = True
            self._send_error_json(400, "invalid Content-Length header")
            return None
        if length <= 0:
            self.close_connection = True
            self._send_error_json(400, "empty request body; expected JSON")
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError as exc:
            self._send_error_json(400, f"invalid JSON body: {exc}")
            return None

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        path = urlparse(self.path).path.rstrip("/") or "/"
        if path == "/healthz":
            from . import __version__

            cache = self.server.cache
            self._send_json(
                200,
                {
                    "status": "ok",
                    "schema": SERVICE_SCHEMA,
                    "version": __version__,
                    "jobs": self.server.jobs,
                    "cache": str(cache.root) if cache is not None else None,
                    "uptime_s": round(time.time() - self.server.started, 3),
                },
            )
        elif path == "/benchmarks":
            listing = _benchmark_listing()
            self._send_json(
                200, {"schema": SERVICE_SCHEMA, "count": len(listing), "benchmarks": listing}
            )
        elif path == "/options/defaults":
            self._send_json(
                200, {"schema": SERVICE_SCHEMA, "defaults": AnalysisOptions().to_dict()}
            )
        elif path == "/version":
            payload = version_info()
            payload["schemas"]["service"] = SERVICE_SCHEMA
            self._send_json(200, {"schema": SERVICE_SCHEMA, **payload})
        elif path == "/cache/stats":
            cache = self.server.cache
            if cache is None:
                self._send_json(200, {"schema": SERVICE_SCHEMA, "enabled": False})
            else:
                self._send_json(
                    200, {"schema": SERVICE_SCHEMA, "enabled": True, **cache.stats().to_dict()}
                )
        else:
            self._send_error_json(404, f"unknown path {path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        path = urlparse(self.path).path.rstrip("/")
        if path != "/analyze":
            self._send_error_json(404, f"unknown path {path!r}; POST /analyze")
            return
        body = self._read_body()
        if body is None:
            return
        try:
            requests, single = _parse_analyze_body(body)
        except (TypeError, ValueError) as exc:
            self._send_error_json(400, f"invalid analysis request: {exc}")
            return
        if not requests:
            self._send_error_json(400, "request expands to no tasks")
            return
        # --jobs applies to multi-task bodies only: fanning a
        # single-request POST across the pool would cost more than the
        # analysis it parallelizes.
        reports = self.server.analyzer.analyze_batch(
            requests, jobs=None if len(requests) > 1 else 1
        )
        if single:
            self._send_json(200, reports[0].to_dict())
        else:
            self._send_json(
                200,
                {
                    "schema": SERVICE_SCHEMA,
                    "tasks": len(reports),
                    "failed": sum(not r.ok for r in reports),
                    "reports": [r.to_dict() for r in reports],
                },
            )


def create_server(
    host: str = "127.0.0.1",
    port: int = 8095,
    jobs: int = 1,
    cache=None,
    verbose: bool = False,
    analyzer: Optional[Analyzer] = None,
) -> AnalysisHTTPServer:
    """Bind (but do not run) an analysis server; ``port=0`` picks a
    free port (read it back from ``server.port``).

    Pass an :class:`repro.api.Analyzer` to serve an existing session
    (its cache, solver and pool); ``jobs``/``cache`` are the shorthand
    that builds one.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return AnalysisHTTPServer(
        (host, port), jobs=jobs, cache=cache, verbose=verbose, analyzer=analyzer
    )


def run_server(server: AnalysisHTTPServer) -> int:
    """Run an already-bound server until interrupted."""
    host = server.server_address[0]
    where = f"http://{host}:{server.port}"
    cache = server.cache
    cache_line = f"cache at {cache.root}" if cache is not None else "cache disabled"
    print(
        f"repro serve: listening on {where} (jobs={server.jobs}, {cache_line})",
        file=sys.stderr,
    )
    print(f"try: curl -s {where}/healthz", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    finally:
        server.server_close()
    return 0


def serve(
    host: str = "127.0.0.1",
    port: int = 8095,
    jobs: int = 1,
    cache=None,
    verbose: bool = True,
    analyzer: Optional[Analyzer] = None,
) -> int:
    """Bind and run the service until interrupted (convenience API)."""
    return run_server(
        create_server(
            host=host, port=port, jobs=jobs, cache=cache, verbose=verbose, analyzer=analyzer
        )
    )
