"""Long-lived JSON analysis service (``repro serve``).

A stdlib-only HTTP adapter over one shared
:class:`repro.api.Analyzer` session (which owns the content-addressed
result cache, the solver backend and the worker pool), so repeated
analysis traffic short-circuits to cache lookups instead of re-running
LP synthesis:

``POST /analyze``
    Body is one :class:`~repro.batch.spec.AnalysisRequest` object
    (same JSON shape as a spec-file task), a list of tasks, or a full
    ``{"defaults": ..., "tasks": ...}`` spec (suite expansion
    included).  A single request returns its ``AnalysisReport`` JSON —
    byte-identical to what the CLI/engine produce for the same request
    against the same cache; a multi-task body returns
    ``{"schema": "repro-service/v2", "reports": [...]}``.
``POST /lint``
    Same body shapes as ``/analyze``, but runs only the static checks
    of :mod:`repro.check` (abstract interpretation + lint rules +
    invariant validation) — no LP work, no cache.  A single request
    returns its diagnostics directly; a multi-task body returns
    per-target diagnostics with error/warning tallies.
``GET /benchmarks``
    The benchmark registry (names, categories, degrees, anchors).
``GET /options/defaults``
    The :class:`repro.api.AnalysisOptions` defaults as JSON — what an
    omitted field in a POSTed task means.
``GET /version``
    repro + schema versions and the registered LP solver backends.
``GET /cache/stats``
    Live counters + disk census of the backing store.
``GET /healthz``
    Liveness probe with version and uptime.

Analysis failures (bad benchmark name, parse errors, infeasible LPs)
are *not* HTTP errors: they come back as structured reports with
``status: "error"`` inside a 200 response, exactly as in batch output.
HTTP 400 is reserved for malformed envelopes (bad JSON, unknown
request fields), 404/405 for bad routes.

``ThreadingHTTPServer`` handles each connection on its own thread; the
shared :class:`~repro.cache.ResultCache` is thread-safe and the engine
is re-entrant.  Per-task ``timeout_s`` budgets *are* enforced on
handler threads: SIGALRM is main-thread-only, so the engine arms the
cooperative deadline of :mod:`repro.deadline`, checked at the
synthesis/simulation checkpoints — a blown budget surfaces as a
``status: "timeout"`` report exactly as in batch runs (the overshoot
is bounded by the longest uninterruptible LP step, not by the task).

Resilience (see ``docs/resilience.md``):

* **Admission control** — at most ``max_inflight`` POSTs execute
  concurrently; beyond that the service sheds load *immediately* with
  ``429`` + a ``Retry-After`` hint instead of piling up handler
  threads.  GETs are never shed.
* **Single-flight coalescing** — concurrent identical single-request
  POSTs (same cache fingerprint) collapse onto one leader's solve; the
  followers park without consuming an admission slot and answer from
  the store the leader populated.  N racers, one LP solve, N
  byte-identical responses, exact hit/miss counters.
* **Graceful drain** — SIGTERM/Ctrl-C stops accepting work (new POSTs
  get ``503`` + ``Connection: close``), waits up to the drain deadline
  for in-flight requests, prints the cache hit/miss summary, and exits
  ``0``.
"""

from __future__ import annotations

import json
import math
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Mapping, Optional, Tuple
from urllib.parse import urlparse

from .api import AnalysisOptions, Analyzer, version_info
from .batch import AnalysisRequest, requests_from_spec
from .resilience import AdmissionController, SingleFlight

__all__ = ["AnalysisHTTPServer", "create_server", "run_server", "serve"]

SERVICE_SCHEMA = "repro-service/v2"

#: Default ceiling on concurrently executing POSTs.
DEFAULT_MAX_INFLIGHT = 32
#: Default seconds the drain path waits for in-flight requests.
DEFAULT_DRAIN_TIMEOUT_S = 10.0


class AnalysisHTTPServer(ThreadingHTTPServer):
    """HTTP server whose handlers share one ``Analyzer`` session."""

    daemon_threads = True

    def __init__(
        self,
        address,
        jobs: int = 1,
        cache=None,
        verbose: bool = False,
        analyzer: Optional[Analyzer] = None,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S,
    ):
        super().__init__(address, _Handler)
        self._owns_analyzer = analyzer is None
        if analyzer is None:
            analyzer = Analyzer(cache=cache, jobs=jobs)
        self.analyzer = analyzer
        self.verbose = verbose
        self.started = time.time()
        self.admission = AdmissionController(max_inflight)
        self.single_flight = SingleFlight()
        self.drain_timeout_s = drain_timeout_s
        self.draining = threading.Event()
        # Request-level in-flight accounting, distinct from admission
        # slots: coalesced followers hold no slot but must still be
        # awaited by the drain path; idle keep-alive connections hold
        # neither and must NOT block it.
        self._req_cond = threading.Condition()
        self._req_inflight = 0

    @property
    def jobs(self) -> int:
        return self.analyzer.jobs

    @property
    def cache(self):
        return self.analyzer.cache

    @property
    def port(self) -> int:
        return self.server_address[1]

    # -- drain ----------------------------------------------------------

    def request_started(self) -> None:
        with self._req_cond:
            self._req_inflight += 1

    def request_finished(self) -> None:
        with self._req_cond:
            self._req_inflight -= 1
            self._req_cond.notify_all()

    @property
    def requests_inflight(self) -> int:
        with self._req_cond:
            return self._req_inflight

    def begin_drain(self) -> None:
        """Stop accepting *work*; safe to call from a signal handler.

        The accept loop must keep running while requests are still in
        flight — a connection arriving mid-drain deserves an explicit
        503, not a silent hang in the kernel backlog.  So draining is
        flag-first: handlers start refusing work immediately, and a
        helper thread calls ``shutdown()`` only once every in-flight
        request finished (or the drain deadline expired).  The helper
        thread also sidesteps the classic deadlock of calling
        ``shutdown()`` from the ``serve_forever`` thread itself.
        """
        if self.draining.is_set():
            return
        self.draining.set()

        def _stop_accepting() -> None:
            self.wait_drained(self.drain_timeout_s)
            self.shutdown()

        threading.Thread(target=_stop_accepting, daemon=True).start()

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        """Block until every in-flight request finished (or timeout)."""
        with self._req_cond:
            return self._req_cond.wait_for(lambda: self._req_inflight == 0, timeout=timeout)

    def server_close(self) -> None:  # noqa: D102 - stdlib override
        super().server_close()
        # Only release a session this server created; a lent Analyzer
        # (create_server(analyzer=...)) stays usable by its owner.
        if self._owns_analyzer:
            self.analyzer.close()


def _benchmark_listing() -> List[Dict[str, Any]]:
    from .programs import all_benchmarks

    return [
        {
            "name": bench.name,
            "title": bench.title,
            "category": bench.category,
            "degree": bench.degree,
            "mode": bench.mode,
            "nondeterministic": bench.has_nondeterminism,
            "init": dict(bench.init),
        }
        for bench in all_benchmarks()
    ]


def _parse_analyze_body(body: Any) -> Tuple[List[AnalysisRequest], bool]:
    """Expand a ``POST /analyze`` body into engine requests.

    Returns ``(requests, single)``; ``single`` marks the
    one-request-object form whose response is the bare report.
    """
    if isinstance(body, Mapping) and "tasks" not in body and "suite" not in body:
        request = AnalysisRequest.from_dict(body)
        request.validate()
        return [request], True
    if isinstance(body, Mapping) and "suite" in body and "tasks" not in body:
        return requests_from_spec([dict(body)]), False
    return requests_from_spec(body), False


class _Handler(BaseHTTPRequestHandler):
    server: AnalysisHTTPServer

    # Keep-alive is safe: every response carries Content-Length.
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        if self.server.verbose:
            sys.stderr.write(f"[serve] {self.address_string()} {format % args}\n")

    # -- plumbing -------------------------------------------------------

    def _send_json(
        self,
        status: int,
        payload: Mapping[str, Any],
        extra_headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if extra_headers:
            for name, value in extra_headers.items():
                self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_throttled(self) -> None:
        """429 + Retry-After: the admission gate is full."""
        admission = self.server.admission
        self.close_connection = True
        self._send_json(
            429,
            {
                "error": "server is at capacity; retry later",
                "inflight": admission.inflight,
                "max_inflight": admission.limit,
            },
            extra_headers={
                "Retry-After": str(int(math.ceil(admission.retry_after_s))),
                "Connection": "close",
            },
        )

    def _send_draining(self) -> None:
        """503 + Connection: close — the server is shutting down."""
        self.close_connection = True
        self._send_json(
            503,
            {"error": "service is draining; not accepting new work"},
            extra_headers={"Connection": "close"},
        )

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> Optional[Any]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            # The unread body would desynchronize a keep-alive
            # connection (its bytes parse as the next request line).
            self.close_connection = True
            self._send_error_json(400, "invalid Content-Length header")
            return None
        if length <= 0:
            self.close_connection = True
            self._send_error_json(400, "empty request body; expected JSON")
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError as exc:
            self._send_error_json(400, f"invalid JSON body: {exc}")
            return None

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        self.server.request_started()
        try:
            self._do_get()
        finally:
            self.server.request_finished()

    def _do_get(self) -> None:
        path = urlparse(self.path).path.rstrip("/") or "/"
        if path == "/healthz":
            from . import __version__

            cache = self.server.cache
            self._send_json(
                200,
                {
                    "status": "draining" if self.server.draining.is_set() else "ok",
                    "schema": SERVICE_SCHEMA,
                    "version": __version__,
                    "jobs": self.server.jobs,
                    "cache": str(cache.root) if cache is not None else None,
                    "uptime_s": round(time.time() - self.server.started, 3),
                    "inflight": self.server.admission.inflight,
                    "max_inflight": self.server.admission.limit,
                    "rejected": self.server.admission.rejected,
                    "coalesced": self.server.single_flight.coalesced,
                },
            )
        elif path == "/benchmarks":
            listing = _benchmark_listing()
            self._send_json(
                200, {"schema": SERVICE_SCHEMA, "count": len(listing), "benchmarks": listing}
            )
        elif path == "/options/defaults":
            self._send_json(
                200, {"schema": SERVICE_SCHEMA, "defaults": AnalysisOptions().to_dict()}
            )
        elif path == "/version":
            payload = version_info()
            payload["schemas"]["service"] = SERVICE_SCHEMA
            self._send_json(200, {"schema": SERVICE_SCHEMA, **payload})
        elif path == "/cache/stats":
            cache = self.server.cache
            if cache is None:
                self._send_json(200, {"schema": SERVICE_SCHEMA, "enabled": False})
            else:
                self._send_json(
                    200, {"schema": SERVICE_SCHEMA, "enabled": True, **cache.stats().to_dict()}
                )
        else:
            self._send_error_json(404, f"unknown path {path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        self.server.request_started()
        try:
            self._do_post()
        finally:
            self.server.request_finished()

    def _do_post(self) -> None:
        path = urlparse(self.path).path.rstrip("/")
        if path == "/lint":
            self._post_lint()
            return
        if path != "/analyze":
            self._send_error_json(404, f"unknown path {path!r}; POST /analyze or POST /lint")
            return
        if self.server.draining.is_set():
            self._send_draining()
            return
        body = self._read_body()
        if body is None:
            return
        try:
            requests, single = _parse_analyze_body(body)
        except (TypeError, ValueError) as exc:
            self._send_error_json(400, f"invalid analysis request: {exc}")
            return
        if not requests:
            self._send_error_json(400, "request expands to no tasks")
            return
        if single:
            # Single-request POSTs coalesce by cache fingerprint: N
            # concurrent identical racers cost one LP solve.
            key = self.server.analyzer.request_cache_key(requests[0])
            if key is not None:
                self._analyze_coalesced(requests[0], key)
                return
        if not self.server.admission.try_acquire():
            self._send_throttled()
            return
        try:
            # --jobs applies to multi-task bodies only: fanning a
            # single-request POST across the pool would cost more than
            # the analysis it parallelizes.
            reports = self.server.analyzer.analyze_batch(
                requests, jobs=None if len(requests) > 1 else 1
            )
        finally:
            self.server.admission.release()
        if single:
            self._send_json(200, reports[0].to_dict())
        else:
            self._send_json(
                200,
                {
                    "schema": SERVICE_SCHEMA,
                    "tasks": len(reports),
                    "failed": sum(not r.ok for r in reports),
                    "reports": [r.to_dict() for r in reports],
                },
            )

    def _post_lint(self) -> None:
        """Static checks only: same body shapes as ``/analyze``, no LP
        work, no cache — diagnostics come back immediately."""
        from .check import check_request
        from .errors import ReproError

        if self.server.draining.is_set():
            self._send_draining()
            return
        body = self._read_body()
        if body is None:
            return
        try:
            requests, single = _parse_analyze_body(body)
        except (TypeError, ValueError) as exc:
            self._send_error_json(400, f"invalid lint request: {exc}")
            return
        if not requests:
            self._send_error_json(400, "request expands to no tasks")
            return
        if not self.server.admission.try_acquire():
            self._send_throttled()
            return
        try:
            targets = []
            for request in requests:
                try:
                    result = check_request(request)
                except (KeyError, ValueError, ReproError) as exc:
                    self._send_error_json(
                        400, f"invalid task {request.display_name!r}: {exc}"
                    )
                    return
                targets.append(
                    {
                        "name": request.display_name,
                        "diagnostics": result.to_dicts(),
                        "errors": len(result.errors),
                        "warnings": len(result.warnings),
                    }
                )
        finally:
            self.server.admission.release()
        if single:
            self._send_json(200, {"schema": SERVICE_SCHEMA, **targets[0]})
            return
        self._send_json(
            200,
            {
                "schema": SERVICE_SCHEMA,
                "tasks": len(targets),
                "errors": sum(t["errors"] for t in targets),
                "warnings": sum(t["warnings"] for t in targets),
                "targets": targets,
            },
        )

    def _analyze_coalesced(self, request: AnalysisRequest, key: str) -> None:
        """Run one cacheable request with single-flight coalescing.

        The leader takes an admission slot and solves; followers park
        slot-free on the flight, then answer from the cache entry the
        leader stored (an ordinary hit — counters stay exact: 1 miss +
        N-1 hits for N cold racers).  A follower that still misses
        (the leader errored, or its report was uncacheable) takes the
        normal admitted path itself.
        """
        flight, leader = self.server.single_flight.join(key)
        if leader:
            if not self.server.admission.try_acquire():
                # Propagate the shed to every racer: they would only
                # pile onto the same saturated gate.
                self.server.single_flight.finish(flight, "throttled")
                self._send_throttled()
                return
            outcome = "error"
            try:
                reports = self.server.analyzer.analyze_batch([request], jobs=1)
                outcome = "done"
            finally:
                self.server.admission.release()
                self.server.single_flight.finish(flight, outcome)
            self._send_json(200, reports[0].to_dict())
            return
        self.server.single_flight.wait(flight)
        if flight.outcome == "throttled":
            self._send_throttled()
            return
        report = self.server.analyzer.cached_report(key, request)
        if report is not None:
            self._send_json(200, report.to_dict())
            return
        # Leader failed to populate the store (error report, cache
        # write failure): run it ourselves, under admission.
        if not self.server.admission.try_acquire():
            self._send_throttled()
            return
        try:
            reports = self.server.analyzer.analyze_batch([request], jobs=1)
        finally:
            self.server.admission.release()
        self._send_json(200, reports[0].to_dict())


def create_server(
    host: str = "127.0.0.1",
    port: int = 8095,
    jobs: int = 1,
    cache=None,
    verbose: bool = False,
    analyzer: Optional[Analyzer] = None,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S,
) -> AnalysisHTTPServer:
    """Bind (but do not run) an analysis server; ``port=0`` picks a
    free port (read it back from ``server.port``).

    Pass an :class:`repro.api.Analyzer` to serve an existing session
    (its cache, solver and pool); ``jobs``/``cache`` are the shorthand
    that builds one.  ``max_inflight`` bounds concurrently executing
    POSTs (the rest are shed with 429); ``drain_timeout_s`` is how long
    a SIGTERM/Ctrl-C shutdown waits for in-flight requests.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return AnalysisHTTPServer(
        (host, port),
        jobs=jobs,
        cache=cache,
        verbose=verbose,
        analyzer=analyzer,
        max_inflight=max_inflight,
        drain_timeout_s=drain_timeout_s,
    )


def _print_cache_summary(server: AnalysisHTTPServer) -> None:
    cache = server.cache
    if cache is None:
        return
    print(
        f"repro serve: cache: {cache.hits} hits, {cache.misses} misses ({cache.root})",
        file=sys.stderr,
    )


def run_server(server: AnalysisHTTPServer) -> int:
    """Run an already-bound server until SIGTERM/SIGINT, then drain.

    A first signal stops the accept loop and waits up to
    ``server.drain_timeout_s`` for in-flight requests (new POSTs get
    503 meanwhile); the cache hit/miss summary is printed and the exit
    code is 0 on a clean shutdown.  Signal handlers are installed only
    when running on the main thread (tests drive ``serve_forever``
    from daemon threads and handle shutdown themselves).
    """
    host = server.server_address[0]
    where = f"http://{host}:{server.port}"
    cache = server.cache
    cache_line = f"cache at {cache.root}" if cache is not None else "cache disabled"
    print(
        f"repro serve: listening on {where} (jobs={server.jobs}, {cache_line})",
        file=sys.stderr,
    )
    print(f"try: curl -s {where}/healthz", file=sys.stderr)

    def _on_signal(signum, frame):
        name = signal.Signals(signum).name
        print(f"repro serve: {name} received, draining", file=sys.stderr)
        server.begin_drain()

    previous: List[Tuple[int, Any]] = []
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous.append((signum, signal.signal(signum, _on_signal)))
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        # Only reachable when no SIGINT handler was installed (non-main
        # thread embedding); still drain before closing.
        print("repro serve: interrupt received, draining", file=sys.stderr)
        server.draining.set()
    finally:
        if not server.wait_drained(server.drain_timeout_s):
            print(
                f"repro serve: drain deadline ({server.drain_timeout_s:g}s) expired with "
                f"{server.requests_inflight} request(s) still in flight",
                file=sys.stderr,
            )
        server.server_close()
        _print_cache_summary(server)
        print("repro serve: shutdown complete", file=sys.stderr)
        for signum, handler in previous:
            signal.signal(signum, handler)
    return 0


def serve(
    host: str = "127.0.0.1",
    port: int = 8095,
    jobs: int = 1,
    cache=None,
    verbose: bool = True,
    analyzer: Optional[Analyzer] = None,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S,
) -> int:
    """Bind and run the service until interrupted (convenience API)."""
    return run_server(
        create_server(
            host=host,
            port=port,
            jobs=jobs,
            cache=cache,
            verbose=verbose,
            analyzer=analyzer,
            max_inflight=max_inflight,
            drain_timeout_s=drain_timeout_s,
        )
    )
