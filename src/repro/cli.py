"""Command-line interface.

Usage::

    python -m repro analyze FILE [--init x=100,y=0] [--degree 2]
                                 [--invariant LABEL:COND ...]
                                 [--mode auto|signed|nonnegative]
                                 [--concentration] [--no-lower]
    python -m repro simulate FILE --init x=100 [--runs 1000] [--seed 0]
    python -m repro cfg FILE
    python -m repro bench NAME [--init x=100]
    python -m repro list

Program files use the surface syntax of the paper's Figure 1 grammar
(see README).  Invariants may also be embedded in the program file as
comment annotations::

    # @invariant 1: x >= 0
    # @invariant 4: x >= 0 and 1 - y >= 0
"""

from __future__ import annotations

import argparse
import re
import sys
from typing import Dict, List, Optional

from .analysis import analyze
from .programs import all_benchmarks, get_benchmark
from .semantics import build_cfg, simulate
from .syntax import parse_program

__all__ = ["main", "parse_valuation", "extract_invariant_annotations"]

_ANNOTATION_RE = re.compile(r"^\s*#\s*@invariant\s+(\d+)\s*:\s*(.+?)\s*$", re.MULTILINE)


def parse_valuation(text: Optional[str]) -> Dict[str, float]:
    """Parse ``x=100,y=0`` into a valuation dict."""
    if not text:
        return {}
    out: Dict[str, float] = {}
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" not in chunk:
            raise ValueError(f"malformed assignment {chunk!r}; expected var=value")
        name, value = chunk.split("=", 1)
        out[name.strip()] = float(value)
    return out


def extract_invariant_annotations(source: str) -> Dict[int, str]:
    """Collect ``# @invariant LABEL: COND`` comment annotations."""
    return {int(label): cond for label, cond in _ANNOTATION_RE.findall(source)}


def _read_program(path: str):
    with open(path) as handle:
        source = handle.read()
    return source, parse_program(source, name=path)


def _cmd_analyze(args: argparse.Namespace) -> int:
    source, program = _read_program(args.file)
    invariants = extract_invariant_annotations(source)
    for spec in args.invariant or []:
        label, _, cond = spec.partition(":")
        invariants[int(label)] = cond.strip()
    result = analyze(
        program,
        init=parse_valuation(args.init),
        invariants=invariants or None,
        degree=args.degree,
        mode=args.mode,
        compute_lower=not args.no_lower,
        check_concentration=args.concentration,
    )
    print(result.summary())
    return 0 if result.upper is not None else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    _, program = _read_program(args.file)
    if program.has_nondeterminism():
        print(
            "error: program has nondeterministic choices; replace them "
            "(repro.replace_nondet) or analyze instead",
            file=sys.stderr,
        )
        return 1
    cfg = build_cfg(program)
    stats = simulate(cfg, parse_valuation(args.init), runs=args.runs, seed=args.seed)
    print(f"runs:             {stats.runs}")
    print(f"mean cost:        {stats.mean:.6g}")
    print(f"std:              {stats.std:.6g}")
    print(f"min / max:        {stats.min:.6g} / {stats.max:.6g}")
    print(f"mean steps:       {stats.mean_steps:.6g}")
    print(f"termination rate: {stats.termination_rate:.3f}")
    return 0


def _cmd_cfg(args: argparse.Namespace) -> int:
    _, program = _read_program(args.file)
    print(build_cfg(program).pretty())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    bench = get_benchmark(args.name)
    init = parse_valuation(args.init) or None
    result = bench.analyze(init=init)
    print(f"# {bench.title}")
    print(result.summary())
    if bench.paper_upper:
        print(f"paper upper: {bench.paper_upper}")
    if bench.paper_lower:
        print(f"paper lower: {bench.paper_lower}")
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    for bench in all_benchmarks():
        nd = " [nondet]" if bench.has_nondeterminism else ""
        print(f"{bench.name:20s} ({bench.category}, degree {bench.degree}){nd}  {bench.title}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Expected-cost analysis of probabilistic programs (PLDI 2019)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze", help="synthesize PUCS/PLCS bounds for a program file")
    p_analyze.add_argument("file")
    p_analyze.add_argument("--init", help="initial valuation, e.g. x=100,y=0")
    p_analyze.add_argument("--degree", type=int, default=2)
    p_analyze.add_argument("--mode", choices=["auto", "signed", "nonnegative"], default="auto")
    p_analyze.add_argument(
        "--invariant", action="append", metavar="LABEL:COND", help="per-label invariant annotation"
    )
    p_analyze.add_argument("--concentration", action="store_true", help="also synthesize an RSM")
    p_analyze.add_argument("--no-lower", action="store_true", help="skip the PLCS lower bound")
    p_analyze.set_defaults(func=_cmd_analyze)

    p_sim = sub.add_parser("simulate", help="Monte-Carlo simulation of a program file")
    p_sim.add_argument("file")
    p_sim.add_argument("--init", help="initial valuation, e.g. x=100")
    p_sim.add_argument("--runs", type=int, default=1000)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.set_defaults(func=_cmd_simulate)

    p_cfg = sub.add_parser("cfg", help="print the labelled control-flow graph")
    p_cfg.add_argument("file")
    p_cfg.set_defaults(func=_cmd_cfg)

    p_bench = sub.add_parser("bench", help="analyze a named paper benchmark")
    p_bench.add_argument("name")
    p_bench.add_argument("--init", help="override the anchor valuation")
    p_bench.set_defaults(func=_cmd_bench)

    p_list = sub.add_parser("list", help="list the paper benchmarks")
    p_list.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
