"""Command-line interface.

Usage::

    python -m repro analyze FILE [--init x=100,y=0] [--degree 2|auto]
                                 [--max-degree 4] [--invariant LABEL:COND ...]
                                 [--mode auto|signed|nonnegative]
                                 [--max-multiplicands K] [--solver NAME]
                                 [--concentration] [--no-lower]
                                 [--tails] [--tail-horizon N] [--tail-probes T1,T2]
    python -m repro simulate FILE --init x=100 [--runs 1000] [--seed 0]
                                  [--max-steps 1000000]
    python -m repro cfg FILE
    python -m repro invariants FILE [--init x=100] [--domain interval|octagon]
                                    [--json]
    python -m repro lint FILE|SPEC.json [--init x=100] [--invariant LABEL:COND ...]
                                        [--json] [--strict]
    python -m repro lint --benchmark NAME [--json] [--strict]
    python -m repro bench NAME [--init x=100] [--degree D|auto]
                               [--max-multiplicands K] [--cache-dir DIR]
    python -m repro bench --all [--jobs N]
    python -m repro batch SPEC.json [--jobs N] [--timeout S] [--output OUT.json]
                                    [--no-cache] [--cache-dir DIR]
    python -m repro serve [--host H] [--port P] [--jobs N]
                          [--no-cache] [--cache-dir DIR]
    python -m repro cache stats [--cache-dir DIR] [--json]
    python -m repro cache clear [--cache-dir DIR]
    python -m repro fuzz [--seed N] [--count K] [--config KEY=VALUE ...]
                         [--inject-defect NAME] [--corpus-dir DIR] [--json]
                         [--invariant-domain interval|octagon]
    python -m repro list

Program files use the surface syntax of the paper's Figure 1 grammar
(see README).  Invariants may also be embedded in the program file as
comment annotations::

    # @invariant 1: x >= 0
    # @invariant 4: x >= 0 and 1 - y >= 0

User-input errors (malformed ``--init``/``--invariant``/``--degree``
values, unreadable files, bad spec JSON) print a one-line ``error:``
message and exit with status 2; analysis failures exit with status 1.
``repro lint`` follows the same contract: 0 when clean, 1 when the
findings demand attention (any error, or any finding at all under
``--strict``), 2 on malformed input.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from typing import Dict, List, Optional, Tuple, Union

from .api import AnalysisOptions, Analyzer
from .batch import AnalysisReport, load_spec
from .errors import ReproError
from .programs import all_benchmarks, get_benchmark
from .semantics import build_cfg, simulate
from .syntax import parse_program

__all__ = ["main", "parse_valuation", "extract_invariant_annotations"]

_ANNOTATION_RE = re.compile(r"^\s*#\s*@invariant\s+(\d+)\s*:\s*(.+?)\s*$", re.MULTILINE)


class CLIError(Exception):
    """A user-input problem: reported as one line on stderr, exit 2."""


def parse_valuation(text: Optional[str]) -> Dict[str, float]:
    """Parse ``x=100,y=0`` into a valuation dict."""
    if not text:
        return {}
    out: Dict[str, float] = {}
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" not in chunk:
            raise ValueError(f"malformed assignment {chunk!r}; expected var=value")
        name, value = chunk.split("=", 1)
        try:
            out[name.strip()] = float(value)
        except ValueError:
            raise ValueError(
                f"malformed assignment {chunk.strip()!r}; {value.strip()!r} is not a number"
            ) from None
    return out


def extract_invariant_annotations(source: str) -> Dict[int, str]:
    """Collect ``# @invariant LABEL: COND`` comment annotations."""
    return {int(label): cond for label, cond in _ANNOTATION_RE.findall(source)}


def _parse_cli_valuation(text: Optional[str], flag: str = "--init") -> Dict[str, float]:
    try:
        return parse_valuation(text)
    except ValueError as exc:
        raise CLIError(f"invalid {flag} value: {exc}") from None


def _parse_invariant_spec(spec: str) -> Tuple[int, str]:
    label, sep, cond = spec.partition(":")
    if not sep or not cond.strip():
        raise CLIError(
            f"invalid --invariant value {spec!r}; expected LABEL:COND (e.g. '1: x >= 0')"
        )
    try:
        label_id = int(label.strip())
    except ValueError:
        raise CLIError(
            f"invalid --invariant label {label.strip()!r}; must be an integer CFG label"
        ) from None
    return label_id, cond.strip()


def _make_cache(args: argparse.Namespace, default_on: bool):
    """Build the result cache an engine-backed command should use.

    ``--no-cache`` always wins; an explicit ``--cache-dir`` always
    enables; otherwise ``default_on`` decides (the heavy-traffic
    commands — ``batch`` and ``serve`` — cache by default, one-shot
    ``bench`` only on request).
    """
    if getattr(args, "no_cache", False):
        return None
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is None and not default_on:
        return None
    from .cache import ResultCache

    return ResultCache(cache_dir)


def _print_cache_summary(cache) -> None:
    # Process-local counters only — a disk census of a months-old store
    # is `repro cache stats`' job, not a per-run stderr line's.
    if cache is None:
        return
    print(
        f"cache: {cache.hits} hits, {cache.misses} misses ({cache.root})",
        file=sys.stderr,
    )


def _validate_solver(name: Optional[str]) -> Optional[str]:
    """Surface an unknown --solver as a one-line exit-2 error (with the
    registry's did-you-mean suggestion) before any work starts."""
    if name is None or name == "auto":
        return name
    from .core.solvers import get_backend

    try:
        get_backend(name)
    except KeyError as exc:
        raise CLIError(str(exc.args[0] if exc.args else exc)) from None
    return name


def _parse_degree(text: str) -> Union[int, str]:
    if text == "auto":
        return "auto"
    try:
        degree = int(text)
    except ValueError:
        raise CLIError(f"invalid --degree value {text!r}; expected a positive integer or 'auto'") from None
    if degree < 1:
        raise CLIError(f"invalid --degree value {text!r}; degree must be >= 1")
    return degree


def _read_program(path: str):
    try:
        with open(path) as handle:
            source = handle.read()
    except OSError as exc:
        raise CLIError(f"cannot read {path!r}: {exc.strerror or exc}") from None
    return source, parse_program(source, name=path)


def _cmd_analyze(args: argparse.Namespace) -> int:
    degree = _parse_degree(args.degree)
    if args.max_degree < 1:
        raise CLIError(f"invalid --max-degree value {args.max_degree}; must be >= 1")
    init = _parse_cli_valuation(args.init)
    source, program = _read_program(args.file)
    invariants = extract_invariant_annotations(source)
    for spec in args.invariant or []:
        label_id, cond = _parse_invariant_spec(spec)
        invariants[label_id] = cond

    tail_probes = None
    if args.tail_probes:
        try:
            tail_probes = [float(chunk) for chunk in args.tail_probes.split(",") if chunk.strip()]
        except ValueError:
            raise CLIError(
                f"invalid --tail-probes value {args.tail_probes!r}; expected t1,t2,..."
            ) from None
    options = AnalysisOptions(
        degree=degree,
        max_degree=args.max_degree,
        mode=args.mode,
        compute_lower=not args.no_lower,
        max_multiplicands=args.max_multiplicands,
        solver=_validate_solver(args.solver),
        invariants=invariants or None,
        invariant_domain=args.invariant_domain,
        init=init,
        tails=args.tails,
        tail_horizon=args.tail_horizon,
        tail_probes=tail_probes,
    )
    # The staged facade analyzes the parsed AST directly — exact float
    # literals, no cache/pool — and owns the auto-degree escalation.
    result = Analyzer(options).synthesize(program, check_concentration=args.concentration)
    degrees = options.degree_plan(default=2)
    if degree == "auto":
        print(f"degree:  {result.upper.degree if result.upper else degrees[-1]} (auto)")
        if result.upper is None:
            # Same wording as the batch engine's escalation warning.
            print(
                f"warning: degree escalation exhausted at d={args.max_degree} "
                "without a feasible bound for every requested side",
                file=sys.stderr,
            )
    print(result.summary())
    return 0 if result.upper is not None else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    init = _parse_cli_valuation(args.init)
    _, program = _read_program(args.file)
    if program.has_nondeterminism():
        print(
            "error: program has nondeterministic choices; replace them "
            "(repro.replace_nondet) or analyze instead",
            file=sys.stderr,
        )
        return 1
    if args.max_steps < 1:
        raise CLIError(f"invalid --max-steps value {args.max_steps}; must be >= 1")
    cfg = build_cfg(program)
    stats = simulate(
        cfg, init, runs=args.runs, seed=args.seed, max_steps=args.max_steps, engine=args.engine
    )
    print(f"runs:             {stats.runs}")
    print(f"engine:           {stats.engine}")
    if stats.terminated_runs > 0:
        print(f"mean cost:        {stats.mean:.6g}")
        print(f"std:              {stats.std:.6g}")
        print(f"min / max:        {stats.min:.6g} / {stats.max:.6g}")
    else:
        print("mean cost:        n/a (no run terminated)")
    print(f"mean steps:       {stats.mean_steps:.6g}")
    print(f"termination rate: {stats.termination_rate:.3f}")
    if stats.truncated:
        print(
            f"warning: {stats.truncated} of {stats.runs} runs were truncated at "
            f"{args.max_steps} steps and excluded from mean/std; their mean "
            f"partial cost was {stats.truncated_mean:.6g} (raise --max-steps)"
        )
    return 0


def _cmd_cfg(args: argparse.Namespace) -> int:
    _, program = _read_program(args.file)
    print(build_cfg(program).pretty())
    return 0


def _cmd_invariants(args: argparse.Namespace) -> int:
    from .invariants import generate_invariants

    init = _parse_cli_valuation(args.init)
    _, program = _read_program(args.file)
    cfg = build_cfg(program)
    inferred = generate_invariants(cfg, init, domain=args.domain)

    def rows(region):
        return [f"{g} >= 0" for poly in region.disjuncts for g in poly.constraints]

    if args.json:
        payload = {
            "schema": "repro-invariants/v1",
            "domain": args.domain,
            "labels": {
                str(label_id): rows(region)
                for label_id, region in sorted(inferred.items())
            },
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"domain: {args.domain}")
    for label_id in sorted(cfg.labels):
        if label_id not in inferred:
            print(f"label {label_id}: unreachable")
            continue
        constraints = rows(inferred.get(label_id))
        if not constraints:
            print(f"label {label_id}: true")
        else:
            print(f"label {label_id}:")
            for row in constraints:
                print(f"  {row}")
    return 0


def _lint_spec_results(path: str):
    """Lint every task of a batch spec; yields (task name, CheckResult)."""
    from .check import check_request

    try:
        requests = load_spec(path)
    except OSError as exc:
        raise CLIError(f"cannot read {path!r}: {exc.strerror or exc}") from None
    except json.JSONDecodeError as exc:
        raise CLIError(f"invalid JSON in {path!r}: {exc}") from None
    except ValueError as exc:
        raise CLIError(f"invalid spec {path!r}: {exc}") from None
    if not requests:
        raise CLIError(f"spec {path!r} contains no tasks")
    results = []
    for request in requests:
        name = request.display_name
        try:
            results.append((name, check_request(request)))
        except (KeyError, ValueError) as exc:
            raise CLIError(f"invalid task {name!r}: {exc}") from None
    return results


def _cmd_lint(args: argparse.Namespace) -> int:
    from .check import check_benchmark, check_program

    init = _parse_cli_valuation(args.init) or None

    if args.benchmark is not None:
        if args.target is not None:
            raise CLIError("give either a FILE/SPEC.json or --benchmark NAME, not both")
        try:
            bench = get_benchmark(args.benchmark)
        except KeyError as exc:
            raise CLIError(str(exc.args[0] if exc.args else exc)) from None
        results = [
            (
                bench.name,
                check_benchmark(bench, init=init, invariant_domain=args.invariant_domain),
            )
        ]
    elif args.target is None:
        raise CLIError("missing lint target: FILE, SPEC.json, or --benchmark NAME")
    elif args.target.endswith(".json"):
        if args.invariant:
            raise CLIError("--invariant applies to program files, not batch specs")
        results = _lint_spec_results(args.target)
    else:
        source, program = _read_program(args.target)
        invariants = extract_invariant_annotations(source)
        for spec in args.invariant or []:
            label_id, cond = _parse_invariant_spec(spec)
            invariants[label_id] = cond
        results = [
            (
                args.target,
                check_program(
                    program,
                    init=init,
                    invariants=invariants or None,
                    invariant_domain=args.invariant_domain,
                ),
            )
        ]

    errors = sum(len(res.errors) for _, res in results)
    warnings = sum(len(res.warnings) for _, res in results)
    findings = errors + warnings

    if args.json:
        payload = {
            "schema": "repro-lint/v1",
            "strict": bool(args.strict),
            "errors": errors,
            "warnings": warnings,
            "targets": [
                {
                    "name": name,
                    "diagnostics": res.to_dicts(),
                    "errors": len(res.errors),
                    "warnings": len(res.warnings),
                }
                for name, res in results
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        for name, res in results:
            for line in res.format_lines():
                print(f"{name}: {line}")
        noun = "finding" if findings == 1 else "findings"
        tally = f"{findings} {noun} ({errors} errors, {warnings} warnings)"
        print(f"checked {len(results)} target{'s' if len(results) != 1 else ''}: {tally}")

    if errors or (args.strict and findings):
        return 1
    return 0


def _report_table(reports: List[AnalysisReport]) -> str:
    from .experiments.common import fmt, render_table

    rows = []
    for report in reports:
        rows.append(
            [
                report.name,
                ", ".join(f"{k}={v:g}" for k, v in report.init.items() if v),
                report.status,
                str(report.degree) if report.degree is not None else "-",
                fmt(report.upper_value),
                fmt(report.lower_value),
                fmt(report.sim_mean),
                fmt(report.runtime, 3) + "s",
            ]
        )
    headers = ["program", "v0", "status", "d", "upper", "lower", "sim mean", "time"]
    return render_table(headers, rows)


def _print_report_diagnostics(reports: List[AnalysisReport]) -> None:
    from .check import Diagnostic

    for report in reports:
        for warning in report.warnings:
            print(f"warning [{report.name}]: {warning}", file=sys.stderr)
        for entry in report.diagnostics or []:
            diag = Diagnostic.from_dict(entry)
            print(f"lint [{report.name}]: {diag.format()}", file=sys.stderr)
        if report.error:
            print(f"error [{report.name}]: {report.error}", file=sys.stderr)


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        raise CLIError(f"invalid --jobs value {args.jobs}; must be >= 1")
    degree = _parse_degree(args.degree) if args.degree is not None else None
    init = _parse_cli_valuation(args.init) or None

    options = AnalysisOptions(
        degree=degree,
        max_degree=args.max_degree,
        max_multiplicands=args.max_multiplicands,
        solver=_validate_solver(args.solver),
        invariant_domain=args.invariant_domain,
        init=init,
        timeout_s=args.timeout,
    )
    cache = _make_cache(args, default_on=False)

    if args.all:
        if args.name is not None:
            raise CLIError("give either a benchmark NAME or --all, not both")
        with Analyzer(options, cache=cache, jobs=args.jobs) as analyzer:
            reports = analyzer.analyze_batch(
                [analyzer.request(bench.name) for bench in all_benchmarks()]
            )
        print(_report_table(reports))
        _print_report_diagnostics(reports)
        _print_cache_summary(cache)
        return 0 if all(r.ok for r in reports) else 1

    if args.name is None:
        raise CLIError("missing benchmark NAME (or use --all)")
    try:
        bench = get_benchmark(args.name)
    except KeyError as exc:
        raise CLIError(str(exc.args[0] if exc.args else exc)) from None

    if degree == "auto" or args.timeout is not None or cache is not None:
        # The report path owns degree escalation, per-task budgets and
        # the result cache; route through it so those flags behave
        # exactly as in `repro batch`.
        report = Analyzer(options, cache=cache).analyze(bench.name)
        print(f"# {bench.title}")
        print(_report_table([report]))
        _print_report_diagnostics([report])
        _print_cache_summary(cache)
        return 0 if report.ok else 1

    result = Analyzer(options).synthesize(bench)
    print(f"# {bench.title}")
    print(result.summary())
    if bench.paper_upper:
        print(f"paper upper: {bench.paper_upper}")
    if bench.paper_lower:
        print(f"paper lower: {bench.paper_lower}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        raise CLIError(f"invalid --jobs value {args.jobs}; must be >= 1")
    try:
        requests = load_spec(args.spec)
    except OSError as exc:
        raise CLIError(f"cannot read {args.spec!r}: {exc.strerror or exc}") from None
    except json.JSONDecodeError as exc:
        raise CLIError(f"invalid JSON in {args.spec!r}: {exc}") from None
    except ValueError as exc:
        raise CLIError(f"invalid spec {args.spec!r}: {exc}") from None
    if not requests:
        raise CLIError(f"spec {args.spec!r} contains no tasks")
    if args.timeout is not None:
        for request in requests:
            if request.timeout_s is None:
                request.timeout_s = args.timeout
    if args.tails:
        for request in requests:
            request.tails = True
    if args.invariant_domain is not None:
        for request in requests:
            request.invariant_domain = args.invariant_domain
    if args.retries is not None:
        if args.retries < 0:
            raise CLIError(f"invalid --retries value {args.retries}; must be >= 0")
        # --retries N = N retries after the first run, spec tasks win.
        for request in requests:
            if request.retry is None:
                request.retry = {"max_attempts": args.retries + 1}
    _validate_solver(args.solver)
    if args.output:
        # Fail fast on an unwritable report location rather than after
        # the (potentially long) batch has run.
        out_dir = os.path.dirname(os.path.abspath(args.output))
        if not os.path.isdir(out_dir) or not os.access(out_dir, os.W_OK):
            raise CLIError(f"cannot write {args.output!r}: directory is missing or unwritable")

    def _progress(report: AnalysisReport) -> None:
        if not args.quiet:
            print(f"[{report.status:>7s}] {report.name} ({report.runtime:.3f}s)", file=sys.stderr)

    cache = _make_cache(args, default_on=True)
    with Analyzer(cache=cache, jobs=args.jobs, solver=args.solver) as analyzer:
        reports = analyzer.analyze_batch(requests, progress=_progress)
    print(_report_table(reports))
    _print_report_diagnostics(reports)
    _print_cache_summary(cache)

    if args.output:
        payload = {
            "schema": "repro-batch/v2",
            "jobs": args.jobs,
            "tasks": len(reports),
            "failed": sum(not r.ok for r in reports),
            "reports": [r.to_dict() for r in reports],
        }
        try:
            with open(args.output, "w") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
        except OSError as exc:
            raise CLIError(f"cannot write {args.output!r}: {exc.strerror or exc}") from None
        print(f"wrote {args.output}", file=sys.stderr)

    return 0 if all(r.ok for r in reports) else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import create_server, run_server

    if args.jobs < 1:
        raise CLIError(f"invalid --jobs value {args.jobs}; must be >= 1")
    if not 0 <= args.port <= 65535:
        raise CLIError(f"invalid --port value {args.port}; must be in [0, 65535]")
    if args.max_inflight < 1:
        raise CLIError(f"invalid --max-inflight value {args.max_inflight}; must be >= 1")
    if args.drain_timeout <= 0:
        raise CLIError(f"invalid --drain-timeout value {args.drain_timeout}; must be > 0")
    cache = _make_cache(args, default_on=True)
    analyzer = Analyzer(cache=cache, jobs=args.jobs, solver=_validate_solver(args.solver))
    try:
        try:
            server = create_server(
                host=args.host,
                port=args.port,
                analyzer=analyzer,
                verbose=True,
                max_inflight=args.max_inflight,
                drain_timeout_s=args.drain_timeout,
            )
        except OSError as exc:
            # Only bind failures get the friendly exit-2 treatment; a
            # runtime OSError mid-serve is a different animal and
            # surfaces as itself.
            raise CLIError(f"cannot bind {args.host}:{args.port}: {exc.strerror or exc}") from None
        return run_server(server)
    finally:
        analyzer.close()


def _cmd_cache(args: argparse.Namespace) -> int:
    from .cache import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached entr{'y' if removed == 1 else 'ies'} from {cache.root}")
        return 0
    stats = cache.stats()
    if args.json:
        print(json.dumps(stats.to_dict(), indent=2))
        return 0
    print(f"root:    {stats.root}")
    print(f"entries: {stats.entries}")
    print(f"size:    {stats.size_bytes} bytes")
    return 0


def _parse_fuzz_config(specs: Optional[List[str]]):
    from .fuzz import GenConfig

    overrides: Dict[str, object] = {}
    for spec in specs or []:
        key, sep, value = spec.partition("=")
        key, value = key.strip(), value.strip()
        if not sep or not key or not value:
            raise CLIError(f"invalid --config value {spec!r}; expected KEY=VALUE")
        if key == "distributions":
            overrides[key] = tuple(v.strip() for v in value.split(",") if v.strip())
        else:
            try:
                overrides[key] = int(value)
            except ValueError:
                raise CLIError(
                    f"invalid --config value {spec!r}; {value!r} is not an integer"
                ) from None
    try:
        return GenConfig().override(**overrides)
    except TypeError:
        from dataclasses import fields

        known = ", ".join(f.name for f in fields(GenConfig))
        bad = sorted(set(overrides) - {f.name for f in fields(GenConfig)})
        raise CLIError(f"unknown --config key(s) {bad}; known: {known}") from None
    except ValueError as exc:
        raise CLIError(f"invalid --config: {exc}") from None


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import (
        CLASSIFICATIONS,
        DEFECTS,
        Harness,
        generate,
        shrink_program,
        write_corpus_entry,
    )

    if args.count < 1:
        raise CLIError(f"invalid --count value {args.count}; must be >= 1")
    config = _parse_fuzz_config(args.config)
    defect = args.inject_defect
    if defect is not None and defect not in DEFECTS:
        raise CLIError(f"unknown --inject-defect {defect!r}; known: {', '.join(sorted(DEFECTS))}")

    harness = Harness(config, defect=defect, invariant_domain=args.invariant_domain)
    run = harness.run(args.seed, args.count)

    corpus_paths: List[str] = []
    if run.violations and args.corpus_dir:
        from pathlib import Path

        for outcome in run.violations:
            prog = generate(config, outcome.seed)

            def _still_violates(p, i, _seed=outcome.seed):
                return harness.classify(p, i, _seed).classification == "violation"

            small, small_init = shrink_program(prog.program, prog.init, _still_violates)
            name = f"violation-seed{outcome.seed}" + (f"-{defect}" if defect else "")
            path = write_corpus_entry(
                Path(args.corpus_dir),
                name=name,
                seed=outcome.seed,
                defect=defect,
                config=config.to_dict(),
                program=small,
                init=small_init,
                note=outcome.detail,
            )
            corpus_paths.append(str(path))

    if args.json:
        payload = run.to_dict()
        payload["corpus"] = corpus_paths
        print(json.dumps(payload, indent=2))
    else:
        suffix = f" (injected defect: {defect})" if defect else ""
        print(f"fuzzed {args.count} seeds starting at {args.seed}{suffix}")
        counts = run.counts
        for name in CLASSIFICATIONS:
            print(f"  {name:12s} {counts[name]}")
        for outcome in run.violations:
            print(f"violation at seed {outcome.seed}: {outcome.detail}")
        for path in corpus_paths:
            print(f"wrote shrunk repro {path}")
    return 1 if run.violations else 0


def _cmd_list(_args: argparse.Namespace) -> int:
    for bench in all_benchmarks():
        nd = " [nondet]" if bench.has_nondeterminism else ""
        print(f"{bench.name:20s} ({bench.category}, degree {bench.degree}){nd}  {bench.title}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Expected-cost analysis of probabilistic programs (PLDI 2019)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze", help="synthesize PUCS/PLCS bounds for a program file")
    p_analyze.add_argument("file")
    p_analyze.add_argument("--init", help="initial valuation, e.g. x=100,y=0")
    p_analyze.add_argument(
        "--degree", default="2", help="template degree (a positive integer, or 'auto' to escalate)"
    )
    p_analyze.add_argument(
        "--max-degree", type=int, default=4, help="degree ceiling for --degree auto"
    )
    p_analyze.add_argument("--mode", choices=["auto", "signed", "nonnegative"], default="auto")
    p_analyze.add_argument(
        "--invariant", action="append", metavar="LABEL:COND", help="per-label invariant annotation"
    )
    p_analyze.add_argument(
        "--max-multiplicands", type=int, default=None, help="Handelman multiplicand cap K"
    )
    p_analyze.add_argument("--concentration", action="store_true", help="also synthesize an RSM")
    p_analyze.add_argument(
        "--tails",
        action="store_true",
        help="derive an Azuma-Hoeffding tail bound P[cost >= E + t] from the upper certificate",
    )
    p_analyze.add_argument(
        "--tail-horizon",
        type=int,
        default=None,
        metavar="N",
        help="step horizon n of the tail guarantee (default: 1000000)",
    )
    p_analyze.add_argument(
        "--tail-probes",
        default=None,
        metavar="T1,T2",
        help="comma-separated offsets t to evaluate the tail bound at",
    )
    p_analyze.add_argument(
        "--invariant-domain",
        choices=("interval", "octagon"),
        default="interval",
        help="abstract domain of the automatic invariant generator (default: interval)",
    )
    p_analyze.add_argument("--no-lower", action="store_true", help="skip the PLCS lower bound")
    p_analyze.add_argument(
        "--solver", default=None, help="LP solver backend (e.g. highs, linprog; default: auto)"
    )
    p_analyze.set_defaults(func=_cmd_analyze)

    p_sim = sub.add_parser("simulate", help="Monte-Carlo simulation of a program file")
    p_sim.add_argument("file")
    p_sim.add_argument("--init", help="initial valuation, e.g. x=100")
    p_sim.add_argument("--runs", type=int, default=1000)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument(
        "--max-steps", type=int, default=1_000_000, help="truncate runs after this many steps"
    )
    p_sim.add_argument(
        "--engine",
        choices=("auto", "vectorized", "reference"),
        default="auto",
        help="interpreter: 'auto' picks the vectorized NumPy batch stepper "
        "for large batches and falls back transparently, 'vectorized' and "
        "'reference' force one engine (default: auto)",
    )
    p_sim.set_defaults(func=_cmd_simulate)

    p_cfg = sub.add_parser("cfg", help="print the labelled control-flow graph")
    p_cfg.add_argument("file")
    p_cfg.set_defaults(func=_cmd_cfg)

    p_inv = sub.add_parser(
        "invariants", help="print the automatically inferred per-label invariants"
    )
    p_inv.add_argument("file")
    p_inv.add_argument("--init", help="initial valuation, e.g. x=100,y=0")
    p_inv.add_argument(
        "--domain",
        choices=("interval", "octagon"),
        default="interval",
        help="abstract domain to infer in (default: interval)",
    )
    p_inv.add_argument(
        "--json", action="store_true", help="machine-readable repro-invariants/v1 dump"
    )
    p_inv.set_defaults(func=_cmd_invariants)

    p_lint = sub.add_parser(
        "lint", help="run the static checks (abstract interpretation + lint rules)"
    )
    p_lint.add_argument(
        "target",
        nargs="?",
        default=None,
        metavar="FILE|SPEC.json",
        help="program file to lint, or a batch spec (by .json suffix) to lint task by task",
    )
    p_lint.add_argument("--benchmark", default=None, help="lint a registry benchmark by name")
    p_lint.add_argument("--init", help="initial valuation, e.g. x=100,y=0")
    p_lint.add_argument(
        "--invariant",
        action="append",
        metavar="LABEL:COND",
        help="invariant to validate (repeatable; program files only)",
    )
    p_lint.add_argument(
        "--invariant-domain",
        choices=("interval", "octagon"),
        default="interval",
        help="abstract domain of the fixpoint the annotation rules check against; "
        "'octagon' adds the relational REP013/REP014 rules (default: interval)",
    )
    p_lint.add_argument("--json", action="store_true", help="machine-readable findings")
    p_lint.add_argument(
        "--strict", action="store_true", help="exit 1 on any finding, warnings included"
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_bench = sub.add_parser("bench", help="analyze named paper benchmarks")
    p_bench.add_argument("name", nargs="?", help="benchmark name (see 'repro list')")
    p_bench.add_argument("--all", action="store_true", help="run every registered benchmark")
    p_bench.add_argument("--init", help="override the anchor valuation")
    p_bench.add_argument(
        "--degree", default=None, help="override the template degree (integer or 'auto')"
    )
    p_bench.add_argument(
        "--max-degree", type=int, default=4, help="degree ceiling for --degree auto"
    )
    p_bench.add_argument(
        "--max-multiplicands", type=int, default=None, help="Handelman multiplicand cap K"
    )
    p_bench.add_argument("--jobs", type=int, default=1, help="worker processes (with --all)")
    p_bench.add_argument("--timeout", type=float, default=None, help="per-benchmark budget (s)")
    p_bench.add_argument(
        "--cache-dir", default=None, help="consult/populate a result cache at this directory"
    )
    p_bench.add_argument(
        "--solver", default=None, help="LP solver backend (e.g. highs, linprog; default: auto)"
    )
    p_bench.add_argument(
        "--invariant-domain",
        choices=("interval", "octagon"),
        default="interval",
        help="abstract domain of the automatic invariant generator (default: interval)",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_batch = sub.add_parser("batch", help="run a JSON spec of analysis tasks")
    p_batch.add_argument("spec", help="JSON spec file (see README: 'Batch analysis')")
    p_batch.add_argument("--jobs", type=int, default=1, help="worker processes")
    p_batch.add_argument(
        "--timeout", type=float, default=None, help="default per-task budget in seconds"
    )
    p_batch.add_argument(
        "--tails",
        action="store_true",
        help="derive an Azuma-Hoeffding tail bound for every task",
    )
    p_batch.add_argument(
        "--retries",
        type=int,
        default=None,
        help="crash retries per task after a worker death (default: 1; 0 disables)",
    )
    p_batch.add_argument("--output", help="write the full JSON report here")
    p_batch.add_argument("--quiet", action="store_true", help="no per-task progress on stderr")
    p_batch.add_argument(
        "--no-cache", action="store_true", help="disable the content-addressed result cache"
    )
    p_batch.add_argument(
        "--cache-dir", default=None, help="result cache directory (default: $REPRO_CACHE_DIR)"
    )
    p_batch.add_argument(
        "--solver",
        default=None,
        help="LP solver backend for tasks that don't pin one (e.g. highs, linprog)",
    )
    p_batch.add_argument(
        "--invariant-domain",
        choices=("interval", "octagon"),
        default=None,
        help="force this invariant domain on every task (default: per-task setting)",
    )
    p_batch.set_defaults(func=_cmd_batch)

    p_serve = sub.add_parser("serve", help="run the JSON analysis service over HTTP")
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument("--port", type=int, default=8095, help="bind port (0 = pick a free one)")
    p_serve.add_argument("--jobs", type=int, default=1, help="worker processes per request batch")
    p_serve.add_argument(
        "--no-cache", action="store_true", help="disable the content-addressed result cache"
    )
    p_serve.add_argument(
        "--cache-dir", default=None, help="result cache directory (default: $REPRO_CACHE_DIR)"
    )
    p_serve.add_argument(
        "--solver",
        default=None,
        help="LP solver backend for requests that don't pin one (e.g. highs, linprog)",
    )
    p_serve.add_argument(
        "--max-inflight",
        type=int,
        default=32,
        help="concurrent POSTs executed before shedding with 429 (default: 32)",
    )
    p_serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds a SIGTERM/Ctrl-C shutdown waits for in-flight requests",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_cache = sub.add_parser("cache", help="inspect or clear the result cache")
    p_cache.add_argument("action", choices=["stats", "clear"], help="what to do")
    p_cache.add_argument(
        "--cache-dir", default=None, help="result cache directory (default: $REPRO_CACHE_DIR)"
    )
    p_cache.add_argument("--json", action="store_true", help="machine-readable stats")
    p_cache.set_defaults(func=_cmd_cache)

    p_fuzz = sub.add_parser(
        "fuzz", help="differential soundness fuzzing (generate, analyze, simulate, compare)"
    )
    p_fuzz.add_argument("--seed", type=int, default=0, help="first generator seed")
    p_fuzz.add_argument("--count", type=int, default=100, help="number of consecutive seeds")
    p_fuzz.add_argument(
        "--config",
        action="append",
        metavar="KEY=VALUE",
        help="GenConfig override, repeatable (e.g. max_depth=1, "
        "distributions=discrete,bernoulli)",
    )
    p_fuzz.add_argument(
        "--inject-defect",
        default=None,
        metavar="NAME",
        help="corrupt the synthesized claims to self-test the oracle "
        "(weaken-upper, raise-lower, shrink-tail)",
    )
    p_fuzz.add_argument(
        "--corpus-dir",
        default=None,
        help="shrink each violation and write the repro JSON here",
    )
    p_fuzz.add_argument(
        "--invariant-domain",
        choices=("interval", "octagon"),
        default="octagon",
        help="invariant domain the analyzer under test runs with; generated "
        "programs carry no annotations, so the relational default exercises "
        "the strongest generator (default: octagon)",
    )
    p_fuzz.add_argument("--json", action="store_true", help="machine-readable repro-fuzz/v1 report")
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_list = sub.add_parser("list", help="list the paper benchmarks")
    p_list.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        # Engine-level request validation (bad --timeout/--max-degree
        # values etc.) is user input too: same one-line contract.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
