"""Cooperative wall-clock deadlines for long-running analysis tasks.

The batch engine's original per-task budget relied exclusively on
``SIGALRM``, which only fires on the main thread of a process.  That is
fine for CLI runs and pool workers (each worker *is* a main thread),
but the ``repro serve`` HTTP service executes tasks on
``ThreadingHTTPServer`` handler threads, where an armed budget was
silently unenforced.

This module is the thread-safe fallback: :func:`deadline_scope` records
a monotonic-clock deadline in thread-local state and the synthesis /
simulation hot loops call :func:`check_deadline` at natural
checkpoints (per Handelman constraint site, per LP policy solve, per
simulated run).  Exceeding the budget raises :class:`DeadlineExceeded`,
which the engine reports as ``status="timeout"`` exactly like a signal
delivery would.

Granularity is *cooperative*: a single LP solve or certificate
extraction runs to completion before the deadline is noticed, so the
observed overshoot is bounded by the longest uninterruptible step, not
by the task.  Scopes nest — an inner scope can only tighten the
deadline, never extend an outer one.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["DeadlineExceeded", "active_deadline", "check_deadline", "deadline_scope"]


class DeadlineExceeded(Exception):
    """Raised by :func:`check_deadline` once the scope's budget expires.

    Deliberately *not* a :class:`repro.errors.ReproError`: the engine's
    structured-error handler must never swallow it as a plain analysis
    failure — it is caught explicitly and mapped to
    ``status="timeout"``.
    """


_STATE = threading.local()


def active_deadline() -> Optional[float]:
    """The current thread's deadline on the monotonic clock (or None)."""
    return getattr(_STATE, "deadline", None)


def remaining() -> Optional[float]:
    """Seconds left in the current scope (negative once expired)."""
    deadline = active_deadline()
    if deadline is None:
        return None
    return deadline - time.monotonic()


def check_deadline() -> None:
    """Raise :class:`DeadlineExceeded` if the thread's budget expired.

    Cheap enough for per-iteration use in the synthesis loops: one
    thread-local read plus one monotonic clock read when armed.
    """
    deadline = getattr(_STATE, "deadline", None)
    if deadline is not None and time.monotonic() > deadline:
        raise DeadlineExceeded(f"cooperative deadline exceeded by {time.monotonic() - deadline:.3f}s")


@contextmanager
def deadline_scope(seconds: Optional[float]) -> Iterator[None]:
    """Arm a cooperative deadline ``seconds`` from now for this thread.

    ``None`` (or a non-positive value) arms nothing and simply runs the
    body.  Nested scopes keep the *tighter* deadline; the previous one
    is restored on exit regardless of how the body terminates.
    """
    if seconds is None or seconds <= 0:
        yield
        return
    previous = getattr(_STATE, "deadline", None)
    mine = time.monotonic() + seconds
    _STATE.deadline = mine if previous is None else min(previous, mine)
    try:
        yield
    finally:
        _STATE.deadline = previous
