"""Benchmark definitions: program source + invariants + experiment metadata.

Every benchmark bundles what the paper's tool takes as input — source
text, per-label linear invariants (Definition 6.1; supplied as input
per Section 4.5), the anchor initial valuation — plus the metadata the
experiment harness needs: the paper's reported bounds (for
paper-vs-measured tables), the valuations of Table 4, and whether plain
simulation applies (programs with nondeterminism cannot be simulated
without fixing a policy, cf. Table 4's missing rows).
"""

from __future__ import annotations

import warnings as _warnings
from collections.abc import Mapping as _MappingABC
from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from ..analysis.bounds import CostAnalysisResult, analyze, attach_tail_bound_for
from ..invariants import InvariantMap
from ..semantics.cfg import CFG, build_cfg
from ..syntax.ast import Program
from ..syntax.parser import parse_program

__all__ = ["Benchmark", "probabilistic_variant"]


@dataclass
class Benchmark:
    """One benchmark program with everything needed to reproduce its row."""

    name: str
    title: str
    source: str
    invariants: Dict[int, str]
    init: Dict[str, float]
    degree: int = 2
    #: "auto" | "signed" | "nonnegative" — matches ``analyze(mode=...)``.
    mode: str = "auto"
    category: str = "table3"  # "table2" or "table3"
    #: Extra initial valuations for the Table 4 sweep.
    extra_inits: List[Dict[str, float]] = field(default_factory=list)
    #: The paper's reported symbolic bounds (strings, for reports only).
    paper_upper: Optional[str] = None
    paper_lower: Optional[str] = None
    #: Reconstruction notes for EXPERIMENTS.md.
    notes: str = ""
    #: Variable swept in the figures (Appendix F) and its sweep range.
    sweep_var: Optional[str] = None
    sweep_range: Optional[Tuple[float, float]] = None
    max_sim_steps: int = 1_000_000
    #: Invariants that depend on the initial valuation (Definition 6.1
    #: invariants are relative to an initial valuation; e.g. the
    #: inductive relation ``n + d >= n0 + d0`` of Goods Discount).
    init_invariants: Optional[Callable[[Dict[str, float]], Dict[int, str]]] = None

    # -- derived artifacts --------------------------------------------------

    @cached_property
    def program(self) -> Program:
        return parse_program(self.source, name=self.name)

    @cached_property
    def cfg(self) -> CFG:
        return build_cfg(self.program)

    @cached_property
    def _parsed_invariants(self) -> InvariantMap:
        """The init-independent annotations, parsed once per benchmark."""
        return InvariantMap.from_strings(self.cfg, self.invariants)

    def invariant_map(self, init: Optional[Mapping[str, float]] = None) -> InvariantMap:
        inv = self._parsed_invariants
        if self.init_invariants is not None:
            anchored = self.init_invariants(dict(init if init is not None else self.init))
            return inv.merge(InvariantMap.from_strings(self.cfg, anchored))
        return inv.copy()

    @property
    def has_nondeterminism(self) -> bool:
        return self.program.has_nondeterminism()

    @property
    def simulation_supported(self) -> bool:
        """Monte-Carlo simulation needs a fully probabilistic program."""
        return not self.has_nondeterminism

    def all_inits(self) -> List[Dict[str, float]]:
        """Anchor valuation plus the Table 4 extras (deduplicated)."""
        seen = []
        for valuation in [self.init, *self.extra_inits]:
            if valuation not in seen:
                seen.append(valuation)
        return seen

    # -- analysis ---------------------------------------------------------------

    def _analyze_resolved(
        self,
        init: Optional[Mapping[str, float]] = None,
        degree: Optional[int] = None,
        compute_lower: bool = True,
        check_concentration: bool = False,
        mode: Optional[str] = None,
        max_multiplicands: Optional[int] = None,
        auto_invariants: bool = True,
        invariant_domain: str = "interval",
        check: str = "off",
    ) -> CostAnalysisResult:
        """One concrete pipeline run (the engine's per-degree workhorse).

        ``degree``, ``mode`` and ``max_multiplicands`` default to the
        benchmark's own settings.  No degree escalation, no solver
        context — callers (the batch engine, :meth:`analyze_with`)
        own those.
        """
        anchor = dict(init if init is not None else self.init)
        return analyze(
            self.program,
            init=anchor,
            invariants=self.invariant_map(anchor),
            degree=degree if degree is not None else self.degree,
            auto_invariants=auto_invariants,
            invariant_domain=invariant_domain,
            mode=mode if mode is not None else self.mode,
            compute_lower=compute_lower,
            check_concentration=check_concentration,
            max_multiplicands=max_multiplicands,
            check=check,
        )

    def analyze_with(
        self, options, *, check_concentration: bool = False
    ) -> CostAnalysisResult:
        """Run the pipeline under a :class:`repro.api.AnalysisOptions`.

        Honors the synthesis-relevant subset of the options: the degree
        plan (``"auto"`` escalates d = 1..``max_degree`` until every
        requested bound is feasible, exactly like the batch engine),
        mode, multiplicand cap, invariant policy, init valuation,
        solver backend and the ``nondet_prob`` coin-flip
        transformation.  Simulation and timeout settings are
        engine-level concerns — use :meth:`repro.api.Analyzer.analyze`
        for those.
        """
        from ..core.solvers import use_solver

        bench = self
        if options.nondet_prob is not None and self.has_nondeterminism:
            bench = probabilistic_variant(self, prob=options.nondet_prob)
        # None entries defer to the benchmark's own default degree.
        degrees = options.degree_plan()
        result: Optional[CostAnalysisResult] = None
        diagnostics = None
        with use_solver(options.solver):
            for index, degree in enumerate(degrees):
                result = bench._analyze_resolved(
                    init=dict(options.init) if options.init is not None else None,
                    degree=degree,
                    compute_lower=options.compute_lower,
                    check_concentration=check_concentration,
                    mode=options.mode,
                    max_multiplicands=options.max_multiplicands,
                    auto_invariants=options.auto_invariants,
                    invariant_domain=getattr(options, "invariant_domain", "interval"),
                    # Lint once, on the first degree — program and
                    # invariants are escalation-invariant.
                    check=getattr(options, "check", "off") if index == 0 else "off",
                )
                if index == 0:
                    diagnostics = result.diagnostics
                if result.complete_for(options.compute_lower):
                    break
            assert result is not None  # the degree plan is never empty
            # Re-attach the first degree's findings to the escalation
            # winner (later analyze() calls skipped the lint).
            result.diagnostics = diagnostics
            # Once, on the final result only — the auxiliary LP (and a
            # possible degree-1 refit) must not run per discarded
            # escalation degree.
            attach_tail_bound_for(result, options)
        return result

    def analyze(
        self,
        options=None,
        *,
        init: Optional[Mapping[str, float]] = None,
        degree: Optional[Union[int, str]] = None,
        compute_lower: Optional[bool] = None,
        check_concentration: Optional[bool] = None,
        mode: Optional[str] = None,
        max_multiplicands: Optional[int] = None,
    ) -> CostAnalysisResult:
        """Run the full pipeline on this benchmark.

        The canonical form is ``analyze(options)`` with a
        :class:`repro.api.AnalysisOptions` (``check_concentration``
        rides along as a staged-only keyword).  The pre-``repro.api``
        keyword sprawl (``init=``, ``degree=``, ...) still works for
        one release but emits a :class:`DeprecationWarning`; a bare
        ``analyze()`` uses the benchmark's own settings and stays
        silent.
        """
        legacy = {
            key: value
            for key, value in {
                "init": init,
                "degree": degree,
                "compute_lower": compute_lower,
                "mode": mode,
                "max_multiplicands": max_multiplicands,
            }.items()
            if value is not None
        }
        if options is not None and isinstance(options, _MappingABC):
            # Pre-redesign positional call: analyze({"x": 100}).
            legacy.setdefault("init", dict(options))
            options = None
        if options is not None:
            if legacy:
                raise TypeError(
                    "pass either an AnalysisOptions or the legacy keyword "
                    f"arguments, not both: {sorted(legacy)}"
                )
            return self.analyze_with(options, check_concentration=bool(check_concentration))
        if legacy:
            _warnings.warn(
                "Benchmark.analyze(init=..., degree=..., ...) keyword arguments "
                "are deprecated; pass repro.api.AnalysisOptions via "
                "analyze(options) or go through repro.api.Analyzer",
                DeprecationWarning,
                stacklevel=2,
            )
        if degree == "auto":
            raise ValueError(
                "degree='auto' escalation needs a degree ceiling; use "
                "analyze(AnalysisOptions(degree='auto', max_degree=...))"
            )
        return self._analyze_resolved(
            init=init,
            degree=degree,  # type: ignore[arg-type]
            compute_lower=True if compute_lower is None else compute_lower,
            check_concentration=bool(check_concentration),
            mode=mode,
            max_multiplicands=max_multiplicands,
        )

    def __repr__(self) -> str:
        return f"Benchmark({self.name!r}, category={self.category!r}, degree={self.degree})"


def probabilistic_variant(bench: Benchmark, prob: float = 0.5) -> Benchmark:
    """The benchmark with ``if *`` replaced by ``if prob(prob)``.

    Returns ``bench`` itself when it has no nondeterminism.  The CFG of
    the variant has identical label numbering (a nondeterministic label
    becomes a probabilistic one in place), so the invariants transfer.
    This is the Table 5 transformation; it lives here so the batch
    engine can build variants without importing the experiment drivers.
    """
    from dataclasses import replace as dataclass_replace

    from ..syntax import pretty, replace_nondet

    if not bench.has_nondeterminism:
        return bench
    transformed = replace_nondet(bench.program, prob=prob)
    return dataclass_replace(
        bench,
        name=f"{bench.name}_prob",
        title=f"{bench.title} (nondet -> prob({prob:g}))",
        source=pretty(transformed),
    )
