"""The fifteen Table 2 benchmarks (comparison with Ngo et al. [74]).

The originals come from the Absynth benchmark suite of [74], whose
sources are not reproduced in the paper; each program below is
reconstructed from its name and the bounds both tools report, so that
the *shape* of Table 2 is reproducible: polynomial degree, leading
coefficient, and the qualitative comparison (our upper bounds match or
beat [74]; PLCS lower bounds exist, which [74] cannot produce at all).
Per-benchmark deviations are recorded in EXPERIMENTS.md.

All fifteen programs have constant nonnegative costs, so the [74]
baseline (:mod:`repro.baseline`) applies to every one of them — that is
the point of the comparison.
"""

from __future__ import annotations

from typing import List

from .base import Benchmark

__all__ = ["TABLE2_BENCHMARKS"]


BER = Benchmark(
    name="ber",
    title="ber: Bernoulli random walk to n",
    source="""
var x, n;
while x <= n - 1 do
    x := x + (0, 1) : (0.5, 0.5);
    tick(1)
od
""",
    invariants={1: "n - x >= 0", 2: "n - x - 1 >= 0", 3: "n - x >= 0"},
    init={"x": 0.0, "n": 100.0},
    degree=1,
    category="table2",
    paper_upper="2*n - 2*x",
    paper_lower="2*n - 2*x - 2",
)


BIN = Benchmark(
    name="bin",
    title="bin: binomial trials",
    source="""
var n, x;
while n >= 1 do
    if prob(0.1) then
        x := x + 1;
        tick(2)
    fi;
    n := n - 1
od
""",
    invariants={1: "n >= 0", 2: "n >= 1", 3: "n >= 1", 4: "n >= 1", 5: "n >= 1"},
    init={"n": 100.0, "x": 0.0},
    degree=1,
    category="table2",
    paper_upper="0.2*n + 1.8",
    paper_lower="0.2*n - 0.2",
    notes="Reconstructed: n trials, success probability 0.1, cost 2 per success.",
)


LINEAR01 = Benchmark(
    name="linear01",
    title="linear01: probabilistic decrement",
    source="""
var x;
while x >= 1 do
    x := x - (1, 2) : (0.3333333333333333, 0.6666666666666667);
    tick(1)
od
""",
    invariants={1: "x + 1 >= 0", 2: "x >= 1", 3: "x + 1 >= 0"},
    init={"x": 100.0},
    degree=1,
    category="table2",
    paper_upper="0.6*x",
    paper_lower="0.6*x - 1.2",
    notes="Reconstructed: expected decrement 5/3 per unit-cost iteration.",
)


PRDWALK = Benchmark(
    name="prdwalk",
    title="prdwalk: lazy random walk to n",
    source="""
var x, n;
while x <= n - 1 do
    x := x + (0, 1) : (0.125, 0.875);
    tick(1)
od
""",
    invariants={1: "n - x >= 0", 2: "n - x - 1 >= 0", 3: "n - x >= 0"},
    init={"x": 0.0, "n": 100.0},
    degree=1,
    category="table2",
    paper_upper="1.14286*n - 1.14286*x + 4.5714",
    paper_lower="1.14286*n - 1.14286*x - 1.1429",
    notes="Reconstructed: progress 7/8 per step, matching the 8/7 leading coefficient.",
)


RACE = Benchmark(
    name="race",
    title="race: hare and tortoise",
    source="""
var h, t;
while h <= t do
    t := t + 1;
    h := h + (0, 1, 2, 3, 4, 5) : (0.16666666666666666, 0.16666666666666666,
        0.16666666666666666, 0.16666666666666666, 0.16666666666666666,
        0.16666666666666669);
    tick(1)
od
""",
    invariants={
        1: "t - h + 4 >= 0",
        2: "t - h >= 0",
        3: "t - h + 1 >= 0",
        4: "t - h + 4 >= 0",
    },
    init={"h": 0.0, "t": 30.0},
    degree=1,
    category="table2",
    paper_upper="0.666667*t - 0.666667*h + 6",
    paper_lower="0.666667*t - 0.666667*h",
    notes="Hare gains Uniform{0..5} per round, tortoise 1; gap closes by 1.5 per tick.",
)


RDSEQL = Benchmark(
    name="rdseql",
    title="rdseql: two sequential probabilistic loops",
    source="""
var x, y;
while x >= 1 do
    x := x - (0, 1) : (0.3333333333333333, 0.6666666666666667);
    tick(1.5)
od;
while y >= 1 do
    y := y - 1;
    tick(1)
od
""",
    invariants={
        1: "x >= 0 and y >= 0",
        2: "x >= 1 and y >= 0",
        3: "x >= 0 and y >= 0",
        4: "x >= 0 and 1 - x >= 0 and y >= 0",
        5: "y >= 1 and 1 - x >= 0 and x >= 0",
        6: "y >= 0 and 1 - x >= 0 and x >= 0",
    },
    init={"x": 100.0, "y": 50.0},
    degree=1,
    category="table2",
    paper_upper="2.25*x + y + 2.25",
    paper_lower="2*x",
)


RDWALK = Benchmark(
    name="rdwalk",
    title="rdwalk: biased +-1 random walk to n",
    source="""
var x, n;
sample r ~ discrete(1: 0.75, -1: 0.25);
while x <= n do
    x := x + r;
    tick(1)
od
""",
    invariants={1: "n - x + 1 >= 0", 2: "n - x >= 0", 3: "n - x + 1 >= 0"},
    init={"x": 0.0, "n": 100.0},
    degree=1,
    category="table2",
    paper_upper="2*n - 2*x + 2",
    paper_lower="2*n - 2*x - 2",
)


SPRDWALK = Benchmark(
    name="sprdwalk",
    title="sprdwalk: walk with step in {1, 2}",
    source="""
var x, n;
while x <= n - 1 do
    x := x + (1, 2) : (0.5, 0.5);
    tick(3)
od
""",
    invariants={1: "n - x + 1 >= 0", 2: "n - x - 1 >= 0", 3: "n - x + 1 >= 0"},
    init={"x": 0.0, "n": 100.0},
    degree=1,
    category="table2",
    paper_upper="2*n - 2*x",
    paper_lower="2*n - 2*x - 2",
    notes="Reconstructed: expected progress 1.5 at cost 3, preserving the 2(n - x) shape.",
)


C4B_T13 = Benchmark(
    name="C4B_t13",
    title="C4B_t13: loop with probabilistic transfer",
    source="""
var x, y;
while x >= 1 do
    x := x - 1;
    if prob(0.25) then
        y := y + 1
    fi;
    tick(1)
od;
while y >= 1 do
    y := y - 1;
    tick(1)
od
""",
    invariants={
        1: "x >= 0 and y >= 0",
        2: "x >= 1 and y >= 0",
        3: "x >= 0 and y >= 0",
        4: "x >= 0 and y >= 0",
        5: "x >= 0 and y >= 0",
        6: "x >= 0 and 1 - x >= 0 and y >= 0",
        7: "x >= 0 and 1 - x >= 0 and y >= 1",
        8: "x >= 0 and 1 - x >= 0 and y >= 0",
    },
    init={"x": 40.0, "y": 0.0},
    degree=1,
    category="table2",
    paper_upper="1.25*x + y",
    paper_lower="x - 1",
)


PRNES = Benchmark(
    name="prnes",
    title="prnes: nested probabilistic loops",
    source="""
var y, n;
while n <= -1 do
    n := n + 1;
    y := y + 1301;
    while y >= 20 do
        y := y - (0, 20) : (0.05, 0.95);
        tick(1)
    od
od
""",
    invariants={
        1: "y >= 0 and -n >= 0",
        2: "y >= 0 and -n - 1 >= 0",
        3: "y >= 0 and -n >= 0",
        4: "y >= 0 and -n >= 0",
        5: "y >= 20 and -n >= 0",
        6: "y >= 0 and -n >= 0",
    },
    init={"y": 0.0, "n": -10.0},
    degree=1,
    category="table2",
    paper_upper="0.052631*y - 68.4795*n",
    paper_lower="-10*n - 10",
    notes="Reconstructed: inner drain E = 19 per tick, 1301 added per outer round.",
)


CONDAND = Benchmark(
    name="condand",
    title="condand: conjunctive guard",
    source="""
var m, n;
while n >= 1 and m >= 1 do
    if prob(0.5) then
        n := n - 1
    else
        m := m - 1
    fi;
    tick(1)
od
""",
    invariants={
        1: "m >= 0 and n >= 0 and m + n - 1 >= 0",
        2: "m >= 1 and n >= 1",
        3: "m >= 1 and n >= 1",
        4: "m >= 1 and n >= 1",
        5: "m >= 0 and n >= 0 and m + n - 1 >= 0",
    },
    init={"m": 30.0, "n": 20.0},
    degree=1,
    category="table2",
    paper_upper="m + n - 1",
    paper_lower="0",
)


POL04 = Benchmark(
    name="pol04",
    title="pol04: quadratic cost accumulation",
    source="""
var x;
while x >= 1 do
    x := x - (0, 1) : (0.3333333333333333, 0.6666666666666667);
    tick(6 * x)
od
""",
    invariants={1: "x + 1 >= 0", 2: "x >= 1", 3: "x >= 0"},
    init={"x": 50.0},
    degree=2,
    category="table2",
    paper_upper="4.5*x^2 + 10.5*x",
    paper_lower="0",
    notes="Reconstructed so that the leading coefficient 4.5 of Table 2 is preserved.",
)


POL05 = Benchmark(
    name="pol05",
    title="pol05: quadratic with probabilistic surcharge",
    source="""
var x;
while x >= 1 do
    tick(x);
    if prob(0.5) then
        tick(4)
    fi;
    x := x - 1
od
""",
    invariants={1: "x >= 0", 2: "x >= 1", 3: "x >= 1", 4: "x >= 1", 5: "x >= 1"},
    init={"x": 50.0},
    degree=2,
    category="table2",
    paper_upper="0.5*x^2 + 2.5*x",
    paper_lower="0",
)


RDBUB = Benchmark(
    name="rdbub",
    title="rdbub: probabilistic bubble sort",
    source="""
var n, i, j;
i := n;
while i >= 1 do
    j := n;
    while j >= 1 do
        j := j - (0, 1) : (0.6666666666666667, 0.3333333333333333);
        tick(1)
    od;
    i := i - 1
od
""",
    invariants={
        1: "n >= 0",
        2: "n >= 0 and i >= 0 and n - i >= 0",
        3: "n >= 0 and i >= 1 and n - i >= 0",
        4: "n >= 0 and i >= 1 and n - i >= 0 and j >= 0 and n - j >= 0",
        5: "n >= 0 and i >= 1 and n - i >= 0 and j >= 1 and n - j >= 0",
        6: "n >= 0 and i >= 1 and n - i >= 0 and j >= 0 and n - j >= 0",
        7: "n >= 0 and i >= 1 and n - i >= 0 and j >= 0 and 1 - j >= 0",
    },
    init={"n": 20.0, "i": 0.0, "j": 0.0},
    degree=2,
    mode="nonnegative",
    category="table2",
    paper_upper="3*n^2",
    paper_lower="0",
    notes=(
        "The reset `j := n` is an unbounded update, so only the nonnegative-cost "
        "regime applies — consistent with the paper reporting PLCS = 0 here."
    ),
)


TRADER = Benchmark(
    name="trader",
    title="trader: stock drawdown",
    source="""
var s, smin;
while s >= smin + 1 do
    tick(5 * s);
    s := s - (0, 1) : (0.5, 0.5)
od
""",
    invariants={
        1: "s - smin >= 0 and smin >= 0",
        2: "s - smin - 1 >= 0 and smin >= 0",
        3: "s - smin - 1 >= 0 and smin >= 0",
    },
    init={"s": 30.0, "smin": 5.0},
    degree=2,
    category="table2",
    paper_upper="-5*smin^2 - 5*smin + 5*s^2 + 5*s",
    paper_lower="0",
)


TABLE2_BENCHMARKS: List[Benchmark] = [
    BER,
    BIN,
    LINEAR01,
    PRDWALK,
    RACE,
    RDSEQL,
    RDWALK,
    SPRDWALK,
    C4B_T13,
    PRNES,
    CONDAND,
    POL04,
    POL05,
    RDBUB,
    TRADER,
]
