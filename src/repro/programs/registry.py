"""Benchmark registry: lookup by name, iteration by category."""

from __future__ import annotations

import difflib
from typing import Dict, List

from .base import Benchmark
from .table2 import TABLE2_BENCHMARKS
from .table3 import TABLE3_BENCHMARKS
from .table6 import TABLE6_BENCHMARKS

__all__ = ["all_benchmarks", "benchmark_names", "benchmarks_by_category", "get_benchmark"]

_REGISTRY: Dict[str, Benchmark] = {}
for _bench in [*TABLE2_BENCHMARKS, *TABLE3_BENCHMARKS, *TABLE6_BENCHMARKS]:
    if _bench.name in _REGISTRY:
        raise ValueError(f"duplicate benchmark name {_bench.name!r}")
    _REGISTRY[_bench.name] = _bench


def get_benchmark(name: str) -> Benchmark:
    """Look up a benchmark by name; raises ``KeyError`` with suggestions.

    A near-miss (typo'd CLI argument or spec entry) names its closest
    registry matches instead of dumping the whole listing, so the
    one-line exit-2 error stays actionable.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        close = difflib.get_close_matches(name, _REGISTRY, n=3, cutoff=0.6)
        if close:
            hint = f"did you mean {', '.join(close)}?"
        else:
            hint = f"known: {', '.join(sorted(_REGISTRY))}"
        raise KeyError(f"unknown benchmark {name!r}; {hint}") from None


def all_benchmarks() -> List[Benchmark]:
    return list(_REGISTRY.values())


def benchmark_names() -> List[str]:
    """Registry names in registration (table) order."""
    return list(_REGISTRY)


def benchmarks_by_category(category: str) -> List[Benchmark]:
    return [b for b in _REGISTRY.values() if b.category == category]
