"""The ten benchmarks of Table 3 (and Tables 4-5, Figures 15-24).

These programs are transcribed directly from the paper's figures:
Bitcoin mining (Fig. 3), Bitcoin pool mining (Fig. 4), the fork-join
queuing network (Fig. 6), species fight (Fig. 8), the running example
(Fig. 2), nested loop (Fig. 10), random walk (Fig. 11), 2D robot
(Fig. 12), goods discount (Fig. 13) and pollutant disposal (Fig. 14).

Invariants are per-label annotations in the style of Figure 9; where
the paper leaves a distribution unspecified (nested loop's ``r''``,
``r'''``) we pick the same distributions as its inner Figure-2 loop,
which reproduces the paper's reported bound shapes.
"""

from __future__ import annotations

from typing import List

from .base import Benchmark

__all__ = ["TABLE3_BENCHMARKS"]


BITCOIN_MINING = Benchmark(
    name="bitcoin_mining",
    title="Bitcoin Mining (Figure 3)",
    source="""
var x;
# alpha = 1, beta = 5000, p = 0.0005, p' = 0.99
while x >= 1 do
    x := x - 1;
    tick(1);
    if prob(0.0005) then
        if prob(0.99) then
            tick(-5000)
        else
            if * then tick(-5000) fi
        fi
    fi
od
""",
    invariants={
        1: "x >= 0",
        2: "x >= 1",
        3: "x >= 0",
        4: "x >= 0",
        5: "x >= 0",
        6: "x >= 0",
        7: "x >= 0",
        8: "x >= 0",
    },
    init={"x": 100.0},
    degree=1,
    category="table3",
    extra_inits=[{"x": 20.0}, {"x": 50.0}],
    paper_upper="1.475 - 1.475*x",
    paper_lower="-1.5*x",
    sweep_var="x",
    sweep_range=(10.0, 200.0),
)


BITCOIN_POOL = Benchmark(
    name="bitcoin_pool",
    title="Bitcoin Pool Mining (Figure 4)",
    source="""
var y, i;
# alpha = 1, beta = 5000, p = 0.0005, p' = 0.99
while y >= 1 do
    tick(1 * y);
    i := 1;
    while i <= y do
        if prob(0.0005) then
            if prob(0.99) then
                tick(-5000)
            else
                if * then tick(-5000) fi
            fi
        fi;
        i := i + 1
    od;
    y := y + (-1, 0, 1) : (0.5, 0.1, 0.4)
od
""",
    invariants={
        1: "y >= 0",
        2: "y >= 1",
        3: "y >= 1",
        4: "y >= 1 and i >= 1 and y + 1 - i >= 0",
        5: "y >= 1 and i >= 1 and y - i >= 0",
        6: "y >= 1 and i >= 1 and y - i >= 0",
        7: "y >= 1 and i >= 1 and y - i >= 0",
        8: "y >= 1 and i >= 1 and y - i >= 0",
        9: "y >= 1 and i >= 1 and y - i >= 0",
        10: "y >= 1 and i >= 1 and y - i >= 0",
        11: "y >= 1 and i >= y and i - 1 <= y",
    },
    init={"y": 100.0, "i": 0.0},
    degree=2,
    mode="signed",
    category="table3",
    notes=(
        "The reset `i := 1` is not a bounded shift when y is unbounded, so "
        "the syntactic check is conservative; the paper treats the benchmark "
        "in the signed bounded-update regime (Remark 3), forced here."
    ),
    extra_inits=[{"y": 20.0, "i": 0.0}, {"y": 50.0, "i": 0.0}],
    paper_upper="-7.375*y^2 - 41.62*y + 49.0",
    paper_lower="-7.5*y^2 - 67.5*y",
    sweep_var="y",
    sweep_range=(5.0, 100.0),
)


QUEUING_NETWORK = Benchmark(
    name="queuing_network",
    title="Fork-Join Queuing Network, K = 2 (Figure 6)",
    source="""
var l1, l2, i, n;
while i <= n do
    if l1 >= 1 then l1 := l1 - 1 fi;
    if l2 >= 1 then l2 := l2 - 1 fi;
    if prob(0.02) then
        if prob(0.2) then
            l1 := l1 + 3
        else
            if prob(0.5) then
                l2 := l2 + 2
            else
                l1 := l1 + 2;
                l2 := l2 + 1
            fi
        fi;
        if l1 >= l2 then tick(l1) else tick(l2) fi
    fi;
    i := i + 1
od
""",
    invariants={
        1: "l1 >= 0 and l2 >= 0 and i >= 1 and n - i + 1 >= 0",
        **{
            label: "l1 >= 0 and l2 >= 0 and i >= 1 and n - i >= 0"
            for label in range(2, 17)
        },
        3: "l1 >= 1 and l2 >= 0 and i >= 1 and n - i >= 0",
        5: "l1 >= 0 and l2 >= 1 and i >= 1 and n - i >= 0",
        14: "l1 >= 0 and l2 >= 0 and l1 - l2 >= 0 and i >= 1 and n - i >= 0",
        15: "l1 >= 0 and l2 >= 0 and l2 - l1 >= 0 and i >= 1 and n - i >= 0",
    },
    init={"l1": 0.0, "l2": 0.0, "i": 1.0, "n": 320.0},
    degree=3,
    category="table3",
    extra_inits=[
        {"l1": 0.0, "l2": 0.0, "i": 1.0, "n": 240.0},
        {"l1": 0.0, "l2": 0.0, "i": 1.0, "n": 280.0},
    ],
    paper_upper="0.0492*n - 0.0492*i + 0.0103*l1^2 + 0.00342*l2^3 + 0.00726*l2^2 + 0.0492",
    paper_lower="0.0384*n - 0.0384*i - 0.000176*l1^2 - 0.00854*l1*l2^2 - 0.0000816*l2^3 - 0.00173*l2^2 + 0.0384",
    sweep_var="n",
    sweep_range=(40.0, 320.0),
    max_sim_steps=10_000_000,
)


SPECIES_FIGHT = Benchmark(
    name="species_fight",
    title="Species Fight (Figure 8)",
    source="""
var a, b;
while a >= 5 and b >= 5 do
    tick(a + b);
    if prob(0.5) then
        b := 0.9 * b;
        a := 1.1 * a
    else
        b := 1.1 * b;
        a := 0.9 * a
    fi
od
""",
    invariants={
        1: "a >= 4.5 and b >= 4.5",
        2: "a >= 5 and b >= 5",
        3: "a >= 5 and b >= 5",
        4: "a >= 5 and b >= 5",
        5: "a >= 5 and b >= 4.5",
        6: "a >= 5 and b >= 5",
        7: "a >= 5 and b >= 5",
        8: "a >= 4.5 and b >= 4.5",
    },
    init={"a": 16.0, "b": 10.0},
    degree=2,
    mode="nonnegative",
    category="table3",
    extra_inits=[{"a": 12.0, "b": 10.0}, {"a": 14.0, "b": 10.0}],
    paper_upper="40*a*b - 180*b - 180*a + 810",
    paper_lower=None,
    notes="Unbounded (multiplicative) updates: Section 6.3 regime, upper bound only.",
    sweep_var="a",
    sweep_range=(5.0, 30.0),
)


SIMPLE_LOOP = Benchmark(
    name="simple_loop",
    title="Running example (Figure 2)",
    source="""
var x, y;
sample r  ~ discrete(1: 0.25, -1: 0.75);
sample r2 ~ discrete(1: 0.6666666666666667, -1: 0.3333333333333333);
while x >= 1 do
    x := x + r;
    y := r2;
    tick(x * y)
od
""",
    invariants={
        1: "x >= 0",
        2: "x >= 1",
        3: "x >= 0 and y + 1 >= 0 and 1 - y >= 0",
        4: "x >= 0 and y + 1 >= 0 and 1 - y >= 0",
    },
    init={"x": 200.0, "y": 0.0},
    degree=2,
    category="table3",
    extra_inits=[{"x": 100.0, "y": 0.0}, {"x": 160.0, "y": 0.0}],
    paper_upper="(1/3)*x^2 + (1/3)*x",
    paper_lower="(1/3)*x^2 + (1/3)*x - 2/3",
    sweep_var="x",
    sweep_range=(10.0, 200.0),
)


NESTED_LOOP = Benchmark(
    name="nested_loop",
    title="Nested Loop (Figure 10)",
    source="""
var i, x, y, z;
sample r  ~ discrete(1: 0.25, -1: 0.75);
sample r2 ~ discrete(1: 0.6666666666666667, -1: 0.3333333333333333);
sample r3 ~ discrete(1: 0.25, -1: 0.75);
sample r4 ~ discrete(1: 0.6666666666666667, -1: 0.3333333333333333);
while i >= 1 do
    x := i;
    while x >= 1 do
        x := x + r;
        y := r2;
        tick(y)
    od;
    i := i + r3;
    z := r4;
    tick(-z * i)
od
""",
    invariants={
        1: "i >= 0",
        2: "i >= 1",
        3: "i >= 1 and x >= 0",
        4: "i >= 1 and x >= 1",
        5: "i >= 1 and x >= 0 and y + 1 >= 0 and 1 - y >= 0",
        6: "i >= 1 and x >= 0 and y + 1 >= 0 and 1 - y >= 0",
        7: "i >= 1 and x >= 0 and 1 - x >= 0",
        8: "i >= 0 and x >= 0 and 1 - x >= 0 and z + 1 >= 0 and 1 - z >= 0",
        9: "i >= 0 and x >= 0 and 1 - x >= 0 and z + 1 >= 0 and 1 - z >= 0",
    },
    init={"i": 150.0, "x": 0.0, "y": 0.0, "z": 0.0},
    degree=2,
    mode="signed",
    category="table3",
    extra_inits=[
        {"i": 50.0, "x": 0.0, "y": 0.0, "z": 0.0},
        {"i": 100.0, "x": 0.0, "y": 0.0, "z": 0.0},
    ],
    paper_upper="(1/3)*i^2 + i",
    paper_lower="(1/3)*i^2 - (1/3)*i",
    notes=(
        "The copy `x := i` is not a bounded shift, so the syntactic "
        "bounded-update check is conservative here; the paper treats the "
        "benchmark in the signed regime, which we force via mode='signed'."
    ),
    sweep_var="i",
    sweep_range=(10.0, 150.0),
)


RANDOM_WALK = Benchmark(
    name="random_walk",
    title="Random Walk (Figure 11)",
    source="""
var x, n, y;
sample r ~ discrete(1: 0.25, -1: 0.75);
while x <= n do
    if prob(0.6) then
        x := x + 1
    else
        x := x - 1
    fi;
    y := r;
    tick(y)
od
""",
    invariants={
        1: "n - x + 1 >= 0",
        2: "n - x >= 0",
        3: "n - x >= 0",
        4: "n - x >= 0",
        5: "n - x + 1 >= 0 and y + 1 >= 0 and 1 - y >= 0",
        6: "n - x + 1 >= 0 and y + 1 >= 0 and 1 - y >= 0",
    },
    init={"x": 12.0, "n": 20.0, "y": 0.0},
    degree=1,
    category="table3",
    extra_inits=[{"x": 4.0, "n": 20.0, "y": 0.0}, {"x": 8.0, "n": 20.0, "y": 0.0}],
    paper_upper="2.5*x - 2.5*n",
    paper_lower="2.5*x - 2.5*n - 2.5",
    sweep_var="x",
    sweep_range=(0.0, 20.0),
)


ROBOT_2D = Benchmark(
    name="robot_2d",
    title="2D Robot (Figure 12)",
    source="""
var x, y;
sample s ~ uniform(1, 3);
while y <= x do
    if prob(0.2) then
        y := y + s
    else if prob(0.125) then
        y := y - s
    else if prob(0.143) then
        x := x + s
    else if prob(0.167) then
        x := x - s
    else if prob(0.2) then
        x := x + s;
        y := y + s
    else if prob(0.25) then
        x := x + s;
        y := y - s
    else if prob(0.333) then
        x := x - s;
        y := y + s
    else if prob(0.5) then
        x := x - s;
        y := y - s
    fi fi fi fi fi fi fi fi;
    tick(0.707 * (x - y))
od
""",
    invariants={
        1: "x - y + 6 >= 0",
        **{label: "x - y >= 0" for label in range(2, 22)},
        # After `x := x - s` the gap may have dropped by up to 3.
        18: "x - y + 3 >= 0",
        21: "x - y + 3 >= 0",
        22: "x - y + 6 >= 0",
    },
    init={"x": 100.0, "y": 80.0},
    degree=2,
    category="table3",
    extra_inits=[{"x": 100.0, "y": 40.0}, {"x": 100.0, "y": 60.0}],
    paper_upper="1.728*x^2 - 3.456*x*y + 31.45*x + 1.728*y^2 - 31.45*y + 126.5",
    paper_lower="1.728*x^2 - 3.456*x*y + 31.45*x + 1.728*y^2 - 31.45*y",
    notes=(
        "Step size uniform on [1, 3]; the chained `else if prob(...)` "
        "conditional probabilities follow Figure 12."
    ),
    sweep_var="y",
    sweep_range=(40.0, 99.0),
)


GOODS_DISCOUNT = Benchmark(
    name="goods_discount",
    title="Goods Discount (Figure 13)",
    source="""
var n, d;
sample r ~ uniform(1, 2);
while d <= 30 and n >= 1 do
    n := n - 1;
    tick(5);
    d := d + r;
    tick(-0.01 * n)
od;
tick(-0.5 * n)
""",
    invariants={
        1: "n >= 0 and d >= 1 and 32 - d >= 0",
        2: "n >= 1 and d >= 1 and 30 - d >= 0",
        3: "n >= 0 and d >= 1 and 30 - d >= 0",
        4: "n >= 0 and d >= 1 and 30 - d >= 0",
        5: "n >= 0 and d >= 1 and 32 - d >= 0",
        # Exit of the loop: either the deadline passed or stock ran out.
        6: "(n >= 0 and d >= 30 and 32 - d >= 0) or (n >= 0 and 1 - n >= 0 and d >= 1 and 32 - d >= 0)",
    },
    init={"n": 200.0, "d": 1.0},
    degree=2,
    category="table3",
    extra_inits=[{"n": 100.0, "d": 1.0}, {"n": 150.0, "d": 1.0}],
    paper_upper="0.00667*d*n - 0.7*n - 3.803*d + 0.00222*d^2 + 119.4",
    paper_lower="0.00667*d*n - 0.7133*n - 3.812*d + 0.00222*d^2 + 112.4",
    sweep_var="n",
    sweep_range=(20.0, 200.0),
    # n + d never decreases across a full iteration (it changes by
    # r - 1 in [0, 1]), so n + d >= n0 + d0 is inductive at the loop
    # head; between `n := n - 1` and `d := d + r` (labels 3-4) the sum
    # temporarily dips by one.
    init_invariants=lambda init: {
        1: f"n + d >= {init['n'] + init['d']:g}",
        2: f"n + d >= {init['n'] + init['d']:g}",
        3: f"n + d >= {init['n'] + init['d'] - 1:g}",
        4: f"n + d >= {init['n'] + init['d'] - 1:g}",
        5: f"n + d >= {init['n'] + init['d']:g}",
        6: f"n + d >= {init['n'] + init['d']:g}",
    },
)


POLLUTANT_DISPOSAL = Benchmark(
    name="pollutant_disposal",
    title="Pollutant Disposal (Figure 14)",
    source="""
var n, x, y;
sample r1  ~ unifint(1, 10);
sample r1p ~ unifint(2, 8);
sample r2  ~ unifint(1, 10);
sample r2p ~ unifint(2, 8);
while n >= 10 do
    if prob(0.6) then
        x := r1;
        n := n - x + r1p;
        tick(5 * x)
    else
        y := r2;
        n := n - y + r2p;
        tick(5 * y)
    fi;
    tick(-0.2 * n)
od
""",
    invariants={
        1: "n >= 2",
        2: "n >= 10",
        3: "n >= 10 and x >= 0 and 10 - x >= 0",
        4: "n >= 10 and x >= 1 and 10 - x >= 0",
        5: "n >= 2 and x >= 1 and 10 - x >= 0",
        6: "n >= 10 and y >= 0 and 10 - y >= 0",
        7: "n >= 10 and y >= 1 and 10 - y >= 0",
        8: "n >= 2 and y >= 1 and 10 - y >= 0",
        9: "n >= 2",
    },
    init={"n": 200.0, "x": 0.0, "y": 0.0},
    degree=2,
    category="table3",
    extra_inits=[
        {"n": 50.0, "x": 0.0, "y": 0.0},
        {"n": 80.0, "x": 0.0, "y": 0.0},
    ],
    paper_upper="-0.2*n^2 + 50.2*n",
    paper_lower="-0.2*n^2 + 50.2*n - 482.0",
    sweep_var="n",
    sweep_range=(15.0, 200.0),
)


TABLE3_BENCHMARKS: List[Benchmark] = [
    BITCOIN_MINING,
    BITCOIN_POOL,
    QUEUING_NETWORK,
    SPECIES_FIGHT,
    SIMPLE_LOOP,
    NESTED_LOOP,
    RANDOM_WALK,
    ROBOT_2D,
    GOODS_DISCOUNT,
    POLLUTANT_DISPOSAL,
]
