"""Table 6: benchmark families beyond the paper's evaluation.

The paper's suite (Tables 2 and 3) is fixed; these programs extend it
with classic randomized-algorithm and systems workloads the paper never
touched, hand-modeled in the same bounded-update style so the PUCS/PLCS
machinery applies unchanged:

* a coupon collector with a fixed per-trial success probability,
* randomized quicksort as a recursion-depth model (multiplicative
  shrink, Section 6.3 regime: upper bound only),
* two gambler's-ruin variants (fair-step and momentum walks absorbed
  at both ends of ``[0, n]``),
* a service retry loop with a penalty cost on failed attempts.

All five are purely probabilistic (no ``if *``), so every table6 row
carries Monte-Carlo simulation columns directly — no Table 5 coin-flip
transformation needed.
"""

from __future__ import annotations

from typing import List

from .base import Benchmark

__all__ = ["TABLE6_BENCHMARKS"]


COUPON_COLLECTOR = Benchmark(
    name="coupon_collector",
    title="Coupon Collector (fixed success probability)",
    source="""
var c, n;
while n - c >= 1 do
    tick(1);
    if prob(0.2) then
        c := c + 1
    fi
od
""",
    invariants={
        1: "c >= 0 and n - c >= 0",
        2: "c >= 0 and n - c >= 1",
        3: "c >= 0 and n - c >= 1",
        4: "c >= 0 and n - c >= 1",
        5: "c >= 0 and n - c >= 0 and c - n + 1 >= 0",
    },
    init={"c": 0.0, "n": 20.0},
    degree=1,
    category="table6",
    extra_inits=[{"c": 0.0, "n": 10.0}, {"c": 0.0, "n": 15.0}],
    notes=(
        "Each trial draws a missing coupon with probability 0.2, so the "
        "expected number of trials is exactly 5*(n - c); upper and lower "
        "bounds close to within the one-trial overshoot."
    ),
    sweep_var="n",
    sweep_range=(5.0, 40.0),
)


QUICKSORT_REC = Benchmark(
    name="quicksort_rec",
    title="Randomized Quicksort (recursion-depth model)",
    source="""
var n;
while n >= 4 do
    tick(n);
    if prob(0.5) then
        n := 0.5 * n
    else
        n := 0.75 * n
    fi
od
""",
    invariants={
        1: "n >= 2",
        2: "n >= 4",
        3: "n >= 4",
        4: "n >= 4",
        5: "n >= 4",
        6: "n >= 2 and 4 - n >= 0",
    },
    init={"n": 100.0},
    degree=1,
    mode="nonnegative",
    category="table6",
    extra_inits=[{"n": 40.0}, {"n": 64.0}],
    notes=(
        "Partition costs n; a random pivot shrinks the dominant sublist "
        "to 0.5*n (lucky) or 0.75*n (unlucky) with equal probability. "
        "Multiplicative updates put this in the Section 6.3 nonnegative "
        "regime: upper bound only, like species_fight."
    ),
    sweep_var="n",
    sweep_range=(4.0, 128.0),
)


GAMBLERS_RUIN = Benchmark(
    name="gamblers_ruin",
    title="Gambler's Ruin (unfavorable unit stakes)",
    source="""
var x, n;
while x >= 1 and n - x >= 0 do
    x := x + (1, -1) : (0.45, 0.55);
    tick(1)
od
""",
    invariants={
        1: "x >= 0 and n - x + 1 >= 0",
        2: "x >= 1 and n - x >= 0",
        3: "x >= 0 and n - x + 1 >= 0",
        4: "x >= 0 and n - x + 1 >= 0 and ((1 - x >= 0) or (x - n - 1 >= 0))",
    },
    init={"x": 10.0, "n": 20.0},
    degree=1,
    category="table6",
    extra_inits=[{"x": 5.0, "n": 20.0}, {"x": 15.0, "n": 20.0}],
    notes=(
        "Biased +-1 walk absorbed at 0 and n+1; the drift argument gives "
        "E[rounds] <= x/0.1 = 10*x, tight when the walk never reaches the "
        "top boundary."
    ),
    sweep_var="x",
    sweep_range=(1.0, 20.0),
)


GAMBLERS_RUIN_MOMENTUM = Benchmark(
    name="gamblers_ruin_momentum",
    title="Gambler's Ruin (momentum variant, +2/-1 stakes)",
    source="""
var x, n;
while x >= 1 and n - x >= 0 do
    x := x + (2, -1) : (0.25, 0.75);
    tick(1)
od
""",
    invariants={
        1: "x >= 0 and n - x + 2 >= 0",
        2: "x >= 1 and n - x >= 0",
        3: "x >= 0 and n - x + 2 >= 0",
        4: "x >= 0 and n - x + 2 >= 0 and ((1 - x >= 0) or (x - n - 1 >= 0))",
    },
    init={"x": 10.0, "n": 20.0},
    degree=1,
    category="table6",
    extra_inits=[{"x": 5.0, "n": 20.0}, {"x": 15.0, "n": 20.0}],
    notes=(
        "Asymmetric stakes (+2 with probability 0.25, -1 otherwise) keep "
        "the drift at -0.25 per round, so E[rounds] <= 4*x; the top exit "
        "can overshoot to n+2."
    ),
    sweep_var="x",
    sweep_range=(1.0, 20.0),
)


RETRY_QUEUE = Benchmark(
    name="retry_queue",
    title="Service Retry Loop (failure penalty)",
    source="""
var n;
while n >= 1 do
    if prob(0.7) then
        n := n - 1;
        tick(1)
    else
        tick(3)
    fi
od
""",
    invariants={
        1: "n >= 0",
        2: "n >= 1",
        3: "n >= 1",
        4: "n >= 0",
        5: "n >= 1",
        6: "n >= 0 and 1 - n >= 0",
    },
    init={"n": 50.0},
    degree=1,
    category="table6",
    extra_inits=[{"n": 20.0}, {"n": 35.0}],
    notes=(
        "Each queued request succeeds with probability 0.7 (unit cost) or "
        "fails and is retried at penalty cost 3; the per-request expected "
        "cost is 1.6/0.7 = 16/7, and both bounds close on 16/7*n."
    ),
    sweep_var="n",
    sweep_range=(5.0, 80.0),
)


TABLE6_BENCHMARKS: List[Benchmark] = [
    COUPON_COLLECTOR,
    QUICKSORT_REC,
    GAMBLERS_RUIN,
    GAMBLERS_RUIN_MOMENTUM,
    RETRY_QUEUE,
]
