"""Benchmark program suite (Tables 2 and 3 of the paper, plus the
Table 6 extension families)."""

from .base import Benchmark, probabilistic_variant
from .registry import all_benchmarks, benchmark_names, benchmarks_by_category, get_benchmark
from .table2 import TABLE2_BENCHMARKS
from .table3 import TABLE3_BENCHMARKS
from .table6 import TABLE6_BENCHMARKS

__all__ = [
    "Benchmark",
    "TABLE2_BENCHMARKS",
    "TABLE3_BENCHMARKS",
    "TABLE6_BENCHMARKS",
    "all_benchmarks",
    "benchmark_names",
    "benchmarks_by_category",
    "get_benchmark",
    "probabilistic_variant",
]
