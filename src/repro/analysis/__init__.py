"""High-level analysis facade and certificate validation."""

from .bounds import CostAnalysisResult, analyze
from .martingale import MartingaleReport, check_cost_martingale
from .runtime import analyze_runtime, instrument_runtime
from .tails import TailBound, TailProbe, derive_tail_bound

__all__ = [
    "CostAnalysisResult",
    "MartingaleReport",
    "TailBound",
    "TailProbe",
    "analyze",
    "analyze_runtime",
    "check_cost_martingale",
    "derive_tail_bound",
    "instrument_runtime",
]
