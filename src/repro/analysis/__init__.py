"""High-level analysis facade and certificate validation."""

from .bounds import CostAnalysisResult, analyze
from .martingale import MartingaleReport, check_cost_martingale
from .runtime import analyze_runtime, instrument_runtime

__all__ = [
    "CostAnalysisResult",
    "MartingaleReport",
    "analyze",
    "analyze_runtime",
    "check_cost_martingale",
    "instrument_runtime",
]
