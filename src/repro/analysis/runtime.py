"""Expected-runtime analysis as a special case of cost analysis.

The expected *termination time* of a program is the expected
accumulated cost of the same program in which every original step is
free and every loop iteration ticks 1.  This module instruments a
program with unit costs per executed statement (the classic expected
runtime transformer of Kaminski et al., realized through the paper's
cost machinery) and runs the standard PUCS/PLCS pipeline, giving
polynomial upper *and lower* bounds on expected runtimes.
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from ..polynomials import Polynomial
from ..syntax.ast import If, NondetIf, ProbIf, Program, Seq, Skip, Stmt, Tick, While
from ..syntax.parser import parse_program
from .bounds import CostAnalysisResult, analyze

__all__ = ["instrument_runtime", "analyze_runtime"]


def _strip_ticks(stmt: Stmt) -> Stmt:
    """Remove existing tick statements (their costs are not runtime)."""
    if isinstance(stmt, Tick):
        return Skip()
    if isinstance(stmt, Seq):
        return Seq.of(*(_strip_ticks(s) for s in stmt.stmts))
    if isinstance(stmt, While):
        return While(stmt.cond, _strip_ticks(stmt.body))
    if isinstance(stmt, If):
        return If(stmt.cond, _strip_ticks(stmt.then_branch), _strip_ticks(stmt.else_branch))
    if isinstance(stmt, ProbIf):
        return ProbIf(stmt.prob, _strip_ticks(stmt.then_branch), _strip_ticks(stmt.else_branch))
    if isinstance(stmt, NondetIf):
        return NondetIf(_strip_ticks(stmt.then_branch), _strip_ticks(stmt.else_branch))
    return stmt


def _add_loop_ticks(stmt: Stmt) -> Stmt:
    """Tick 1 at the top of every loop body (runtime = iteration count)."""
    if isinstance(stmt, Seq):
        return Seq.of(*(_add_loop_ticks(s) for s in stmt.stmts))
    if isinstance(stmt, While):
        return While(stmt.cond, Seq.of(Tick(Polynomial.constant(1.0)), _add_loop_ticks(stmt.body)))
    if isinstance(stmt, If):
        return If(stmt.cond, _add_loop_ticks(stmt.then_branch), _add_loop_ticks(stmt.else_branch))
    if isinstance(stmt, ProbIf):
        return ProbIf(
            stmt.prob, _add_loop_ticks(stmt.then_branch), _add_loop_ticks(stmt.else_branch)
        )
    if isinstance(stmt, NondetIf):
        return NondetIf(_add_loop_ticks(stmt.then_branch), _add_loop_ticks(stmt.else_branch))
    return stmt


def instrument_runtime(program: Program) -> Program:
    """A copy of ``program`` whose cost is its loop-iteration count.

    Existing ``tick`` statements are removed, then every loop body is
    prefixed with ``tick(1)``.  Straight-line code contributes no cost
    (it terminates in bounded time regardless).
    """
    body = _add_loop_ticks(_strip_ticks(program.body))
    name = f"{program.name}-runtime" if program.name else None
    return Program(pvars=list(program.pvars), rvars=dict(program.rvars), body=body, name=name)


def analyze_runtime(
    program: Union[str, Program],
    init: Mapping[str, float],
    invariants: Optional[Mapping[int, object]] = None,
    degree: int = 2,
    mode: str = "auto",
) -> CostAnalysisResult:
    """Polynomial bounds on the expected number of loop iterations.

    Note the instrumentation changes label numbering (each loop gains a
    tick label), so invariants — if supplied — must refer to the
    *instrumented* program's labels; with none supplied the automatic
    interval generator is used.
    """
    if isinstance(program, str):
        program = parse_program(program)
    instrumented = instrument_runtime(program)
    return analyze(instrumented, init=init, invariants=invariants, degree=degree, mode=mode)
