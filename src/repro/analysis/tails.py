"""Tail-bound (concentration) analysis over synthesized certificates.

The PUCS synthesized by the paper's machinery proves an *expected* cost
bound, but the certificate carries more information: the process

    X_n = (accumulated cost after n steps) + h(l_n, v_n)

is a supermartingale (condition (C3) is exactly ``pre_h <= h``), starts
at ``X_0 = h(l_in, v*) = E`` and equals the accumulated cost once the
run terminates (``h(l_out) = 0``, condition (C2)).  If its stepwise
differences are bounded almost surely — ``|X_{n+1} - X_n| <= c``, a
property :func:`repro.core.synthesis.difference_bound` certifies with
an auxiliary LP over the same Handelman monoid products — then the
Azuma–Hoeffding inequality applied to the stopped process gives, for
every horizon ``n`` and every ``t > 0``,

    P[ cost >= E + t  and  T <= n ]  <=  exp( -t^2 / (2 c^2 n) ).

The guarantee covers runs that terminate within the horizon; combined
with the concentration certificate of :mod:`repro.termination`
(``P[T > n]`` decays geometrically) the residual event is itself
exponentially unlikely.  Monte-Carlo validation compares the bound
against empirical tail frequencies of interpreter runs truncated at
the same horizon (see ``repro.experiments.table_tails`` and the
integration tests).

When the reported certificate has no constant difference bound (e.g. a
quadratic ``h`` whose gradient is unbounded on the invariant),
:func:`derive_tail_bound` *refits* a degree-1 PUCS for the tail
analysis only: any valid upper certificate yields a valid — if looser
— concentration statement, with its own anchor value ``E``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..core.synthesis import difference_bound, synthesize
from ..errors import InfeasibleError, SynthesisError, UnboundedError
from ..semantics.cfg import AssignLabel

__all__ = ["DEFAULT_TAIL_HORIZON", "TailBound", "TailProbe", "derive_tail_bound"]

#: Default step horizon ``n`` — matches the interpreter's default
#: ``max_steps`` truncation so simulated runs and the guarantee cover
#: the same event.
DEFAULT_TAIL_HORIZON = 1_000_000

#: Probe offsets in units of ``c * sqrt(horizon)`` (the natural scale of
#: the Azuma bound) used when the caller doesn't supply explicit ``t``
#: values; ``exp(-alpha^2 / 2)`` at these points spans ~0.9 .. ~1e-2.
DEFAULT_PROBE_ALPHAS = (0.5, 1.0, 2.0, 3.0)


@dataclass
class TailProbe:
    """The concentration bound evaluated at one offset ``t``."""

    t: float
    bound: float


@dataclass
class TailBound:
    """An Azuma–Hoeffding concentration statement for the total cost.

    ``bound_at(t)`` upper-bounds ``P[cost >= expected + t, T <= horizon]``
    for every ``t > 0``; ``probes`` pre-evaluates it at a few offsets
    for reports.
    """

    #: Certified almost-sure step-difference bound of the supermartingale.
    c: float
    #: Step horizon ``n`` the guarantee is stated for.
    horizon: int
    #: Anchor value ``E = h(l_in, v*)`` of the certificate used (equals
    #: the reported upper bound unless the certificate was refitted).
    expected: float
    probes: List[TailProbe] = field(default_factory=list)
    method: str = "azuma-hoeffding"
    #: Template degree of the certificate the bound was derived from.
    degree: int = 1
    #: True when the reported certificate had no constant difference
    #: bound and a degree-1 PUCS was re-synthesized for the tail
    #: analysis (``expected`` is then that certificate's anchor value).
    refit: bool = False

    def bound_at(self, t: float) -> float:
        """``P[cost >= expected + t, T <= horizon] <= bound_at(t)``."""
        if t <= 0.0:
            return 1.0
        if self.c == 0.0:
            # A zero difference bound means X is constant: the cost of
            # every terminating run is exactly ``expected``.
            return 0.0
        exponent = -(t * t) / (2.0 * self.c * self.c * float(self.horizon))
        return min(1.0, math.exp(exponent))

    def summary_lines(self) -> List[str]:
        """Human-readable lines for ``CostAnalysisResult.summary()``."""
        origin = f"degree-{self.degree} refit certificate" if self.refit else "reported certificate"
        lines = [
            f"tail:    P[cost >= {self.expected:.6g} + t, T <= {self.horizon}] "
            f"<= exp(-t^2 / (2 * {self.c:.6g}^2 * {self.horizon}))  [{origin}]"
        ]
        for probe in self.probes:
            lines.append(f"         t = {probe.t:.6g}: <= {probe.bound:.6g}")
        return lines

    def to_dict(self) -> Dict[str, Any]:
        return {
            "method": self.method,
            "c": self.c,
            "horizon": self.horizon,
            "expected": self.expected,
            "degree": self.degree,
            "refit": self.refit,
            "probes": [{"t": probe.t, "bound": probe.bound} for probe in self.probes],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TailBound":
        return cls(
            c=float(data["c"]),
            horizon=int(data["horizon"]),
            expected=float(data["expected"]),
            probes=[
                TailProbe(t=float(p["t"]), bound=float(p["bound"]))
                for p in data.get("probes", ())
            ],
            method=str(data.get("method", "azuma-hoeffding")),
            degree=int(data.get("degree", 1)),
            refit=bool(data.get("refit", False)),
        )


def _default_probes(c: float, horizon: int) -> List[float]:
    if c == 0.0:
        return [1.0]
    scale = c * math.sqrt(float(horizon))
    return [alpha * scale for alpha in DEFAULT_PROBE_ALPHAS]


def derive_tail_bound(
    result,
    horizon: Optional[int] = None,
    probes: Optional[Sequence[float]] = None,
    max_multiplicands: Optional[int] = None,
) -> TailBound:
    """Derive the concentration bound for a :class:`CostAnalysisResult`.

    ``result`` must carry a synthesized upper bound (``result.upper``).
    ``horizon`` defaults to :data:`DEFAULT_TAIL_HORIZON`; ``probes`` are
    the offsets ``t`` to pre-evaluate (defaulting to multiples of the
    natural scale ``c * sqrt(horizon)``).

    Raises :class:`SynthesisError` when no upper certificate exists and
    :class:`InfeasibleError`/:class:`UnboundedError` when neither the
    reported certificate nor a degree-1 refit admits a constant
    difference bound; ``analyze(tails=True)`` maps those to a warning.
    """
    if result.upper is None:
        raise SynthesisError("tail bound needs a synthesized upper bound (PUCS)")
    if horizon is None:
        horizon = DEFAULT_TAIL_HORIZON
    horizon = int(horizon)
    if horizon < 1:
        raise ValueError(f"tail horizon must be >= 1, got {horizon}")

    cfg, invariants = result.cfg, result.invariants

    # Static pre-check (the lint pass reports this as REP006): a
    # sampling variable with unbounded support can move the process
    # arbitrarily far in one step, so no almost-sure step-difference
    # bound exists for *any* certificate — fail before spending the
    # difference-bound LP and the degree-1 refit LPs on a lost cause.
    used = set()
    for label in cfg:
        if isinstance(label, AssignLabel):
            used |= label.expr.variables()
    unbounded = sorted(
        name for name, dist in cfg.rvars.items() if name in used and not dist.is_bounded()
    )
    if unbounded:
        raise UnboundedError(
            f"sampling variable(s) {unbounded} have unbounded support; "
            "no almost-sure step-difference bound exists (REP006)"
        )

    refit = False
    degree = result.upper.degree
    expected = result.upper.value
    try:
        c = difference_bound(cfg, invariants, result.upper.h, max_multiplicands=max_multiplicands)
    except (InfeasibleError, UnboundedError) as primary_exc:
        # The reported certificate has no constant difference bound.
        # Any other valid PUCS still yields a sound concentration
        # statement around *its own* anchor value; a degree-1 refit is
        # the certificate most likely to have bounded differences.
        if result.upper.degree <= 1:
            raise
        try:
            refit_result = synthesize(
                cfg,
                invariants,
                result.upper.anchor,
                kind="upper",
                degree=1,
                nonnegative=result.mode.require_nonnegative_template,
                max_multiplicands=max_multiplicands,
            )
            c = difference_bound(
                cfg, invariants, refit_result.h, max_multiplicands=max_multiplicands
            )
        except (InfeasibleError, UnboundedError, SynthesisError):
            raise primary_exc
        refit = True
        degree = 1
        expected = refit_result.value

    bound = TailBound(c=c, horizon=horizon, expected=expected, degree=degree, refit=refit)
    offsets = list(probes) if probes is not None else _default_probes(c, horizon)
    for t in offsets:
        t = float(t)
        if t <= 0.0:
            raise ValueError(f"tail probes must be positive, got {t}")
        bound.probes.append(TailProbe(t=t, bound=bound.bound_at(t)))
    return bound
