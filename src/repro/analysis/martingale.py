"""Empirical validation of cost (super/sub)martingales.

A synthesized PUCS/PLCS is a *certificate*: conditions (C1)-(C3)/(C3')
must hold at every reachable configuration.  This module re-checks the
conditions pointwise along simulated runs, evaluating Definition 6.3
exactly (expectations use exact moments, nondeterminism takes the real
``max``).  It cannot prove soundness — the LP already did — but it
catches pipeline bugs (wrong invariants, mis-built pre-expectations)
immediately, and the test suite leans on it heavily.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.preexpectation import pre_expectation_value
from ..polynomials import Polynomial
from ..semantics.cfg import CFG, TerminalLabel
from ..semantics.interpreter import run
from ..semantics.schedulers import RandomScheduler, Scheduler

__all__ = ["MartingaleReport", "check_cost_martingale"]


@dataclass
class MartingaleReport:
    """Worst observed violation of (C3)/(C3') along simulated runs."""

    kind: str
    configurations_checked: int
    max_violation: float
    worst_config: Optional[Tuple[int, Dict[str, float]]] = None
    violations: List[Tuple[int, Dict[str, float], float]] = field(default_factory=list, repr=False)

    def ok(self, tol: float = 1e-6) -> bool:
        return self.max_violation <= tol


def check_cost_martingale(
    cfg: CFG,
    h: Mapping[int, Polynomial],
    kind: str,
    init: Mapping[str, float],
    runs: int = 30,
    seed: Optional[int] = 0,
    max_steps: int = 50_000,
    scheduler: Optional[Scheduler] = None,
    tol: float = 1e-6,
) -> MartingaleReport:
    """Check (C3) (``kind='upper'``) or (C3') (``kind='lower'``) along runs.

    For an upper certificate the violation at a configuration is
    ``pre_h - h`` (positive means (C3) fails); for a lower certificate
    it is ``h - pre_h``.  Nondeterministic labels evaluate the true
    ``max``; note that for a PLCS obtained under a specific policy the
    ``max`` only helps (C3'), so the check remains valid.
    """
    if kind not in ("upper", "lower"):
        raise ValueError("kind must be 'upper' or 'lower'")
    rng = random.Random(seed)
    scheduler = scheduler or RandomScheduler(seed=seed)

    checked = 0
    max_violation = -float("inf")
    worst: Optional[Tuple[int, Dict[str, float]]] = None
    violations: List[Tuple[int, Dict[str, float], float]] = []

    for _ in range(runs):
        result = run(
            cfg, init, scheduler=scheduler, rng=rng, max_steps=max_steps, record_trajectory=True
        )
        for label_id, valuation, _cost in result.trajectory or ():
            label = cfg.labels[label_id]
            if isinstance(label, TerminalLabel):
                continue
            h_val = h[label_id].evaluate_numeric(valuation)
            pre_val = pre_expectation_value(cfg, h, label_id, valuation)
            violation = (pre_val - h_val) if kind == "upper" else (h_val - pre_val)
            checked += 1
            if violation > max_violation:
                max_violation = violation
                worst = (label_id, dict(valuation))
            if violation > tol:
                violations.append((label_id, dict(valuation), violation))

    return MartingaleReport(
        kind=kind,
        configurations_checked=checked,
        max_violation=max_violation if checked else 0.0,
        worst_config=worst,
        violations=violations,
    )
