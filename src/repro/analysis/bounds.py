"""High-level cost-analysis facade.

:func:`analyze` runs the complete pipeline of the paper on a program:

1. parse (if given source text) and build the CFG;
2. assemble invariants: user annotations, optionally strengthened by
   the automatic interval generator;
3. classify the soundness regime (Section 6.2 vs 6.3) from the side
   conditions;
4. optionally certify concentration with a ranking supermartingale;
5. synthesize the PUCS upper bound and, when the regime admits one,
   the PLCS lower bound.

This is the function the examples and the experiment harness call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Mapping, Optional, Union

if TYPE_CHECKING:  # runtime imports would be circular; these are lazy below
    from ..check.diagnostics import Diagnostic
    from .tails import TailBound

from ..core.conditions import AnalysisMode, classify
from ..core.synthesis import BoundResult, synthesize
from ..errors import InfeasibleError, SynthesisError, UnboundedError
from ..invariants import (
    InvariantMap,
    generate_interval_invariants,
    generate_octagon_invariants,
)
from ..semantics.cfg import CFG, build_cfg
from ..syntax.ast import Program
from ..syntax.parser import parse_program
from ..termination import RankingCertificate, certify_concentration

__all__ = ["CostAnalysisResult", "analyze", "attach_tail_bound", "attach_tail_bound_for"]


@dataclass
class CostAnalysisResult:
    """Everything the pipeline produced for one program."""

    program: Program
    cfg: CFG
    invariants: InvariantMap
    mode: AnalysisMode
    upper: Optional[BoundResult] = None
    lower: Optional[BoundResult] = None
    concentration: Optional[RankingCertificate] = None
    #: Azuma–Hoeffding concentration bound (``analyze(tails=True)``);
    #: ``None`` when not requested or unavailable (see ``warnings``).
    tail: Optional["TailBound"] = None
    warnings: List[str] = field(default_factory=list)
    #: Why ``lower`` is ``None`` although a lower bound was requested:
    #: the regime admits no PLCS bound, or synthesis was infeasible.
    #: ``None`` when a lower bound exists or none was asked for.
    lower_skipped: Optional[str] = None
    #: Findings of the static lint pass (``analyze(check=...)``), in
    #: reading order.  ``None`` means the check did not run; an empty
    #: list means it ran and the program is clean.
    diagnostics: Optional[List["Diagnostic"]] = None

    @property
    def upper_bound(self):
        """The PUCS bound polynomial at the entry label (or None)."""
        return self.upper.bound if self.upper else None

    @property
    def lower_bound(self):
        """The PLCS bound polynomial at the entry label (or None)."""
        return self.lower.bound if self.lower else None

    def summary(self) -> str:
        """Human-readable report (used by the examples)."""
        lines = [f"program: {self.program.name or '<anonymous>'}", f"mode:    {self.mode.name}"]
        if self.upper:
            lines.append(f"upper:   {self.upper.bound.round(6)}  (value {self.upper.value:.6g})")
        if self.lower:
            lines.append(f"lower:   {self.lower.bound.round(6)}  (value {self.lower.value:.6g})")
        elif self.lower_skipped:
            # A requested-but-missing PLCS bound used to vanish from the
            # report silently; say why it is absent.
            lines.append(f"lower:   skipped ({self.lower_skipped})")
        if self.tail is not None:
            lines.extend(self.tail.summary_lines())
        if self.concentration is not None:
            status = "certified" if self.concentration.certifies_concentration else "RSM only"
            lines.append(
                f"concentration: {status} (E[T] <= {self.concentration.expected_time_bound:.6g})"
            )
        for warning in self.warnings:
            lines.append(f"warning: {warning}")
        return "\n".join(lines)

    def complete_for(self, compute_lower: bool) -> bool:
        """Did the analysis produce everything that was asked for?

        The degree-escalation loops (engine, CLI, ``Analyzer``) share
        this rule: an upper bound must exist, and — when a lower bound
        was requested and the regime admits one — a lower bound too.
        """
        if self.upper is None:
            return False
        if compute_lower and self.mode.lower and self.lower is None:
            return False
        return True


def analyze(
    program: Union[str, Program],
    init: Mapping[str, float],
    invariants: Optional[Union[InvariantMap, Mapping[int, object]]] = None,
    degree: int = 2,
    auto_invariants: bool = True,
    check_concentration: bool = False,
    compute_lower: bool = True,
    max_multiplicands: Optional[int] = None,
    mode: str = "auto",
    invariant_domain: str = "interval",
    tails: bool = False,
    tail_horizon: Optional[int] = None,
    tail_probes: Optional[List[float]] = None,
    check: str = "off",
) -> CostAnalysisResult:
    """Run the full expected-cost analysis on ``program``.

    Parameters
    ----------
    program:
        Source text or a parsed :class:`Program`.
    init:
        The initial valuation ``v*`` the bounds are optimized for.
    invariants:
        Optional per-label annotations (an :class:`InvariantMap` or a
        ``{label: condition-string}`` mapping, cf. Figure 9).
    degree:
        Template degree ``d``.
    auto_invariants:
        Strengthen annotations with automatically generated interval
        invariants (on by default; the paper uses StInG similarly).
    check_concentration:
        Also synthesize a ranking supermartingale witnessing the
        concentration side condition of Theorems 6.10/6.12.
    compute_lower:
        Attempt the PLCS lower bound when the regime admits one.
    mode:
        ``"auto"`` classifies the soundness regime from the side
        conditions; ``"signed"`` forces the Section 6.2 regime (upper
        and lower bounds, no nonnegativity requirement on ``h``) and
        ``"nonnegative"`` forces the Section 6.3 regime (upper bound
        with nonnegative ``h``).  Forcing a regime whose side
        conditions fail is recorded as a warning, not an error — this
        mirrors how the paper's experiments treat e.g. the nested-loop
        benchmark.
    invariant_domain:
        The abstract domain of the automatic invariant generator:
        ``"interval"`` (default; per-variable boxes) or ``"octagon"``
        (relational ``+-x +-y <= c`` constraints).  Under the octagon
        domain the inferred relational rows are also *conjoined* into
        hand-annotated labels (they are sound by construction, so the
        merge only strengthens Gamma), and the lint pass gains the
        REP013/REP014 relational annotation checks.
    tails:
        Also derive an Azuma–Hoeffding concentration bound
        ``P[cost >= E + t, T <= n] <= exp(-t^2/(2 c^2 n))`` from the
        upper certificate (:mod:`repro.analysis.tails`).  ``tail_horizon``
        is the step horizon ``n`` (default 1e6, the interpreter's
        truncation default) and ``tail_probes`` the offsets ``t`` to
        pre-evaluate.  Unavailability (no constant difference bound at
        any tried degree) is a warning, not an error.
    check:
        Run the static lint pass (:mod:`repro.check`) first.  ``"off"``
        (default) skips it; ``"warn"`` attaches the findings to
        ``result.diagnostics`` and proceeds; ``"strict"`` additionally
        raises :class:`~repro.errors.CheckError` on any error-severity
        finding *before* any LP work.  Only user-supplied invariants
        are validated — the auto-generated interval invariants are
        consistent with the abstract states by construction.
    """
    if check not in ("off", "warn", "strict"):
        raise ValueError("check must be 'off', 'warn' or 'strict'")
    from ..invariants.generator import INVARIANT_DOMAINS

    if invariant_domain not in INVARIANT_DOMAINS:
        raise ValueError(
            f"invariant_domain must be one of {INVARIANT_DOMAINS}, got {invariant_domain!r}"
        )
    if isinstance(program, str):
        program = parse_program(program)
    cfg = build_cfg(program)
    unknown_vars = set(init) - set(cfg.pvars)
    if unknown_vars:
        from ..errors import SemanticsError

        raise SemanticsError(f"initial valuation mentions unknown variables: {sorted(unknown_vars)}")

    if isinstance(invariants, InvariantMap):
        # Copy before strengthening below: the caller's map may be
        # cached/shared and must not observe our additions.
        inv = invariants.copy()
    elif invariants is not None:
        inv = InvariantMap.from_strings(cfg, dict(invariants))
    else:
        inv = InvariantMap.trivial()

    if check != "off":
        # Lint against the *user's* invariants, before auto
        # strengthening mixes in generated intervals.
        from ..check import check_cfg

        check_result = check_cfg(
            cfg,
            init,
            inv if invariants is not None else None,
            invariant_domain=invariant_domain,
        )
        if check == "strict" and not check_result.ok:
            from ..errors import CheckError

            codes = ", ".join(sorted({d.code for d in check_result.errors}))
            raise CheckError(
                f"rejected by static checks ({codes}): "
                + "; ".join(d.format() for d in check_result.errors),
                diagnostics=check_result.diagnostics,
            )

    if auto_invariants:
        if invariant_domain == "octagon":
            # The relational rows are sound by construction, so they can
            # be conjoined into annotated labels too — this is what lets
            # previously annotation-dependent benchmarks synthesize with
            # their hand-written invariants deleted.
            auto = generate_octagon_invariants(cfg, init)
            for label_id, region in auto.items():
                if label_id not in inv:
                    inv.set(label_id, region)
                else:
                    inv.conjoin(label_id, region)
        else:
            # Strengthen only labels the user left unannotated:
            # hand-written invariants are typically tighter, and mixing
            # in anchor-specific point intervals (e.g. ``n = 320``) can
            # degrade LP conditioning.
            auto = generate_interval_invariants(cfg, init)
            for label_id, poly in auto.items():
                if label_id not in inv:
                    inv.set(label_id, poly)

    if mode not in ("auto", "signed", "nonnegative"):
        raise ValueError("mode must be 'auto', 'signed' or 'nonnegative'")
    detected = classify(cfg, inv)
    forced_warnings: List[str] = []
    if mode == "signed":
        if detected.name != "signed-bounded-update":
            forced_warnings.append(
                f"forced signed regime but side conditions detect {detected.name!r}; "
                "soundness relies on external justification of the update bounds"
            )
        detected = AnalysisMode(
            name="signed-bounded-update",
            upper=True,
            lower=True,
            require_nonnegative_template=False,
            reports=detected.reports,
        )
    elif mode == "nonnegative":
        if not detected.reports["nonnegative_costs"]:
            forced_warnings.append(
                "forced nonnegative regime but some costs may be negative; "
                "the upper bound is not covered by Theorem 6.14"
            )
        detected = AnalysisMode(
            name="nonnegative-general-update",
            upper=True,
            lower=False,
            require_nonnegative_template=True,
            reports=detected.reports,
        )
    mode_info = detected
    result = CostAnalysisResult(program=program, cfg=cfg, invariants=inv, mode=mode_info)
    result.warnings.extend(forced_warnings)
    if check != "off":
        result.diagnostics = list(check_result.diagnostics)

    if mode_info.name == "unsupported":
        result.warnings.append(
            "program has both negative costs and unbounded updates; "
            "no soundness theorem of the paper applies (Section 10)"
        )

    if check_concentration:
        result.concentration = certify_concentration(cfg, inv, init)
        if result.concentration is None:
            result.warnings.append("no linear ranking supermartingale found; concentration unverified")
        elif not result.concentration.certifies_concentration:
            result.warnings.append(
                "RSM found but updates are unbounded; concentration unverified"
            )

    try:
        result.upper = synthesize(
            cfg,
            inv,
            init,
            kind="upper",
            degree=degree,
            nonnegative=mode_info.require_nonnegative_template,
            max_multiplicands=max_multiplicands,
        )
        result.warnings.extend(result.upper.warnings)
    except SynthesisError as exc:
        result.warnings.append(f"no degree-{degree} upper bound: {exc}")

    if compute_lower:
        if mode_info.lower:
            try:
                result.lower = synthesize(
                    cfg,
                    inv,
                    init,
                    kind="lower",
                    degree=degree,
                    max_multiplicands=max_multiplicands,
                )
                result.warnings.extend(result.lower.warnings)
            except SynthesisError as exc:
                reason = f"no degree-{degree} lower bound: {exc}"
                result.warnings.append(reason)
                result.lower_skipped = reason
        else:
            # The regime rules out PLCS entirely (e.g. Theorem 6.14 is
            # upper-only); record why instead of dropping the request
            # on the floor.
            result.lower_skipped = (
                f"PLCS not attempted: regime {mode_info.name!r} admits no lower bound"
            )

    if tails:
        attach_tail_bound(
            result,
            horizon=tail_horizon,
            probes=tail_probes,
            max_multiplicands=max_multiplicands,
        )

    return result


def attach_tail_bound(
    result: CostAnalysisResult,
    horizon: Optional[int] = None,
    probes: Optional[List[float]] = None,
    max_multiplicands: Optional[int] = None,
) -> None:
    """Derive the Azuma–Hoeffding tail bound and attach it to ``result``.

    Unavailability (no upper certificate, or no constant
    step-difference bound at any tried degree) becomes a warning, not
    an error.  Degree-escalation callers (the engine, ``analyze_with``,
    ``Analyzer.synthesize``) call this once on the *final* result
    rather than paying the auxiliary LP at every discarded degree.
    """
    from .tails import derive_tail_bound

    if result.upper is None:
        result.warnings.append("tail bound unavailable: no upper bound was synthesized")
        return
    try:
        result.tail = derive_tail_bound(
            result,
            horizon=horizon,
            probes=probes,
            max_multiplicands=max_multiplicands,
        )
    except (InfeasibleError, UnboundedError, SynthesisError) as exc:
        result.warnings.append(
            f"tail bound unavailable: no constant step-difference bound ({exc})"
        )
        return
    if result.tail.refit:
        result.warnings.append(
            f"tail bound derived from a degree-1 refit certificate "
            f"(anchor {result.tail.expected:.6g}): the reported degree-"
            f"{result.upper.degree} certificate has no constant "
            "step-difference bound"
        )


def attach_tail_bound_for(result: CostAnalysisResult, settings) -> None:
    """:func:`attach_tail_bound` driven by a settings record.

    ``settings`` is anything carrying ``tails`` / ``tail_horizon`` /
    ``tail_probes`` / ``max_multiplicands`` — an
    :class:`~repro.api.AnalysisOptions` or an
    :class:`~repro.batch.spec.AnalysisRequest` (the fields are
    name-aligned by design).  The single shared entry point for every
    degree-escalation caller, so tail handling cannot drift between the
    engine, the staged facade and ``Benchmark.analyze_with``.  No-op
    unless ``settings.tails`` is set.
    """
    if not settings.tails:
        return
    probes = settings.tail_probes
    attach_tail_bound(
        result,
        horizon=settings.tail_horizon,
        probes=list(probes) if probes else None,
        max_multiplicands=settings.max_multiplicands,
    )
