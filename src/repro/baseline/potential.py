"""Baseline: bounded-expectations potential analysis in the style of
Ngo, Carbonneaux and Hoffmann [74] (PLDI 2018).

The paper's Table 2 compares against [74], whose applicability envelope
is strictly smaller than the paper's:

* stepwise costs must be **nonnegative constants** (no variable-
  dependent or negative costs);
* only **upper** bounds are produced;
* the potential (our ``h``) is nonnegative everywhere.

The core of [74] — nonnegative polynomial potentials whose one-step
pre-expectation covers the step cost — coincides, on this fragment,
with a nonnegative PUCS, so the baseline is implemented as a guarded
restriction of the main synthesizer.  That mirrors the mathematical
relationship the paper describes (Section 4.4: weakest-pre-expectation
approaches need nonnegativity for monotonicity).
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..core.conditions import check_bounded_costs, check_nonnegative_costs
from ..core.synthesis import BoundResult, synthesize
from ..errors import UnsupportedProgramError
from ..invariants import InvariantMap
from ..semantics.cfg import CFG

__all__ = ["baseline_applicable", "baseline_upper_bound"]


def baseline_applicable(cfg: CFG, invariants: Optional[InvariantMap] = None) -> bool:
    """Whether the program fits the [74] fragment (constant nonneg costs)."""
    return bool(check_bounded_costs(cfg)) and bool(check_nonnegative_costs(cfg, invariants))


def baseline_upper_bound(
    cfg: CFG,
    invariants: InvariantMap,
    init: Mapping[str, float],
    degree: int = 2,
    max_multiplicands: Optional[int] = None,
) -> BoundResult:
    """Upper bound via nonnegative potentials, as in [74].

    Raises :class:`UnsupportedProgramError` on programs outside the
    fragment — exactly the programs that motivated the paper (negative
    costs, variable-dependent costs).
    """
    if not check_bounded_costs(cfg):
        raise UnsupportedProgramError(
            "baseline [74] requires constant stepwise costs; "
            "this program has variable-dependent tick costs"
        )
    if not check_nonnegative_costs(cfg, invariants):
        raise UnsupportedProgramError(
            "baseline [74] requires nonnegative stepwise costs; "
            "this program has negative tick costs"
        )
    result = synthesize(
        cfg,
        invariants,
        init,
        kind="upper",
        degree=degree,
        nonnegative=True,
        max_multiplicands=max_multiplicands,
    )
    result.kind = "upper-baseline"
    return result
