"""Reimplementation of the [74]-style potential-function baseline."""

from .potential import baseline_applicable, baseline_upper_bound

__all__ = ["baseline_applicable", "baseline_upper_bound"]
