"""Batch-analysis engine: many (program, init, degree, mode) tasks at once.

The experiment drivers (Tables 2-5), the perf harness and the
``python -m repro batch`` / ``bench --all`` CLI all sit on top of
:func:`run_batch`; see :mod:`repro.batch.spec` for the JSON task model
and :mod:`repro.batch.engine` for the pool/timeout mechanics.
"""

from .engine import execute_request, run_batch
from .spec import AnalysisReport, AnalysisRequest, load_spec, requests_from_spec

__all__ = [
    "AnalysisReport",
    "AnalysisRequest",
    "execute_request",
    "load_spec",
    "requests_from_spec",
    "run_batch",
]
