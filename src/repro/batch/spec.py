"""JSON-serializable work units of the batch-analysis engine.

An :class:`AnalysisRequest` describes one analysis task — *which*
program (a registry benchmark name or inline source text), at which
initial valuation, with which synthesis knobs — and an
:class:`AnalysisReport` is the structured, process-boundary-safe result
the engine hands back.  Both round-trip through plain dicts/JSON so
they can cross a process pool, be written to disk, and be diffed across
runs.

A *spec file* (``python -m repro batch SPEC.json``) is either a JSON
list of request objects or ``{"defaults": {...}, "tasks": [...]}``.
Tasks may also name a whole suite::

    {"suite": "table2"}                      # every Table 2 benchmark
    {"suite": "table5", "all_inits": true}   # Table 5 variants, all v0
    {"suite": "table6"}                      # the extension families

:func:`requests_from_spec` expands suites into concrete requests.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Union

__all__ = [
    "AnalysisReport",
    "AnalysisRequest",
    "REPORT_SCHEMA",
    "REPORT_SCHEMA_V1",
    "REPORT_SCHEMA_V2",
    "REPORT_SCHEMA_V3",
    "REPORT_SCHEMA_V4",
    "REPORT_SCHEMA_V5",
    "load_spec",
    "requests_from_spec",
]

#: Degree ceiling for ``degree="auto"`` escalation unless overridden.
DEFAULT_MAX_DEGREE = 4

#: Canonical report schema.  v6 added ``invariant_domain`` (the abstract
#: domain the automatic invariant generator ran in — ``"interval"`` or
#: ``"octagon"``); v5 added ``diagnostics`` (findings of the
#: static lint pass, ``repro.check``) and the ``status="rejected"``
#: terminal state (strict-mode checks refused the program before any LP
#: work); v4 added ``attempts`` (executions consumed under the
#: crash-retry budget of :mod:`repro.resilience`) and the
#: ``status="crashed"`` terminal state; v3 added ``tail`` (the
#: Azuma–Hoeffding concentration bound of ``repro.analysis.tails``);
#: v2 added ``lower_skipped`` (why no PLCS lower bound was produced)
#: and ``solver`` (the resolved LP backend).
REPORT_SCHEMA = "repro-report/v6"
#: The pre-``repro.api`` shape; :meth:`AnalysisReport.from_dict` reads
#: every schema, :meth:`AnalysisReport.to_v1_dict` writes this one.
REPORT_SCHEMA_V1 = "repro-report/v1"
#: The pre-tail-bound shape; :meth:`AnalysisReport.from_dict` is
#: lenient (a v2 dict simply has no ``tail``), and
#: :meth:`AnalysisReport.to_v2_dict` writes it.
REPORT_SCHEMA_V2 = "repro-report/v2"
#: The pre-resilience shape (no ``attempts``);
#: :meth:`AnalysisReport.to_v3_dict` writes it.
REPORT_SCHEMA_V3 = "repro-report/v3"
#: The pre-lint shape (no ``diagnostics``);
#: :meth:`AnalysisReport.to_v4_dict` writes it.
REPORT_SCHEMA_V4 = "repro-report/v4"
#: The pre-relational-invariants shape (no ``invariant_domain``);
#: :meth:`AnalysisReport.to_v5_dict` writes it.
REPORT_SCHEMA_V5 = "repro-report/v5"

#: Fields present in v2 report dicts but not v1 ones.
_REPORT_V2_FIELDS = ("lower_skipped", "solver")
#: Fields present in v3 report dicts but not v2 ones.
_REPORT_V3_FIELDS = ("tail",)
#: Fields present in v4 report dicts but not v3 ones.
_REPORT_V4_FIELDS = ("attempts",)
#: Fields present in v5 report dicts but not v4 ones.
_REPORT_V5_FIELDS = ("diagnostics",)
#: Fields present in v6 report dicts but not v5 ones.
_REPORT_V6_FIELDS = ("invariant_domain",)

#: Suites a spec task may name.  ``table5`` is the Table 3 set with
#: nondeterminism replaced by a fair coin (the paper's Table 5 setup).
_SUITES = ("table2", "table3", "table5", "table6", "all")


@dataclass
class AnalysisRequest:
    """One batch task: a program + valuation + synthesis settings.

    Exactly one of ``benchmark`` (registry name) and ``source`` (inline
    program text) must be set.  All fields are JSON-plain.
    """

    #: Registry benchmark name (``repro.programs.get_benchmark``).
    benchmark: Optional[str] = None
    #: Inline program source in the paper's surface syntax.
    source: Optional[str] = None
    #: Display name; defaults to the benchmark name or ``"<source>"``.
    name: Optional[str] = None
    #: Initial valuation; ``None`` uses the benchmark's anchor.
    init: Optional[Dict[str, float]] = None
    #: Per-label invariants.  For ``source`` requests these are the only
    #: annotations; for ``benchmark`` requests a non-``None`` value
    #: *overrides* the registry annotations (``{}`` analyses the
    #: benchmark with none — useful with ``invariant_domain="octagon"``).
    #: Keys may be ints or numeric strings (JSON).
    invariants: Optional[Dict[int, str]] = None
    #: Template degree: ``None`` (benchmark default / 2), a fixed int,
    #: or ``"auto"`` — escalate d = 1, 2, ... ``max_degree`` until the
    #: requested bounds are feasible (minimal-degree selection, as in
    #: the paper's experiments).
    degree: Union[int, str, None] = None
    #: Ceiling for ``degree="auto"``.
    max_degree: int = DEFAULT_MAX_DEGREE
    #: Soundness regime: ``None`` (benchmark default / "auto"),
    #: "auto", "signed" or "nonnegative".
    mode: Optional[str] = None
    compute_lower: bool = True
    max_multiplicands: Optional[int] = None
    #: LP solver backend id (``repro.core.solvers``); ``None``/"auto"
    #: resolves to the environment default.  The *resolved* id is part
    #: of the cache fingerprint, so backends never alias entries.
    solver: Optional[str] = None
    #: Strengthen annotations with automatically generated interval
    #: invariants (the paper uses StInG similarly); part of the cache
    #: fingerprint because it changes the LP.
    auto_invariants: bool = True
    #: Abstract domain of the automatic invariant generator:
    #: ``"interval"`` (per-variable bounds; the historical default) or
    #: ``"octagon"`` (relational ``+/-x +/-y <= c`` constraints, strong
    #: enough to recover most hand annotations).  Part of the cache
    #: fingerprint because it changes the Gamma rows and hence the LP.
    invariant_domain: str = "interval"
    #: Replace every ``if *`` by ``if prob(p)`` before analysis (the
    #: Table 5 transformation); ``None`` leaves the program as-is.
    nondet_prob: Optional[float] = None
    #: Monte-Carlo runs to simulate after synthesis (omitted when
    #: ``None`` or when the program is nondeterministic).
    simulate_runs: Optional[int] = None
    simulate_seed: int = 0
    simulate_max_steps: int = 1_000_000
    #: Simulation engine: ``"auto"`` (vectorized NumPy batch stepper for
    #: large batches, reference loop otherwise), ``"vectorized"`` or
    #: ``"reference"``.  Part of the cache fingerprint because the two
    #: engines draw different RNG streams for the same seed.
    simulate_engine: str = "auto"
    #: Simulate even a nondeterministic program (under the default
    #: then-branch scheduler); off by default because a demonic bound
    #: is not comparable to one fixed policy's statistics.
    simulate_nondet: bool = False
    #: Per-task wall-clock budget in seconds; exceeding it yields a
    #: report with ``status="timeout"`` instead of killing the batch.
    #: Enforced via SIGALRM on main threads and via the cooperative
    #: deadline of :mod:`repro.deadline` everywhere else (service
    #: handler threads included).
    timeout_s: Optional[float] = None
    #: Crash-retry budget as a JSON-plain
    #: :meth:`repro.resilience.RetryPolicy.to_dict` mapping; ``None``
    #: uses the engine default (one retry).  Applies to *worker deaths*
    #: only — deterministic errors and timeouts are never retried —
    #: and, like ``timeout_s``, is a scheduling knob, not part of the
    #: cache fingerprint.
    retry: Optional[Dict[str, Any]] = None
    #: Free-form caller tag, echoed on the report.
    tag: Optional[str] = None
    #: Derive an Azuma–Hoeffding concentration bound from the upper
    #: certificate (``repro.analysis.tails``); part of the cache
    #: fingerprint together with the horizon and probes.
    tails: bool = False
    #: Step horizon ``n`` of the tail guarantee (default 1e6).
    tail_horizon: Optional[int] = None
    #: Offsets ``t`` to pre-evaluate the tail bound at (default:
    #: multiples of ``c * sqrt(horizon)``).
    tail_probes: Optional[List[float]] = None
    #: Static lint pass (:mod:`repro.check`) before synthesis: ``"off"``
    #: skips it, ``"warn"`` attaches diagnostics to the report and
    #: proceeds, ``"strict"`` yields ``status="rejected"`` on any
    #: error-severity finding without touching the LP.  Part of the
    #: cache fingerprint (it changes the report content and, in strict
    #: mode, the outcome).
    check: str = "off"

    @property
    def display_name(self) -> str:
        return self.name or self.benchmark or "<source>"

    def validate(self) -> None:
        """Raise ``ValueError`` on an ill-formed request."""
        if (self.benchmark is None) == (self.source is None):
            raise ValueError("exactly one of 'benchmark' and 'source' must be set")
        if self.degree is not None and self.degree != "auto":
            if not isinstance(self.degree, int) or isinstance(self.degree, bool) or self.degree < 1:
                raise ValueError(f"degree must be a positive int or 'auto', got {self.degree!r}")
        if self.max_degree < 1:
            raise ValueError(f"max_degree must be >= 1, got {self.max_degree}")
        if self.mode is not None and self.mode not in ("auto", "signed", "nonnegative"):
            raise ValueError(f"mode must be 'auto', 'signed' or 'nonnegative', got {self.mode!r}")
        if self.solver is not None and not isinstance(self.solver, str):
            raise ValueError(f"solver must be a backend name string, got {self.solver!r}")
        if self.invariant_domain not in ("interval", "octagon"):
            raise ValueError(
                f"invariant_domain must be 'interval' or 'octagon', got {self.invariant_domain!r}"
            )
        if self.nondet_prob is not None and not (0.0 <= self.nondet_prob <= 1.0):
            raise ValueError(f"nondet_prob must be in [0, 1], got {self.nondet_prob}")
        if self.simulate_runs is not None and self.simulate_runs <= 0:
            raise ValueError(f"simulate_runs must be positive, got {self.simulate_runs}")
        if self.simulate_engine not in ("auto", "vectorized", "reference"):
            raise ValueError(
                "simulate_engine must be 'auto', 'vectorized' or 'reference', "
                f"got {self.simulate_engine!r}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if not isinstance(self.tails, bool):
            raise ValueError(f"tails must be a bool, got {self.tails!r}")
        if self.tail_horizon is not None:
            if (
                not isinstance(self.tail_horizon, int)
                or isinstance(self.tail_horizon, bool)
                or self.tail_horizon < 1
            ):
                raise ValueError(f"tail_horizon must be an int >= 1, got {self.tail_horizon!r}")
        if self.tail_probes is not None:
            if not self.tail_probes or any(t <= 0 for t in self.tail_probes):
                raise ValueError(
                    f"tail_probes must be a non-empty list of positive offsets, got {self.tail_probes!r}"
                )
        if self.check not in ("off", "warn", "strict"):
            raise ValueError(f"check must be 'off', 'warn' or 'strict', got {self.check!r}")
        if self.retry is not None:
            from ..resilience import RetryPolicy

            if not isinstance(self.retry, Mapping):
                raise ValueError(f"retry must be a policy mapping, got {self.retry!r}")
            RetryPolicy.from_dict(self.retry)  # raises ValueError when ill-formed

    def retry_policy(self):
        """The request's :class:`repro.resilience.RetryPolicy`, or the
        engine default when the field is unset."""
        from ..resilience import DEFAULT_RETRY_POLICY, RetryPolicy

        if self.retry is None:
            return DEFAULT_RETRY_POLICY
        return RetryPolicy.from_dict(self.retry)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def for_benchmark(cls, bench, init: Optional[Mapping[str, float]] = None, **kwargs) -> "AnalysisRequest":
        """Build a request for a :class:`repro.programs.Benchmark` object.

        Registry benchmarks are referenced by name (workers re-resolve
        them, keeping init-dependent invariants and all metadata).  An
        ad-hoc benchmark object (e.g. a modified copy) is embedded as
        source text, with its invariants resolved to plain strings for
        the given valuation so the request stays JSON-serializable.
        """
        from ..programs import get_benchmark

        try:
            registered = get_benchmark(bench.name) is bench
        except KeyError:
            registered = False
        resolved_init = dict(init) if init is not None else None
        if registered:
            return cls(benchmark=bench.name, init=resolved_init, **kwargs)

        anchor = resolved_init if resolved_init is not None else dict(bench.init)
        invariants = dict(bench.invariants)
        if bench.init_invariants is not None:
            for label, cond in bench.init_invariants(dict(anchor)).items():
                if label in invariants:
                    invariants[label] = f"({invariants[label]}) and ({cond})"
                else:
                    invariants[label] = cond
        kwargs.setdefault("degree", bench.degree)
        kwargs.setdefault("mode", bench.mode)
        return cls(
            source=bench.source,
            name=bench.name,
            init=dict(anchor),
            invariants=invariants,
            **kwargs,
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AnalysisRequest":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 - set of names
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown request field(s): {sorted(unknown)}")
        payload = dict(data)
        if payload.get("invariants") is not None:
            # JSON object keys are strings; invariant labels are ints.
            try:
                payload["invariants"] = {
                    int(label): cond for label, cond in payload["invariants"].items()
                }
            except (TypeError, ValueError):
                raise ValueError(
                    f"invariant labels must be integers, got {sorted(payload['invariants'])!r}"
                ) from None
        if payload.get("init") is not None:
            payload["init"] = {var: float(value) for var, value in payload["init"].items()}
        if payload.get("tail_probes") is not None:
            try:
                payload["tail_probes"] = [float(t) for t in payload["tail_probes"]]
            except (TypeError, ValueError):
                raise ValueError(
                    f"tail_probes must be numbers, got {payload['tail_probes']!r}"
                ) from None
        return cls(**payload)


@dataclass
class AnalysisReport:
    """Structured outcome of one :class:`AnalysisRequest`.

    ``status`` is ``"ok"`` (analysis ran; individual bounds may still
    be missing — see ``warnings``), ``"error"`` (an exception, captured
    in ``error``), ``"timeout"`` (the per-task budget expired),
    ``"crashed"`` (the worker process died — SIGKILL, segfault — on
    every attempt the :class:`repro.resilience.RetryPolicy` budget
    allowed; ``error`` carries the death detail) or ``"rejected"``
    (strict-mode static checks refused the program before any LP work;
    ``diagnostics`` carries the findings and ``error`` a one-line
    summary).
    """

    name: str
    status: str
    init: Dict[str, float] = field(default_factory=dict)
    mode: Optional[str] = None
    #: Template degree the reported bounds were synthesized at.
    degree: Optional[int] = None
    #: All degrees attempted (> 1 entry only for ``degree="auto"``).
    degrees_tried: List[int] = field(default_factory=list)
    upper_value: Optional[float] = None
    upper_bound: Optional[str] = None
    upper_runtime: Optional[float] = None
    lower_value: Optional[float] = None
    lower_bound: Optional[str] = None
    lower_runtime: Optional[float] = None
    #: False when the PLCS nondeterministic-policy space was not
    #: exhaustively enumerated (cf. ``BoundResult.policy_enumerated``).
    policy_enumerated: Optional[bool] = None
    sim_mean: Optional[float] = None
    sim_std: Optional[float] = None
    sim_truncated: Optional[int] = None
    sim_termination_rate: Optional[float] = None
    warnings: List[str] = field(default_factory=list)
    #: ``"ExceptionType: message"`` when ``status != "ok"``.
    error: Optional[str] = None
    #: Total wall-clock seconds spent on this task.
    runtime: float = 0.0
    #: Wall-clock seconds of the synthesis phase only (excludes any
    #: Monte-Carlo simulation) — what the paper's timing columns report.
    analysis_runtime: Optional[float] = None
    tag: Optional[str] = None
    # -- v2 fields (``repro-report/v2``) --------------------------------
    #: Why no PLCS lower bound is reported although one was requested
    #: (regime admits none, or synthesis was infeasible at every degree
    #: tried); ``None`` when a lower bound exists or none was asked for.
    lower_skipped: Optional[str] = None
    #: Resolved LP solver backend id the bounds were synthesized with.
    solver: Optional[str] = None
    # -- v3 fields (``repro-report/v3``) --------------------------------
    #: Azuma–Hoeffding concentration bound derived from the upper
    #: certificate (``repro.analysis.TailBound.to_dict()`` shape:
    #: ``method``/``c``/``horizon``/``expected``/``degree``/``refit``/
    #: ``probes``); ``None`` when not requested or unavailable.
    tail: Optional[Dict[str, Any]] = None
    # -- v4 fields (``repro-report/v4``) --------------------------------
    #: Executions this task consumed, crash-requeued attempts included.
    #: ``1`` everywhere worker deaths are impossible (in-process runs,
    #: cache hits); ``> 1`` only when the resilient pool retried the
    #: task after its worker died.
    attempts: int = 1
    # -- v5 fields (``repro-report/v5``) --------------------------------
    #: Findings of the static lint pass, in reading order, as
    #: ``repro.check.Diagnostic.to_dict()`` mappings (``code`` /
    #: ``severity`` / ``message`` / ``label`` / ``line`` / ``column``).
    #: ``None`` when the check did not run (``check="off"``); an empty
    #: list when it ran and the program is clean.
    diagnostics: Optional[List[Dict[str, Any]]] = None
    # -- v6 fields (``repro-report/v6``) --------------------------------
    #: Abstract domain the automatic invariant generator ran in
    #: (``"interval"`` or ``"octagon"``), echoed from the request;
    #: ``None`` on reports read from pre-v6 writers.
    invariant_domain: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_v1_dict(self) -> Dict[str, Any]:
        """The report as a pre-``repro.api`` (v1) dict.

        Drops the v2- and v3-only fields; everything else — key order
        included — is bitwise what a v1 writer produced, so v1
        consumers (and the golden-table comparisons) keep working
        unchanged.
        """
        payload = asdict(self)
        for fieldname in (
            _REPORT_V2_FIELDS
            + _REPORT_V3_FIELDS
            + _REPORT_V4_FIELDS
            + _REPORT_V5_FIELDS
            + _REPORT_V6_FIELDS
        ):
            payload.pop(fieldname, None)
        return payload

    def to_v2_dict(self) -> Dict[str, Any]:
        """The report as a pre-tail-bound (v2) dict — bitwise what a v2
        writer produced for the same analysis."""
        payload = asdict(self)
        for fieldname in (
            _REPORT_V3_FIELDS + _REPORT_V4_FIELDS + _REPORT_V5_FIELDS + _REPORT_V6_FIELDS
        ):
            payload.pop(fieldname, None)
        return payload

    def to_v3_dict(self) -> Dict[str, Any]:
        """The report as a pre-resilience (v3) dict — bitwise what a v3
        writer produced for the same analysis (no ``attempts``)."""
        payload = asdict(self)
        for fieldname in _REPORT_V4_FIELDS + _REPORT_V5_FIELDS + _REPORT_V6_FIELDS:
            payload.pop(fieldname, None)
        return payload

    def to_v4_dict(self) -> Dict[str, Any]:
        """The report as a pre-lint (v4) dict — bitwise what a v4 writer
        produced for the same analysis (no ``diagnostics``)."""
        payload = asdict(self)
        for fieldname in _REPORT_V5_FIELDS + _REPORT_V6_FIELDS:
            payload.pop(fieldname, None)
        return payload

    def to_v5_dict(self) -> Dict[str, Any]:
        """The report as a pre-relational-invariants (v5) dict — bitwise
        what a v5 writer produced for the same analysis (no
        ``invariant_domain``)."""
        payload = asdict(self)
        for fieldname in _REPORT_V6_FIELDS:
            payload.pop(fieldname, None)
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AnalysisReport":
        """Read a v6, v5, v4, v3, v2 *or* v1 report dict (lenient reader:
        fields a previous schema lacks simply default).  An embedded
        ``schema`` marker is accepted and checked; unknown fields are
        rejected rather than dropped."""
        payload = dict(data)
        schema = payload.pop("schema", None)
        if schema is not None and schema not in (
            REPORT_SCHEMA,
            REPORT_SCHEMA_V1,
            REPORT_SCHEMA_V2,
            REPORT_SCHEMA_V3,
            REPORT_SCHEMA_V4,
            REPORT_SCHEMA_V5,
        ):
            raise ValueError(
                f"unsupported report schema {schema!r}; expected {REPORT_SCHEMA!r}, "
                f"{REPORT_SCHEMA_V5!r}, {REPORT_SCHEMA_V4!r}, {REPORT_SCHEMA_V3!r}, "
                f"{REPORT_SCHEMA_V2!r} or {REPORT_SCHEMA_V1!r}"
            )
        unknown = set(payload) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(f"unknown report field(s): {sorted(unknown)}")
        return cls(**payload)


# ---------------------------------------------------------------------------
# Spec files
# ---------------------------------------------------------------------------


def load_spec(path: str) -> List[AnalysisRequest]:
    """Read a JSON spec file and expand it into concrete requests."""
    with open(path) as handle:
        spec = json.load(handle)
    return requests_from_spec(spec)


def requests_from_spec(spec: Union[List[Any], Mapping[str, Any]]) -> List[AnalysisRequest]:
    """Expand a parsed spec (list of tasks, or ``{defaults, tasks}``).

    Per-task settings win over ``defaults``.  A task with a ``suite``
    key expands to one request per benchmark of that suite; with
    ``"all_inits": true`` it further expands over the benchmark's
    Table 4 valuations.
    """
    if isinstance(spec, Mapping):
        defaults = dict(spec.get("defaults") or {})
        # A suite default would silently *replace* every task's explicit
        # benchmark/source with the suite expansion; reject it up front.
        for forbidden in ("suite", "all_inits"):
            if forbidden in defaults:
                raise ValueError(f"{forbidden!r} is not allowed in defaults; set it per task")
        tasks = spec.get("tasks")
        if tasks is None:
            raise ValueError("spec object must have a 'tasks' list")
    elif isinstance(spec, list):
        defaults, tasks = {}, spec
    else:
        raise ValueError(f"spec must be a list or an object with 'tasks', got {type(spec).__name__}")

    requests: List[AnalysisRequest] = []
    for index, task in enumerate(tasks):
        if not isinstance(task, Mapping):
            raise ValueError(f"task #{index} must be an object, got {type(task).__name__}")
        merged = {**defaults, **task}
        suite = merged.pop("suite", None)
        all_inits = bool(merged.pop("all_inits", False))
        if suite is None:
            request = AnalysisRequest.from_dict(merged)
            request.validate()
            requests.append(request)
            continue
        if suite not in _SUITES:
            raise ValueError(f"task #{index}: unknown suite {suite!r}; known: {_SUITES}")
        if "benchmark" in merged or "source" in merged:
            raise ValueError(
                f"task #{index}: 'suite' conflicts with an explicit 'benchmark'/'source'"
            )
        requests.extend(_expand_suite(suite, merged, all_inits))
    return requests


def _expand_suite(
    suite: str, overrides: Mapping[str, Any], all_inits: bool
) -> List[AnalysisRequest]:
    from ..programs import benchmarks_by_category

    if suite == "all":
        benches = (
            benchmarks_by_category("table2")
            + benchmarks_by_category("table3")
            + benchmarks_by_category("table6")
        )
    elif suite == "table5":
        benches = benchmarks_by_category("table3")
    else:
        benches = benchmarks_by_category(suite)

    requests: List[AnalysisRequest] = []
    for bench in benches:
        inits: List[Optional[Dict[str, float]]]
        if all_inits:
            inits = sorted(bench.all_inits(), key=lambda v: sorted(v.items()))
        else:
            inits = [None]
        for init in inits:
            payload = dict(overrides)
            payload["benchmark"] = bench.name
            if init is not None:
                payload.setdefault("init", dict(init))
            if suite == "table5" and bench.has_nondeterminism:
                payload.setdefault("nondet_prob", 0.5)
            request = AnalysisRequest.from_dict(payload)
            request.validate()
            requests.append(request)
    return requests
