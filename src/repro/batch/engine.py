"""Process-pool batch-analysis engine.

:func:`run_batch` fans a list of :class:`AnalysisRequest` tasks across
worker processes (``jobs > 1``, via the crash-safe
:class:`repro.resilience.ResilientPool`) or runs them in-process
(``jobs == 1``, the default — byte-identical results, no pool
overhead).  Every task is isolated: an exception becomes a
``status="error"`` report, a blown per-task budget becomes
``status="timeout"``, and a worker death (SIGKILL, segfault) respawns
the worker and requeues the victim under its retry budget — becoming
``status="crashed"`` only once that budget is exhausted.  Nothing takes
the rest of the batch down.  Reports come back in request order
regardless of completion order, so ``--jobs N`` never changes the
output, only the wall clock.

Adaptive degree escalation (``degree="auto"``) mirrors how the paper's
evaluation picks template degrees: try d = 1, 2, ... ``max_degree`` and
keep the first degree at which the requested bounds are feasible.

The analysis itself is deterministic (LP synthesis; Monte-Carlo columns
are seeded), which is what makes sequential/parallel equivalence exact —
and what makes results cacheable: pass ``cache`` (a
:class:`repro.cache.ResultCache`) and every task consults the shared
content-addressed store before synthesizing, then populates it with
``status == "ok"`` reports.  Pool workers clone the cache over the same
root, so a parallel batch warms the store for every later sequential
run and vice versa; a warm re-run performs zero LP solves.
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.bounds import CostAnalysisResult, attach_tail_bound_for
from ..core.solvers import resolved_solver_id, use_solver
from ..deadline import DeadlineExceeded, deadline_scope
from ..errors import ReproError
from ..programs import Benchmark, get_benchmark, probabilistic_variant
from ..resilience import DEFAULT_RETRY_POLICY, PoolTask, ResilientPool, RetryPolicy, faults
from ..semantics import simulate
from .spec import AnalysisReport, AnalysisRequest

__all__ = ["execute_request", "run_batch"]


class _CheckRejected(Exception):
    """Internal: strict-mode static checks refused the program.

    Raised inside the task budget so ``execute_request`` can convert it
    into a ``status="rejected"`` report on the normal bookkeeping path
    (``runtime`` is stamped after the try block either way).
    """

    def __init__(self, codes: Sequence[str]):
        super().__init__(", ".join(codes))
        self.codes = list(codes)


class BatchTimeout(Exception):
    """Internal: raised inside a task when its wall-clock budget expires."""


@contextmanager
def _task_budget(seconds: Optional[float]):
    """Enforce a per-task wall-clock budget in the current thread.

    Two mechanisms layer:

    * a real-time ``SIGALRM`` interval timer — preemptive, but only
      deliverable on the main thread of a process (CLI runs and pool
      workers);
    * the cooperative deadline of :mod:`repro.deadline` — armed
      unconditionally, checked at the synthesis/simulation checkpoints,
      and therefore effective on ``repro serve`` handler threads too,
      where the signal path used to leave ``timeout_s`` silently
      unenforced.

    Either mechanism firing surfaces as ``status="timeout"``.
    """
    signal_usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not signal_usable:
        with deadline_scope(seconds):
            yield
        return

    def _on_alarm(signum, frame):
        raise BatchTimeout()

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        with deadline_scope(seconds):
            yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# ---------------------------------------------------------------------------
# Request resolution
# ---------------------------------------------------------------------------

#: (benchmark name, prob) -> variant Benchmark.  ``probabilistic_variant``
#: re-parses the program; per-process memoisation keeps repeated inits of
#: the same Table 5 variant on the cached CFG, like the registry benches.
_VARIANT_CACHE: Dict[Tuple[str, float], Benchmark] = {}


def _resolve_benchmark(request: AnalysisRequest) -> Benchmark:
    if request.benchmark is not None:
        bench = get_benchmark(request.benchmark)
        if request.invariants is not None:
            # Annotation override: replace the registry invariants with
            # the request's (``{}`` drops them entirely — the point of
            # invariant_domain="octagon" sweeps).  Init-dependent
            # annotations are dropped too; the override is total.
            from dataclasses import replace as dataclass_replace

            bench = dataclass_replace(
                bench, invariants=dict(request.invariants), init_invariants=None
            )
    else:
        bench = Benchmark(
            name=request.display_name,
            title=request.display_name,
            source=request.source or "",
            invariants=dict(request.invariants or {}),
            init=dict(request.init or {}),
            degree=2,
        )
    if request.nondet_prob is not None and bench.has_nondeterminism:
        if request.benchmark is not None and request.invariants is None:
            key = (request.benchmark, request.nondet_prob)
            variant = _VARIANT_CACHE.get(key)
            if variant is None:
                variant = probabilistic_variant(bench, prob=request.nondet_prob)
                _VARIANT_CACHE[key] = variant
            bench = variant
        else:
            bench = probabilistic_variant(bench, prob=request.nondet_prob)
    return bench


def _degree_plan(request: AnalysisRequest, bench: Benchmark) -> List[int]:
    if request.degree == "auto":
        return list(range(1, request.max_degree + 1))
    if request.degree is not None:
        return [int(request.degree)]
    return [bench.degree]


def _is_complete(request: AnalysisRequest, result: CostAnalysisResult) -> bool:
    """Did this degree produce everything the request asked for?"""
    return result.complete_for(request.compute_lower)


def _fill_bounds(report: AnalysisReport, result: CostAnalysisResult) -> None:
    report.mode = result.mode.name
    report.warnings = list(result.warnings)
    report.lower_skipped = result.lower_skipped
    if result.upper is not None:
        report.upper_value = result.upper.value
        report.upper_bound = str(result.upper.bound.round(5))
        report.upper_runtime = result.upper.runtime
    if result.lower is not None:
        report.lower_value = result.lower.value
        report.lower_bound = str(result.lower.bound.round(5))
        report.lower_runtime = result.lower.runtime
        report.policy_enumerated = result.lower.policy_enumerated
    if result.tail is not None:
        report.tail = result.tail.to_dict()


def execute_request(request: AnalysisRequest, attempt: int = 1) -> AnalysisReport:
    """Run one task in the current process and capture the outcome.

    Never raises for analysis-level failures: parse errors, infeasible
    LPs, bad valuations and timeouts all come back as structured
    reports.  (Programming errors in the request object itself — e.g.
    neither ``benchmark`` nor ``source`` — still raise ``ValueError``
    from :meth:`AnalysisRequest.validate` before any work starts.)

    ``attempt`` is the 1-based execution count the resilient pool
    passes on crash retries; it feeds the deterministic fault-injection
    hook and nothing else — the analysis itself is attempt-invariant.
    """
    request.validate()
    start = time.perf_counter()
    report = AnalysisReport(
        name=request.display_name,
        status="ok",
        tag=request.tag,
        invariant_domain=request.invariant_domain,
    )
    try:
        with _task_budget(request.timeout_s):
            # Deterministic chaos hook (no-op unless REPRO_FAULTS is
            # set): may SIGKILL this worker, sleep, or raise an
            # InjectedFaultError that surfaces as a normal error report.
            faults.on_task_attempt(request.display_name, attempt)
            # Resolve the LP backend up front: an unknown/unavailable
            # solver is a structured error before any synthesis work,
            # and the *resolved* id is what the report (and the cache
            # fingerprint) record.
            report.solver = resolved_solver_id(request.solver)
            bench = _resolve_benchmark(request)
            if request.name is None:
                report.name = bench.name
            init = dict(request.init) if request.init is not None else dict(bench.init)
            report.init = init

            if request.check != "off":
                # Static front gate: lint the exact CFG the analysis
                # will see.  In strict mode an error-severity finding
                # rejects the task before any template/LP work.
                from ..check import check_benchmark

                findings = check_benchmark(
                    bench, init=init, invariant_domain=request.invariant_domain
                )
                report.diagnostics = findings.to_dicts()
                if request.check == "strict" and not findings.ok:
                    raise _CheckRejected(sorted({d.code for d in findings.errors}))

            result: Optional[CostAnalysisResult] = None
            with use_solver(report.solver):
                for degree in _degree_plan(request, bench):
                    report.degrees_tried.append(degree)
                    result = bench._analyze_resolved(
                        init=init,
                        degree=degree,
                        compute_lower=request.compute_lower,
                        mode=request.mode,
                        max_multiplicands=request.max_multiplicands,
                        auto_invariants=request.auto_invariants,
                        invariant_domain=request.invariant_domain,
                    )
                    report.degree = degree
                    if _is_complete(request, result):
                        break
                assert result is not None  # degree plan is never empty
                # Tail bound once, on the degree the report actually
                # carries (not per escalation step).
                attach_tail_bound_for(result, request)
            report.analysis_runtime = time.perf_counter() - start
            _fill_bounds(report, result)
            if request.degree == "auto" and not _is_complete(request, result):
                report.warnings.append(
                    f"degree escalation exhausted at d={request.max_degree} "
                    "without a feasible bound for every requested side"
                )

            if request.simulate_runs is not None:
                if bench.has_nondeterminism and not request.simulate_nondet:
                    report.warnings.append(
                        "simulation skipped: program is nondeterministic "
                        "(set nondet_prob to fix a coin-flip policy)"
                    )
                else:
                    stats = simulate(
                        bench.cfg,
                        init,
                        runs=request.simulate_runs,
                        seed=request.simulate_seed,
                        max_steps=request.simulate_max_steps,
                        engine=request.simulate_engine,
                    )
                    # Truncated runs are excluded from mean/std (their
                    # partial cost would bias Monte-Carlo soundness
                    # checks low); with no terminated runs at all there
                    # is no mean to report.
                    if stats.terminated_runs > 0:
                        report.sim_mean = stats.mean
                        report.sim_std = stats.std
                    report.sim_truncated = stats.truncated
                    report.sim_termination_rate = stats.termination_rate
                    if stats.truncated:
                        report.warnings.append(
                            f"{stats.truncated} of {stats.runs} simulated runs were "
                            f"truncated at {request.simulate_max_steps} steps and "
                            "excluded from sim mean/std (mean partial cost "
                            f"{stats.truncated_mean:g}); raise simulate_max_steps "
                            "to cover them"
                        )
    except _CheckRejected as exc:
        report.status = "rejected"
        report.error = f"rejected by static checks: {exc}"
    except (BatchTimeout, DeadlineExceeded):
        report.status = "timeout"
        report.error = f"TimeoutError: task exceeded {request.timeout_s:g}s budget"
    except (ReproError, ValueError, KeyError, RuntimeError, OverflowError, ZeroDivisionError) as exc:
        report.status = "error"
        report.error = f"{type(exc).__name__}: {exc}"
    report.runtime = time.perf_counter() - start
    return report


# ---------------------------------------------------------------------------
# Cache consult/populate
# ---------------------------------------------------------------------------


def _cached_execute(
    request: AnalysisRequest, cache, attempt: int = 1
) -> Tuple[AnalysisReport, Optional[bool], bool]:
    """Run one task through the content-addressed store.

    Returns ``(report, hit, stored)`` where ``hit`` is ``True`` for a
    cache hit, ``False`` for a consulted-but-cold key, and ``None``
    when the cache was bypassed (no cache, or the key cannot be derived
    — unknown benchmark, unparseable source — in which case the failure
    surfaces as a structured report exactly as in the uncached path);
    ``stored`` reports whether this call persisted a new entry.
    Only ``status == "ok"`` reports are persisted — errors and
    timeouts are environment-dependent and must re-execute.  A cached
    report is returned verbatim (original runtimes included) so warm
    re-runs are byte-identical; only the presentation echoes (``name``,
    ``tag``) are re-derived for the incoming request.
    """
    if cache is None:
        return execute_request(request, attempt), None, False
    key = cache.request_key(request)
    if key is None:
        return execute_request(request, attempt), None, False
    report = cache.lookup_for(key, request)
    if report is not None:
        return report, True, False
    report = execute_request(request, attempt)
    stored = report.status == "ok" and cache.store(key, report)
    return report, False, stored


# ---------------------------------------------------------------------------
# Pool fan-out
# ---------------------------------------------------------------------------

#: cache root -> per-process ResultCache clone (one per pool worker).
_WORKER_CACHES: Dict[str, object] = {}


def _worker_cache(config: Optional[Dict]):
    if config is None:
        return None
    root = config["root"]
    cache = _WORKER_CACHES.get(root)
    if cache is None:
        from ..cache import ResultCache

        cache = ResultCache(root, max_memory_entries=config["max_memory_entries"])
        _WORKER_CACHES[root] = cache
    return cache


def _pool_worker(
    payload: Tuple[int, Dict, Optional[Dict]], attempt: int = 1
) -> Tuple[int, Dict, Optional[bool], bool]:
    """Module-level so it pickles under both fork and spawn contexts.

    ``attempt`` arrives from the resilient pool on crash retries; the
    legacy ``multiprocessing.Pool`` path calls with the default.
    """
    index, request_dict, cache_config = payload
    hit: Optional[bool] = None
    stored = False
    try:
        report, hit, stored = _cached_execute(
            AnalysisRequest.from_dict(request_dict), _worker_cache(cache_config), attempt
        )
    except Exception as exc:  # defensive: never poison the pool
        report = AnalysisReport(
            name=str(request_dict.get("name") or request_dict.get("benchmark") or "<source>"),
            status="error",
            error=f"{type(exc).__name__}: {exc}",
        )
    return index, report.to_dict(), hit, stored


def _crashed_report(request: AnalysisRequest, outcome) -> AnalysisReport:
    """Synthesize the terminal report for a retry-exhausted crash."""
    return AnalysisReport(
        name=request.display_name,
        status="crashed",
        tag=request.tag,
        error=f"WorkerCrashError: {outcome.detail}",
        runtime=outcome.runtime,
        attempts=outcome.attempts,
    )


def run_batch(
    requests: Sequence[AnalysisRequest],
    jobs: int = 1,
    progress: Optional[Callable[[AnalysisReport], None]] = None,
    cache=None,
    pool=None,
    retry: Optional[RetryPolicy] = None,
) -> List[AnalysisReport]:
    """Execute ``requests`` and return reports in request order.

    ``jobs == 1`` (default) runs in-process; ``jobs > 1`` fans out over
    a :class:`repro.resilience.ResilientPool` — a worker SIGKILLed or
    segfaulted mid-task is respawned and its task requeued under the
    effective :class:`RetryPolicy` (per-request ``retry`` field, else
    the ``retry`` argument, else one retry with jittered backoff);
    budget exhaustion yields a ``status="crashed"`` report instead of
    hanging or poisoning the batch.  Reports carry ``attempts``, and
    the returned list stays in request order regardless of crashes.

    ``progress`` is invoked once per finished task, in *completion*
    order.  ``cache`` (a :class:`repro.cache.ResultCache`)
    short-circuits previously solved tasks; with a pool, workers clone
    it over the same root and the parent instance aggregates their
    hit/miss counts, so ``cache.stats()`` reflects the whole batch.

    ``pool`` lends an already-running :class:`ResilientPool` (e.g. the
    one a :class:`repro.api.Analyzer` session owns): the batch fans out
    on it, ``jobs`` is ignored, and the pool is left running for the
    caller to reuse or close.  A legacy ``multiprocessing.Pool`` is
    still accepted and used as before (no crash safety).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    for request in requests:
        request.validate()
    if not requests:
        return []

    if jobs == 1 and pool is None:
        reports = []
        for request in requests:
            report, _, _ = _cached_execute(request, cache)
            if progress is not None:
                progress(report)
            reports.append(report)
        return reports

    cache_config = cache.worker_config() if cache is not None else None
    ordered: List[Optional[AnalysisReport]] = [None] * len(requests)

    if pool is not None and not isinstance(pool, ResilientPool):
        # Lent multiprocessing.Pool: the pre-resilience fan-out path.
        payloads = [
            (index, request.to_dict(), cache_config) for index, request in enumerate(requests)
        ]
        for index, report_dict, hit, stored in pool.imap_unordered(_pool_worker, payloads):
            report = AnalysisReport.from_dict(report_dict)
            ordered[index] = report
            if cache is not None and hit is not None:
                # Fold worker-side consults into the parent counters;
                # bypassed (uncacheable) tasks count nowhere, matching
                # the jobs == 1 accounting exactly.
                cache.record(hit, stored=stored)
            if progress is not None:
                progress(report)
        assert all(report is not None for report in ordered)
        return ordered  # type: ignore[return-value]

    fallback = retry if retry is not None else DEFAULT_RETRY_POLICY
    tasks = [
        PoolTask(
            task_id=index,
            payload=(index, request.to_dict(), cache_config),
            retry=request.retry_policy() if request.retry is not None else fallback,
            name=request.display_name,
        )
        for index, request in enumerate(requests)
    ]

    def _on_result(outcome) -> None:
        request = requests[outcome.task_id]
        if outcome.crashed:
            report = _crashed_report(request, outcome)
        else:
            _, report_dict, hit, stored = outcome.value
            report = AnalysisReport.from_dict(report_dict)
            # Attempt accounting lives with the parent: the worker that
            # finally succeeded only ever saw its own attempt, and
            # cached entries must stay at attempts=1.
            report.attempts = outcome.attempts
            if cache is not None and hit is not None:
                cache.record(hit, stored=stored)
        ordered[outcome.task_id] = report
        if progress is not None:
            progress(report)

    own_pool = pool is None
    if own_pool:
        pool = ResilientPool(processes=min(jobs, len(requests)))
    try:
        pool.run(tasks, on_result=_on_result)
    finally:
        if own_pool:
            pool.terminate()
    assert all(report is not None for report in ordered)
    return ordered  # type: ignore[return-value]
