"""Differential soundness oracle for generated programs.

For each seed the harness runs the full pipeline — strict lint,
``degree="auto"`` synthesis with tail bounds, then a seeded
Monte-Carlo simulation — and checks the one property the paper's
theorems promise and nothing in the unit suite can promise for
*arbitrary* programs:

    upper >= empirical mean >= lower       (within statistical slack)
    Azuma bound >= empirical tail frequency (per probe)

Nondeterministic programs are analyzed demonically as written but
simulated under the fair coin scheduler (``replace_nondet(p=0.5)``),
so only the upper check applies: a demonic PUCS dominates the mean of
*every* scheduler, while the PLCS and tail statements are not
comparable to one fixed policy's statistics.

Outcomes are classified rather than pass/failed: ``rejected`` (strict
lint), ``infeasible`` (no certificate at any degree — not a soundness
statement), ``inconclusive`` (simulation truncated), ``sound``, or
``violation``.  Only ``violation`` indicates a bug.

The :data:`DEFECTS` hooks deliberately corrupt synthesized values
*after* analysis and *before* the checks.  They exist so the test
suite can prove the oracle and the shrinker actually fire — a fuzzer
that never sees a violation is untested on the only path that
matters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import (
    CONSISTENCY_TOL,
    CheckError,
    DegreeError,
    InvariantError,
    NonLinearError,
    SynthesisError,
)
from ..semantics.cfg import build_cfg
from ..semantics.interpreter import SimulationStats, simulate
from ..syntax.ast import Program
from ..syntax.pretty import pretty
from ..syntax.transform import replace_nondet
from .generator import GenConfig, GeneratedProgram, generate

__all__ = ["CLASSIFICATIONS", "DEFECTS", "FuzzOutcome", "FuzzRun", "Harness"]

#: Outcome classes, from "never even analyzed" to "soundness bug".
CLASSIFICATIONS = ("rejected", "infeasible", "inconclusive", "sound", "violation")

#: How many standard errors of headroom the mean bracket gets before a
#: discrepancy counts as a violation.  Five sigma keeps the false-alarm
#: probability per seed well below 1e-6, so a reported violation is a
#: bug, not noise.
MEAN_SIGMAS = 5.0


@dataclass
class _Claims:
    """The numeric claims under test (what a defect may corrupt)."""

    upper: Optional[float]
    lower: Optional[float]
    #: ``(t, bound)`` per tail probe; empty when no tail bound exists.
    tail: List[Tuple[float, float]]
    #: Anchor ``E`` of the tail statement ``P[cost >= E + t, ...]``.
    tail_expected: float = 0.0


def _defect_weaken_upper(claims: _Claims) -> None:
    """Understate the PUCS value — violates whenever the sim succeeds."""
    if claims.upper is not None:
        claims.upper = 0.5 * claims.upper - 1.0


def _defect_raise_lower(claims: _Claims) -> None:
    """Overstate the PLCS value past the (sound) upper bound."""
    if claims.lower is not None:
        anchor = claims.upper if claims.upper is not None else claims.lower
        claims.lower = anchor + 1.0


def _defect_shrink_tail(claims: _Claims) -> None:
    """Corrupt the Azuma probes: near-zero offsets with near-zero bounds.

    Claims ``P[cost >= E + ~0] <= ~0`` — false for any program whose
    cost distribution puts mass above the anchor ``E``.  (Merely
    scaling the bounds would stay undetectable: the auto-picked
    offsets sit so far out that the empirical frequency is 0.)
    """
    claims.tail = [(t * 1e-3, bound * 1e-3) for t, bound in claims.tail]


#: Named defect hooks for self-testing the oracle (see module docstring).
DEFECTS: Dict[str, Callable[[_Claims], None]] = {
    "weaken-upper": _defect_weaken_upper,
    "raise-lower": _defect_raise_lower,
    "shrink-tail": _defect_shrink_tail,
}


@dataclass
class FuzzOutcome:
    """One seed's verdict plus the numbers behind it."""

    seed: int
    classification: str
    detail: str = ""
    upper: Optional[float] = None
    lower: Optional[float] = None
    sim_mean: Optional[float] = None
    sim_stderr: Optional[float] = None
    tail_probes_checked: int = 0
    #: Canonical source, attached only for violations (the seed + config
    #: already reproduce everything else byte-identically).
    source: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "seed": self.seed,
            "classification": self.classification,
            "detail": self.detail,
            "upper": self.upper,
            "lower": self.lower,
            "sim_mean": self.sim_mean,
            "sim_stderr": self.sim_stderr,
            "tail_probes_checked": self.tail_probes_checked,
        }
        if self.source is not None:
            payload["source"] = self.source
        return payload


@dataclass
class FuzzRun:
    """Aggregate of one fuzzing campaign (``repro-fuzz/v1``)."""

    config: GenConfig
    seed: int
    count: int
    defect: Optional[str]
    #: Abstract domain the analyzer under test generated invariants in.
    invariant_domain: str = "octagon"
    outcomes: List[FuzzOutcome] = field(default_factory=list)

    @property
    def counts(self) -> Dict[str, int]:
        tally = {name: 0 for name in CLASSIFICATIONS}
        for outcome in self.outcomes:
            tally[outcome.classification] += 1
        return tally

    @property
    def violations(self) -> List[FuzzOutcome]:
        return [o for o in self.outcomes if o.classification == "violation"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro-fuzz/v1",
            "seed": self.seed,
            "count": self.count,
            "defect": self.defect,
            "invariant_domain": self.invariant_domain,
            "config": self.config.to_dict(),
            "counts": self.counts,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }


class Harness:
    """The differential oracle.

    ``defect`` names an entry of :data:`DEFECTS` to corrupt the claims
    before checking (testing hook); ``None`` checks the real pipeline.

    ``invariant_domain`` is the abstract domain the analyzer under test
    generates invariants in.  Generated programs carry no hand
    annotations, so the relational ``"octagon"`` default exercises the
    strongest generator — and certifies coupled-counter loops the
    interval domain must classify as infeasible.
    """

    def __init__(
        self,
        config: Optional[GenConfig] = None,
        analyzer=None,
        defect: Optional[str] = None,
        invariant_domain: str = "octagon",
    ):
        if defect is not None and defect not in DEFECTS:
            raise ValueError(f"unknown defect {defect!r}; known: {', '.join(sorted(DEFECTS))}")
        if invariant_domain not in ("interval", "octagon"):
            raise ValueError(
                f"invariant_domain must be 'interval' or 'octagon', got {invariant_domain!r}"
            )
        self.config = config or GenConfig()
        self.defect = defect
        self.invariant_domain = invariant_domain
        if analyzer is None:
            from ..api import Analyzer

            analyzer = Analyzer()
        self.analyzer = analyzer

    # -- per-program pipeline --------------------------------------------

    def classify(self, program: Program, init: Dict[str, float], seed: int) -> FuzzOutcome:
        """Lint, analyze and simulate one program; return the verdict.

        ``seed`` keys the simulation stream (and labels the outcome);
        the same arguments always return the same verdict.
        """
        cfg = self.config
        try:
            result = self.analyzer.synthesize(
                program,
                degree="auto",
                max_degree=cfg.max_degree,
                init=dict(init),
                check="strict",
                tails=True,
                tail_horizon=cfg.sim_max_steps,
                invariant_domain=self.invariant_domain,
            )
        except CheckError as exc:
            return FuzzOutcome(seed=seed, classification="rejected", detail=str(exc))
        except (SynthesisError, DegreeError, NonLinearError, InvariantError) as exc:
            return FuzzOutcome(
                seed=seed, classification="infeasible", detail=f"{type(exc).__name__}: {exc}"
            )
        if result.upper is None:
            return FuzzOutcome(seed=seed, classification="infeasible", detail="no PUCS certificate")

        nondet = program.has_nondeterminism()
        sim_program = replace_nondet(program, prob=0.5) if nondet else program
        stats = simulate(
            build_cfg(sim_program),
            init,
            runs=cfg.sim_runs,
            seed=seed,
            max_steps=cfg.sim_max_steps,
        )
        claims = self._claims(result, init, nondet)
        outcome = self._check(claims, stats, nondet, seed)
        if outcome.classification == "violation":
            outcome.source = pretty(program)
        return outcome

    def run_one(self, seed: int) -> FuzzOutcome:
        prog: GeneratedProgram = generate(self.config, seed)
        outcome = self.classify(prog.program, prog.init, seed)
        if outcome.classification == "violation":
            outcome.source = prog.source
        return outcome

    def run(self, seed: int, count: int) -> FuzzRun:
        run = FuzzRun(
            config=self.config,
            seed=seed,
            count=count,
            defect=self.defect,
            invariant_domain=self.invariant_domain,
        )
        for offset in range(count):
            run.outcomes.append(self.run_one(seed + offset))
        return run

    # -- the checks ------------------------------------------------------

    def _claims(self, result, init: Dict[str, float], nondet: bool) -> _Claims:
        upper = result.upper.bound_at(init) if result.upper else None
        lower = result.lower.bound_at(init) if (result.lower and not nondet) else None
        tail: List[Tuple[float, float]] = []
        expected = 0.0
        if result.tail is not None and not nondet:
            expected = result.tail.expected
            tail = [(probe.t, probe.bound) for probe in result.tail.probes]
        claims = _Claims(upper=upper, lower=lower, tail=tail, tail_expected=expected)
        if self.defect is not None:
            DEFECTS[self.defect](claims)
        return claims

    def _check(
        self, claims: _Claims, stats: SimulationStats, nondet: bool, seed: int
    ) -> FuzzOutcome:
        base = FuzzOutcome(
            seed=seed,
            classification="sound",
            upper=claims.upper,
            lower=claims.lower,
            sim_mean=stats.mean if stats.terminated_runs else None,
            sim_stderr=stats.stderr() if stats.terminated_runs else None,
            tail_probes_checked=len(claims.tail),
        )
        if stats.truncated or not stats.terminated_runs:
            base.classification = "inconclusive"
            base.detail = f"{stats.truncated}/{stats.runs} runs truncated at {self.config.sim_max_steps} steps"
            return base

        margin = max(CONSISTENCY_TOL, MEAN_SIGMAS * stats.stderr())
        if claims.upper is not None and claims.upper < stats.mean - margin:
            base.classification = "violation"
            base.detail = (
                f"upper {claims.upper:.6g} < empirical mean {stats.mean:.6g} "
                f"(margin {margin:.3g})"
            )
            return base
        if claims.lower is not None and claims.lower > stats.mean + margin:
            base.classification = "violation"
            base.detail = (
                f"lower {claims.lower:.6g} > empirical mean {stats.mean:.6g} "
                f"(margin {margin:.3g})"
            )
            return base

        runs = stats.runs
        for t, bound in claims.tail:
            freq = sum(1 for cost in stats.costs if cost >= claims.tail_expected + t) / runs
            slack = (
                MEAN_SIGMAS * math.sqrt(max(bound * (1.0 - bound), 0.0) / runs)
                + 1.0 / runs
                + CONSISTENCY_TOL
            )
            if freq > bound + slack:
                base.classification = "violation"
                base.detail = (
                    f"tail P[cost >= {claims.tail_expected:.6g} + {t:.6g}] empirical "
                    f"{freq:.6g} > bound {bound:.6g} (slack {slack:.3g})"
                )
                return base
        return base
