"""Differential soundness fuzzing for the analysis pipeline.

The paper's evaluation is ~35 fixed programs; every soundness claim the
reimplementation makes is only as strong as that corpus.  This package
turns the vectorized Monte-Carlo interpreter into a standing oracle:

* :mod:`repro.fuzz.generator` — a seeded, replayable generator of
  well-formed probabilistic programs (bounded-support distributions,
  prob/nondet branches, nested guaranteed-progress loops, polynomial
  ticks).  The same ``(GenConfig, seed)`` regenerates byte-identical
  source, so every finding is a two-integer repro.
* :mod:`repro.fuzz.harness` — the differential oracle: strict lint →
  ``degree="auto"`` synthesis with tail bounds → vectorized 10k-run
  simulation, asserting ``upper >= empirical mean >= lower`` and
  ``Azuma bound >= empirical tail frequency`` (within statistical
  slack + ``CONSISTENCY_TOL``).
* :mod:`repro.fuzz.shrink` — greedy delta-debugging: minimizes any
  violating program while preserving the violation and writes the
  shrunk repro into ``tests/fuzz/corpus/`` as a permanent regression.

``python -m repro fuzz [--seed N] [--count K]`` drives the loop from
the command line (report schema ``repro-fuzz/v1``).
"""

from .generator import GenConfig, GeneratedProgram, generate, generate_many
from .harness import (
    CLASSIFICATIONS,
    DEFECTS,
    FuzzOutcome,
    FuzzRun,
    Harness,
)
from .shrink import load_corpus, shrink_program, write_corpus_entry

__all__ = [
    "CLASSIFICATIONS",
    "DEFECTS",
    "FuzzOutcome",
    "FuzzRun",
    "GenConfig",
    "GeneratedProgram",
    "Harness",
    "generate",
    "generate_many",
    "load_corpus",
    "shrink_program",
    "write_corpus_entry",
]
