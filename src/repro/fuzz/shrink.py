"""Greedy delta-debugging for violating programs.

A fuzzer finding is only useful once it is small.  :func:`shrink_program`
repeatedly proposes structurally smaller variants of a violating
program — dropping statements, replacing a loop by its body, collapsing
branches, zeroing monomials, shrinking constants and initial values —
and keeps any variant for which ``predicate(program, init)`` still
holds, until a whole pass produces no accepted variant (a local
fixpoint).  The predicate is typically
``lambda p, i: harness.classify(p, i, seed).classification == "violation"``,
so every step preserves the violation by construction.

:func:`write_corpus_entry` persists a shrunk repro (plus the exact
``(config, seed, defect)`` that produced it) as a JSON file under
``tests/fuzz/corpus/`` — schema ``repro-fuzz-corpus/v1`` — so every
past violation stays a permanent regression test.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import ReproError
from ..polynomials import Polynomial
from ..syntax.ast import (
    Assign,
    NondetIf,
    ProbIf,
    Program,
    Seq,
    Skip,
    Stmt,
    Tick,
    While,
)
from ..syntax.pretty import pretty

__all__ = ["load_corpus", "shrink_program", "write_corpus_entry"]

CORPUS_SCHEMA = "repro-fuzz-corpus/v1"

Predicate = Callable[[Program, Dict[str, float]], bool]


# -- structural variants ----------------------------------------------------


def _poly_variants(poly: Polynomial) -> Iterator[Polynomial]:
    """Smaller polynomials: drop a monomial, then shrink a coefficient."""
    terms = dict(poly.terms())
    if len(terms) > 1:
        for mono in list(terms):
            rest = {m: c for m, c in terms.items() if m is not mono}
            yield Polynomial(rest)
    for mono, coeff in list(terms.items()):
        # Strictly decreasing |coeff| only, so greedy shrinking cannot
        # oscillate between a coefficient and its half.
        candidates = []
        if abs(coeff) > 1.0:
            candidates.append(math.copysign(1.0, coeff))
        half = coeff / 2.0
        if 0.25 <= abs(half) < abs(coeff):
            candidates.append(half)
        for smaller in candidates:
            if smaller != coeff:
                yield Polynomial({**terms, mono: smaller})


def _stmt_variants(stmt: Stmt) -> Iterator[Stmt]:
    """Structurally smaller statements, most aggressive first."""
    if isinstance(stmt, Seq):
        stmts = list(stmt.stmts)
        # Drop one element entirely.
        for index in range(len(stmts)):
            rest = stmts[:index] + stmts[index + 1 :]
            yield Seq.of(*rest) if rest else Skip()
        # Recurse into one element.
        for index, child in enumerate(stmts):
            for variant in _stmt_variants(child):
                yield Seq.of(*stmts[:index], variant, *stmts[index + 1 :])
    elif isinstance(stmt, While):
        yield Skip()
        yield stmt.body
        for variant in _stmt_variants(stmt.body):
            yield While(stmt.cond, variant)
    elif isinstance(stmt, ProbIf):
        yield stmt.then_branch
        yield stmt.else_branch
        for variant in _stmt_variants(stmt.then_branch):
            yield ProbIf(stmt.prob, variant, stmt.else_branch)
        for variant in _stmt_variants(stmt.else_branch):
            yield ProbIf(stmt.prob, stmt.then_branch, variant)
    elif isinstance(stmt, NondetIf):
        yield stmt.then_branch
        yield stmt.else_branch
        for variant in _stmt_variants(stmt.then_branch):
            yield NondetIf(variant, stmt.else_branch)
        for variant in _stmt_variants(stmt.else_branch):
            yield NondetIf(stmt.then_branch, variant)
    elif isinstance(stmt, Tick):
        yield Skip()
        for poly in _poly_variants(stmt.cost):
            yield Tick(poly)
    elif isinstance(stmt, Assign):
        yield Skip()
        for poly in _poly_variants(stmt.expr):
            yield Assign(stmt.var, poly)


def _rebuild(program: Program, body: Stmt) -> Optional[Program]:
    """``program`` with ``body``, undeclared sampling vars pruned.

    Returns ``None`` when the variant is not a well-formed program
    (e.g. a shrink removed the declaration a remaining use needs —
    ``Program.__post_init__`` validates and we simply skip those).
    """
    used = _used_variables(body)
    rvars = {name: dist for name, dist in program.rvars.items() if name in used}
    try:
        return Program(pvars=list(program.pvars), rvars=rvars, body=body, name=program.name)
    except ReproError:
        return None


def _used_variables(stmt: Stmt) -> set:
    used: set = set()
    stack: List[Stmt] = [stmt]
    while stack:
        node = stack.pop()
        if isinstance(node, Seq):
            stack.extend(node.stmts)
        elif isinstance(node, While):
            used |= set(_cond_variables(node.cond))
            stack.append(node.body)
        elif isinstance(node, (ProbIf, NondetIf)):
            stack.extend(node.children())
        elif isinstance(node, Tick):
            used |= set(node.cost.variables())
        elif isinstance(node, Assign):
            used.add(node.var)
            used |= set(node.expr.variables())
    return used


def _cond_variables(cond) -> set:
    used: set = set()
    atoms = [cond]
    while atoms:
        node = atoms.pop()
        if hasattr(node, "poly"):
            used |= set(node.poly.variables())
        for attr in ("lhs", "rhs", "operands", "children"):
            value = getattr(node, attr, None)
            if value is None:
                continue
            atoms.extend(value if isinstance(value, (list, tuple)) else [value])
    return used


def _init_variants(init: Dict[str, float]) -> Iterator[Dict[str, float]]:
    for var, value in init.items():
        for smaller in (0.0, 1.0, float(int(value / 2))):
            if smaller < value:
                yield {**init, var: smaller}


# -- the greedy loop --------------------------------------------------------


def shrink_program(
    program: Program,
    init: Dict[str, float],
    predicate: Predicate,
    max_rounds: int = 300,
) -> Tuple[Program, Dict[str, float]]:
    """Greedily minimize ``(program, init)`` while ``predicate`` holds.

    ``predicate(program, init)`` must be true for the input (asserted)
    and is re-evaluated for every candidate; the returned pair is a
    local fixpoint: no single proposed variant still satisfies it.
    """
    if not predicate(program, init):
        raise ValueError("shrink_program requires a (program, init) satisfying the predicate")
    current, current_init = program, dict(init)
    for _ in range(max_rounds):
        improved = False
        for body in _stmt_variants(current.body):
            candidate = _rebuild(current, body)
            if candidate is None:
                continue
            if predicate(candidate, current_init):
                current = candidate
                improved = True
                break
        if not improved:
            for smaller_init in _init_variants(current_init):
                if predicate(current, smaller_init):
                    current_init = smaller_init
                    improved = True
                    break
        if not improved:
            return current, current_init
    return current, current_init


# -- corpus persistence -----------------------------------------------------


def write_corpus_entry(
    directory: Path,
    *,
    name: str,
    seed: int,
    defect: Optional[str],
    config: Dict[str, Any],
    program: Program,
    init: Dict[str, float],
    note: str = "",
) -> Path:
    """Persist one shrunk repro as ``<directory>/<name>.json``.

    Entries carry no timestamps: regenerating an identical finding must
    produce a byte-identical file, so corpus churn is always a real
    behaviour change.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": CORPUS_SCHEMA,
        "name": name,
        "seed": seed,
        "defect": defect,
        "config": config,
        "source": pretty(program),
        "init": {var: float(value) for var, value in sorted(init.items())},
        "note": note,
    }
    path = directory / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_corpus(directory: Path) -> List[Dict[str, Any]]:
    """All corpus entries under ``directory``, sorted by file name."""
    directory = Path(directory)
    entries: List[Dict[str, Any]] = []
    for path in sorted(directory.glob("*.json")):
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("schema") != CORPUS_SCHEMA:
            raise ValueError(f"{path}: unexpected schema {payload.get('schema')!r}")
        payload["path"] = str(path)
        entries.append(payload)
    return entries
