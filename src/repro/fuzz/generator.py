"""Seeded, replayable generator of well-formed probabilistic programs.

Every program is built from *guaranteed-progress* loop patterns —
countdown loops (``v := v - 1``) and negative-drift random walks
(``v := v + r`` with ``E[r] < 0``) — so generated programs terminate
almost surely and the differential harness never has to distinguish
divergence from a broken bound.  Sampling distributions come from a
bounded-support menu (no geometric), which keeps the Azuma–Hoeffding
tail machinery applicable, and every numeric constant is drawn from a
menu whose ``%g`` rendering is exact, so the pretty-printed source
carries exactly the floats of the AST.

Determinism contract: :func:`generate` with the same ``(config, seed)``
returns byte-identical source (the test suite enforces this).  All
randomness flows through one ``random.Random(seed)`` whose consumption
order depends only on the frozen :class:`GenConfig`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, List, Optional, Tuple

from ..polynomials import Monomial, Polynomial
from ..semantics.distributions import (
    BernoulliDistribution,
    DiscreteDistribution,
    Distribution,
    PointDistribution,
    UniformDistribution,
    UniformIntDistribution,
)
from ..syntax.ast import (
    Assign,
    Atom,
    ProbIf,
    NondetIf,
    Program,
    Seq,
    Skip,
    Stmt,
    Tick,
    While,
)
from ..syntax.pretty import pretty

__all__ = ["GenConfig", "GeneratedProgram", "generate", "generate_many"]

#: Coefficient menu: every value renders exactly under ``%g``, so
#: pretty-printed programs round-trip bit-for-bit.
_COEFFS = (-2.0, -1.5, -1.0, -0.5, 0.5, 1.0, 1.5, 2.0, 3.0)
#: Mostly-nonnegative menu for tick costs (keeps many programs in the
#: nonnegative-cost regime where lower bounds exist, without giving up
#: signed-cost coverage entirely).
_TICK_COEFFS = (0.5, 1.0, 1.5, 2.0, 3.0, 1.0, 2.0, -0.5, -1.0)
#: Branch probabilities, ``%g``-exact.
_PROBS = (0.125, 0.25, 0.5, 0.75, 0.9)
#: Initial valuations for loop counters.
_INITS = (3.0, 5.0, 8.0, 12.0, 20.0)
#: Upward-step probabilities for drift loops — all < 0.5, so the walk
#: has strictly negative drift and terminates almost surely.
_DRIFT_UP = (0.125, 0.25)

#: Program variables, in declaration order.  The first entries become
#: loop counters; the last one is reserved as a scratch target so
#: sampled noise can flow into tick costs.
_PVARS = ("x", "y", "z", "w")

#: The bounded-support distribution menu (name -> builders).  Geometric
#: is deliberately absent: unbounded support defeats the tail oracle
#: (REP006) and adds nothing the discrete menu doesn't cover.
_DIST_MENU = ("discrete", "bernoulli", "unifint", "uniform", "point")


@dataclass(frozen=True)
class GenConfig:
    """Frozen knobs of the program generator.

    The config is part of the repro: a violation is reproduced from
    ``(config, seed)`` alone, so configs must be hashable, comparable
    and JSON round-trippable (:meth:`to_dict`/:meth:`from_dict`).
    """

    #: Top-level statement budget (loops + straight-line statements).
    max_top_level: int = 3
    #: Maximum loop nesting depth.
    max_depth: int = 2
    #: Straight-line fillers per loop body (besides the progress step).
    max_fillers: int = 2
    #: Cap on nondeterministic branches per program (0 disables).
    max_nondet: int = 1
    #: Maximum degree of tick cost polynomials.
    tick_degree: int = 2
    #: Distribution menu (subset of the bounded-support catalogue).
    distributions: Tuple[str, ...] = _DIST_MENU
    #: Monte-Carlo budget of the differential oracle.
    sim_runs: int = 10_000
    #: Step horizon for simulation and the tail guarantee.
    sim_max_steps: int = 50_000
    #: Degree-escalation ceiling during analysis.  Defaults above
    #: ``tick_degree`` because a degree-``d`` tick on a drifting walk
    #: often needs a degree-``d + 1`` potential (a quadratic cost summed
    #: over a linearly shrinking counter integrates to a cubic).  Only
    #: the harness reads this knob, so raising it never perturbs the
    #: generated ``(config, seed)`` program stream.
    max_degree: int = 4
    #: Coupled-counter loops to append per program (0 disables — the
    #: default keeps historical ``(config, seed)`` streams byte-stable).
    #: Each is ``while a + b - 1 >= 0 do`` with a probabilistic choice
    #: of which counter to decrement: the loop's progress measure is the
    #: *sum* of two variables, which the interval domain cannot track
    #: but the octagon domain certifies.
    coupled_loops: int = 0

    def __post_init__(self) -> None:
        for name in (
            "max_top_level",
            "max_depth",
            "tick_degree",
            "sim_runs",
            "sim_max_steps",
            "max_degree",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ValueError(f"{name} must be an int >= 1, got {value!r}")
        for name in ("max_fillers", "max_nondet", "coupled_loops"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise ValueError(f"{name} must be an int >= 0, got {value!r}")
        if not self.distributions:
            raise ValueError("distributions menu must not be empty")
        object.__setattr__(self, "distributions", tuple(self.distributions))
        for dist in self.distributions:
            if dist not in _DIST_MENU:
                raise ValueError(
                    f"unknown distribution {dist!r}; known: {', '.join(_DIST_MENU)}"
                )

    def to_dict(self) -> Dict[str, Any]:
        return {
            f.name: list(v) if isinstance(v := getattr(self, f.name), tuple) else v
            for f in fields(self)
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "GenConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown GenConfig field(s) {sorted(unknown)}; known: {sorted(known)}"
            )
        kwargs = dict(payload)
        if "distributions" in kwargs:
            kwargs["distributions"] = tuple(kwargs["distributions"])
        return cls(**kwargs)

    def override(self, **changes: Any) -> "GenConfig":
        return replace(self, **changes)


@dataclass
class GeneratedProgram:
    """One generator output: the AST, its canonical source and repro keys."""

    seed: int
    config: GenConfig
    program: Program
    source: str
    init: Dict[str, float]

    @property
    def name(self) -> str:
        return f"fuzz-{self.seed}"


class _Builder:
    """One program's worth of seeded construction state."""

    def __init__(self, config: GenConfig, seed: int):
        self.config = config
        self.rng = random.Random(seed)
        self.seed = seed
        self.nondet_left = config.max_nondet
        #: Sampling variables actually declared, in declaration order.
        self.rvars: Dict[str, Distribution] = {}

    # -- leaf ingredients ------------------------------------------------

    def _drift_rvar(self) -> str:
        """A fresh negative-drift step variable (``E[r] < 0``)."""
        name = f"r{len(self.rvars)}"
        up = self.rng.choice(_DRIFT_UP)
        self.rvars[name] = DiscreteDistribution([1.0, -1.0], [up, 1.0 - up])
        return name

    def _noise_rvar(self) -> Optional[str]:
        """A fresh bounded noise variable from the configured menu."""
        menu = [d for d in self.config.distributions if d != "discrete"]
        if "discrete" in self.config.distributions:
            menu.append("discrete")
        kind = self.rng.choice(menu)
        name = f"u{len(self.rvars)}"
        if kind == "bernoulli":
            self.rvars[name] = BernoulliDistribution(self.rng.choice(_PROBS))
        elif kind == "unifint":
            self.rvars[name] = UniformIntDistribution(0, self.rng.choice((2, 3, 4)))
        elif kind == "uniform":
            self.rvars[name] = UniformDistribution(0.0, self.rng.choice((1.0, 2.0)))
        elif kind == "point":
            self.rvars[name] = PointDistribution(self.rng.choice((1.0, 2.0)))
        else:
            p = self.rng.choice((0.25, 0.5))
            self.rvars[name] = DiscreteDistribution([2.0, 0.0], [p, 1.0 - p])
        return name

    def _tick_poly(self, scope: List[str]) -> Polynomial:
        """A cost polynomial over the pvars in ``scope``."""
        terms: Dict[Monomial, float] = {}
        for _ in range(self.rng.randint(1, 2)):
            n_vars = self.rng.randint(0, min(2, len(scope)))
            names = self.rng.sample(scope, n_vars)
            powers: Dict[str, int] = {}
            budget = self.config.tick_degree
            for var in names:
                exp = self.rng.randint(1, max(1, budget))
                powers[var] = exp
                budget -= exp
                if budget <= 0:
                    break
            mono = Monomial(powers)
            terms[mono] = terms.get(mono, 0.0) + self.rng.choice(_TICK_COEFFS)
        poly = Polynomial(terms)
        return poly if poly else Polynomial.constant(1.0)

    # -- statements ------------------------------------------------------

    def _filler(self, scope: List[str], scratch: List[str], depth: int) -> Stmt:
        """A loop-body statement that never touches an active counter."""
        roll = self.rng.random()
        if roll < 0.45 or not scratch:
            return Tick(self._tick_poly(scope))
        if roll < 0.7:
            # Sampled noise into a scratch variable (simple_loop's
            # ``y := r2`` shape): bounded once the interval analysis
            # bounds the distribution's support.
            target = self.rng.choice(scratch)
            source = self._noise_rvar()
            return Assign(target, Polynomial.variable(source))
        then_branch = self._filler_block(scope, scratch, depth)
        else_branch = Skip() if self.rng.random() < 0.5 else self._filler_block(scope, scratch, depth)
        if self.nondet_left > 0 and self.rng.random() < 0.3:
            self.nondet_left -= 1
            return NondetIf(then_branch, else_branch)
        return ProbIf(self.rng.choice(_PROBS), then_branch, else_branch)

    def _filler_block(self, scope: List[str], scratch: List[str], depth: int) -> Stmt:
        count = self.rng.randint(1, max(1, self.config.max_fillers))
        stmts = []
        for _ in range(count):
            roll = self.rng.random()
            if roll < 0.6:
                stmts.append(Tick(self._tick_poly(scope)))
            elif scratch:
                stmts.append(
                    Assign(self.rng.choice(scratch), Polynomial.variable(self._noise_rvar()))
                )
            else:
                stmts.append(Tick(self._tick_poly(scope)))
        return stmts[0] if len(stmts) == 1 else Seq.of(*stmts)

    def _loop(self, counter: str, scope: List[str], free: List[str], depth: int) -> Stmt:
        """A guaranteed-progress loop over ``counter``.

        ``scope`` is every pvar a tick may reference; ``free`` is the
        pool of still-unclaimed variables a nested loop may consume.
        """
        cond = Atom(Polynomial.variable(counter) - Polynomial.constant(1.0), strict=False)
        if "discrete" in self.config.distributions and self.rng.random() < 0.4:
            step = self._drift_rvar()
            progress: Stmt = Assign(
                counter, Polynomial.variable(counter) + Polynomial.variable(step)
            )
        else:
            progress = Assign(counter, Polynomial.variable(counter) - Polynomial.constant(1.0))

        scratch = [v for v in free if v != counter]
        body: List[Stmt] = [progress]
        for _ in range(self.rng.randint(1, max(1, self.config.max_fillers))):
            body.append(self._filler(scope, scratch, depth))
        if depth < self.config.max_depth and scratch and self.rng.random() < 0.4:
            inner = scratch[0]
            remaining = scratch[1:]
            body.append(
                Assign(inner, Polynomial.constant(float(self.rng.choice((2, 3, 4)))))
            )
            body.append(self._loop(inner, scope, remaining, depth + 1))
        return While(cond, body[0] if len(body) == 1 else Seq.of(*body))

    def _coupled_loop(self, a: str, b: str, scope: List[str]) -> Stmt:
        """A loop whose progress measure is the *sum* ``a + b``.

        ``while a + b - 1 >= 0`` decrements one of the two counters per
        iteration (probabilistic choice), so the sum strictly decreases
        and the loop terminates — but neither counter alone is monotone
        against the guard, which is exactly the shape the octagon
        domain exists for.
        """
        cond = Atom(
            Polynomial.variable(a) + Polynomial.variable(b) - Polynomial.constant(1.0),
            strict=False,
        )
        dec_a = Assign(a, Polynomial.variable(a) - Polynomial.constant(1.0))
        dec_b = Assign(b, Polynomial.variable(b) - Polynomial.constant(1.0))
        body: List[Stmt] = [ProbIf(self.rng.choice(_PROBS), dec_a, dec_b)]
        body.append(Tick(self._tick_poly(scope)))
        return While(cond, Seq.of(*body))

    def build(self) -> GeneratedProgram:
        n_vars = self.rng.randint(2, 3)
        pvars = list(_PVARS[:n_vars])
        counters = pvars[: self.rng.randint(1, min(2, n_vars - 1))]
        free = [v for v in pvars if v not in counters]

        top: List[Stmt] = []
        budget = self.rng.randint(1, self.config.max_top_level)
        for index, counter in enumerate(counters):
            if index >= budget:
                break
            top.append(self._loop(counter, pvars, free, depth=1))
        while len(top) < budget and self.rng.random() < 0.5:
            top.append(Tick(self._tick_poly(pvars)))
        if not top:
            top.append(Tick(self._tick_poly(pvars)))

        # Gated strictly behind the (default-0) knob: the default
        # config's RNG consumption order — and hence every historical
        # seed's program — stays byte-identical.
        if self.config.coupled_loops > 0 and len(counters) >= 2:
            for _ in range(self.config.coupled_loops):
                top.append(self._coupled_loop(counters[0], counters[1], pvars))

        init = {var: 0.0 for var in pvars}
        for counter in counters:
            init[counter] = self.rng.choice(_INITS)

        program = Program(
            pvars=pvars,
            rvars=self.rvars,
            body=top[0] if len(top) == 1 else Seq.of(*top),
            name=f"fuzz-{self.seed}",
        )
        program.validate()
        return GeneratedProgram(
            seed=self.seed,
            config=self.config,
            program=program,
            source=pretty(program),
            init=init,
        )


def generate(config: GenConfig, seed: int) -> GeneratedProgram:
    """The program for ``(config, seed)`` — byte-identical on repetition."""
    return _Builder(config, seed).build()


def generate_many(config: GenConfig, seed: int, count: int) -> List[GeneratedProgram]:
    """Programs for seeds ``seed .. seed+count-1`` (each independently
    reproducible from its own seed)."""
    return [generate(config, seed + offset) for offset in range(count)]
