"""``repro.resilience`` — the failure-handling substrate.

The analysis core is deterministic; the *machinery around it* — worker
processes, HTTP handlers, the on-disk cache — lives in a world of
SIGKILLed children, saturated services and torn files.  This package
concentrates everything the reproduction does about that world:

:class:`RetryPolicy`
    How many attempts a task gets after its worker dies, and the
    exponential-backoff-plus-jitter schedule between them.  Rides on
    :class:`repro.api.AnalysisOptions` / per-request ``retry``.
:class:`ResilientPool`
    A crash-safe process pool: one pipe per worker, so the parent knows
    *exactly* which task a dead worker was holding — it respawns the
    worker and requeues the victim under its retry budget instead of
    hanging (``multiprocessing.Pool``) or poisoning every sibling
    (``concurrent.futures``' ``BrokenProcessPool``).
:class:`AdmissionController` / :class:`SingleFlight`
    Service-side backpressure: a bounded in-flight gate (saturation is
    a fast 429 + ``Retry-After``, not an unbounded thread pile-up) and
    request coalescing by cache fingerprint (N racing identical POSTs
    cost one LP solve).
:class:`FaultPlan` (:mod:`repro.resilience.faults`)
    A seeded, deterministic fault injector — kill a worker mid-task,
    delay or fail a named task, corrupt a cache entry — activated only
    via the ``REPRO_FAULTS`` env hook, so the chaos suites in
    ``tests/resilience/`` can *prove* the machinery above works.

See ``docs/resilience.md`` for the knobs and semantics.
"""

from __future__ import annotations

from .admission import AdmissionController, SingleFlight
from .faults import FaultPlan, FaultSpec, active_plan, install_plan
from .pool import PoolTask, ResilientPool, TaskOutcome
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "AdmissionController",
    "DEFAULT_RETRY_POLICY",
    "FaultPlan",
    "FaultSpec",
    "PoolTask",
    "ResilientPool",
    "RetryPolicy",
    "SingleFlight",
    "TaskOutcome",
    "active_plan",
    "install_plan",
]
