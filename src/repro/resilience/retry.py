"""Retry budgets and backoff schedules for crash-requeued tasks.

A :class:`RetryPolicy` answers two questions the crash-safe pool asks
when a worker dies mid-task: *does the victim task get another
attempt?* (``max_attempts`` bounds the total, first run included) and
*how long until it is redispatched?* (exponential backoff with
deterministic jitter, so a systematically crashing task cannot hammer
the pool in a tight respawn loop while honest work queues behind it).

Jitter is derived from a seeded hash of ``(seed, task, attempt)`` —
not from global randomness — so a given plan replays identically:
chaos-suite runs that inject the same crashes observe the same
schedule, which is what makes "byte-identical reports under induced
faults" a testable property rather than a hope.

Retries apply to *worker deaths only*.  A task that merely errors
(parse failure, infeasible LP) is deterministic and re-executing it
would return the same structured report; a timeout already consumed
its budget.  Both keep their usual statuses and one attempt.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping, Optional, Union

__all__ = ["DEFAULT_RETRY_POLICY", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Crash-retry budget + exponential backoff/jitter schedule.

    All fields are JSON-plain; instances are frozen and hashable so
    they can ride on frozen :class:`repro.api.AnalysisOptions`.
    """

    #: Total attempts a task may consume, the first run included.
    #: ``1`` disables crash retries entirely.
    max_attempts: int = 2
    #: Backoff before the second attempt, in seconds.
    backoff_s: float = 0.05
    #: Growth factor: attempt ``k`` (k >= 2) waits
    #: ``backoff_s * multiplier**(k - 2)`` before jitter.
    multiplier: float = 2.0
    #: Backoff ceiling in seconds (applied before jitter).
    max_backoff_s: float = 2.0
    #: Jitter fraction in [0, 1]: the delay is scaled by a
    #: deterministic factor drawn from ``[1, 1 + jitter]``.
    jitter: float = 0.5
    #: Seed for the deterministic jitter draw.
    seed: int = 0

    def __post_init__(self) -> None:
        if (
            not isinstance(self.max_attempts, int)
            or isinstance(self.max_attempts, bool)
            or self.max_attempts < 1
        ):
            raise ValueError(f"max_attempts must be an int >= 1, got {self.max_attempts!r}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s!r}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier!r}")
        if self.max_backoff_s < 0:
            raise ValueError(f"max_backoff_s must be >= 0, got {self.max_backoff_s!r}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter!r}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(f"seed must be an int, got {self.seed!r}")

    # -- schedule -------------------------------------------------------

    def allows(self, attempt: int) -> bool:
        """May a task that just finished ``attempt`` run again?"""
        return attempt < self.max_attempts

    def delay_for(self, attempt: int, task: str = "") -> float:
        """Seconds to hold the victim of ``attempt`` before requeueing.

        Deterministic: the jitter factor is a hash of
        ``(seed, task, attempt)``, so replaying the same fault plan
        replays the same schedule.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = min(self.backoff_s * self.multiplier ** (attempt - 1), self.max_backoff_s)
        if base == 0 or self.jitter == 0:
            return base
        digest = hashlib.sha256(f"{self.seed}:{task}:{attempt}".encode("utf-8")).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64  # in [0, 1)
        return base * (1.0 + self.jitter * unit)

    # -- JSON -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RetryPolicy":
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown retry field(s): {sorted(unknown)}")
        return cls(**dict(data))

    @classmethod
    def coerce(cls, value: Union["RetryPolicy", Mapping[str, Any], None]) -> Optional["RetryPolicy"]:
        """``None``, a policy, or a JSON mapping — normalized."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        raise ValueError(f"retry must be a RetryPolicy or a mapping, got {value!r}")


#: What the engine applies when neither the request nor the caller pins
#: a policy: one crash retry with a short, jittered backoff.
DEFAULT_RETRY_POLICY = RetryPolicy()
